//! Differential byte-identity suite for the SIMD + batched frame hot
//! path (issue 10's conformance tier).
//!
//! Three guarantees, each checked against its serial/scalar oracle:
//!
//! * **kernel tiers** — `luma_histogram`, `CompensationLut` application
//!   and the HEBS remap produce byte-identical frames, stats and
//!   histograms at every [`KernelTier`] (unavailable tiers clamp to the
//!   best available one, so the suite is meaningful on any host);
//! * **batched scheduling** — `Proxy::transcode_batch` returns streams
//!   byte-identical to per-clip `Proxy::transcode` at every worker
//!   count, and the batched core profiling/compensation dispatchers
//!   match their per-job serial references;
//! * **ragged geometries** — a seeded `check!` property extends the
//!   fixed matrix to random frame sizes (including widths that do not
//!   fill a single SIMD lane group), random compensation factors
//!   (including the `k ≥ 128` scalar-fallback region) and random HEBS
//!   effective maxima.
//!
//! When `ANNOLIGHT_PIPELINE_LOG` names a file, each configuration
//! appends a digest line to it; CI runs the suite twice with a fixed
//! seed and `cmp`s the two logs to prove the tier is deterministic end
//! to end (see `scripts/ci.sh`).

use annolight::core::digest::Digester;
use annolight::core::parallel::ParallelConfig;
use annolight::core::track::AnnotationMode;
use annolight::core::QualityLevel;
use annolight::display::DeviceProfile;
use annolight::imgproc::simd;
use annolight::imgproc::{ClipStats, CompensationLut, Frame, HebsLut, KernelTier};
use annolight::stream::{Proxy, TranscodeRequest};
use annolight::video::ClipLibrary;
use annolight_codec::{Encoder, EncoderConfig};
use annolight_support::json::to_string;

/// Worker counts for the batched-scheduling matrix: 0 is the serial
/// reference.
const WORKER_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

/// Every tier under test; tiers the host lacks clamp to the best
/// available one inside the kernels, which must still be
/// byte-identical.
const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2];

/// Appends one digest line to `$ANNOLIGHT_PIPELINE_LOG`, if set. CI
/// diffs two runs' logs to pin end-to-end determinism.
fn log_digest(what: &str, digest: u64) {
    if let Ok(path) = std::env::var("ANNOLIGHT_PIPELINE_LOG") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("pipeline log path is writable");
        writeln!(f, "{what} {digest:#018x}").expect("pipeline log write");
    }
}

/// Digest over a compensated frame plus its clip stats.
fn digest_frame_stats(frame: &Frame, stats: &ClipStats) -> u64 {
    let mut d = Digester::new();
    d.write(frame.as_bytes())
        .write_u64(stats.clipped_pixels)
        .write_u64(stats.total_pixels)
        .write_f64(f64::from(stats.max_overshoot));
    d.finish()
}

/// A deterministic synthetic frame with gradients crossing every lane
/// boundary.
fn test_frame(w: u32, h: u32, seed: u32) -> Frame {
    Frame::from_fn(w, h, |x, y| {
        let v = x.wrapping_mul(7).wrapping_add(y.wrapping_mul(13)).wrapping_add(seed);
        [(v % 251) as u8, (v.wrapping_mul(3) % 241) as u8, (v.wrapping_mul(5) % 256) as u8]
    })
}

/// Fixed matrix: histogram + compensation + HEBS at every tier on real
/// paper-clip frames, byte-compared against the scalar oracle.
#[test]
fn kernel_tiers_match_scalar_oracle_on_paper_clips() {
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("library names are all known")
        .preview(1.0);
    let frames: Vec<Frame> = clip.frames().collect();
    for k in [0.9_f32, 1.31, 2.4] {
        let lut = CompensationLut::new(k);
        for (i, frame) in frames.iter().enumerate() {
            let ref_hist = simd::luma_histogram(frame, KernelTier::Scalar);
            let mut ref_frame = frame.clone();
            let ref_stats = lut.apply_scalar(&mut ref_frame);
            let hebs = HebsLut::from_histogram(&ref_hist, ref_hist.max_nonzero().unwrap_or(0));
            let mut ref_hebs_frame = frame.clone();
            let ref_hebs_stats = hebs.apply_scalar(&mut ref_hebs_frame);
            for tier in TIERS {
                let hist = simd::luma_histogram(frame, tier);
                assert_eq!(hist, ref_hist, "histogram tier={tier:?} frame={i} k={k}");
                let mut got = frame.clone();
                let stats = simd::compensation_apply(&lut, &mut got, tier);
                assert_eq!(got.as_bytes(), ref_frame.as_bytes(), "lut tier={tier:?} frame={i} k={k}");
                assert_eq!(stats, ref_stats, "lut stats tier={tier:?} frame={i} k={k}");
                let mut got_hebs = frame.clone();
                let hebs_stats = simd::hebs_apply(&hebs, &mut got_hebs, tier);
                assert_eq!(
                    got_hebs.as_bytes(),
                    ref_hebs_frame.as_bytes(),
                    "hebs tier={tier:?} frame={i}"
                );
                assert_eq!(hebs_stats, ref_hebs_stats, "hebs stats tier={tier:?} frame={i}");
                log_digest(
                    &format!("kernels clip=themovie frame={i} k={k} tier={}", tier.name()),
                    digest_frame_stats(&got, &stats) ^ digest_frame_stats(&got_hebs, &hebs_stats),
                );
            }
        }
    }
}

/// Ragged geometries that do not fill one SSE (16-byte) or AVX
/// (32-byte) lane group — the tails must route through the same scalar
/// epilogue bytes.
#[test]
fn kernel_tiers_match_on_ragged_geometries() {
    let lut = CompensationLut::new(1.47);
    for (w, h) in [(1, 1), (2, 3), (5, 1), (7, 2), (9, 3), (11, 5), (15, 4), (17, 1), (33, 2)] {
        let frame = test_frame(w, h, 3 * w + h);
        let ref_hist = simd::luma_histogram(&frame, KernelTier::Scalar);
        let mut ref_frame = frame.clone();
        let ref_stats = lut.apply_scalar(&mut ref_frame);
        for tier in TIERS {
            assert_eq!(
                simd::luma_histogram(&frame, tier),
                ref_hist,
                "histogram tier={tier:?} {w}x{h}"
            );
            let mut got = frame.clone();
            let stats = simd::compensation_apply(&lut, &mut got, tier);
            assert_eq!(got.as_bytes(), ref_frame.as_bytes(), "lut tier={tier:?} {w}x{h}");
            assert_eq!(stats, ref_stats, "lut stats tier={tier:?} {w}x{h}");
            log_digest(
                &format!("ragged {w}x{h} tier={}", tier.name()),
                digest_frame_stats(&got, &stats),
            );
        }
    }
}

/// The batched proxy scheduler inherits the guarantee: transcode_batch
/// output is byte-identical to per-clip transcode for every pool size.
#[test]
fn transcode_batch_matches_per_clip_transcode() {
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("library names are all known")
        .preview(1.5);
    let (w, h) = clip.dimensions();
    let mut enc = Encoder::new(EncoderConfig {
        width: w,
        height: h,
        fps: clip.fps(),
        ..EncoderConfig::default()
    })
    .expect("library clip dimensions are codec-valid");
    for f in clip.frames() {
        enc.push_frame(&f).expect("frames match encoder geometry");
    }
    let input = enc.finish();
    let requests = [
        TranscodeRequest {
            input: &input,
            device: &DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q10,
            mode: AnnotationMode::PerScene,
        },
        TranscodeRequest {
            input: &input,
            device: &DeviceProfile::zaurus_sl5600(),
            quality: QualityLevel::Q5,
            mode: AnnotationMode::PerScene,
        },
    ];
    let serial = Proxy::new(EncoderConfig::default());
    let reference: Vec<_> = requests
        .iter()
        .map(|r| {
            serial
                .transcode(r.input, r.device, r.quality, r.mode)
                .expect("serial transcode succeeds")
        })
        .collect();
    for workers in WORKER_COUNTS {
        let proxy = Proxy::new(EncoderConfig::default())
            .with_parallelism(ParallelConfig::with_workers(workers));
        let got = proxy.transcode_batch(&requests).expect("batched transcode succeeds");
        let mut d = Digester::new();
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(
                g.as_bytes(),
                r.as_bytes(),
                "transcode_batch workers={workers} diverged from per-clip transcode"
            );
            d.write(g.as_bytes());
        }
        log_digest(&format!("transcode_batch workers={workers}"), d.finish());
    }
}

annolight_support::check! {
    /// Randomized kernel-tier property: random geometry (including
    /// single-pixel and lane-straddling widths), random content, random
    /// compensation factor — including the `k >= 128` region where the
    /// vector kernels must fall back to the scalar path — and a random
    /// HEBS effective maximum. Every tier must match the scalar oracle
    /// byte for byte.
    fn randomized_kernels_match_scalar_oracle(g) {
        let w = g.draw(1..48u32);
        let h = g.draw(1..32u32);
        let seed: u32 = g.any::<u32>();
        let frame = test_frame(w, h, seed);
        let k = if g.draw(0..8u32) == 0 {
            g.draw(128.0f32..300.0) // vector kernels must take the scalar fallback
        } else {
            g.draw(0.1f32..8.0)
        };
        let lut = CompensationLut::new(k);
        let ref_hist = simd::luma_histogram(&frame, KernelTier::Scalar);
        let mut ref_frame = frame.clone();
        let ref_stats = lut.apply_scalar(&mut ref_frame);
        let eff = g.draw(0..=255u8);
        let hebs = HebsLut::from_histogram(&ref_hist, eff);
        let mut ref_hebs_frame = frame.clone();
        let ref_hebs_stats = hebs.apply_scalar(&mut ref_hebs_frame);
        for tier in TIERS {
            let hist = simd::luma_histogram(&frame, tier);
            assert_eq!(hist, ref_hist, "histogram {w}x{h} seed={seed} tier={tier:?}");
            let mut got = frame.clone();
            let stats = simd::compensation_apply(&lut, &mut got, tier);
            assert_eq!(
                got.as_bytes(),
                ref_frame.as_bytes(),
                "lut {w}x{h} seed={seed} k={k} tier={tier:?}"
            );
            assert_eq!(stats, ref_stats, "lut stats {w}x{h} seed={seed} k={k} tier={tier:?}");
            let mut got_hebs = frame.clone();
            let hebs_stats = simd::hebs_apply(&hebs, &mut got_hebs, tier);
            assert_eq!(
                got_hebs.as_bytes(),
                ref_hebs_frame.as_bytes(),
                "hebs {w}x{h} seed={seed} eff={eff} tier={tier:?}"
            );
            assert_eq!(
                hebs_stats, ref_hebs_stats,
                "hebs stats {w}x{h} seed={seed} eff={eff} tier={tier:?}"
            );
        }
        // One digest per draw covering the scalar-oracle outputs: the
        // tier loop above proved every tier equals it.
        let mut d = Digester::new();
        d.write(to_string(&ref_hist).as_bytes())
            .write_u64(digest_frame_stats(&ref_frame, &ref_stats))
            .write_u64(digest_frame_stats(&ref_hebs_frame, &ref_hebs_stats));
        log_digest(&format!("prop {w}x{h} seed={seed}"), d.finish());
    }
}
