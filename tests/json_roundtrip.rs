//! JSON round-trip tests for every wire- or sidecar-serialised type:
//! serialise → parse → value-equal (or re-serialise → byte-equal where a
//! type has no `PartialEq`). These pin the `annolight_support::json`
//! encodings — external enum tagging, newtype transparency, map and
//! option handling — against the formats the seed fixed with serde.

use annolight::core::track::{AnnotationEntry, AnnotationMode, AnnotationTrack};
use annolight::core::{LuminanceProfile, QualityLevel};
use annolight::display::{BacklightLevel, DeviceProfile};
use annolight::stream::{ClientHello, ServerOffer};
use annolight::video::ClipLibrary;
use annolight_support::json::{from_str, to_string, Json};

/// serialise → parse → serialise must be a fixpoint.
fn stable_roundtrip<T>(value: &T) -> T
where
    T: annolight_support::json::ToJson + annolight_support::json::FromJson,
{
    let doc = to_string(value);
    let back: T = from_str(&doc).unwrap_or_else(|e| panic!("reparse failed: {e}\n{doc}"));
    let doc2 = to_string(&back);
    assert_eq!(doc, doc2, "serialisation is not a fixpoint");
    // And the document is well-formed JSON for third parties.
    Json::parse(&doc).expect("emitted JSON must parse as plain JSON");
    back
}

#[test]
fn annotation_track_roundtrips() {
    let entries = vec![
        AnnotationEntry {
            start_frame: 0,
            backlight: BacklightLevel(200),
            compensation: 1.25,
            effective_max_luma: 204,
        },
        AnnotationEntry {
            start_frame: 24,
            backlight: BacklightLevel(120),
            compensation: 2.0,
            effective_max_luma: 128,
        },
    ];
    let track =
        AnnotationTrack::new("ipaq_5555", QualityLevel::Q10, AnnotationMode::PerScene, 12.0, 48, entries)
            .unwrap();
    let back = stable_roundtrip(&track);
    assert_eq!(back, track);
    // And the sidecar helpers agree with the raw round-trip.
    let sidecar = track.to_json().unwrap();
    assert_eq!(AnnotationTrack::from_json(&sidecar).unwrap(), track);
}

#[test]
fn clip_specs_roundtrip_for_every_paper_clip() {
    // The ten scripted clips cover all `ContentKind` variants in use:
    // struct variants with differing arities, plus the credits class.
    for clip in ClipLibrary::paper_clips() {
        let spec = clip.spec().clone();
        let back = stable_roundtrip(&spec);
        assert_eq!(back, spec, "{}", spec.name);
    }
}

#[test]
fn device_profiles_roundtrip() {
    for dev in DeviceProfile::paper_devices() {
        let back = stable_roundtrip(&dev);
        assert_eq!(back, dev, "{}", dev.name());
    }
}

#[test]
fn negotiation_messages_roundtrip() {
    let hello = ClientHello::new(
        "themovie",
        DeviceProfile::ipaq_5555(),
        QualityLevel::Q15,
        AnnotationMode::PerFrame,
    );
    assert_eq!(stable_roundtrip(&hello), hello);
    // Wire helpers are byte-level JSON too.
    assert_eq!(ClientHello::from_wire(&hello.to_wire()).unwrap(), hello);

    let offer = ServerOffer {
        offered_qualities: vec![QualityLevel::Q0, QualityLevel::Q10, QualityLevel::Custom(0.125)],
        granted_quality: QualityLevel::Q10,
        width: 128,
        height: 96,
        fps: 12.0,
        stream_bytes: 123_456,
    };
    assert_eq!(stable_roundtrip(&offer), offer);
}

#[test]
fn quality_levels_roundtrip_including_custom() {
    for q in [
        QualityLevel::Q0,
        QualityLevel::Q5,
        QualityLevel::Q10,
        QualityLevel::Q15,
        QualityLevel::Q20,
        QualityLevel::Custom(0.0375),
    ] {
        assert_eq!(stable_roundtrip(&q), q);
    }
}

#[test]
fn power_reports_roundtrip() {
    use annolight::power::{DaqBoard, SystemPowerModel};
    let model = SystemPowerModel::ipaq_5555();
    assert_eq!(stable_roundtrip(&model), model);

    // A measured-trace summary from the simulated DAQ board.
    let daq = DaqBoard::paper_setup();
    let m = daq.measure(0.25, |t| 1.4 + 0.3 * (t * 7.0).sin());
    assert_eq!(stable_roundtrip(&m), m);
}

#[test]
fn session_report_roundtrips() {
    use annolight::stream::{run_session, SessionConfig};
    // SessionReport has no PartialEq (it nests a BTreeMap breakdown);
    // the fixpoint property inside `stable_roundtrip` plus field spot
    // checks pin the encoding instead.
    let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(1.0);
    let report = run_session(SessionConfig::new(clip, QualityLevel::Q10)).unwrap();
    let back = stable_roundtrip(&report);
    assert_eq!(back.stream_bytes, report.stream_bytes);
    assert_eq!(back.packets, report.packets);
    assert_eq!(back.playback, report.playback);
    assert_eq!(back.energy_breakdown, report.energy_breakdown);
}

#[test]
fn luminance_profile_roundtrips() {
    let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(1.0);
    let profile = LuminanceProfile::of_clip(&clip).unwrap();
    let back = stable_roundtrip(&profile);
    assert_eq!(back, profile);
}
