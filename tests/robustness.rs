//! Failure-injection and robustness tests: malformed or hostile inputs
//! must produce errors, never panics or bogus successes.

use annolight::codec::{Decoder, EncodedStream, Encoder, EncoderConfig};
use annolight::core::track::AnnotationTrack;
use annolight::core::QualityLevel;
use annolight::display::DeviceProfile;
use annolight::power::SystemPowerModel;
use annolight::stream::PlaybackClient;
use annolight::video::ClipLibrary;

annolight_support::check! {
    /// The container parser never panics on arbitrary bytes.
    fn decoder_survives_arbitrary_bytes(g) {
        let bytes = g.vec(0..2048usize, |g| g.any::<u8>());
        let _ = Decoder::from_bytes(&bytes[..]); // Err or Ok, never panic
    }

    /// The annotation-track parser never panics on arbitrary bytes.
    fn track_parser_survives_arbitrary_bytes(g) {
        let bytes = g.vec(0..512usize, |g| g.any::<u8>());
        let _ = AnnotationTrack::from_rle_bytes(&bytes);
    }

    /// A valid header followed by garbage packets must be rejected, not
    /// mis-decoded.
    fn garbage_after_header_rejected(g) {
        let bytes = g.vec(1..256usize, |g| g.any::<u8>());
        let mut stream = Vec::new();
        stream.extend_from_slice(b"ALV1");
        stream.extend_from_slice(&32u16.to_le_bytes());
        stream.extend_from_slice(&32u16.to_le_bytes());
        stream.extend_from_slice(&12_000u32.to_le_bytes());
        stream.extend_from_slice(&1u32.to_le_bytes()); // promises 1 picture
        stream.push(4); // gop
        stream.extend_from_slice(&bytes);
        if let Ok(mut dec) = Decoder::from_bytes(&stream[..]) {
            // If the packet table happened to parse, decoding the picture
            // payload must still fail or produce a frame — never panic.
            let _ = dec.decode_next();
        }
    }

    /// Intra picture decode never panics on arbitrary payloads.
    fn intra_decode_survives_arbitrary_payload(g) {
        let bytes = g.vec(0..256usize, |g| g.any::<u8>());
        let _ = annolight::codec::picture::decode_intra(&bytes, 16, 16);
    }
}

#[test]
fn truncation_at_every_boundary_is_detected() {
    // Encode a tiny stream, then truncate at a spread of byte positions:
    // each prefix must either fail parsing or decode only complete
    // pictures — never panic.
    let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(1.0);
    let (w, h) = clip.dimensions();
    let mut enc = Encoder::new(EncoderConfig {
        width: w,
        height: h,
        fps: clip.fps(),
        ..Default::default()
    })
    .unwrap();
    enc.push_user_data(b"annotations");
    for f in clip.frames() {
        enc.push_frame(&f).unwrap();
    }
    let stream = enc.finish();
    let bytes = stream.as_bytes();
    let step = (bytes.len() / 97).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        let prefix = &bytes[..cut];
        if let Ok(mut dec) = Decoder::from_bytes(prefix) {
            let _ = dec.decode_all();
        }
    }
}

#[test]
fn bitflips_in_picture_payloads_do_not_panic() {
    let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(1.0);
    let (w, h) = clip.dimensions();
    let mut enc = Encoder::new(EncoderConfig {
        width: w,
        height: h,
        fps: clip.fps(),
        ..Default::default()
    })
    .unwrap();
    for f in clip.frames() {
        enc.push_frame(&f).unwrap();
    }
    let stream = enc.finish();
    let original = stream.as_bytes().to_vec();
    // Flip a byte at a spread of positions beyond the header.
    let step = (original.len() / 61).max(1);
    for pos in (17..original.len()).step_by(step) {
        let mut corrupted = original.clone();
        corrupted[pos] ^= 0xA5;
        if let Ok(mut dec) = Decoder::from_bytes(&corrupted[..]) {
            let _ = dec.decode_all(); // may Err, may decode garbage; no panic
        }
    }
}

#[test]
fn client_rejects_stream_with_corrupted_track() {
    // Serve a proper stream, then corrupt the annotation payload only: the
    // client must fail cleanly with a track error.
    use annolight::stream::{MediaServer, ServeRequest};
    let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(1.0);
    let mut server = MediaServer::new(EncoderConfig::default());
    server.add_clip(clip);
    let served = server
        .serve(&ServeRequest::new(
            "officexp",
            DeviceProfile::ipaq_5555(),
            QualityLevel::Q10,
        ))
        .unwrap();
    let mut bytes = served.stream.as_bytes().to_vec();
    // The track payload begins after header (17B) + packet kind/len
    // (~3B); smash its magic.
    bytes[20] ^= 0xFF;
    bytes[21] ^= 0xFF;
    let corrupted = EncodedStream::from_bytes(bytes).unwrap();
    let client = PlaybackClient::new(DeviceProfile::ipaq_5555(), SystemPowerModel::ipaq_5555());
    assert!(client.play(&corrupted, None).is_err());
}

#[test]
fn empty_and_header_only_streams() {
    assert!(Decoder::from_bytes(&[][..]).is_err());
    let enc = Encoder::new(EncoderConfig::default()).unwrap();
    let empty = enc.finish();
    let mut dec = Decoder::new(&empty).unwrap();
    assert!(dec.decode_next().unwrap().is_none());
    assert_eq!(dec.frame_count(), 0);
}
