//! Property-based tests (proptest) over the workspace's core invariants.

use annolight::core::plan::plan_levels;
use annolight::core::track::{AnnotationEntry, AnnotationMode, AnnotationTrack};
use annolight::core::QualityLevel;
use annolight::display::{BacklightLevel, DeviceProfile, TransferFunction};
use annolight::imgproc::{contrast_enhance, Frame, Histogram};
use proptest::prelude::*;

proptest! {
    /// The clipping budget is never exceeded, for any histogram and any
    /// quality fraction.
    #[test]
    fn clip_level_respects_budget(
        samples in proptest::collection::vec(any::<u8>(), 1..512),
        quality in 0.0f64..=0.5,
    ) {
        let hist = Histogram::from_samples(samples.iter().copied());
        let level = hist.clip_level(quality);
        prop_assert!(hist.fraction_above(level) <= quality + 1e-12);
        // And one level lower would clip more than `level` does (tightness
        // in the sense that the chosen level is the smallest admissible).
        if level > 0 {
            let lower = level - 1;
            let budget = (quality * hist.total() as f64).floor() as u64;
            prop_assert!(hist.count_above(lower) > budget);
        }
    }

    /// Histogram totals and means are consistent under merge.
    #[test]
    fn histogram_merge_consistency(
        a in proptest::collection::vec(any::<u8>(), 1..256),
        b in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let ha = Histogram::from_samples(a.iter().copied());
        let hb = Histogram::from_samples(b.iter().copied());
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), ha.total() + hb.total());
        let expected_mean = (ha.mean() * ha.total() as f64 + hb.mean() * hb.total() as f64)
            / merged.total() as f64;
        prop_assert!((merged.mean() - expected_mean).abs() < 1e-9);
    }

    /// Contrast enhancement with k ≥ 1 never lowers any channel, and the
    /// clipped-pixel count matches a direct recount.
    #[test]
    fn contrast_enhancement_monotone(
        pixels in proptest::collection::vec(any::<[u8; 3]>(), 16..64),
        k in 1.0f32..4.0,
    ) {
        let w = pixels.len() as u32;
        let frame = Frame::from_rgb_buffer(w, 1, pixels.iter().flatten().copied().collect()).unwrap();
        let mut scaled = frame.clone();
        let stats = contrast_enhance(&mut scaled, k);
        let mut recount = 0u64;
        for (a, b) in frame.pixels().zip(scaled.pixels()) {
            prop_assert!(b.r >= a.r && b.g >= a.g && b.b >= a.b);
            let clips = [a.r, a.g, a.b].iter().any(|&c| f32::from(c) * k > 255.0);
            if clips { recount += 1; }
        }
        prop_assert_eq!(stats.clipped_pixels, recount);
    }

    /// The transfer-function inverse never under-drives, for arbitrary
    /// curve parameters and targets.
    #[test]
    fn transfer_inverse_never_underdrives(
        a in 0.2f64..6.0,
        gamma in 0.4f64..3.0,
        target in 0.0f64..=1.0,
    ) {
        for f in [TransferFunction::SaturatingExp { a }, TransferFunction::Gamma { gamma }] {
            let level = f.level_for_luminance(target);
            prop_assert!(f.luminance(level) + 1e-12 >= target, "{f:?} target {target}");
        }
    }

    /// Annotation tracks round-trip through the RLE wire format: the
    /// per-frame level sequence is preserved exactly.
    #[test]
    fn track_wire_roundtrip(
        raw_entries in proptest::collection::vec(
            (1u32..40, any::<u8>(), 1.0f32..4.0, any::<u8>()), 1..24),
    ) {
        // Build strictly increasing start frames from the gaps.
        let mut start = 0u32;
        let mut entries = Vec::new();
        for (gap, backlight, k, eff) in raw_entries {
            entries.push(AnnotationEntry {
                start_frame: start,
                backlight: BacklightLevel(backlight),
                compensation: k,
                effective_max_luma: eff,
            });
            start += gap;
        }
        let frame_count = start.max(entries.last().unwrap().start_frame + 1);
        let track = AnnotationTrack::new(
            "dev", QualityLevel::Q10, AnnotationMode::PerScene, 12.0, frame_count, entries,
        ).unwrap();
        let decoded = AnnotationTrack::from_rle_bytes(&track.to_rle_bytes()).unwrap();
        prop_assert_eq!(decoded.frame_count(), track.frame_count());
        for f in 0..frame_count {
            let a = track.entry_at(f).unwrap();
            let b = decoded.entry_at(f).unwrap();
            prop_assert_eq!(a.backlight, b.backlight, "frame {}", f);
            prop_assert_eq!(a.effective_max_luma, b.effective_max_luma);
            prop_assert!((a.compensation - b.compensation).abs() <= 1.0 / 256.0 + 1e-6);
        }
    }

    /// Planning is sane for every device and effective max: k ≥ 1, savings
    /// in [0, 1), and brighter scenes never get dimmer backlight.
    #[test]
    fn planning_monotone_in_effective_max(e1 in 1u8..255, e2 in 1u8..255) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        for device in DeviceProfile::paper_devices() {
            let (k_lo, b_lo) = plan_levels(&device, lo);
            let (k_hi, b_hi) = plan_levels(&device, hi);
            prop_assert!(k_lo >= 1.0 && k_hi >= 1.0);
            prop_assert!(b_lo <= b_hi, "{}: {lo}→{b_lo:?} vs {hi}→{b_hi:?}", device.name());
            prop_assert!(k_lo + 1e-6 >= k_hi, "darker scenes need more compensation");
        }
    }

    /// Exp-Golomb bit I/O round-trips arbitrary interleaved values.
    #[test]
    fn bitio_roundtrip(values in proptest::collection::vec(any::<i32>(), 0..64)) {
        use annolight::codec::bitio::{BitReader, BitWriter};
        let mut w = BitWriter::new();
        for &v in &values {
            // keep magnitudes in the sane coding range
            let v = v % 100_000;
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            let v = v % 100_000;
            prop_assert_eq!(r.get_se().unwrap(), v);
        }
    }

    /// Intra coding round-trips arbitrary frames within a PSNR floor.
    #[test]
    fn intra_coding_psnr_floor(seed in any::<u64>()) {
        use annolight::codec::picture::{decode_intra, encode_intra};
        use annolight::codec::quant::QScale;
        // A deterministic pseudo-random smooth-ish frame from the seed.
        let frame = Frame::from_fn(32, 32, |x, y| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(u64::from(x / 4 + (y / 4) * 64));
            let v = (h >> 32) as u8;
            [v, v, v]
        });
        let yuv = frame.to_yuv420().unwrap();
        let coded = encode_intra(&yuv, QScale::new(4));
        let decoded = decode_intra(&coded.bytes, 32, 32).unwrap();
        let p = annolight::codec::psnr_luma(&yuv, &decoded);
        prop_assert!(p > 24.0, "PSNR {}", p);
    }
}
