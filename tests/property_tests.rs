//! Property-based tests over the workspace's core invariants, running on
//! the in-tree `annolight_support::check` harness (seeded, deterministic,
//! replayable — see `crates/support/src/check.rs`).

use annolight::core::plan::plan_levels;
use annolight::core::track::{AnnotationEntry, AnnotationMode, AnnotationTrack};
use annolight::core::QualityLevel;
use annolight::display::{BacklightLevel, DeviceProfile, TransferFunction};
use annolight::imgproc::{contrast_enhance, Frame, Histogram};

annolight_support::check! {
    /// The clipping budget is never exceeded, for any histogram and any
    /// quality fraction.
    fn clip_level_respects_budget(g) {
        let samples = g.vec(1..512usize, |g| g.any::<u8>());
        let quality: f64 = g.draw(0.0f64..=0.5);
        let hist = Histogram::from_samples(samples.iter().copied());
        let level = hist.clip_level(quality);
        assert!(hist.fraction_above(level) <= quality + 1e-12);
        // And one level lower would clip more than `level` does (tightness
        // in the sense that the chosen level is the smallest admissible).
        if level > 0 {
            let lower = level - 1;
            let budget = (quality * hist.total() as f64).floor() as u64;
            assert!(hist.count_above(lower) > budget);
        }
    }

    /// Histogram totals and means are consistent under merge.
    fn histogram_merge_consistency(g) {
        let a = g.vec(1..256usize, |g| g.any::<u8>());
        let b = g.vec(1..256usize, |g| g.any::<u8>());
        let ha = Histogram::from_samples(a.iter().copied());
        let hb = Histogram::from_samples(b.iter().copied());
        let mut merged = ha.clone();
        merged.merge(&hb);
        assert_eq!(merged.total(), ha.total() + hb.total());
        let expected_mean = (ha.mean() * ha.total() as f64 + hb.mean() * hb.total() as f64)
            / merged.total() as f64;
        assert!((merged.mean() - expected_mean).abs() < 1e-9);
    }

    /// Contrast enhancement with k ≥ 1 never lowers any channel, and the
    /// clipped-pixel count matches a direct recount.
    fn contrast_enhancement_monotone(g) {
        let pixels = g.vec(16..64usize, |g| g.any::<[u8; 3]>());
        let k: f32 = g.draw(1.0f32..4.0);
        let w = pixels.len() as u32;
        let frame = Frame::from_rgb_buffer(w, 1, pixels.iter().flatten().copied().collect()).unwrap();
        let mut scaled = frame.clone();
        let stats = contrast_enhance(&mut scaled, k);
        let mut recount = 0u64;
        for (a, b) in frame.pixels().zip(scaled.pixels()) {
            assert!(b.r >= a.r && b.g >= a.g && b.b >= a.b);
            let clips = [a.r, a.g, a.b].iter().any(|&c| f32::from(c) * k > 255.0);
            if clips { recount += 1; }
        }
        assert_eq!(stats.clipped_pixels, recount);
    }

    /// The transfer-function inverse never under-drives, for arbitrary
    /// curve parameters and targets.
    fn transfer_inverse_never_underdrives(g) {
        let a: f64 = g.draw(0.2f64..6.0);
        let gamma: f64 = g.draw(0.4f64..3.0);
        let target: f64 = g.draw(0.0f64..=1.0);
        for f in [TransferFunction::SaturatingExp { a }, TransferFunction::Gamma { gamma }] {
            let level = f.level_for_luminance(target);
            assert!(f.luminance(level) + 1e-12 >= target, "{f:?} target {target}");
        }
    }

    /// Annotation tracks round-trip through the RLE wire format: the
    /// per-frame level sequence is preserved exactly.
    fn track_wire_roundtrip(g) {
        let raw_entries = g.vec(1..24usize, |g| {
            (g.draw(1u32..40), g.any::<u8>(), g.draw(1.0f32..4.0), g.any::<u8>())
        });
        // Build strictly increasing start frames from the gaps.
        let mut start = 0u32;
        let mut entries = Vec::new();
        for (gap, backlight, k, eff) in raw_entries {
            entries.push(AnnotationEntry {
                start_frame: start,
                backlight: BacklightLevel(backlight),
                compensation: k,
                effective_max_luma: eff,
            });
            start += gap;
        }
        let frame_count = start.max(entries.last().unwrap().start_frame + 1);
        let track = AnnotationTrack::new(
            "dev", QualityLevel::Q10, AnnotationMode::PerScene, 12.0, frame_count, entries,
        ).unwrap();
        let decoded = AnnotationTrack::from_rle_bytes(&track.to_rle_bytes()).unwrap();
        assert_eq!(decoded.frame_count(), track.frame_count());
        for f in 0..frame_count {
            let a = track.entry_at(f).unwrap();
            let b = decoded.entry_at(f).unwrap();
            assert_eq!(a.backlight, b.backlight, "frame {f}");
            assert_eq!(a.effective_max_luma, b.effective_max_luma);
            assert!((a.compensation - b.compensation).abs() <= 1.0 / 256.0 + 1e-6);
        }
    }

    /// Planning is sane for every device and effective max: k ≥ 1, savings
    /// in [0, 1), and brighter scenes never get dimmer backlight.
    fn planning_monotone_in_effective_max(g) {
        let e1: u8 = g.draw(1u8..255);
        let e2: u8 = g.draw(1u8..255);
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        for device in DeviceProfile::paper_devices() {
            let (k_lo, b_lo) = plan_levels(&device, lo);
            let (k_hi, b_hi) = plan_levels(&device, hi);
            assert!(k_lo >= 1.0 && k_hi >= 1.0);
            assert!(b_lo <= b_hi, "{}: {lo}→{b_lo:?} vs {hi}→{b_hi:?}", device.name());
            assert!(k_lo + 1e-6 >= k_hi, "darker scenes need more compensation");
        }
    }

    /// Exp-Golomb bit I/O round-trips arbitrary interleaved values.
    fn bitio_roundtrip(g) {
        use annolight::codec::bitio::{BitReader, BitWriter};
        let values = g.vec(0..64usize, |g| g.any::<i32>());
        let mut w = BitWriter::new();
        for &v in &values {
            // keep magnitudes in the sane coding range
            let v = v % 100_000;
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            let v = v % 100_000;
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    /// Intra coding round-trips arbitrary frames within a PSNR floor.
    fn intra_coding_psnr_floor(g) {
        use annolight::codec::picture::{decode_intra, encode_intra};
        use annolight::codec::quant::QScale;
        let seed = g.any::<u64>();
        // A deterministic pseudo-random smooth-ish frame from the seed.
        let frame = Frame::from_fn(32, 32, |x, y| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(u64::from(x / 4 + (y / 4) * 64));
            let v = (h >> 32) as u8;
            [v, v, v]
        });
        let yuv = frame.to_yuv420().unwrap();
        let coded = encode_intra(&yuv, QScale::new(4));
        let decoded = decode_intra(&coded.bytes, 32, 32).unwrap();
        let p = annolight::codec::psnr_luma(&yuv, &decoded);
        assert!(p > 24.0, "PSNR {p}");
    }
}
