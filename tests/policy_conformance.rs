//! Differential policy-conformance tier.
//!
//! Locks the policy-trait refactor from the outside: a fixed matrix of
//! seeds × clip classes × devices is pushed through **every**
//! [`PolicyKind`] backend and the tier asserts, per cell,
//!
//! * **peak-clip byte-identity** — `compute_policy(PeakClip)` and the
//!   policy-threaded [`Annotator`] reproduce the legacy
//!   `compute`/`compute_parallel` planner and its annotation track
//!   byte-for-byte, so the refactor cannot have moved the reference;
//! * **worker-count identity** — every backend plans byte-identically
//!   at workers {0, 1, 2, 4, 7} (serial inline, degenerate pool, and
//!   non-dividing chunk counts);
//! * **HEBS ordering** — the equalised remap is monotone, dominates the
//!   plain contrast stretch pointwise, and never selects a *brighter*
//!   backlight than peak-clip for the same scene;
//! * **spatial-scale consistency** — the served stream geometry follows
//!   [`spatial_decision`] exactly: quarter-size bytes when half
//!   resolution is priced cheaper by the margin, byte-identical to the
//!   peak-clip stream otherwise, and `use_half` is only ever granted
//!   when the priced half-resolution energy actually clears the margin.
//!
//! When `ANNOLIGHT_POLICY_LOG` names a file, the matrix test also
//! writes one digest line per (clip, device, policy) cell. CI runs the
//! tier twice and `cmp`s the two logs: a byte-equal log across
//! *processes* proves the plans carry no ASLR/iteration-order artefacts
//! that in-process double-runs can miss.

use annolight::core::digest::fnv1a_64;
use annolight::core::{
    Annotator, BacklightPlan, LuminanceProfile, ParallelConfig, PolicyKind, QualityLevel,
    SceneDetector, SPATIAL_MARGIN,
};
use annolight::display::DeviceProfile;
use annolight::stream::{resolution_cost, run_session, spatial_decision, SessionConfig};
use annolight::video::{Clip, ClipLibrary, ClipSpec, ContentKind, SceneSpec};
use annolight_support::json::to_string;

const SEEDS: [u64; 3] = [1, 42, 0xA110];
const WORKERS: [usize; 5] = [0, 1, 2, 4, 7];
const QUALITY: QualityLevel = QualityLevel::Q10;

fn devices() -> [DeviceProfile; 2] {
    [DeviceProfile::ipaq_5555(), DeviceProfile::zaurus_sl5600()]
}

/// One synthetic clip per content class. Dimensions are chosen to cover
/// the spatial-scaling support matrix: `dark` (64×64) and `mixed`
/// (64×32) halve to codec-legal sizes, `bright` (48×48) does not
/// (48/2 = 24 is not a macroblock multiple), pinning the
/// `half_supported` gate from both sides.
fn synthetic(class: &str, seed: u64) -> Clip {
    let (width, height, scenes) = match class {
        "dark" => (
            64,
            64,
            vec![
                SceneSpec::new(
                    ContentKind::Dark {
                        base: 38,
                        spread: 12,
                        highlight_fraction: 0.01,
                        highlight: 245,
                    },
                    1.5,
                ),
                SceneSpec::new(
                    ContentKind::Credits { text: 230, background: 12, density: 0.04 },
                    1.0,
                ),
            ],
        ),
        "bright" => (
            48,
            48,
            vec![
                SceneSpec::new(ContentKind::Bright { base: 208, spread: 18 }, 1.5),
                SceneSpec::new(ContentKind::GradientPan { lo: 120, hi: 250, speed: 2 }, 1.0),
            ],
        ),
        "mixed" => (
            64,
            32,
            vec![
                SceneSpec::new(
                    ContentKind::Mid { base: 110, spread: 30, highlight_fraction: 0.02 },
                    1.0,
                ),
                SceneSpec::new(
                    ContentKind::Dark {
                        base: 45,
                        spread: 14,
                        highlight_fraction: 0.02,
                        highlight: 235,
                    },
                    1.0,
                ),
                SceneSpec::new(ContentKind::Fade { from: 20, to: 200 }, 1.0),
            ],
        ),
        other => panic!("unknown clip class {other}"),
    };
    Clip::new(ClipSpec {
        name: format!("conf-{class}-{seed:x}"),
        width,
        height,
        fps: 12.0,
        seed,
        scenes,
    })
    .expect("conformance spec is valid")
}

/// The full conformance clip set: every class × seed, plus two library
/// previews (a dark trailer and a bright cartoon) so the matrix also
/// covers the paper's own content.
fn conformance_clips() -> Vec<Clip> {
    let mut clips = Vec::new();
    for class in ["dark", "bright", "mixed"] {
        for seed in SEEDS {
            clips.push(synthetic(class, seed));
        }
    }
    for name in ["themovie", "ice_age"] {
        clips.push(ClipLibrary::paper_clip(name).expect("library clip").preview(3.0));
    }
    clips
}

#[test]
fn peak_clip_is_byte_identical_to_the_legacy_planner() {
    for clip in conformance_clips() {
        let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
        let spans = SceneDetector::default().detect(&profile);
        for device in devices() {
            let legacy = to_string(&BacklightPlan::compute(&profile, &spans, &device, QUALITY));
            for workers in WORKERS {
                let cfg = ParallelConfig::with_workers(workers);
                let via_policy = BacklightPlan::compute_policy(
                    &profile,
                    &spans,
                    &device,
                    QUALITY,
                    PolicyKind::PeakClip,
                    &cfg,
                );
                assert_eq!(
                    legacy,
                    to_string(&via_policy),
                    "{}/{}: PeakClip@{workers}w diverged from the legacy planner",
                    clip.name(),
                    device.name()
                );
            }

            // The annotator front-end: an explicit `.with_policy(PeakClip)`
            // must reproduce the default annotator's track byte-for-byte.
            let default_track = Annotator::new(device.clone(), QUALITY)
                .annotate_profile(&profile)
                .expect("annotation succeeds")
                .track()
                .to_rle_bytes();
            let policy_track = Annotator::new(device.clone(), QUALITY)
                .with_policy(PolicyKind::PeakClip)
                .annotate_profile(&profile)
                .expect("annotation succeeds")
                .track()
                .to_rle_bytes();
            assert_eq!(
                default_track,
                policy_track,
                "{}/{}: explicit PeakClip track differs from the default annotator",
                clip.name(),
                device.name()
            );
        }
    }
}

#[test]
fn every_policy_plans_byte_identically_across_worker_counts() {
    // Also the digest exporter: one line per (clip, device, policy)
    // with the FNV-1a digest of the serial plan. With
    // ANNOLIGHT_POLICY_LOG set, CI compares the file across two
    // *separate* test processes.
    let mut log = String::new();
    for clip in conformance_clips() {
        let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
        let spans = SceneDetector::default().detect(&profile);
        for device in devices() {
            for policy in PolicyKind::ALL {
                let serial = to_string(&BacklightPlan::compute_policy(
                    &profile,
                    &spans,
                    &device,
                    QUALITY,
                    policy,
                    &ParallelConfig::serial(),
                ));
                for workers in WORKERS {
                    let plan = BacklightPlan::compute_policy(
                        &profile,
                        &spans,
                        &device,
                        QUALITY,
                        policy,
                        &ParallelConfig::with_workers(workers),
                    );
                    assert_eq!(
                        serial,
                        to_string(&plan),
                        "{}/{}/{}: plan not byte-identical at {workers} workers",
                        clip.name(),
                        device.name(),
                        policy.name()
                    );
                }
                log.push_str(&format!(
                    "{} {} {} {:016x}\n",
                    clip.name(),
                    device.name(),
                    policy.name(),
                    fnv1a_64(serial.as_bytes())
                ));
            }
        }
    }
    if let Ok(path) = std::env::var("ANNOLIGHT_POLICY_LOG") {
        if !path.is_empty() {
            std::fs::write(&path, &log).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        }
    }
}

#[test]
fn hebs_remap_is_monotone_dominates_stretch_and_never_dims_less() {
    for clip in conformance_clips() {
        let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
        let spans = SceneDetector::default().detect(&profile);
        for device in devices() {
            let serial = ParallelConfig::serial();
            let peak = BacklightPlan::compute_policy(
                &profile,
                &spans,
                &device,
                QUALITY,
                PolicyKind::PeakClip,
                &serial,
            );
            let hebs = BacklightPlan::compute_policy(
                &profile,
                &spans,
                &device,
                QUALITY,
                PolicyKind::Hebs,
                &serial,
            );
            for (p, h) in peak.scenes().iter().zip(hebs.scenes().iter()) {
                assert_eq!(p.span, h.span);
                // Same clipping budget spent, so the planner-level quality
                // degradation is identical...
                assert_eq!(p.effective_max_luma, h.effective_max_luma);
                assert!((p.clipped_fraction - h.clipped_fraction).abs() < 1e-12);
                // ...but equalisation may only ever dim *further*.
                assert!(
                    h.backlight <= p.backlight,
                    "{}/{} scene {:?}: hebs backlight {:?} brighter than peak-clip {:?}",
                    clip.name(),
                    device.name(),
                    h.span,
                    h.backlight,
                    p.backlight
                );

                let hist = profile.merged_histogram(h.span.start, h.span.end);
                let lut = PolicyKind::Hebs
                    .policy()
                    .scene_remap(&hist, QUALITY)
                    .expect("HEBS always remaps");
                let mut prev = lut.value(0);
                for v in 1..=255u8 {
                    let cur = lut.value(v);
                    assert!(
                        cur >= prev,
                        "{}: remap not monotone at {v}: {cur} < {prev}",
                        clip.name()
                    );
                    assert!(
                        cur >= lut.stretch_value(v),
                        "{}: remap below contrast stretch at {v}",
                        clip.name()
                    );
                    prev = cur;
                }
            }
        }
    }
}

#[test]
fn spatial_scale_streams_track_the_resolution_decision() {
    // One clip per class (seed 42) plus the two library previews: runs
    // full sessions, so the set is kept small while still covering both
    // sides of the half_supported gate.
    let clips: Vec<Clip> = vec![
        synthetic("dark", 42),
        synthetic("bright", 42),
        synthetic("mixed", 42),
        ClipLibrary::paper_clip("themovie").expect("library clip").preview(3.0),
        ClipLibrary::paper_clip("ice_age").expect("library clip").preview(3.0),
    ];
    let mut halved = 0;
    let mut full = 0;
    for clip in clips {
        let cfg = SessionConfig::new(clip.clone(), QUALITY);
        let (w, h) = (clip.spec().width, clip.spec().height);
        let cost = resolution_cost(w, h, clip.frame_count(), clip.fps(), &cfg.channel, &cfg.system);
        let decision = spatial_decision(
            PolicyKind::SpatialScale,
            w,
            h,
            clip.frame_count(),
            clip.fps(),
            &cfg.channel,
            &cfg.system,
        );
        // The decision may only grant `use_half` when the downscale is
        // codec-legal *and* the priced energy clears the margin.
        if decision.use_half {
            assert!(cost.half_supported, "{}: halved an unsupported geometry", clip.name());
            assert!(
                decision.half_energy_j < decision.full_energy_j * (1.0 - SPATIAL_MARGIN),
                "{}: use_half granted without clearing the margin",
                clip.name()
            );
        }
        if !cost.half_supported {
            assert!(!decision.use_half, "{}: use_half despite unsupported geometry", clip.name());
        }

        let peak = run_session(SessionConfig::new(clip.clone(), QUALITY)).expect("session");
        let spatial = run_session(
            SessionConfig::new(clip.clone(), QUALITY).with_policy(PolicyKind::SpatialScale),
        )
        .expect("session");
        assert_eq!(spatial.playback.frames, peak.playback.frames, "{}", clip.name());
        assert!(spatial.playback.annotated, "{}", clip.name());
        if decision.use_half {
            halved += 1;
            assert!(
                spatial.stream_bytes * 2 < peak.stream_bytes,
                "{}: use_half but stream only shrank {} -> {}",
                clip.name(),
                peak.stream_bytes,
                spatial.stream_bytes
            );
        } else {
            full += 1;
            assert_eq!(
                spatial.stream_bytes,
                peak.stream_bytes,
                "{}: full-resolution spatial stream must match peak-clip byte count",
                clip.name()
            );
        }
    }
    // Coverage guard: the clip set must exercise both branches.
    assert!(halved > 0, "no clip selected half resolution");
    assert!(full > 0, "no clip stayed at full resolution");
}

#[test]
fn policy_wire_ids_round_trip() {
    for policy in PolicyKind::ALL {
        assert_eq!(PolicyKind::from_id(policy.id()), Some(policy));
        let json = to_string(&policy);
        let back: PolicyKind = annolight_support::json::from_str(&json).expect("valid json");
        assert_eq!(back, policy);
    }
    assert_eq!(PolicyKind::from_id(3), None);
}
