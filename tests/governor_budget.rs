//! Tier-2 energy-budget conformance suite: "fit this playback into N
//! joules".
//!
//! A seeded scenario matrix of governed sessions — dark and bright clip
//! classes × loose/median/tight joule budgets × ambient-sensor seeds.
//! The contract under test, end to end:
//!
//! * **budget compliance** — every feasible cell lands within its
//!   effective budget (battery-derated), with the governor degrading
//!   exactly as far as the budget demands;
//! * **bounded quality error** — the perceived-quality error the
//!   governor admits stays bounded in every cell, and is zero when the
//!   budget never forces a knob below the request;
//! * **infeasible budgets degrade gracefully** — a budget below the
//!   floor-knob projection pins best effort, still plays every scene,
//!   and says so (`infeasible`);
//! * **trace identity** — identical seeds replay byte-identical
//!   governor traces, the property the CI determinism guard
//!   double-runs.
//!
//! Set `ANNOLIGHT_GOVERNOR_LOG=/path` to export the canonical decision
//! log as JSON (the CI script runs the suite twice and `cmp`s the two
//! files).

use annolight::core::governor::GovernorAction;
use annolight::core::QualityLevel;
use annolight::stream::{
    governed_projections, run_session_governed, GovernedSessionReport, GovernorSessionConfig,
    SessionConfig,
};
use annolight::video::{Clip, ClipLibrary};

const SEEDS: [u64; 3] = [1, 42, 0xA110];

/// Budget pressure as a fraction of the span between the floor-knob and
/// full-quality projections: loose, median, tight.
const BUDGET_FRACS: [f64; 3] = [0.9, 0.5, 0.08];

/// One dark and one bright clip class (the governor's headroom differs
/// by an order of magnitude between them).
const CLIPS: [&str; 2] = ["themovie", "shrek2"];

fn clip(name: &str) -> Clip {
    // Long enough for several scenes — the improvement side of the
    // hysteresis needs the knob to dwell before stepping back up.
    ClipLibrary::paper_clip(name).expect("known paper clip").preview(16.0)
}

fn governed(clip_name: &str, budget_j: f64, seed: u64) -> GovernorSessionConfig {
    GovernorSessionConfig::new(SessionConfig::new(clip(clip_name), QualityLevel::Q10), budget_j)
        .with_ambient_seed(seed)
}

/// The per-knob whole-session projections for a clip, and the budget at
/// `frac` of the way from the floor-knob total to the full-quality
/// total — always feasible, increasingly tight as `frac` shrinks.
fn ladder_and_budget(clip_name: &str, frac: f64) -> (Vec<f64>, f64) {
    let ladder =
        governed_projections(&governed(clip_name, 0.0, 0)).expect("projection ladder");
    let floor = *ladder.last().expect("non-empty ladder");
    let budget = floor + frac * (ladder[0] - floor);
    (ladder, budget)
}

#[test]
fn budget_matrix_always_lands_within_budget_with_bounded_quality_error() {
    let mut degraded_cells = 0u32;
    let mut improved_cells = 0u32;
    for clip_name in CLIPS {
        for frac in BUDGET_FRACS {
            let (ladder, budget) = ladder_and_budget(clip_name, frac);
            for seed in SEEDS {
                let r = run_session_governed(governed(clip_name, budget, seed))
                    .unwrap_or_else(|e| panic!("{clip_name} frac {frac} seed {seed}: {e}"));
                let cell = format!("{clip_name} frac {frac} seed {seed}");
                // Budget compliance: feasible by construction, so the
                // governor must land inside it.
                assert!(!r.infeasible, "{cell}: feasible budget reported infeasible");
                assert!(
                    r.within_budget && r.total_j <= r.effective_budget_j + 1e-9,
                    "{cell}: spent {} of {} J",
                    r.total_j,
                    r.effective_budget_j
                );
                // Every scene's decision fit the remaining budget.
                assert!(r.events.iter().all(|e| e.fits), "{cell}: a scene overshot");
                // Every scene governed, battery never below empty.
                assert_eq!(r.events.len(), r.scenes as usize, "{cell}: scenes");
                assert!(r.final_battery_j >= 0.0);
                // Bounded quality error: never worse than half the
                // backlight range, and zero when nothing ever degraded
                // below the request.
                assert!(
                    r.quality_error <= 0.5,
                    "{cell}: quality error {} unbounded",
                    r.quality_error
                );
                let requested_knob = ladder
                    .iter()
                    .position(|&e| (e - r.requested_energy_j).abs() < 1e-6)
                    .unwrap_or(2) as u32;
                if r.events.iter().all(|e| e.knob <= requested_knob) {
                    assert!(
                        r.quality_error <= f64::EPSILON,
                        "{cell}: error {} without degradation below the request",
                        r.quality_error
                    );
                }
                if r.events.iter().any(|e| e.action == GovernorAction::Degrade) {
                    degraded_cells += 1;
                }
                if r.events.iter().any(|e| e.action == GovernorAction::Improve) {
                    improved_cells += 1;
                }
                // The reference hop has no fault-tier spend.
                assert_eq!(r.retransmit_energy_j, 0.0, "{cell}");
                assert_eq!(r.retransmits, 0, "{cell}");
            }
        }
    }
    // The matrix must exercise both directions of the control law.
    assert!(degraded_cells > 0, "no cell ever degraded — budgets too loose");
    assert!(improved_cells > 0, "no cell ever improved — hysteresis never released");
}

#[test]
fn tight_budgets_spend_less_than_loose_ones() {
    for clip_name in CLIPS {
        let spend_at = |frac: f64| {
            let (_, budget) = ladder_and_budget(clip_name, frac);
            run_session_governed(governed(clip_name, budget, 42))
                .expect("governed session succeeds")
                .playback_energy_j
        };
        let loose = spend_at(BUDGET_FRACS[0]);
        let tight = spend_at(BUDGET_FRACS[2]);
        assert!(
            tight <= loose + 1e-9,
            "{clip_name}: tight budget spent {tight} > loose {loose}"
        );
    }
}

#[test]
fn infeasible_budget_pins_best_effort_and_still_plays_everything() {
    for clip_name in CLIPS {
        let (ladder, _) = ladder_and_budget(clip_name, 0.5);
        let floor = *ladder.last().unwrap();
        let r = run_session_governed(governed(clip_name, floor * 0.5, 42))
            .expect("governed session succeeds");
        assert!(r.infeasible, "{clip_name}: sub-floor budget must be infeasible");
        assert!(!r.within_budget);
        // Best effort: pinned at the most aggressive knob throughout,
        // every scene still plays.
        let floor_knob = (ladder.len() - 1) as u32;
        assert!(r.events.iter().all(|e| e.knob == floor_knob), "{clip_name}: floor");
        assert_eq!(r.events.len(), r.scenes as usize);
        assert!((r.playback_energy_j - floor).abs() <= floor * 0.01 + 1e-9);
    }
}

#[test]
fn battery_charge_derates_the_budget_below_the_configured_value() {
    let (_, budget) = ladder_and_budget("themovie", 0.9);
    let mut cfg = governed("themovie", budget, 1);
    // A pack holding less than the configured budget: the governor must
    // plan against the charge, not the configuration.
    cfg.battery_fraction = budget * 0.6 / 15_318.0;
    let r = run_session_governed(cfg).expect("governed session succeeds");
    assert!(r.effective_budget_j < r.budget_j, "charge must derate the budget");
    assert!(
        (r.effective_budget_j - budget * 0.6).abs() < 1.0,
        "effective {} vs derated {}",
        r.effective_budget_j,
        budget * 0.6
    );
    if !r.infeasible {
        assert!(r.total_j <= r.effective_budget_j + 1e-9);
    }
}

#[test]
fn non_default_policies_honour_the_budget_and_replay_identically() {
    // The governor pins full resolution (its ladder projections assume
    // fixed stream geometry), but the *planning* backend still follows
    // the session policy — HEBS ladders project less energy than
    // peak-clip, and both alternates must keep every budget guarantee.
    use annolight::core::PolicyKind;
    for policy in [PolicyKind::Hebs, PolicyKind::SpatialScale] {
        for clip_name in CLIPS {
            let governed_with = |budget_j: f64, seed: u64| {
                let mut cfg = governed(clip_name, budget_j, seed);
                cfg.session.policy = policy;
                cfg
            };
            // The budget comes from the policy's *own* ladder, so every
            // cell is feasible by construction.
            let ladder =
                governed_projections(&governed_with(0.0, 0)).expect("projection ladder");
            let floor = *ladder.last().expect("non-empty ladder");
            let budget = floor + 0.5 * (ladder[0] - floor);
            for seed in [SEEDS[0], SEEDS[1]] {
                let cell = format!("{clip_name}/{}/seed {seed}", policy.name());
                let r = run_session_governed(governed_with(budget, seed))
                    .unwrap_or_else(|e| panic!("{cell}: {e}"));
                assert!(!r.infeasible, "{cell}: own-ladder budget must be feasible");
                assert!(
                    r.within_budget && r.total_j <= r.effective_budget_j + 1e-9,
                    "{cell}: spent {} of {} J",
                    r.total_j,
                    r.effective_budget_j
                );
                assert_eq!(r.events.len(), r.scenes as usize, "{cell}: scenes");
                assert!(r.quality_error <= 0.5, "{cell}: quality error unbounded");
                let again = run_session_governed(governed_with(budget, seed))
                    .expect("replay succeeds");
                assert_eq!(r.trace_hex, again.trace_hex, "{cell}: trace must replay");
            }
        }
        // A dimmer planner projects a cheaper ladder: HEBS entrywise at
        // or below peak-clip on the dark clip.
        if policy == PolicyKind::Hebs {
            let peak = ladder_and_budget("themovie", 0.5).0;
            let mut cfg = governed("themovie", 0.0, 0);
            cfg.session.policy = policy;
            let hebs = governed_projections(&cfg).expect("projection ladder");
            assert_eq!(peak.len(), hebs.len());
            for (knob, (p, h)) in peak.iter().zip(hebs.iter()).enumerate() {
                assert!(
                    h <= &(p + 1e-9),
                    "knob {knob}: HEBS ladder {h} J above peak-clip {p} J"
                );
            }
        }
    }
}

/// The canonical deterministic artefact: the full governor decision log
/// of the seeded matrix, as JSON. Identical builds must produce
/// identical bytes; `scripts/ci.sh` runs this twice and `cmp`s the
/// files.
fn governor_log() -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for clip_name in CLIPS {
        for frac in BUDGET_FRACS {
            let (_, budget) = ladder_and_budget(clip_name, frac);
            for seed in SEEDS {
                let r: GovernedSessionReport =
                    run_session_governed(governed(clip_name, budget, seed))
                        .expect("matrix session succeeds");
                let entry = annolight_support::json_obj!({
                    "clip": clip_name,
                    "budget_frac": frac,
                    "seed": seed,
                    "trace_hex": r.trace_hex,
                    "report": r,
                });
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&entry.pretty());
            }
        }
    }
    out.push_str("\n]\n");
    out
}

#[test]
fn governor_traces_replay_byte_identically_and_export_for_ci() {
    let a = governor_log();
    let b = governor_log();
    assert_eq!(a, b, "same seeds must replay byte-identical governor logs in-process");
    if let Ok(path) = std::env::var("ANNOLIGHT_GOVERNOR_LOG") {
        if !path.is_empty() {
            std::fs::write(&path, &a)
                .unwrap_or_else(|e| panic!("writing governor log to {path}: {e}"));
        }
    }
}
