//! Tier-2 robustness suite: fault-injected end-to-end sessions.
//!
//! A seeded matrix of streaming sessions over lossy wireless hops. The
//! contract under test, end to end:
//!
//! * playback **never stalls** — every frame of the clip plays no
//!   matter what the channel does (pictures are retransmitted reliably,
//!   annotation hints degrade gracefully);
//! * the perceived-intensity error the degradation policy admits stays
//!   bounded at realistic loss rates;
//! * with a lossless fault config the faulty path reproduces the plain
//!   [`run_session`] report **byte for byte**;
//! * identical seeds replay identical degradation-event logs, byte for
//!   byte — the property the CI determinism guard double-runs.
//!
//! Set `ANNOLIGHT_FAULT_LOG=/path` to have the suite write the canonical
//! event/fault log as JSON (the CI script runs the suite twice and
//! `cmp`s the two files).

use annolight::core::QualityLevel;
use annolight::stream::{
    governed_projections, run_session, run_session_faulty, run_session_governed,
    run_session_governed_faulty, FaultConfig, GovernorSessionConfig, SessionConfig,
};
use annolight::video::{Clip, ClipLibrary};

const SEEDS: [u64; 3] = [1, 42, 0xA110];
const LOSS_PCT: [f64; 4] = [0.0, 5.0, 10.0, 20.0];

fn test_clip() -> Clip {
    ClipLibrary::paper_clips()
        .into_iter()
        .next()
        .expect("paper clip library is non-empty")
        .preview(3.0)
}

fn config(clip: &Clip, seed: u64, loss_pct: f64) -> SessionConfig {
    let mut config = SessionConfig::new(clip.clone(), QualityLevel::Q10);
    config.faults = if loss_pct == 0.0 {
        FaultConfig::lossless(seed)
    } else {
        FaultConfig::lossy(seed, loss_pct / 100.0)
    };
    config
}

#[test]
fn seeded_loss_matrix_never_stalls_and_bounds_error() {
    let clip = test_clip();
    let frames = {
        let plain = run_session(SessionConfig::new(clip.clone(), QualityLevel::Q10))
            .expect("plain session succeeds");
        plain.playback.frames
    };
    for seed in SEEDS {
        for loss_pct in LOSS_PCT {
            let report = run_session_faulty(config(&clip, seed, loss_pct))
                .unwrap_or_else(|e| panic!("seed {seed} loss {loss_pct}%: {e}"));
            // Never stalls: every frame of the clip plays.
            assert_eq!(
                report.session.playback.frames, frames,
                "seed {seed} loss {loss_pct}%: frame count"
            );
            assert!(report.session.playback.duration_s > 0.0);
            // The degradation policy keeps the perceived-intensity error
            // bounded at every realistic loss rate in the matrix.
            assert!(
                report.perceived_error <= 0.25,
                "seed {seed} loss {loss_pct}%: perceived error {}",
                report.perceived_error
            );
            // Reliable pictures: nothing the channel lost stays lost.
            assert!(
                report.faults.channel.retransmit_failures == 0
                    || report.session.playback.frames == frames,
                "seed {seed} loss {loss_pct}%: lost pictures must fail the session, not corrupt it"
            );
            if loss_pct == 0.0 {
                assert_eq!(report.faults.channel.dropped, 0);
                assert_eq!(report.degraded_frames, 0);
                assert_eq!(report.perceived_error, 0.0);
            }
        }
    }
}

#[test]
fn lossless_faulty_session_matches_plain_session_byte_for_byte() {
    let clip = test_clip();
    let plain = run_session(SessionConfig::new(clip.clone(), QualityLevel::Q10))
        .expect("plain session succeeds");
    for seed in SEEDS {
        let faulty = run_session_faulty(config(&clip, seed, 0.0))
            .expect("lossless faulty session succeeds");
        assert_eq!(
            annolight_support::json::to_string_pretty(&faulty.session),
            annolight_support::json::to_string_pretty(&plain),
            "seed {seed}: lossless fault path must reproduce run_session exactly"
        );
        assert!(faulty.events.is_empty(), "seed {seed}: lossless run logged events");
    }
}

/// A governed session config over the faulty hop at `loss_pct`, with a
/// mid-ladder joule budget (tight enough to exert pressure, loose
/// enough to absorb the fault tier's retransmit debit and full-backlight
/// fallback scenes).
fn governed(clip: &Clip, seed: u64, loss_pct: f64, budget_j: f64) -> GovernorSessionConfig {
    GovernorSessionConfig::new(config(clip, seed, loss_pct), budget_j).with_ambient_seed(seed)
}

fn mid_budget(clip: &Clip) -> f64 {
    let ladder =
        governed_projections(&governed(clip, 0, 0.0, 0.0)).expect("projection ladder");
    let floor = *ladder.last().expect("non-empty ladder");
    floor + 0.6 * (ladder[0] - floor)
}

#[test]
fn governed_lossy_matrix_lands_within_budget_with_retransmits_charged() {
    let clip = test_clip();
    let budget = mid_budget(&clip);
    for seed in SEEDS {
        for loss_pct in [5.0, 10.0, 20.0] {
            let r = run_session_governed_faulty(governed(&clip, seed, loss_pct, budget))
                .unwrap_or_else(|e| panic!("seed {seed} loss {loss_pct}%: {e}"));
            let cell = format!("seed {seed} loss {loss_pct}%");
            // Every scene still governed and played.
            assert_eq!(r.events.len(), r.scenes as usize, "{cell}: scenes");
            // Retransmission energy is charged against the budget, not
            // accounted off the books.
            if r.retransmits > 0 {
                assert!(r.retransmit_energy_j > 0.0, "{cell}: free retransmits");
            }
            assert!(
                (r.total_j - (r.playback_energy_j + r.retransmit_energy_j)).abs() < 1e-9,
                "{cell}: budget accounting leak"
            );
            // The governor absorbs the loss and still lands inside the
            // budget (projections price hint-missing scenes at full
            // backlight, and the debit happens before scene 0).
            assert!(!r.infeasible, "{cell}: mid-ladder budget must stay feasible");
            assert!(
                r.within_budget,
                "{cell}: spent {} of {} J ({} J retransmit)",
                r.total_j,
                r.effective_budget_j,
                r.retransmit_energy_j
            );
            assert!(r.quality_error <= 0.5, "{cell}: quality error {}", r.quality_error);
        }
    }
}

#[test]
fn zero_fault_governed_trace_is_byte_identical_to_reference() {
    let clip = test_clip();
    let budget = mid_budget(&clip);
    let reference = {
        let mut cfg = governed(&clip, 7, 0.0, budget);
        cfg.session.faults = FaultConfig::default();
        run_session_governed(cfg).expect("reference governed session succeeds")
    };
    for seed in SEEDS {
        // Same ambient sensor stream; only the (lossless, hence inert)
        // channel seed varies — no channel randomness may reach the
        // governor.
        let faulty = run_session_governed_faulty(
            governed(&clip, seed, 0.0, budget).with_ambient_seed(7),
        )
        .expect("lossless governed session succeeds");
        assert_eq!(
            annolight_support::json::to_string_pretty(&faulty),
            annolight_support::json::to_string_pretty(&reference),
            "seed {seed}: zero-fault governed path must reproduce the reference byte for byte"
        );
    }
}

/// The canonical deterministic artefact: the full event/fault log of the
/// seeded matrix, as JSON. Identical builds must produce identical
/// bytes; `scripts/ci.sh` runs this twice and `cmp`s the files.
fn matrix_log() -> String {
    let clip = test_clip();
    let mut out = String::from("[\n");
    let mut first = true;
    for seed in SEEDS {
        for loss_pct in LOSS_PCT {
            let report = run_session_faulty(config(&clip, seed, loss_pct))
                .expect("matrix session succeeds");
            let entry = annolight_support::json_obj!({
                "seed": seed,
                "loss_pct": loss_pct,
                "faults": report.faults,
                "events": report.events,
                "degraded_frames": report.degraded_frames,
                "perceived_error": report.perceived_error,
            });
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&entry.pretty());
        }
    }
    out.push_str("\n]\n");
    out
}

#[test]
fn event_logs_replay_byte_identically_and_export_for_ci() {
    let a = matrix_log();
    let b = matrix_log();
    assert_eq!(a, b, "same seeds must replay byte-identical logs in-process");
    if let Ok(path) = std::env::var("ANNOLIGHT_FAULT_LOG") {
        if !path.is_empty() {
            std::fs::write(&path, &a)
                .unwrap_or_else(|e| panic!("writing fault log to {path}: {e}"));
        }
    }
}

#[test]
fn retransmit_energy_is_charged_and_reported_consistently() {
    let clip = test_clip();
    let report =
        run_session_faulty(config(&clip, 42, 20.0)).expect("lossy session succeeds");
    let faults = &report.faults;
    if faults.channel.retransmits > 0 {
        assert!(faults.retransmit_energy_j > 0.0, "retransmissions must cost energy");
        let charged = report
            .session
            .energy_breakdown
            .get("wnic_retransmit")
            .copied()
            .expect("breakdown carries the retransmit component");
        assert!(
            (charged - faults.retransmit_energy_j).abs() < 1e-12,
            "breakdown ({charged}) and fault report ({}) must agree",
            faults.retransmit_energy_j
        );
    } else {
        assert_eq!(faults.retransmit_energy_j, 0.0);
        assert!(!report.session.energy_breakdown.contains_key("wnic_retransmit"));
    }
}
