//! End-to-end integration: the full paper pipeline across all crates.

use annolight::codec::{Decoder, EncoderConfig};
use annolight::core::track::{AnnotationMode, AnnotationTrack};
use annolight::core::QualityLevel;
use annolight::display::DeviceProfile;
use annolight::power::SystemPowerModel;
use annolight::stream::{run_session, MediaServer, PlaybackClient, ServeRequest, SessionConfig};
use annolight::video::ClipLibrary;

fn preview(name: &str, seconds: f64) -> annolight::video::Clip {
    ClipLibrary::paper_clip(name).expect("library clip").preview(seconds)
}

#[test]
fn serve_and_play_every_paper_device() {
    let clip = preview("themovie", 3.0);
    for device in DeviceProfile::paper_devices() {
        let mut server = MediaServer::new(EncoderConfig::default());
        server.add_clip(clip.clone());
        let served = server
            .serve(&ServeRequest {
                clip_name: clip.name().into(),
                device: device.clone(),
                quality: QualityLevel::Q10,
                mode: AnnotationMode::PerScene,
                dvfs: false,
                policy: annolight::core::PolicyKind::PeakClip,
            })
            .expect("serve succeeds");
        let client = PlaybackClient::new(device.clone(), SystemPowerModel::ipaq_5555());
        let report = client.play(&served.stream, None).expect("playback succeeds");
        assert!(report.annotated, "{}", device.name());
        assert_eq!(report.frames, clip.frame_count());
        assert!(report.total_savings() > 0.0, "{}", device.name());
    }
}

#[test]
fn session_is_deterministic() {
    let a = run_session(SessionConfig::new(preview("spiderman2", 3.0), QualityLevel::Q10)).unwrap();
    let b = run_session(SessionConfig::new(preview("spiderman2", 3.0), QualityLevel::Q10)).unwrap();
    assert_eq!(a.stream_bytes, b.stream_bytes);
    assert_eq!(a.annotation_bytes, b.annotation_bytes);
    assert!((a.playback.energy_j - b.playback.energy_j).abs() < 1e-9);
}

#[test]
fn annotations_survive_the_whole_pipeline_byte_exact() {
    // The track the server computes must arrive at the client unchanged
    // through encode → packetise → reassemble → decode.
    let clip = preview("catwoman", 3.0);
    let mut server = MediaServer::new(EncoderConfig::default());
    server.add_clip(clip.clone());
    let served = server
        .serve(&ServeRequest {
            clip_name: clip.name().into(),
            device: DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q5,
            mode: AnnotationMode::PerScene,
            dvfs: false,
            policy: annolight::core::PolicyKind::PeakClip,
        })
        .unwrap();
    let sent = served.track.to_rle_bytes();

    let roundtripped =
        annolight::codec::EncodedStream::from_bytes(served.stream.as_bytes().to_vec()).unwrap();
    let dec = Decoder::new(&roundtripped).unwrap();
    assert_eq!(&dec.user_data()[0][..], &sent[..], "track bytes must be identical");

    let track = AnnotationTrack::from_rle_bytes(&dec.user_data()[0]).unwrap();
    assert_eq!(track.quality(), QualityLevel::Q5);
}

#[test]
fn per_frame_mode_plays_end_to_end() {
    let clip = preview("i_robot", 3.0);
    let mut server = MediaServer::new(EncoderConfig::default());
    server.add_clip(clip.clone());
    let served = server
        .serve(&ServeRequest {
            clip_name: clip.name().into(),
            device: DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q10,
            mode: AnnotationMode::PerFrame,
            dvfs: false,
            policy: annolight::core::PolicyKind::PeakClip,
        })
        .unwrap();
    let client = PlaybackClient::new(DeviceProfile::ipaq_5555(), SystemPowerModel::ipaq_5555());
    let report = client.play(&served.stream, None).unwrap();
    assert!(report.annotated);
    assert!(report.total_savings() > 0.0);
}

#[test]
fn quality_sweep_monotone_through_full_pipeline() {
    let mut last = -1.0;
    for q in QualityLevel::PAPER_LEVELS {
        let r = run_session(SessionConfig::new(preview("returnoftheking", 3.0), q)).unwrap();
        let s = r.playback.total_savings();
        assert!(s + 1e-9 >= last, "savings decreased at {q:?}: {s} < {last}");
        last = s;
    }
    assert!(last > 0.05, "top quality level should show real savings, got {last}");
}

#[test]
fn bright_clip_saves_little_dark_clip_saves_much() {
    let dark = run_session(SessionConfig::new(preview("themovie", 4.0), QualityLevel::Q20))
        .unwrap()
        .playback
        .total_savings();
    let bright = run_session(SessionConfig::new(preview("ice_age", 4.0), QualityLevel::Q20))
        .unwrap()
        .playback
        .total_savings();
    assert!(
        dark > bright + 0.04,
        "dark clip ({dark:.3}) should clearly beat bright clip ({bright:.3})"
    );
}
