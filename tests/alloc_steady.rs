//! Allocation-count regression tier for the frame hot path (issue 10).
//!
//! A counting global allocator wraps `System`; a warm steady-state
//! transcode + compensate loop — decode into a reused frame, RGB
//! conversion in place, histogram accumulation into a reused
//! [`Histogram`], LUT compensation in place, YUV conversion in place,
//! re-encode through the encoder's recycled scratch — must perform
//! **zero** heap allocations per frame once the session is warm.
//!
//! The test lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide: a single `#[test]` keeps the
//! counters unpolluted by concurrent harness work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use annolight_codec::{Decoder, Encoder, EncoderConfig};
use annolight_imgproc::{CompensationLut, Frame, Histogram, Yuv420Frame};

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

const W: u32 = 64;
const H: u32 = 48;
const WARMUP_FRAMES: usize = 24;
const MEASURED_FRAMES: usize = 64;

fn source_frame(i: usize) -> Frame {
    Frame::from_fn(W, H, |x, y| {
        let v = x.wrapping_mul(5).wrapping_add(y.wrapping_mul(11)).wrapping_add(i as u32 * 7);
        [(v % 240) as u8, ((v * 3) % 230) as u8, ((v * 5) % 250) as u8]
    })
}

#[test]
fn warm_transcode_and_compensate_allocates_zero_bytes_per_frame() {
    let total = WARMUP_FRAMES + MEASURED_FRAMES;

    // Pre-encode the input stream (allocations here are setup, not
    // steady state).
    let config = EncoderConfig { width: W, height: H, fps: 12.0, ..EncoderConfig::default() };
    let mut src = Encoder::new(config).expect("valid encoder geometry");
    for i in 0..total {
        src.push_frame(&source_frame(i)).expect("frames match geometry");
    }
    let input = src.finish();

    // The warm session: every stage writes into a pre-sized, reused
    // buffer. `reserve_body` pre-sizes the output container so packet
    // appends never grow it mid-loop.
    let mut dec = Decoder::new(&input).expect("input stream parses");
    let mut enc = Encoder::new(config).expect("valid encoder geometry");
    enc.reserve_body(total * (W as usize * H as usize * 3 + 64));
    let lut = CompensationLut::new(1.31);
    let mut hist = Histogram::new();
    let mut yuv = Yuv420Frame::new(W, H).expect("even dimensions");
    let mut rgb = source_frame(0);
    let mut recoded = Yuv420Frame::new(W, H).expect("even dimensions");

    let step = |yuv: &mut Yuv420Frame,
                    rgb: &mut Frame,
                    recoded: &mut Yuv420Frame,
                    hist: &mut Histogram,
                    dec: &mut Decoder,
                    enc: &mut Encoder| {
        assert!(dec.decode_next_yuv_into(yuv).expect("decode succeeds"), "stream has frames");
        yuv.to_rgb_into(rgb).expect("geometry matches");
        rgb.luma_histogram_into(hist);
        lut.apply(rgb);
        rgb.to_yuv420_into(recoded).expect("geometry matches");
        enc.push_yuv_frame(recoded).expect("frames match geometry");
    };

    for _ in 0..WARMUP_FRAMES {
        step(&mut yuv, &mut rgb, &mut recoded, &mut hist, &mut dec, &mut enc);
    }

    let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    for _ in 0..MEASURED_FRAMES {
        step(&mut yuv, &mut rgb, &mut recoded, &mut hist, &mut dec, &mut enc);
    }
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls_before;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;

    assert_eq!(
        (calls, bytes),
        (0, 0),
        "warm steady-state transcode+compensate must not allocate: \
         {calls} allocation calls / {bytes} bytes over {MEASURED_FRAMES} frames \
         ({} bytes/frame)",
        bytes / MEASURED_FRAMES as u64
    );

    // The session still produces a valid stream after the measured
    // window (sanity: the zero-allocation loop did real work).
    let out = enc.finish();
    assert_eq!(out.frame_count(), total as u32);
    let decoded = Decoder::new(&out)
        .expect("output stream parses")
        .decode_all()
        .expect("output stream decodes");
    assert_eq!(decoded.len(), total);
}
