//! Tier-2 determinism suite for the session reactor.
//!
//! The reactor's contract, pinned end to end:
//!
//! * **Seeded schedule replay** — the same seed produces the identical
//!   step-trace digest across two runs *and* across worker counts
//!   (`workers ∈ {1, 4}`): parallel stepping may reorder execution but
//!   never observation.
//! * **Byte-identity to the threaded reference** — a zero-fault
//!   reactor-hosted session serialises byte-for-byte equal to
//!   [`run_session`], and a faulty one to [`run_session_faulty`], for
//!   every seed in the matrix.
//! * **Scale-tier replay** — a mixed lossy/bursty [`ScaleSession`]
//!   fleet replays identical per-session outcome digests.
//!
//! Set `ANNOLIGHT_REACTOR_LOG=/path` to export the canonical schedule +
//! outcome log as JSON (the CI script runs the suite twice and `cmp`s
//! the two files).

use annolight::core::QualityLevel;
use annolight::stream::machine::{ScaleOutcome, ScaleSession, ScaleSpec};
use annolight::stream::{
    governed_projections, run_faulty_sessions_on_reactor, run_governed_faulty_sessions_on_reactor,
    run_governed_sessions_on_reactor, run_session, run_session_faulty, run_session_governed,
    run_session_governed_faulty, run_sessions_on_reactor, FaultConfig, GovernorSessionConfig,
    SessionConfig,
};
use annolight::video::{Clip, ClipLibrary};
use annolight_support::channel;
use annolight_support::reactor::{Reactor, ReactorConfig};
use std::sync::Arc;

const SEEDS: [u64; 3] = [1, 42, 0xA110];

fn test_clip() -> Clip {
    ClipLibrary::paper_clips()
        .into_iter()
        .next()
        .expect("paper clip library is non-empty")
        .preview(2.0)
}

fn faulty_configs(clip: &Clip, seed: u64) -> Vec<SessionConfig> {
    (0..4)
        .map(|i| {
            let mut config = SessionConfig::new(clip.clone(), QualityLevel::Q10);
            config.faults = match i % 3 {
                0 => FaultConfig::lossless(seed ^ i),
                1 => FaultConfig::lossy(seed ^ i, 0.1),
                _ => FaultConfig::bursty(seed ^ i),
            };
            config
        })
        .collect()
}

fn reactor_config(seed: u64, workers: usize) -> ReactorConfig {
    ReactorConfig { seed, workers, ..ReactorConfig::default() }
}

#[test]
fn same_seed_same_digest_across_runs_and_worker_counts() {
    let clip = test_clip();
    for seed in SEEDS {
        let run = |workers: usize| {
            let (reports, reactor) =
                run_faulty_sessions_on_reactor(faulty_configs(&clip, seed), reactor_config(seed, workers));
            let serialized: Vec<String> = reports
                .into_iter()
                .map(|r| annolight_support::json::to_string(&r.expect("session succeeds")))
                .collect();
            (serialized, reactor.digest.value())
        };
        let (r1a, d1a) = run(1);
        let (r1b, d1b) = run(1);
        assert_eq!(d1a, d1b, "seed {seed}: two single-worker runs must share a digest");
        assert_eq!(r1a, r1b, "seed {seed}: two single-worker runs must share reports");
        let (r4, d4) = run(4);
        assert_eq!(d1a, d4, "seed {seed}: digest must be invariant under workers=4");
        assert_eq!(r1a, r4, "seed {seed}: reports must be invariant under workers=4");
    }
    // Different seeds shuffle differently (schedules are seed-driven).
    let digest_of = |seed: u64| {
        run_faulty_sessions_on_reactor(faulty_configs(&clip, seed), reactor_config(seed, 1))
            .1
            .digest
            .value()
    };
    assert_ne!(digest_of(SEEDS[0]), digest_of(SEEDS[1]));
}

#[test]
fn zero_fault_reactor_sessions_match_threaded_reference_byte_for_byte() {
    let clip = test_clip();
    let plain = run_session(SessionConfig::new(clip.clone(), QualityLevel::Q10))
        .expect("plain session succeeds");
    let want = annolight_support::json::to_string_pretty(&plain);
    for seed in SEEDS {
        let (results, _) = run_sessions_on_reactor(
            vec![SessionConfig::new(clip.clone(), QualityLevel::Q10)],
            reactor_config(seed, 1),
        );
        let hosted = results.into_iter().next().unwrap().expect("reactor session succeeds");
        assert_eq!(
            annolight_support::json::to_string_pretty(&hosted),
            want,
            "seed {seed}: reactor-hosted session must reproduce run_session exactly"
        );
    }
}

#[test]
fn faulty_reactor_sessions_match_threaded_reference_byte_for_byte() {
    let clip = test_clip();
    for seed in SEEDS {
        for config in faulty_configs(&clip, seed) {
            let threaded =
                run_session_faulty(config.clone()).expect("threaded faulty session succeeds");
            let (results, _) =
                run_faulty_sessions_on_reactor(vec![config], reactor_config(seed, 1));
            let hosted = results.into_iter().next().unwrap().expect("reactor session succeeds");
            assert_eq!(
                annolight_support::json::to_string_pretty(&hosted),
                annolight_support::json::to_string_pretty(&threaded),
                "seed {seed}: reactor-hosted faulty session must reproduce run_session_faulty"
            );
        }
    }
}

#[test]
fn non_default_policy_sessions_replay_identically_on_the_reactor() {
    // The machines reuse the threaded `negotiate_and_serve`, so the
    // policy thread (HEBS remaps, spatial downscaling) must survive
    // reactor hosting byte-for-byte — including across worker counts.
    use annolight::core::PolicyKind;
    let clip = test_clip();
    for policy in [PolicyKind::Hebs, PolicyKind::SpatialScale] {
        let mut config = SessionConfig::new(clip.clone(), QualityLevel::Q10);
        config.policy = policy;
        let threaded = run_session(config.clone()).expect("threaded session succeeds");
        let want = annolight_support::json::to_string_pretty(&threaded);
        let digest_at = |workers: usize| {
            let (results, reactor) =
                run_sessions_on_reactor(vec![config.clone()], reactor_config(42, workers));
            let hosted = results.into_iter().next().unwrap().expect("reactor session");
            assert_eq!(
                annolight_support::json::to_string_pretty(&hosted),
                want,
                "{} workers {workers}: reactor-hosted session must match run_session",
                policy.name()
            );
            reactor.digest.value()
        };
        assert_eq!(digest_at(1), digest_at(1), "{}: replay digest", policy.name());
        digest_at(4);
    }
    // The policies actually reached the wire: HEBS re-plans the
    // backlight, spatial scaling shrinks the stream.
    let run_with = |policy: PolicyKind| {
        let mut config = SessionConfig::new(clip.clone(), QualityLevel::Q10);
        config.policy = policy;
        run_session(config).expect("session succeeds")
    };
    let peak = run_with(PolicyKind::PeakClip);
    let spatial = run_with(PolicyKind::SpatialScale);
    assert!(
        spatial.stream_bytes * 2 < peak.stream_bytes,
        "library geometry must take the downscale path"
    );
    let hebs = run_with(PolicyKind::Hebs);
    assert!(
        hebs.playback.mean_backlight <= peak.playback.mean_backlight + 1e-12,
        "HEBS must not brighten the mean backlight"
    );
}

/// A governed session config over the test clip with a mid-ladder
/// budget — tight enough that the governor actually moves the knob.
fn governed_config(clip: &Clip, seed: u64, lossy: bool) -> GovernorSessionConfig {
    let mut session = SessionConfig::new(clip.clone(), QualityLevel::Q10);
    if lossy {
        session.faults = FaultConfig::lossy(seed, 0.1);
    }
    let probe = GovernorSessionConfig::new(session.clone(), 0.0);
    let ladder = governed_projections(&probe).expect("projection ladder");
    let floor = *ladder.last().expect("non-empty ladder");
    GovernorSessionConfig::new(session, floor + 0.6 * (ladder[0] - floor))
        .with_ambient_seed(seed)
}

#[test]
fn governed_reactor_sessions_match_threaded_reference_across_worker_counts() {
    let clip = test_clip();
    for seed in SEEDS {
        // Reference (lossless) hop.
        let cfg = governed_config(&clip, seed, false);
        let threaded = run_session_governed(cfg.clone()).expect("threaded governed session");
        let want = annolight_support::json::to_string_pretty(&threaded);
        for workers in [1usize, 4] {
            let (results, _) = run_governed_sessions_on_reactor(
                vec![cfg.clone()],
                reactor_config(seed, workers),
            );
            let hosted = results.into_iter().next().unwrap().expect("reactor session");
            // Identical GovernorEvent logs, trace digest and final
            // battery/thermal state — the whole report, byte for byte.
            assert_eq!(
                annolight_support::json::to_string_pretty(&hosted),
                want,
                "seed {seed} workers {workers}: governed reactor parity"
            );
        }
        // Faulty hop: the hint stream crosses the seeded lossy channel.
        let cfg = governed_config(&clip, seed, true);
        let threaded =
            run_session_governed_faulty(cfg.clone()).expect("threaded governed faulty session");
        let want = annolight_support::json::to_string_pretty(&threaded);
        for workers in [1usize, 4] {
            let (results, _) = run_governed_faulty_sessions_on_reactor(
                vec![cfg.clone()],
                reactor_config(seed, workers),
            );
            let hosted = results.into_iter().next().unwrap().expect("reactor session");
            assert_eq!(
                annolight_support::json::to_string_pretty(&hosted),
                want,
                "seed {seed} workers {workers}: faulty governed reactor parity"
            );
            assert_eq!(hosted.final_battery_j, threaded.final_battery_j);
            assert_eq!(hosted.trace_hex, threaded.trace_hex);
        }
    }
}

fn scale_fleet(seed: u64, workers: usize) -> (Vec<ScaleOutcome>, u64) {
    let clip = test_clip();
    let spec = Arc::new(
        ScaleSpec::negotiate(SessionConfig::new(clip, QualityLevel::Q10))
            .expect("fleet spec negotiates"),
    );
    let (tx, rx) = channel::unbounded();
    let mut reactor = Reactor::with_config(reactor_config(seed, workers));
    let n = 48usize;
    for i in 0..n {
        let faults = if i % 2 == 0 {
            FaultConfig::lossy(seed ^ i as u64, 0.15)
        } else {
            FaultConfig::bursty(seed ^ i as u64)
        };
        reactor.spawn(Box::new(ScaleSession::new(Arc::clone(&spec), faults, i, tx.clone())));
    }
    drop(tx);
    let report = reactor.run();
    let mut outcomes: Vec<Option<ScaleOutcome>> = vec![None; n];
    for (i, o) in rx.iter() {
        outcomes[i] = Some(o);
    }
    (outcomes.into_iter().map(|o| o.expect("every session reports")).collect(),
     report.digest.value())
}

#[test]
fn scale_fleet_replays_identically_across_runs_and_workers() {
    let (a, da) = scale_fleet(7, 1);
    let (b, db) = scale_fleet(7, 1);
    assert_eq!(a, b, "same-seed scale fleets must produce identical outcomes");
    assert_eq!(da, db);
    let (c, dc) = scale_fleet(7, 4);
    assert_eq!(a, c, "outcomes must be invariant under workers=4");
    assert_eq!(da, dc, "digest must be invariant under workers=4");
    assert!(a.iter().any(|o| o.dropped > 0), "a lossy fleet must drop packets");
    assert!(a.iter().all(|o| o.undeliverable == 0), "reliable retries must deliver pictures");
}

/// The canonical deterministic artefact: per-seed schedule digests and
/// session/fleet outcomes, as JSON. `scripts/ci.sh` runs this twice and
/// `cmp`s the files.
fn reactor_log() -> String {
    let clip = test_clip();
    let mut out = String::from("[\n");
    let mut first = true;
    for seed in SEEDS {
        let (reports, reactor) =
            run_faulty_sessions_on_reactor(faulty_configs(&clip, seed), reactor_config(seed, 1));
        let sessions: Vec<annolight::stream::FaultySessionReport> =
            reports.into_iter().map(|r| r.expect("session succeeds")).collect();
        let (fleet, fleet_digest) = scale_fleet(seed, 1);
        let scale_digests: Vec<String> =
            fleet.iter().map(|o| format!("{:016x}", o.digest)).collect();
        let entry = annolight_support::json_obj!({
            "seed": seed,
            "schedule_digest": reactor.digest.to_hex(),
            "rounds": reactor.rounds,
            "steps": reactor.steps,
            "sessions": sessions,
            "scale_schedule_digest": format!("{fleet_digest:016x}"),
            "scale_session_digests": scale_digests,
        });
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&entry.pretty());
    }
    out.push_str("\n]\n");
    out
}

#[test]
fn reactor_logs_replay_byte_identically_and_export_for_ci() {
    let a = reactor_log();
    let b = reactor_log();
    assert_eq!(a, b, "same seeds must replay byte-identical reactor logs in-process");
    if let Ok(path) = std::env::var("ANNOLIGHT_REACTOR_LOG") {
        if !path.is_empty() {
            std::fs::write(&path, &a)
                .unwrap_or_else(|e| panic!("writing reactor log to {path}: {e}"));
        }
    }
}
