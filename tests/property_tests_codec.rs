//! Property-based tests over the codec, scaling and quality-metric
//! substrates, on the in-tree `annolight_support::check` harness.

use annolight::codec::motion::{estimate, predict_into, MotionVector, SEARCH_RANGE};
use annolight::codec::zigzag::{decode_block, encode_block};
use annolight::imgproc::{downscale_2x, ssim_luma, Frame};

fn frame_from_seed(seed: u64, w: u32, h: u32) -> Frame {
    Frame::from_fn(w, h, |x, y| {
        let hsh = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(x) << 17 ^ u64::from(y));
        let v = (hsh >> 29) as u8;
        [v, v.wrapping_add(13), v.wrapping_mul(3)]
    })
}

annolight_support::check! {
    /// Run/level block coding round-trips arbitrary sparse blocks exactly.
    fn block_coding_roundtrip(g) {
        use annolight::codec::bitio::{BitReader, BitWriter};
        let coeffs = g.vec(0..20usize, |g| (g.draw(0usize..64), g.draw(-500i16..=500)));
        let dc: i16 = g.draw(-1000i16..=1000);
        let mut block = [0i16; 64];
        block[0] = dc;
        for &(idx, level) in &coeffs {
            if idx > 0 {
                block[idx] = level;
            }
        }
        let mut w = BitWriter::new();
        encode_block(&mut w, &block, 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let (decoded, _) = decode_block(&mut r, 0).unwrap();
        assert_eq!(decoded, block);
    }

    /// On *smooth* content (where the SAD landscape has a gradient for the
    /// three-step search to follow) motion estimation recovers exact
    /// translations within the search window.
    fn motion_finds_exact_translation_on_smooth_content(g) {
        let phase: f64 = g.draw(0.0f64..6.28);
        let dx: i32 = g.draw(-SEARCH_RANGE..=SEARCH_RANGE);
        let dy: i32 = g.draw(-SEARCH_RANGE..=SEARCH_RANGE);
        let w = 48usize;
        let sample = |x: i32, y: i32| -> u8 {
            let v = 128.0
                + 70.0 * ((x as f64) * 0.11 + phase).sin()
                + 50.0 * ((y as f64) * 0.13 + phase * 0.7).cos();
            v.round().clamp(0.0, 255.0) as u8
        };
        let base: Vec<u8> = (0..w * w)
            .map(|i| sample((i % w) as i32, (i / w) as i32))
            .collect();
        let cur: Vec<u8> = (0..w * w)
            .map(|i| sample((i % w) as i32 + dx, (i / w) as i32 + dy))
            .collect();
        let (mv, sad) = estimate(&cur, &base, w, w, 1, 1);
        assert_eq!(sad, 0, "mv {mv:?} for shift ({dx}, {dy})");
        let mut pred = vec![0u8; 256];
        predict_into(&base, w, w, 16, 16, mv.dx.into(), mv.dy.into(), 16, &mut pred);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(pred[y * 16 + x], cur[(16 + y) * w + 16 + x]);
            }
        }
    }

    /// On *arbitrary* content the greedy search gives no optimality
    /// guarantee, but it must stay consistent: the vector is in range and
    /// never worse than the zero vector (which it starts from).
    fn motion_is_consistent_on_arbitrary_content(g) {
        use annolight::codec::motion::sad;
        let a_seed = g.any::<u64>();
        let b_seed = g.any::<u64>();
        let w = 48usize;
        let base = frame_from_seed(a_seed, 48, 48).to_luma();
        let cur = frame_from_seed(b_seed, 48, 48).to_luma();
        let (mv, best) = estimate(cur.samples(), base.samples(), w, w, 1, 1);
        assert!(i32::from(mv.dx).abs() <= SEARCH_RANGE);
        assert!(i32::from(mv.dy).abs() <= SEARCH_RANGE);
        let zero = sad(cur.samples(), base.samples(), w, w, 16, 16, 0, 0, 16);
        assert!(best <= zero, "found {best} worse than zero-vector {zero}");
        // The reported SAD matches a recount at the found vector.
        let recount = sad(
            cur.samples(), base.samples(), w, w, 16, 16,
            mv.dx.into(), mv.dy.into(), 16,
        );
        assert_eq!(best, recount);
        let _ = MotionVector::default();
    }

    /// Downscaling preserves mean luminance for arbitrary frames.
    fn downscale_preserves_mean(g) {
        let seed = g.any::<u64>();
        let f = frame_from_seed(seed, 32, 32);
        let d = downscale_2x(&f).unwrap();
        assert!((f.mean_luma() - d.mean_luma()).abs() < 2.0);
        assert_eq!(d.width(), 16);
    }

    /// SSIM is bounded, symmetric, and 1 on identical frames.
    fn ssim_axioms(g) {
        let a_seed = g.any::<u64>();
        let b_seed = g.any::<u64>();
        let a = frame_from_seed(a_seed, 24, 24).to_luma();
        let b = frame_from_seed(b_seed, 24, 24).to_luma();
        let s_ab = ssim_luma(&a, &b);
        let s_ba = ssim_luma(&b, &a);
        assert!((-1.0..=1.0 + 1e-12).contains(&s_ab));
        assert!((s_ab - s_ba).abs() < 1e-12);
        assert!((ssim_luma(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// The full intra+inter pipeline never drifts: decoding reproduces
    /// the encoder's reconstruction bit-exactly for arbitrary frames.
    fn encoder_decoder_agree_bit_exact(g) {
        use annolight::codec::picture::{decode_inter, decode_intra, encode_inter, encode_intra};
        use annolight::codec::quant::QScale;
        let seed = g.any::<u64>();
        let qscale: u8 = g.draw(1u8..=31);
        let a = frame_from_seed(seed, 32, 32).to_yuv420().unwrap();
        let b = frame_from_seed(seed.wrapping_add(1), 32, 32).to_yuv420().unwrap();
        let q = QScale::new(qscale);
        let ia = encode_intra(&a, q);
        let da = decode_intra(&ia.bytes, 32, 32).unwrap();
        assert_eq!(&da, &ia.reconstruction);
        let pb = encode_inter(&b, &ia.reconstruction, q);
        let db = decode_inter(&pb.bytes, &da).unwrap();
        assert_eq!(&db, &pb.reconstruction);
    }

    /// Rate control keeps qscale in the legal range whatever sizes it is
    /// fed.
    fn rate_control_stays_legal(g) {
        use annolight::codec::quant::QScale;
        use annolight::codec::rate::RateController;
        let sizes = g.vec(1..50usize, |g| g.draw(0usize..100_000));
        let mut rc = RateController::new(500.0, QScale::new(8));
        for s in sizes {
            rc.update(s);
            let q = rc.qscale().value();
            assert!((1..=31).contains(&q));
        }
    }
}
