//! Differential byte-identity suite for the parallel pipeline (PR 4's
//! headline guarantee).
//!
//! For every paper clip × quality level × worker count, the parallel
//! profiling → planning → compensation pipeline must produce output
//! **byte-identical** to the `workers == 0` inline serial reference:
//!
//! * the luminance profile (JSON document, which pins every histogram
//!   bin and per-frame statistic),
//! * the annotation track (JSON document *and* RLE wire bytes), and
//! * every compensated frame's RGB bytes.
//!
//! A seeded `check!` property extends the fixed matrix to randomized
//! synthetic clips, chunk sizes and worker counts
//! (`ANNOLIGHT_CHECK_SEED=<seed>` replays a failure exactly).
//!
//! When `ANNOLIGHT_IDENTITY_LOG` names a file, each configuration
//! appends a `clip quality workers chunk digest` line to it; CI runs the
//! suite twice with a fixed seed and `cmp`s the two logs to prove the
//! whole suite is deterministic end to end (see `scripts/ci.sh`).

use annolight::core::digest::Digester;
use annolight::core::parallel::{self, ParallelConfig};
use annolight::core::{Annotator, QualityLevel};
use annolight::display::DeviceProfile;
use annolight::imgproc::Frame;
use annolight::video::library::PAPER_CLIP_NAMES;
use annolight::video::{Clip, ClipLibrary, ClipSpec, ContentKind, SceneSpec};
use annolight_support::json::to_string;

/// Worker counts under test: 0 is the inline serial reference.
const WORKER_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

/// Preview length for the fixed matrix: long enough for several scenes
/// and chunk boundaries, short enough that 10 clips × 5 qualities × 5
/// worker counts stay cheap.
const PREVIEW_S: f64 = 1.25;

/// Everything the pipeline emits for one configuration.
struct PipelineOutput {
    profile_json: String,
    track_json: String,
    track_rle: Vec<u8>,
    frames: Vec<Frame>,
}

impl PipelineOutput {
    /// Order-sensitive FNV digest over every emitted byte.
    fn digest(&self) -> u64 {
        let mut d = Digester::new();
        d.write(self.profile_json.as_bytes())
            .write(self.track_json.as_bytes())
            .write(&self.track_rle);
        for f in &self.frames {
            d.write(f.as_bytes());
        }
        d.finish()
    }
}

/// Runs profile → plan → compensate with `cfg` parallelism.
fn run_pipeline(clip: &Clip, quality: QualityLevel, cfg: &ParallelConfig) -> PipelineOutput {
    let profile = parallel::profile_clip(clip, cfg).expect("non-empty clip profiles");
    let annotated = Annotator::new(DeviceProfile::ipaq_5555(), quality)
        .with_parallelism(*cfg)
        .annotate_profile(&profile)
        .expect("non-empty profile annotates");
    let track = annotated.track();
    let mut frames: Vec<Frame> = clip.frames().collect();
    parallel::compensate_frames(&mut frames, track, cfg).expect("track covers clip");
    PipelineOutput {
        profile_json: to_string(&profile),
        track_json: to_string(track),
        track_rle: track.to_rle_bytes(),
        frames,
    }
}

/// Appends one digest line to `$ANNOLIGHT_IDENTITY_LOG`, if set. CI
/// diffs two runs' logs to pin end-to-end determinism.
fn log_digest(clip: &str, quality: QualityLevel, cfg: &ParallelConfig, digest: u64) {
    if let Ok(path) = std::env::var("ANNOLIGHT_IDENTITY_LOG") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("identity log path is writable");
        writeln!(
            f,
            "{clip} {quality:?} workers={} chunk={} {digest:#018x}",
            cfg.workers, cfg.chunk_frames
        )
        .expect("identity log write");
    }
}

/// Asserts two pipeline outputs are byte-identical, with a precise
/// failure message naming the first diverging artefact.
fn assert_identical(reference: &PipelineOutput, got: &PipelineOutput, what: &str) {
    assert_eq!(reference.profile_json, got.profile_json, "{what}: profile JSON diverged");
    assert_eq!(reference.track_json, got.track_json, "{what}: track JSON diverged");
    assert_eq!(reference.track_rle, got.track_rle, "{what}: track RLE bytes diverged");
    assert_eq!(reference.frames.len(), got.frames.len(), "{what}: frame count diverged");
    for (i, (a, b)) in reference.frames.iter().zip(&got.frames).enumerate() {
        assert_eq!(a.as_bytes(), b.as_bytes(), "{what}: frame {i} bytes diverged");
    }
}

/// The fixed matrix: every paper clip × every paper quality level ×
/// every worker count, compared byte-for-byte against the serial
/// reference.
#[test]
fn every_clip_quality_and_worker_count_matches_serial() {
    for name in PAPER_CLIP_NAMES {
        let clip = ClipLibrary::paper_clip(name)
            .expect("library names are all known")
            .preview(PREVIEW_S);
        for quality in QualityLevel::PAPER_LEVELS {
            let serial_cfg = ParallelConfig::serial();
            let reference = run_pipeline(&clip, quality, &serial_cfg);
            log_digest(name, quality, &serial_cfg, reference.digest());
            for workers in WORKER_COUNTS {
                if workers == 0 {
                    continue; // that *is* the reference
                }
                let cfg = ParallelConfig::with_workers(workers);
                let got = run_pipeline(&clip, quality, &cfg);
                log_digest(name, quality, &cfg, got.digest());
                assert_identical(
                    &reference,
                    &got,
                    &format!("{name} {quality:?} workers={workers}"),
                );
            }
        }
    }
}

/// Chunk granularity must never leak into output bytes — including
/// pathological sizes (1 frame per chunk, chunk larger than the clip)
/// and chunk edges that do not align with scene boundaries.
#[test]
fn chunk_size_never_affects_output_bytes() {
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("library names are all known")
        .preview(2.0);
    let quality = QualityLevel::Q10;
    let reference = run_pipeline(&clip, quality, &ParallelConfig::serial());
    for workers in [1, 2, 4, 7] {
        for chunk in [1, 3, 5, 16, 10_000] {
            let cfg = ParallelConfig::with_workers(workers).with_chunk_frames(chunk);
            let got = run_pipeline(&clip, quality, &cfg);
            log_digest("themovie", quality, &cfg, got.digest());
            assert_identical(&reference, &got, &format!("workers={workers} chunk={chunk}"));
        }
    }
}

/// The serve-tier entry point inherits the guarantee: a service with
/// `intra_workers > 0` returns the same track bytes as the inline one.
#[test]
fn service_with_intra_workers_returns_identical_tracks() {
    use annolight::serve::{AnnotationService, ServiceConfig};
    let clip = ClipLibrary::paper_clip("fightclub")
        .map_or_else(|| ClipLibrary::paper_clips().remove(0), |c| c)
        .preview(1.5);
    let mut tracks = Vec::new();
    for intra_workers in [0usize, 3] {
        let svc = AnnotationService::new(ServiceConfig {
            intra_workers,
            ..ServiceConfig::default()
        });
        svc.register_clip(clip.clone());
        let profile = svc.profile_for(clip.name()).expect("registered clip profiles");
        tracks.push((to_string(&*profile), intra_workers));
    }
    assert_eq!(tracks[0].0, tracks[1].0, "intra-worker profile diverged from inline");
}

annolight_support::check! {
    /// Randomized differential property: synthetic clips with random
    /// scene structure, random quality, random worker count and chunk
    /// size — output must match the serial reference byte for byte.
    fn randomized_pipeline_matches_serial(g) {
        let n_scenes = g.draw(1..4usize);
        let seed: u64 = g.any::<u32>() as u64;
        let scenes: Vec<SceneSpec> = (0..n_scenes)
            .map(|_| {
                let content = match g.draw(0..3u32) {
                    0 => ContentKind::Dark {
                        base: g.draw(20..70u8),
                        spread: g.draw(2..18u8),
                        highlight_fraction: g.draw(0.0f64..0.05),
                        highlight: g.draw(180..=255u8),
                    },
                    1 => ContentKind::Bright {
                        base: g.draw(180..240u8),
                        spread: g.draw(2..30u8),
                    },
                    _ => ContentKind::Mid {
                        base: g.draw(80..160u8),
                        spread: g.draw(2..40u8),
                        highlight_fraction: g.draw(0.0f64..0.08),
                    },
                };
                SceneSpec::new(content, g.draw(0.3f64..1.2))
            })
            .collect();
        let clip = Clip::new(ClipSpec {
            name: "prop".into(),
            width: 32,
            height: 32,
            fps: 8.0,
            seed,
            scenes,
        })
        .expect("generated specs are valid");
        let quality = QualityLevel::PAPER_LEVELS[g.draw(0..5usize)];
        let reference = run_pipeline(&clip, quality, &ParallelConfig::serial());
        let cfg = ParallelConfig::with_workers(g.draw(1..8usize))
            .with_chunk_frames(g.draw(1..24usize));
        let got = run_pipeline(&clip, quality, &cfg);
        log_digest("prop", quality, &cfg, got.digest());
        assert_identical(
            &reference,
            &got,
            &format!("seed={seed} workers={} chunk={}", cfg.workers, cfg.chunk_frames),
        );
    }
}
