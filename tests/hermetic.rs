//! Hermeticity guard: the workspace must build from an *empty* cargo
//! registry, so every dependency in every manifest has to be a `path`
//! dependency (directly or via `workspace = true` inheritance from the
//! path-only `[workspace.dependencies]` table).
//!
//! This test walks every `Cargo.toml` in the repository and fails if a
//! registry (version-only), git, or patched dependency ever reappears.
//! It deliberately uses a small hand-rolled TOML-subset scanner — pulling
//! in a TOML crate to check that we pull in no crates would be ironic.

use std::fs;
use std::path::{Path, PathBuf};

/// Finds every Cargo.toml under the workspace root (skipping `target/`).
fn manifests(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readable workspace dir") {
            let path = entry.expect("readable dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name == "Cargo.toml" {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// One `name = spec` entry from a dependency-ish section.
#[derive(Debug)]
struct Dep {
    manifest: String,
    section: String,
    name: String,
    spec: String,
}

/// Extracts all dependency entries from one manifest. Understands the
/// two shapes cargo allows:
///
/// * inline:  `foo = { path = "..." }` / `foo = "1.0"` under a
///   `[dependencies]`-like header,
/// * expanded: `[dependencies.foo]` followed by `key = value` lines.
fn dependencies(path: &Path) -> Vec<Dep> {
    let text = fs::read_to_string(path).expect("manifest is readable");
    let manifest = path.display().to_string();
    let mut deps = Vec::new();
    let mut section = String::new();
    let mut expanded: Option<(String, String)> = None; // (section, dep name)
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // Close any expanded-table dep.
            if let Some((sec, name)) = expanded.take() {
                deps.push(Dep { manifest: manifest.clone(), section: sec, name, spec: String::new() });
            }
            section = line.trim_matches(['[', ']']).to_string();
            let is_dep_header = |s: &str| {
                s == "dependencies"
                    || s == "dev-dependencies"
                    || s == "build-dependencies"
                    || s == "workspace.dependencies"
                    || s.starts_with("target.") && s.ends_with("dependencies")
            };
            if let Some((head, dep_name)) = section.rsplit_once('.') {
                if is_dep_header(head) {
                    expanded = Some((head.to_string(), dep_name.to_string()));
                }
            }
            continue;
        }
        if let Some((sec, name)) = &expanded {
            // Inside `[dependencies.foo]`: accumulate the keys as a spec.
            let mut d = deps
                .iter_mut()
                .rev()
                .find(|d| &d.section == sec && &d.name == name && d.manifest == manifest);
            if d.is_none() {
                deps.push(Dep {
                    manifest: manifest.clone(),
                    section: sec.clone(),
                    name: name.clone(),
                    spec: String::new(),
                });
                d = deps.last_mut();
            }
            let d = d.expect("just ensured present");
            d.spec.push_str(line);
            d.spec.push(';');
            continue;
        }
        let in_dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section == "workspace.dependencies"
            || (section.starts_with("target.") && section.ends_with("dependencies"));
        if in_dep_section {
            if let Some((name, spec)) = line.split_once('=') {
                // Normalise the dotted-key form `foo.workspace = true`
                // into `foo = { workspace = true }`.
                let (name, spec) = match name.trim().strip_suffix(".workspace") {
                    Some(base) => (base.to_string(), format!("workspace = {}", spec.trim())),
                    None => (name.trim().to_string(), spec.trim().to_string()),
                };
                deps.push(Dep { manifest: manifest.clone(), section: section.clone(), name, spec });
            }
        }
    }
    if let Some((sec, name)) = expanded.take() {
        deps.push(Dep { manifest, section: sec, name, spec: String::new() });
    }
    deps
}

fn is_hermetic(spec: &str) -> bool {
    let s = spec.trim();
    // `workspace = true` inherits from the path-only workspace table,
    // which this same test validates.
    if s.contains("workspace") && s.contains("true") {
        return true;
    }
    // A table spec must name a local path and must not reach for a
    // registry or git remote.
    s.contains("path") && !s.contains("git") && !s.contains("version") && !s.contains("registry")
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifests = manifests(root);
    assert!(
        manifests.len() >= 11,
        "expected the root + 10 member manifests, found {}",
        manifests.len()
    );
    let mut offences = Vec::new();
    for m in &manifests {
        for d in dependencies(m) {
            if !is_hermetic(&d.spec) {
                offences.push(format!(
                    "{} [{}] {} = {}",
                    d.manifest, d.section, d.name, d.spec
                ));
            }
        }
    }
    assert!(
        offences.is_empty(),
        "non-path dependencies found — the hermetic (offline, empty-registry) \
         build guarantee is broken:\n  {}",
        offences.join("\n  ")
    );
}

#[test]
fn no_patch_or_replace_sections() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for m in manifests(root) {
        let text = fs::read_to_string(&m).expect("manifest is readable");
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            assert!(
                !(line.starts_with("[patch") || line.starts_with("[replace")),
                "{}: `{line}` — patched/replaced sources break hermeticity",
                m.display()
            );
        }
    }
}

#[test]
fn workspace_table_is_path_only() {
    // Belt and braces: the inherited table itself must be pure paths.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let deps = dependencies(&root);
    let ws: Vec<_> = deps.iter().filter(|d| d.section == "workspace.dependencies").collect();
    assert!(!ws.is_empty(), "workspace dependency table should exist");
    for d in ws {
        assert!(
            d.spec.contains("path"),
            "workspace dep `{}` is not a path dependency: {}",
            d.name,
            d.spec
        );
    }
}
