//! Cross-crate invariants: identities that must hold when the pieces are
//! composed (display × core × camera × codec).

use annolight::camera::DigitalCamera;
use annolight::codec::psnr;
use annolight::core::plan::plan_levels;
use annolight::core::{Annotator, LuminanceProfile, QualityLevel};
use annolight::display::{render_perceived, BacklightLevel, DeviceProfile};
use annolight::imgproc::{contrast_enhance, Frame, Rgb8};
use annolight::video::ClipLibrary;

/// The paper's central identity: for pixels at or below the effective
/// maximum, `ρ·L·Y` is preserved by (dim backlight, scale pixels).
#[test]
fn perceived_intensity_preserved_for_unclipped_pixels() {
    for device in DeviceProfile::paper_devices() {
        for effective in [50u8, 96, 150, 210] {
            let (k, level) = plan_levels(&device, effective);
            // Build a frame whose pixels all sit at/below the effective max.
            let frame = Frame::from_fn(16, 16, |x, _| {
                let v = (u32::from(effective) * x / 16) as u8;
                [v, v, v]
            });
            let reference = render_perceived(&frame, &device, BacklightLevel::MAX, 0.0);
            let mut compensated = frame.clone();
            contrast_enhance(&mut compensated, k);
            let dimmed = render_perceived(&compensated, &device, level, 0.0);
            let mad: f64 = reference
                .samples()
                .iter()
                .zip(dimmed.samples())
                .map(|(&a, &b)| f64::from(a.abs_diff(b)))
                .sum::<f64>()
                / reference.samples().len() as f64;
            assert!(
                mad < 2.5,
                "{} at effective {effective}: mean deviation {mad}",
                device.name()
            );
        }
    }
}

/// The camera sees through the whole optical chain: a correctly
/// compensated frame photographs nearly identically to the original.
#[test]
fn camera_cannot_distinguish_correct_compensation() {
    let device = DeviceProfile::ipaq_5555();
    let camera = DigitalCamera::ideal();
    let frame = Frame::from_fn(32, 32, |x, y| {
        let v = 30 + ((x * 5 + y * 3) % 120) as u8;
        [v, v, v]
    });
    let effective = frame.luma_histogram().clip_level(0.0);
    let (k, level) = plan_levels(&device, effective);
    let reference = camera.photograph(&frame, &device, BacklightLevel::MAX);
    let mut compensated = frame.clone();
    contrast_enhance(&mut compensated, k);
    let snapshot = camera.photograph(&compensated, &device, level);
    let emd = reference.histogram().emd(&snapshot.histogram());
    assert!(emd < 3.0, "EMD {emd}");
}

/// Compensated + encoded + decoded frames stay faithful: the codec must
/// not destroy what the compensation built.
#[test]
fn codec_preserves_compensated_frames() {
    let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(2.0);
    let device = DeviceProfile::ipaq_5555();
    let profile = LuminanceProfile::of_clip(&clip).unwrap();
    let annotated =
        Annotator::new(device, QualityLevel::Q10).annotate_profile(&profile).unwrap();

    let (w, h) = clip.dimensions();
    let mut enc = annolight::codec::Encoder::new(annolight::codec::EncoderConfig {
        width: w,
        height: h,
        fps: clip.fps(),
        ..Default::default()
    })
    .unwrap();
    let mut originals = Vec::new();
    for i in 0..clip.frame_count() {
        let mut f = clip.frame(i);
        annolight::core::apply::compensate_frame(&mut f, annotated.track(), i).unwrap();
        enc.push_frame(&f).unwrap();
        originals.push(f);
    }
    let mut dec = annolight::codec::Decoder::new(&enc.finish()).unwrap();
    for (i, orig) in originals.iter().enumerate() {
        let decoded = dec.decode_next().unwrap().expect("frame present");
        let p = psnr(orig, &decoded);
        assert!(p > 26.0, "frame {i}: PSNR {p:.1} dB");
    }
}

/// Device-specific tables: the same effective max maps to different
/// backlight levels per device, but all of them reproduce at least the
/// requested luminance (never under-driven).
#[test]
fn all_devices_never_underdrive() {
    for device in DeviceProfile::paper_devices() {
        let gamma = device.panel().white_gamma();
        for effective in 1..=255u8 {
            let (_, level) = plan_levels(&device, effective);
            let needed = (f64::from(effective) / 255.0).powf(gamma);
            let achieved = device.transfer().luminance(level);
            assert!(
                achieved + 1e-9 >= needed,
                "{}: effective {effective} needs {needed} got {achieved}",
                device.name()
            );
        }
    }
}

/// Backlight power must decrease monotonically when the annotation gets to
/// clip more (per device, per clip).
#[test]
fn savings_monotone_across_devices_and_qualities() {
    let clip = ClipLibrary::paper_clip("theincredibles-tlr2").unwrap().preview(4.0);
    let profile = LuminanceProfile::of_clip(&clip).unwrap();
    for device in DeviceProfile::paper_devices() {
        let mut last = -1.0;
        for q in QualityLevel::PAPER_LEVELS {
            let s = Annotator::new(device.clone(), q)
                .annotate_profile(&profile)
                .unwrap()
                .predicted_backlight_savings(&device);
            assert!(s + 1e-9 >= last, "{} at {q:?}", device.name());
            last = s;
        }
    }
}

/// Gray ramps survive the full RGB→YUV→RGB→luma chain within tight error,
/// so luminance budgeting in RGB space is sound end to end.
#[test]
fn gray_ramp_luma_stability_through_color_pipeline() {
    let ramp = Frame::from_fn(256, 8, |x, _| [x as u8, x as u8, x as u8]);
    let rt = ramp.to_yuv420().unwrap().to_rgb();
    for (a, b) in ramp.pixels().zip(rt.pixels()) {
        assert!(
            (i16::from(a.luma()) - i16::from(b.luma())).abs() <= 2,
            "{a:?} vs {b:?}"
        );
    }
    let _ = Rgb8::gray(0); // keep the import honest
}
