//! The `annolight` command-line tool.
//!
//! A thin, dependency-free front end over the workspace: list clips and
//! devices, annotate a clip and dump the track, run a measured streaming
//! session, or validate compensation with the camera model.

use crate::core::track::AnnotationMode;
use crate::core::{Annotator, QualityLevel};
use crate::display::DeviceProfile;
use crate::power::Battery;
use crate::stream::{run_session, SessionConfig};
use crate::video::{library::PAPER_CLIP_NAMES, Clip, ClipLibrary};
use std::fmt::Write as _;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the clip library.
    Clips,
    /// List the device profiles.
    Devices,
    /// Annotate a clip and print the track.
    Annotate {
        /// Clip name.
        clip: String,
        /// Quality in percent.
        quality: f64,
        /// Target device name.
        device: String,
        /// Per-frame instead of per-scene.
        per_frame: bool,
        /// Emit the JSON sidecar instead of the summary.
        json: bool,
    },
    /// Run a full streaming session and report energy.
    Play {
        /// Clip name.
        clip: String,
        /// Quality in percent.
        quality: f64,
        /// Preview length in seconds.
        seconds: f64,
        /// Emit the full session report as JSON.
        json: bool,
    },
    /// Camera-validate compensation on a clip frame (Fig. 2 workflow).
    Validate {
        /// Clip name.
        clip: String,
        /// Target device name.
        device: String,
    },
    /// Print usage.
    Help,
}

/// Errors from argument parsing or execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
annolight — annotation-driven backlight power optimization (DATE 2006)

USAGE:
  annolight clips
  annolight devices
  annolight annotate <clip> [--quality N] [--device NAME] [--per-frame] [--json]
  annolight play <clip> [--quality N] [--seconds S] [--json]
  annolight validate <clip> [--device NAME]
  annolight help

Clip names are the paper library (see `annolight clips`).
Defaults: --quality 10, --device ipaq-5555, --seconds 20.
";

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, flags or malformed values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "clips" => Ok(Command::Clips),
        "devices" => Ok(Command::Devices),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "annotate" | "play" | "validate" => {
            let rest: Vec<&String> = it.collect();
            let mut clip = None;
            let mut quality = 10.0f64;
            let mut device = "ipaq-5555".to_owned();
            let mut seconds = 20.0f64;
            let mut per_frame = false;
            let mut json = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--quality" | "-q" => {
                        i += 1;
                        quality = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| CliError("--quality needs a number".into()))?;
                    }
                    "--device" | "-d" => {
                        i += 1;
                        device = rest
                            .get(i)
                            .ok_or_else(|| CliError("--device needs a name".into()))?
                            .to_string();
                    }
                    "--seconds" | "-s" => {
                        i += 1;
                        seconds = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| CliError("--seconds needs a number".into()))?;
                    }
                    "--per-frame" => per_frame = true,
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag {flag}")));
                    }
                    name if clip.is_none() => clip = Some(name.to_owned()),
                    extra => return Err(CliError(format!("unexpected argument {extra}"))),
                }
                i += 1;
            }
            let clip = clip.ok_or_else(|| CliError(format!("{cmd} needs a clip name")))?;
            if !(0.0..=100.0).contains(&quality) {
                return Err(CliError(format!("quality {quality}% outside 0..=100")));
            }
            match cmd.as_str() {
                "annotate" => Ok(Command::Annotate { clip, quality, device, per_frame, json }),
                "validate" => Ok(Command::Validate { clip, device }),
                _ => Ok(Command::Play { clip, quality, seconds, json }),
            }
        }
        other => Err(CliError(format!("unknown command {other:?}; try `annolight help`"))),
    }
}

fn lookup_clip(name: &str) -> Result<Clip, CliError> {
    ClipLibrary::paper_clip(name)
        .ok_or_else(|| CliError(format!("unknown clip {name:?}; `annolight clips` lists them")))
}

fn lookup_device(name: &str) -> Result<DeviceProfile, CliError> {
    DeviceProfile::by_name(name)
        .ok_or_else(|| CliError(format!("unknown device {name:?}; `annolight devices` lists them")))
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for unknown clips/devices or pipeline failures.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Clips => {
            let _ = writeln!(out, "{:<22} {:>8} {:>8} {:>8}", "clip", "dur (s)", "frames", "scenes");
            for name in PAPER_CLIP_NAMES {
                let c = ClipLibrary::paper_clip(name).expect("library names are known");
                let _ = writeln!(
                    out,
                    "{:<22} {:>8.0} {:>8} {:>8}",
                    c.name(),
                    c.duration_s(),
                    c.frame_count(),
                    c.spec().scenes.len()
                );
            }
        }
        Command::Devices => {
            let _ = writeln!(
                out,
                "{:<16} {:>10} {:>14} {:>14}",
                "device", "backlight", "panel", "max power (W)"
            );
            for d in DeviceProfile::paper_devices() {
                let _ = writeln!(
                    out,
                    "{:<16} {:>10} {:>14} {:>14.2}",
                    d.name(),
                    format!("{:?}", d.technology()),
                    format!("{:?}", d.panel().kind()),
                    d.backlight_power().max_w()
                );
            }
        }
        Command::Annotate { clip, quality, device, per_frame, json } => {
            let clip = lookup_clip(clip)?;
            let device = lookup_device(device)?;
            let mode = if *per_frame { AnnotationMode::PerFrame } else { AnnotationMode::PerScene };
            let annotated = Annotator::new(device.clone(), QualityLevel::from_percent(*quality))
                .with_mode(mode)
                .annotate_clip(&clip)
                .map_err(|e| CliError(e.to_string()))?;
            if *json {
                out.push_str(&annotated.track().to_json().map_err(|e| CliError(e.to_string()))?);
                out.push('\n');
            } else {
                let track = annotated.track();
                let _ = writeln!(out, "clip      : {} ({:.0} s)", clip.name(), clip.duration_s());
                let _ = writeln!(out, "device    : {}", track.device_name());
                let _ = writeln!(out, "quality   : {}", track.quality());
                let _ = writeln!(out, "entries   : {} ({:?})", track.entries().len(), track.mode());
                let _ = writeln!(out, "overhead  : {} bytes (RLE)", track.overhead_bytes());
                let _ = writeln!(
                    out,
                    "predicted : {:.1}% backlight power saved",
                    annotated.predicted_backlight_savings(&device) * 100.0
                );
            }
        }
        Command::Validate { clip, device } => {
            use crate::camera::{validate_compensation, DigitalCamera};
            use crate::core::plan::plan_levels;
            use crate::display::BacklightLevel;
            use crate::imgproc::contrast_enhance;
            let clip = lookup_clip(clip)?;
            let device = lookup_device(device)?;
            let camera = DigitalCamera::consumer_compact(2026);
            let original = clip.frame(clip.frame_count() / 3);
            let hist = original.luma_histogram();
            let _ = writeln!(
                out,
                "{:<8} {:>9} {:>10} {:>10} {:>8} {:>7} {:>9}",
                "quality", "backlight", "ref mean", "comp mean", "EMD", "SSIM", "verdict"
            );
            for q in QualityLevel::PAPER_LEVELS {
                let effective = hist.clip_level(q.clip_fraction());
                let (k, level) = plan_levels(&device, effective);
                let mut compensated = original.clone();
                contrast_enhance(&mut compensated, k);
                let report = validate_compensation(
                    &original,
                    &compensated,
                    &device,
                    BacklightLevel::MAX,
                    level,
                    &camera,
                );
                let _ = writeln!(
                    out,
                    "{:<8} {:>9} {:>10.1} {:>10.1} {:>8.2} {:>7.3} {:>9}",
                    q.to_string(),
                    format!("{}/255", level.0),
                    report.reference_mean,
                    report.compensated_mean,
                    report.histogram_emd,
                    report.ssim,
                    if report.acceptable() { "ok" } else { "degraded" }
                );
            }
        }
        Command::Play { clip, quality, seconds, json } => {
            let clip = lookup_clip(clip)?.preview(*seconds);
            let report =
                run_session(SessionConfig::new(clip, QualityLevel::from_percent(*quality)))
                    .map_err(|e| CliError(e.to_string()))?;
            if *json {
                out.push_str(&annolight_support::json::to_string_pretty(&report));
                out.push('\n');
                return Ok(out);
            }
            let p = &report.playback;
            let battery = Battery::ipaq_5555();
            let _ = writeln!(out, "granted quality : {}", report.granted_quality);
            let _ = writeln!(out, "stream          : {} bytes ({} packets)", report.stream_bytes, report.packets);
            let _ = writeln!(out, "annotations     : {} bytes", report.annotation_bytes);
            let _ = writeln!(out, "frames          : {} ({:.1} s)", p.frames, p.duration_s);
            let _ = writeln!(out, "avg power       : {:.2} W", p.avg_power_w);
            let _ = writeln!(out, "total savings   : {:.1}%", p.total_savings() * 100.0);
            let _ = writeln!(
                out,
                "battery life    : {:.0} min → {:.0} min per charge",
                battery.runtime_s(p.baseline_energy_j / p.duration_s.max(1e-9)) / 60.0,
                battery.runtime_s(p.avg_power_w) / 60.0
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_simple_commands() {
        assert_eq!(parse(&argv("clips")).unwrap(), Command::Clips);
        assert_eq!(parse(&argv("devices")).unwrap(), Command::Devices);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_annotate_with_flags() {
        let cmd = parse(&argv("annotate themovie --quality 15 --device ipaq-3650 --per-frame --json"))
            .unwrap();
        assert_eq!(
            cmd,
            Command::Annotate {
                clip: "themovie".into(),
                quality: 15.0,
                device: "ipaq-3650".into(),
                per_frame: true,
                json: true,
            }
        );
    }

    #[test]
    fn parse_play_defaults() {
        let cmd = parse(&argv("play shrek2")).unwrap();
        assert_eq!(
            cmd,
            Command::Play { clip: "shrek2".into(), quality: 10.0, seconds: 20.0, json: false }
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("annotate")).is_err());
        assert!(parse(&argv("annotate x --quality")).is_err());
        assert!(parse(&argv("annotate x --quality 120")).is_err());
        assert!(parse(&argv("play x --bogus")).is_err());
    }

    #[test]
    fn execute_clips_lists_all_ten() {
        let out = execute(&Command::Clips).unwrap();
        for name in PAPER_CLIP_NAMES {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn execute_devices_lists_three() {
        let out = execute(&Command::Devices).unwrap();
        assert!(out.contains("ipaq-5555"));
        assert!(out.contains("zaurus-sl5600"));
        assert!(out.contains("ipaq-3650"));
    }

    #[test]
    fn execute_annotate_summary() {
        let out = execute(&Command::Annotate {
            clip: "officexp".into(),
            quality: 10.0,
            device: "ipaq-5555".into(),
            per_frame: false,
            json: false,
        })
        .unwrap();
        assert!(out.contains("predicted"));
        assert!(out.contains("bytes (RLE)"));
    }

    #[test]
    fn execute_annotate_json_is_parseable() {
        let out = execute(&Command::Annotate {
            clip: "officexp".into(),
            quality: 5.0,
            device: "ipaq-5555".into(),
            per_frame: false,
            json: true,
        })
        .unwrap();
        assert!(crate::core::track::AnnotationTrack::from_json(&out).is_ok());
    }

    #[test]
    fn execute_unknown_clip_fails_cleanly() {
        let err = execute(&Command::Annotate {
            clip: "matrix".into(),
            quality: 10.0,
            device: "ipaq-5555".into(),
            per_frame: false,
            json: false,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown clip"));
    }

    #[test]
    fn parse_validate() {
        let cmd = parse(&argv("validate ice_age --device ipaq-3650")).unwrap();
        assert_eq!(cmd, Command::Validate { clip: "ice_age".into(), device: "ipaq-3650".into() });
    }

    #[test]
    fn execute_validate_prints_verdicts() {
        let out = execute(&Command::Validate {
            clip: "officexp".into(),
            device: "ipaq-5555".into(),
        })
        .unwrap();
        assert!(out.contains("verdict"));
        assert!(out.contains("0%"));
        assert!(out.contains("20%"));
    }

    #[test]
    fn execute_play_reports_savings() {
        let out = execute(&Command::Play {
            clip: "themovie".into(),
            quality: 10.0,
            seconds: 2.0,
            json: false,
        })
        .unwrap();
        assert!(out.contains("total savings"));
        assert!(out.contains("battery life"));
    }

    #[test]
    fn execute_play_json_is_parseable() {
        let out = execute(&Command::Play {
            clip: "themovie".into(),
            quality: 10.0,
            seconds: 2.0,
            json: true,
        })
        .unwrap();
        let v = annolight_support::json::Json::parse(&out).unwrap();
        assert!(v.get("playback").is_some());
        assert!(v.get("stream_bytes").is_some());
    }
}
