//! # annolight
//!
//! A full reproduction of *"Software Annotations for Power Optimization on
//! Mobile Devices"* (Cornea, Nicolau, Dutt — DATE 2006): annotation-driven
//! LCD backlight scaling for multimedia streaming, together with every
//! substrate the paper's evaluation depends on.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`imgproc`] | `annolight-imgproc` | pixels, luminance, histograms, compensation |
//! | [`video`] | `annolight-video` | synthetic clip library (the 10 paper clips) |
//! | [`codec`] | `annolight-codec` | MPEG-1-flavoured codec + annotation side-channel |
//! | [`display`] | `annolight-display` | LCD/backlight device models (iPAQ, Zaurus) |
//! | [`camera`] | `annolight-camera` | digital-camera quality validation (Fig. 2) |
//! | [`power`] | `annolight-power` | DAQ simulation + whole-device power model |
//! | [`core`] | `annolight-core` | **the paper's contribution**: profiling, scene detection, annotation, backlight planning |
//! | [`stream`] | `annolight-stream` | server → proxy → client session model (Fig. 1) |
//! | [`serve`] | `annolight-serve` | multi-tenant annotation service: sharded cache, work-stealing pool, admission control |
//! | [`baselines`] | `annolight-baselines` | comparison policies (history prediction, oracle, static) |
//!
//! # Quickstart
//!
//! ```
//! use annolight::core::{Annotator, QualityLevel};
//! use annolight::display::DeviceProfile;
//! use annolight::video::ClipLibrary;
//!
//! // 1. Pick a clip and a device.
//! let clip = ClipLibrary::paper_clip("themovie").expect("known clip");
//! let device = DeviceProfile::ipaq_5555();
//!
//! // 2. Profile + annotate at a 10% quality level (server side).
//! let annotator = Annotator::new(device.clone(), QualityLevel::Q10);
//! let annotated = annotator.annotate_clip(&clip.preview(60.0)).expect("annotation");
//!
//! // 3. Inspect predicted savings (client side applies the track).
//! let savings = annotated.predicted_backlight_savings(&device);
//! assert!(savings > 0.0 && savings < 1.0);
//! ```

pub mod cli;

pub use annolight_baselines as baselines;
pub use annolight_camera as camera;
pub use annolight_codec as codec;
pub use annolight_core as core;
pub use annolight_display as display;
pub use annolight_imgproc as imgproc;
pub use annolight_power as power;
pub use annolight_serve as serve;
pub use annolight_stream as stream;
pub use annolight_video as video;
