//! The `annolight` CLI entry point; all logic lives in `annolight::cli`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match annolight::cli::parse(&args).and_then(|cmd| annolight::cli::execute(&cmd)) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", annolight::cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
