//! Backlight→luminance transfer functions (Figs. 7–8 of the paper).
//!
//! The paper measures, per device, how the luminance observed by a camera
//! varies with (a) the software backlight level at a fixed white screen and
//! (b) the displayed white level at a fixed backlight. It finds the response
//! to pixel value almost linear, but the response to **backlight level
//! non-linear and device-specific** ("each display technology showed a
//! different transfer characteristic"). The inverse of this function is the
//! table look-up the client performs at runtime.

use std::fmt;

/// A software backlight level in `0..=255`, as exposed by the PDA driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BacklightLevel(pub u8);

annolight_support::impl_json!(newtype BacklightLevel(inner));

impl BacklightLevel {
    /// Backlight fully off.
    pub const MIN: BacklightLevel = BacklightLevel(0);
    /// Maximum backlight.
    pub const MAX: BacklightLevel = BacklightLevel(255);

    /// The level as a fraction of full scale, in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 255.0
    }

    /// Builds a level from a fraction of full scale (clamped to `[0, 1]`).
    pub fn from_fraction(f: f64) -> Self {
        BacklightLevel((f.clamp(0.0, 1.0) * 255.0).round() as u8)
    }
}

impl fmt::Display for BacklightLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/255", self.0)
    }
}

impl From<u8> for BacklightLevel {
    fn from(v: u8) -> Self {
        BacklightLevel(v)
    }
}

/// A monotone backlight→relative-luminance transfer function.
///
/// All variants map level 0 to (near) 0 relative luminance and level 255 to
/// exactly 1.0, and are strictly increasing, so the inverse look-up is well
/// defined.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TransferFunction {
    /// Ideal proportional response (useful as a baseline / for tests).
    Linear,
    /// Saturating exponential `L(x) = (1 − e^(−a·x)) / (1 − e^(−a))`,
    /// `x = level/255`. Models white-LED backlights (iPAQ 5555): steep at
    /// low levels, flattening towards full scale.
    SaturatingExp {
        /// Curvature `a > 0`; larger = stronger saturation.
        a: f64,
    },
    /// Power law `L(x) = x^gamma`. With `gamma > 1` models CCFL lamps whose
    /// light output falls off disproportionately at low drive levels.
    Gamma {
        /// Exponent `gamma > 0`.
        gamma: f64,
    },
}

annolight_support::impl_json!(enum TransferFunction { Linear, SaturatingExp { a }, Gamma { gamma } });

impl TransferFunction {
    /// Relative luminance in `[0, 1]` produced at `level`.
    ///
    /// ```
    /// use annolight_display::{BacklightLevel, TransferFunction};
    /// let led = TransferFunction::SaturatingExp { a: 1.3 };
    /// assert_eq!(led.luminance(BacklightLevel::MAX), 1.0);
    /// // Concave: half the level gives more than half the light.
    /// assert!(led.luminance(BacklightLevel(128)) > 0.5);
    /// ```
    pub fn luminance(self, level: BacklightLevel) -> f64 {
        let x = level.fraction();
        match self {
            TransferFunction::Linear => x,
            TransferFunction::SaturatingExp { a } => {
                debug_assert!(a > 0.0);
                (1.0 - (-a * x).exp()) / (1.0 - (-a).exp())
            }
            TransferFunction::Gamma { gamma } => {
                debug_assert!(gamma > 0.0);
                x.powf(gamma)
            }
        }
    }

    /// The smallest backlight level whose luminance is at least `target`
    /// (clamped to `[0, 1]`). This is the client's "simple multiplication
    /// followed by a table look-up" (§4.3); the *at least* direction
    /// guarantees the display is never under-driven.
    ///
    /// ```
    /// use annolight_display::TransferFunction;
    /// let f = TransferFunction::Gamma { gamma: 1.5 };
    /// let level = f.level_for_luminance(0.4);
    /// assert!(f.luminance(level) >= 0.4);
    /// ```
    pub fn level_for_luminance(self, target: f64) -> BacklightLevel {
        let target = target.clamp(0.0, 1.0);
        // Binary search over the (monotone) discrete levels.
        let (mut lo, mut hi) = (0u16, 255u16);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.luminance(BacklightLevel(mid as u8)) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        BacklightLevel(lo as u8)
    }

    /// Precomputes the 256-entry inverse look-up table the paper describes
    /// shipping to (or deriving on) the client. `table[y]` is the backlight
    /// level for a target luminance of `y/255`.
    pub fn inverse_lut(self) -> [BacklightLevel; 256] {
        let mut lut = [BacklightLevel(0); 256];
        for (y, slot) in lut.iter_mut().enumerate() {
            *slot = self.level_for_luminance(y as f64 / 255.0);
        }
        lut
    }
}

/// Panel response to the displayed pixel value at a fixed backlight
/// (Fig. 8): near-linear with a mild gamma.
///
/// `white` is the displayed gray level (0–255); the result is the fraction
/// of the panel's maximum transmitted luminance, in `[0, 1]`.
pub fn panel_white_response(white: u8, panel_gamma: f64) -> f64 {
    (f64::from(white) / 255.0).powf(panel_gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FUNCS: [TransferFunction; 4] = [
        TransferFunction::Linear,
        TransferFunction::SaturatingExp { a: 2.0 },
        TransferFunction::SaturatingExp { a: 4.0 },
        TransferFunction::Gamma { gamma: 1.5 },
    ];

    #[test]
    fn endpoints_are_anchored() {
        for f in FUNCS {
            assert!(f.luminance(BacklightLevel::MIN).abs() < 1e-12, "{f:?}");
            assert!((f.luminance(BacklightLevel::MAX) - 1.0).abs() < 1e-12, "{f:?}");
        }
    }

    #[test]
    fn strictly_increasing() {
        for f in FUNCS {
            let mut last = -1.0;
            for v in 0..=255u8 {
                let l = f.luminance(BacklightLevel(v));
                assert!(l > last, "{f:?} at {v}");
                last = l;
            }
        }
    }

    #[test]
    fn led_curve_is_concave_ccfl_convex() {
        // LED (saturating exp) exceeds linear at mid levels; CCFL (gamma>1)
        // is below linear.
        let mid = BacklightLevel(128);
        let led = TransferFunction::SaturatingExp { a: 2.0 }.luminance(mid);
        let ccfl = TransferFunction::Gamma { gamma: 1.5 }.luminance(mid);
        let lin = TransferFunction::Linear.luminance(mid);
        assert!(led > lin, "LED should be concave (above linear)");
        assert!(ccfl < lin, "CCFL should be convex (below linear)");
    }

    #[test]
    fn inverse_never_underdrives() {
        for f in FUNCS {
            for i in 0..=100 {
                let target = f64::from(i) / 100.0;
                let level = f.level_for_luminance(target);
                assert!(
                    f.luminance(level) + 1e-12 >= target,
                    "{f:?} target {target} level {level}"
                );
                // And one step lower would under-drive (minimality).
                if level.0 > 0 {
                    assert!(f.luminance(BacklightLevel(level.0 - 1)) < target);
                }
            }
        }
    }

    #[test]
    fn inverse_of_full_is_full() {
        for f in FUNCS {
            assert_eq!(f.level_for_luminance(1.0), BacklightLevel::MAX);
            assert_eq!(f.level_for_luminance(0.0), BacklightLevel::MIN);
        }
    }

    #[test]
    fn lut_matches_search() {
        let f = TransferFunction::SaturatingExp { a: 2.2 };
        let lut = f.inverse_lut();
        for y in [0usize, 1, 17, 128, 200, 255] {
            assert_eq!(lut[y], f.level_for_luminance(y as f64 / 255.0));
        }
    }

    #[test]
    fn concave_transfer_saves_more_backlight() {
        // For a target luminance of 0.5 the LED device can drop to a much
        // lower level than a linear device — the effect the paper exploits
        // by "including the display properties in the loop".
        let led = TransferFunction::SaturatingExp { a: 2.2 }.level_for_luminance(0.5);
        let lin = TransferFunction::Linear.level_for_luminance(0.5);
        assert!(led < lin);
    }

    #[test]
    fn fraction_roundtrip() {
        assert_eq!(BacklightLevel::from_fraction(1.0), BacklightLevel::MAX);
        assert_eq!(BacklightLevel::from_fraction(0.0), BacklightLevel::MIN);
        assert_eq!(BacklightLevel::from_fraction(2.0), BacklightLevel::MAX);
        let l = BacklightLevel(128);
        assert!((BacklightLevel::from_fraction(l.fraction()).0 as i16 - 128).abs() <= 1);
    }

    #[test]
    fn white_response_is_monotone() {
        let mut last = -1.0;
        for w in 0..=255u8 {
            let r = panel_white_response(w, 1.1);
            assert!(r >= last);
            last = r;
        }
        assert!((panel_white_response(255, 1.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_impl() {
        assert_eq!(BacklightLevel(128).to_string(), "128/255");
    }
}
