//! Runtime backlight controller.
//!
//! §4.3: "Sometimes, better results are obtained if we allow backlight
//! changes for each frame (but it may introduce some flicker). Both these
//! thresholds were experimentally set for minimizing visible spikes."
//!
//! The controller is the only piece of the technique that runs on the
//! client: it receives the annotated backlight level for the current
//! scene/frame and applies it, subject to a minimum switching interval and
//! a minimum step size that suppress visible flicker. It also keeps the
//! statistics (switch count, flicker score) used to evaluate per-frame vs
//! per-scene annotation modes.

use crate::transfer::BacklightLevel;

/// Configuration of the client-side backlight controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Minimum time between two backlight changes, in seconds. Requests
    /// arriving earlier are ignored (the paper's threshold interval).
    pub min_switch_interval_s: f64,
    /// Changes smaller than this many levels are ignored.
    pub min_step: u8,
}

annolight_support::impl_json!(struct ControllerConfig { min_switch_interval_s, min_step });

impl Default for ControllerConfig {
    fn default() -> Self {
        // The paper sets the scene-change guard experimentally; 0.5 s and a
        // 4-level dead-band suppress visible spikes in our model.
        Self { min_switch_interval_s: 0.5, min_step: 4 }
    }
}

/// Statistics accumulated by a [`BacklightController`] during playback.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchStats {
    /// Number of requests that actually changed the backlight.
    pub switches: u64,
    /// Number of requests suppressed by the interval or dead-band guard.
    pub suppressed: u64,
    /// Sum of absolute level changes applied (a proxy for flicker energy).
    pub total_travel: u64,
    /// Largest single applied step.
    pub max_step: u8,
}

annolight_support::impl_json!(struct SwitchStats { switches, suppressed, total_travel, max_step });

impl SwitchStats {
    /// A simple flicker score: level travel per switch, 0 when no switch
    /// occurred. Large, frequent jumps score high.
    pub fn flicker_score(&self) -> f64 {
        if self.switches == 0 {
            0.0
        } else {
            self.total_travel as f64 / self.switches as f64
        }
    }
}

/// The client-side backlight state machine.
///
/// # Example
///
/// ```
/// use annolight_display::{BacklightController, BacklightLevel, ControllerConfig};
/// let mut ctl = BacklightController::new(ControllerConfig::default());
/// // Scene 1 at t = 0 s wants a dimmer backlight:
/// assert_eq!(ctl.request(0.0, BacklightLevel(140)), BacklightLevel(140));
/// // A request 0.1 s later is inside the guard interval and is ignored:
/// assert_eq!(ctl.request(0.1, BacklightLevel(90)), BacklightLevel(140));
/// // After the guard expires the change is applied:
/// assert_eq!(ctl.request(1.0, BacklightLevel(90)), BacklightLevel(90));
/// ```
#[derive(Debug, Clone)]
pub struct BacklightController {
    config: ControllerConfig,
    current: BacklightLevel,
    last_switch_time: Option<f64>,
    stats: SwitchStats,
}

impl BacklightController {
    /// Creates a controller starting at full backlight (the device default
    /// before playback begins).
    pub fn new(config: ControllerConfig) -> Self {
        Self {
            config,
            current: BacklightLevel::MAX,
            last_switch_time: None,
            stats: SwitchStats::default(),
        }
    }

    /// The level currently applied to the hardware.
    pub fn current(&self) -> BacklightLevel {
        self.current
    }

    /// Accumulated switching statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// The controller configuration.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// Requests `level` at playback time `now_s` (seconds, monotone
    /// non-decreasing across calls). Returns the level actually in effect
    /// afterwards.
    ///
    /// The very first request is always honoured; later requests are
    /// subject to the guard interval and dead-band.
    pub fn request(&mut self, now_s: f64, level: BacklightLevel) -> BacklightLevel {
        let step = (i16::from(level.0) - i16::from(self.current.0)).unsigned_abs() as u8;
        if step == 0 {
            return self.current;
        }
        let too_soon = match self.last_switch_time {
            Some(t) => now_s - t < self.config.min_switch_interval_s,
            None => false,
        };
        if too_soon || step < self.config.min_step {
            self.stats.suppressed += 1;
            return self.current;
        }
        self.current = level;
        self.last_switch_time = Some(now_s);
        self.stats.switches += 1;
        self.stats.total_travel += u64::from(step);
        self.stats.max_step = self.stats.max_step.max(step);
        self.current
    }

    /// Forces the backlight to `level` immediately, bypassing the guards
    /// (used when playback stops and the OS restores full brightness).
    pub fn force(&mut self, now_s: f64, level: BacklightLevel) {
        if level != self.current {
            let step = (i16::from(level.0) - i16::from(self.current.0)).unsigned_abs() as u8;
            self.stats.switches += 1;
            self.stats.total_travel += u64::from(step);
            self.stats.max_step = self.stats.max_step.max(step);
            self.current = level;
            self.last_switch_time = Some(now_s);
        }
    }
}

impl Default for BacklightController {
    fn default() -> Self {
        Self::new(ControllerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_full() {
        let ctl = BacklightController::default();
        assert_eq!(ctl.current(), BacklightLevel::MAX);
    }

    #[test]
    fn first_request_applies() {
        let mut ctl = BacklightController::default();
        assert_eq!(ctl.request(0.0, BacklightLevel(100)), BacklightLevel(100));
        assert_eq!(ctl.stats().switches, 1);
    }

    #[test]
    fn guard_interval_suppresses() {
        let mut ctl = BacklightController::default();
        ctl.request(0.0, BacklightLevel(100));
        assert_eq!(ctl.request(0.2, BacklightLevel(50)), BacklightLevel(100));
        assert_eq!(ctl.stats().suppressed, 1);
        assert_eq!(ctl.request(0.6, BacklightLevel(50)), BacklightLevel(50));
    }

    #[test]
    fn dead_band_suppresses_small_steps() {
        let mut ctl = BacklightController::new(ControllerConfig {
            min_switch_interval_s: 0.0,
            min_step: 10,
        });
        ctl.request(0.0, BacklightLevel(100));
        assert_eq!(ctl.request(1.0, BacklightLevel(95)), BacklightLevel(100));
        assert_eq!(ctl.request(2.0, BacklightLevel(80)), BacklightLevel(80));
    }

    #[test]
    fn same_level_is_free() {
        let mut ctl = BacklightController::default();
        ctl.request(0.0, BacklightLevel(100));
        ctl.request(5.0, BacklightLevel(100));
        assert_eq!(ctl.stats().switches, 1);
        assert_eq!(ctl.stats().suppressed, 0);
    }

    #[test]
    fn travel_and_max_step_tracked() {
        let mut ctl = BacklightController::default();
        ctl.request(0.0, BacklightLevel(155)); // step 100
        ctl.request(1.0, BacklightLevel(205)); // step 50
        let s = ctl.stats();
        assert_eq!(s.total_travel, 150);
        assert_eq!(s.max_step, 100);
        assert!((s.flicker_score() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn force_bypasses_guards() {
        let mut ctl = BacklightController::default();
        ctl.request(0.0, BacklightLevel(100));
        ctl.force(0.1, BacklightLevel::MAX);
        assert_eq!(ctl.current(), BacklightLevel::MAX);
    }

    #[test]
    fn flicker_score_zero_without_switches() {
        assert_eq!(SwitchStats::default().flicker_score(), 0.0);
    }
}
