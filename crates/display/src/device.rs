//! Device profiles for the three PDAs characterised in §5.
//!
//! "Three devices with different LCD technology were used in our
//! experiments: iPAQ 3650 and Zaurus SL-5600 (reflective display, CCFL
//! backlight) and iPAQ 5555 (transflective display, LED backlight). …
//! Each display technology showed a different transfer characteristic."
//!
//! The transfer-curve shapes and power figures are calibrated from the
//! qualitative descriptions in the paper (LED: simpler drive, lower power,
//! faster response; backlight ≈ 25–30 % of total device power), not from
//! proprietary datasheets; see `DESIGN.md` §2 for the substitution note.

use crate::panel::{Panel, PanelKind};
use crate::power::BacklightPowerModel;
use crate::transfer::TransferFunction;

/// Backlight lamp technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BacklightTechnology {
    /// Cold-cathode fluorescent lamp: needs a high-voltage AC inverter,
    /// suited to larger panels, poor efficiency at low drive levels.
    Ccfl,
    /// White LED: simple drive circuitry, lower power, fast response.
    WhiteLed,
}

annolight_support::impl_json!(enum BacklightTechnology { Ccfl, WhiteLed });

/// A complete display subsystem description for one handheld device.
///
/// This is what the client sends to the server during the negotiation phase
/// (§4.3) so annotations can be tailored to the device; alternatively the
/// client keeps it and performs the final "multiplication + table look-up"
/// locally.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    panel: Panel,
    technology: BacklightTechnology,
    transfer: TransferFunction,
    backlight_power: BacklightPowerModel,
    /// Native display resolution (width, height).
    resolution: (u32, u32),
}

annolight_support::impl_json!(struct DeviceProfile { name, panel, technology, transfer, backlight_power, resolution });

impl DeviceProfile {
    /// Creates a custom device profile.
    pub fn new(
        name: impl Into<String>,
        panel: Panel,
        technology: BacklightTechnology,
        transfer: TransferFunction,
        backlight_power: BacklightPowerModel,
        resolution: (u32, u32),
    ) -> Self {
        Self {
            name: name.into(),
            panel,
            technology,
            transfer,
            backlight_power,
            resolution,
        }
    }

    /// The HP iPAQ 5555 (400 MHz XScale, 64K-colour transflective TFT,
    /// white-LED backlight) — the device the paper instruments for power
    /// measurements. LED backlights saturate towards full drive, so the
    /// transfer is concave (`SaturatingExp`).
    pub fn ipaq_5555() -> Self {
        Self::new(
            "ipaq-5555",
            Panel::new(PanelKind::Transflective, 0.85, 0.12, 1.08),
            BacklightTechnology::WhiteLed,
            TransferFunction::SaturatingExp { a: 1.3 },
            BacklightPowerModel::new(0.10, 0.85),
            (240, 320),
        )
    }

    /// The Compaq iPAQ 3650 (reflective TFT with CCFL frontlight). CCFL
    /// output collapses at low drive levels, giving a convex transfer.
    pub fn ipaq_3650() -> Self {
        Self::new(
            "ipaq-3650",
            Panel::new(PanelKind::Reflective, 0.70, 0.25, 1.15),
            BacklightTechnology::Ccfl,
            TransferFunction::Gamma { gamma: 1.55 },
            BacklightPowerModel::new(0.12, 1.10),
            (240, 320),
        )
    }

    /// The Sharp Zaurus SL-5600 (reflective TFT with CCFL frontlight, a
    /// slightly newer lamp than the iPAQ 3650's).
    pub fn zaurus_sl5600() -> Self {
        Self::new(
            "zaurus-sl5600",
            Panel::new(PanelKind::Reflective, 0.72, 0.22, 1.12),
            BacklightTechnology::Ccfl,
            TransferFunction::Gamma { gamma: 1.35 },
            BacklightPowerModel::new(0.10, 1.00),
            (240, 320),
        )
    }

    /// All three paper devices, iPAQ 5555 first.
    pub fn paper_devices() -> Vec<DeviceProfile> {
        vec![Self::ipaq_5555(), Self::ipaq_3650(), Self::zaurus_sl5600()]
    }

    /// Looks a paper device up by its stable name (`ipaq-5555`,
    /// `ipaq-3650`, `zaurus-sl5600`).
    ///
    /// ```
    /// use annolight_display::DeviceProfile;
    /// assert!(DeviceProfile::by_name("zaurus-sl5600").is_some());
    /// assert!(DeviceProfile::by_name("nokia-770").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<DeviceProfile> {
        Self::paper_devices().into_iter().find(|d| d.name() == name)
    }

    /// Device name (stable identifier used in annotations and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The panel model.
    pub fn panel(&self) -> &Panel {
        &self.panel
    }

    /// Backlight lamp technology.
    pub fn technology(&self) -> BacklightTechnology {
        self.technology
    }

    /// The backlight→luminance transfer function.
    pub fn transfer(&self) -> TransferFunction {
        self.transfer
    }

    /// The backlight power model.
    pub fn backlight_power(&self) -> &BacklightPowerModel {
        &self.backlight_power
    }

    /// Native resolution (width, height).
    pub fn resolution(&self) -> (u32, u32) {
        self.resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::BacklightLevel;

    #[test]
    fn paper_devices_have_distinct_transfer_curves() {
        let devs = DeviceProfile::paper_devices();
        assert_eq!(devs.len(), 3);
        let mid = BacklightLevel(128);
        let lums: Vec<f64> = devs.iter().map(|d| d.transfer().luminance(mid)).collect();
        // All distinct ("each display technology showed a different
        // transfer characteristic").
        assert!((lums[0] - lums[1]).abs() > 0.01);
        assert!((lums[1] - lums[2]).abs() > 0.01);
    }

    #[test]
    fn led_device_uses_led_technology() {
        assert_eq!(DeviceProfile::ipaq_5555().technology(), BacklightTechnology::WhiteLed);
        assert_eq!(DeviceProfile::ipaq_3650().technology(), BacklightTechnology::Ccfl);
    }

    #[test]
    fn led_backlight_is_lowest_power() {
        let led = DeviceProfile::ipaq_5555();
        let ccfl = DeviceProfile::ipaq_3650();
        assert!(led.backlight_power().max_w() < ccfl.backlight_power().max_w());
    }

    #[test]
    fn names_are_unique() {
        let devs = DeviceProfile::paper_devices();
        let mut names: Vec<&str> = devs.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn by_name_finds_all_paper_devices() {
        for d in DeviceProfile::paper_devices() {
            assert_eq!(DeviceProfile::by_name(d.name()).as_ref(), Some(&d));
        }
        assert!(DeviceProfile::by_name("").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let dev = DeviceProfile::ipaq_5555();
        let json = annolight_support::json::to_string(&dev);
        let back: DeviceProfile = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(dev, back);
    }

    #[test]
    fn resolution_is_qvga() {
        assert_eq!(DeviceProfile::ipaq_5555().resolution(), (240, 320));
    }
}
