//! LCD panel and backlight models for the `annolight` workspace.
//!
//! The paper's technique is *device-tailored*: the server computes, for each
//! scene, the backlight level a particular PDA must use, which requires the
//! device's **backlight→luminance transfer function** (measured in §5 with a
//! digital camera, Figs. 7–8) and its **power-vs-backlight model** (found to
//! be "almost proportional to backlight level, but little dependent of pixel
//! values").
//!
//! This crate models exactly those two artefacts, for the three devices the
//! paper characterises:
//!
//! * **iPAQ 3650** — reflective panel, CCFL frontlight;
//! * **Sharp Zaurus SL-5600** — reflective panel, CCFL frontlight;
//! * **iPAQ 5555** — transflective panel, white-LED backlight (the device
//!   used for the power measurements in Figs. 9–10).
//!
//! # Example
//!
//! ```
//! use annolight_display::{BacklightLevel, DeviceProfile};
//!
//! let dev = DeviceProfile::ipaq_5555();
//! // A scene whose (clipped) maximum luminance is 50% of full scale only
//! // needs the backlight bright enough to reproduce that level:
//! let level = dev.transfer().level_for_luminance(0.5);
//! assert!(level < BacklightLevel::MAX);
//! // ... and that dimming saves real power:
//! assert!(dev.backlight_power().savings_vs_full(level) > 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterise;
pub mod controller;
pub mod device;
pub mod panel;
pub mod power;
pub mod render;
pub mod transfer;

pub use characterise::{fit_transfer, TransferSample};
pub use controller::{BacklightController, ControllerConfig, SwitchStats};
pub use device::{BacklightTechnology, DeviceProfile};
pub use panel::{Panel, PanelKind};
pub use power::BacklightPowerModel;
pub use render::render_perceived;
pub use transfer::{BacklightLevel, TransferFunction};
