//! Fitting a transfer function to measured data (§5).
//!
//! "We start by first characterizing the display and backlight of our
//! PDAs. This is performed by displaying images of different solid gray
//! levels on the handhelds and capturing snapshots of the screen with a
//! digital camera." The captured `(backlight level, relative luminance)`
//! samples are then fitted to the parametric transfer families, giving
//! the device model used everywhere else ("our scheme allows us to tailor
//! the technique to each PDA … by including the display properties in the
//! loop").

use crate::transfer::{BacklightLevel, TransferFunction};

/// One measured point: the programmed backlight level and the relative
/// luminance the camera read off the screen (normalised so full backlight
/// is ~1).
pub type TransferSample = (BacklightLevel, f64);

/// Fits the best parametric [`TransferFunction`] to measured samples by
/// least squares over a dense parameter grid of both families
/// (saturating-exponential for LEDs, power-law for CCFLs), plus the linear
/// baseline.
///
/// Returns the winning curve and its root-mean-square error.
///
/// # Panics
///
/// Panics if fewer than 3 samples are supplied.
pub fn fit_transfer(samples: &[TransferSample]) -> (TransferFunction, f64) {
    assert!(samples.len() >= 3, "need at least 3 samples to fit a curve");
    let mut candidates = vec![TransferFunction::Linear];
    let mut a = 0.2f64;
    while a <= 6.0 {
        candidates.push(TransferFunction::SaturatingExp { a });
        a += 0.05;
    }
    let mut gamma = 0.4f64;
    while gamma <= 3.0 {
        candidates.push(TransferFunction::Gamma { gamma });
        gamma += 0.05;
    }
    let mut best = TransferFunction::Linear;
    let mut best_err = f64::INFINITY;
    for cand in candidates {
        let sse: f64 = samples
            .iter()
            .map(|&(level, lum)| {
                let d = cand.luminance(level) - lum;
                d * d
            })
            .sum();
        if sse < best_err {
            best_err = sse;
            best = cand;
        }
    }
    (best, (best_err / samples.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_curve(f: TransferFunction, noise: f64) -> Vec<TransferSample> {
        (0..=16u16)
            .map(|i| {
                let level = BacklightLevel((i * 16).min(255) as u8);
                // Deterministic "noise" so the test is reproducible.
                let jitter = noise * ((i as f64 * 2.39).sin());
                (level, (f.luminance(level) + jitter).clamp(0.0, 1.1))
            })
            .collect()
    }

    #[test]
    fn recovers_led_curve() {
        let truth = TransferFunction::SaturatingExp { a: 1.3 };
        let (fit, rmse) = fit_transfer(&sample_curve(truth, 0.0));
        match fit {
            TransferFunction::SaturatingExp { a } => assert!((a - 1.3).abs() < 0.051, "a = {a}"),
            other => panic!("fit wrong family: {other:?}"),
        }
        assert!(rmse < 1e-3);
    }

    #[test]
    fn recovers_ccfl_curve() {
        let truth = TransferFunction::Gamma { gamma: 1.55 };
        let (fit, _) = fit_transfer(&sample_curve(truth, 0.0));
        match fit {
            TransferFunction::Gamma { gamma } => assert!((gamma - 1.55).abs() < 0.051, "gamma = {gamma}"),
            other => panic!("fit wrong family: {other:?}"),
        }
    }

    #[test]
    fn tolerates_measurement_noise() {
        let truth = TransferFunction::Gamma { gamma: 1.35 };
        let (fit, rmse) = fit_transfer(&sample_curve(truth, 0.02));
        match fit {
            TransferFunction::Gamma { gamma } => assert!((gamma - 1.35).abs() < 0.2, "gamma = {gamma}"),
            // A heavily-noised convex curve could fit a nearby exp — don't
            // accept it silently, the RMSE bound below still guards.
            other => panic!("fit wrong family: {other:?}"),
        }
        assert!(rmse < 0.05, "rmse {rmse}");
    }

    #[test]
    fn identifies_linear_response() {
        let (fit, _) = fit_transfer(&sample_curve(TransferFunction::Linear, 0.0));
        // Linear is exactly representable by the grid's neighbours too;
        // accept any candidate within tight error of linear.
        let max_dev = (0..=255u16)
            .map(|v| {
                (fit.luminance(BacklightLevel(v as u8))
                    - TransferFunction::Linear.luminance(BacklightLevel(v as u8)))
                .abs()
            })
            .fold(0.0f64, f64::max);
        assert!(max_dev < 0.03, "fit {fit:?} deviates {max_dev}");
    }

    #[test]
    #[should_panic(expected = "at least 3 samples")]
    fn too_few_samples_panics() {
        fit_transfer(&[(BacklightLevel(0), 0.0), (BacklightLevel(255), 1.0)]);
    }
}
