//! LCD panel models.
//!
//! §4.1: "LCD displays are of three types: reflective, transmissive and
//! transflective. Most recent handhelds use transflective displays, which
//! perform best both indoors (low light) and outdoors (in sunlight)."
//!
//! The perceived pixel intensity is `I = ρ · L · Y` where `ρ` is the panel
//! transmittance, `L` the backlight luminance and `Y` the displayed image
//! luminance. Reflective and transflective panels additionally reflect a
//! fraction of the ambient light, which is why they remain readable with a
//! dimmed backlight outdoors.


/// The three LCD construction types discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PanelKind {
    /// Light passes from the backlight through the panel.
    Transmissive,
    /// Ambient light is reflected; a frontlight assists in the dark.
    Reflective,
    /// Hybrid: transmits backlight and reflects ambient light.
    Transflective,
}

annolight_support::impl_json!(enum PanelKind { Transmissive, Reflective, Transflective });

/// A parametric LCD panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Panel {
    kind: PanelKind,
    /// Transmittance `ρ` of the LCD stack, in `(0, 1]`.
    transmittance: f64,
    /// Fraction of ambient illuminance reflected towards the viewer.
    ambient_reflectance: f64,
    /// Gamma of the pixel-value → transmitted-luminance response (Fig. 8
    /// shows this is near-linear; a mild gamma captures the curvature).
    white_gamma: f64,
}

annolight_support::impl_json!(struct Panel { kind, transmittance, ambient_reflectance, white_gamma });

impl Panel {
    /// Creates a panel model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < transmittance ≤ 1`, `0 ≤ ambient_reflectance ≤ 1`
    /// and `white_gamma > 0`.
    pub fn new(kind: PanelKind, transmittance: f64, ambient_reflectance: f64, white_gamma: f64) -> Self {
        assert!(
            transmittance > 0.0 && transmittance <= 1.0,
            "transmittance {transmittance} outside (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&ambient_reflectance),
            "ambient reflectance {ambient_reflectance} outside [0, 1]"
        );
        assert!(white_gamma > 0.0, "white gamma {white_gamma} must be positive");
        Self { kind, transmittance, ambient_reflectance, white_gamma }
    }

    /// Panel construction type.
    pub fn kind(&self) -> PanelKind {
        self.kind
    }

    /// Transmittance `ρ`.
    pub fn transmittance(&self) -> f64 {
        self.transmittance
    }

    /// Fraction of ambient light reflected towards the viewer.
    pub fn ambient_reflectance(&self) -> f64 {
        self.ambient_reflectance
    }

    /// Gamma of the pixel-value response.
    pub fn white_gamma(&self) -> f64 {
        self.white_gamma
    }

    /// Perceived intensity `I = ρ · L · Y + reflected ambient`, where
    /// `backlight_luminance` (`L`) and `ambient` are relative luminances in
    /// `[0, 1]` and `white` is the displayed 8-bit gray level (`Y`).
    ///
    /// The result is a relative intensity; for a transmissive panel under
    /// zero ambient light it is exactly `ρ·L·Y^gamma`.
    pub fn perceived_intensity(&self, white: u8, backlight_luminance: f64, ambient: f64) -> f64 {
        let y = crate::transfer::panel_white_response(white, self.white_gamma);
        let transmitted = self.transmittance * backlight_luminance * y;
        let reflected = self.ambient_reflectance * ambient * y;
        transmitted + reflected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel() -> Panel {
        Panel::new(PanelKind::Transflective, 0.85, 0.12, 1.1)
    }

    #[test]
    fn perceived_intensity_zero_when_dark() {
        let p = panel();
        assert_eq!(p.perceived_intensity(0, 1.0, 1.0), 0.0);
        assert_eq!(p.perceived_intensity(255, 0.0, 0.0), 0.0);
    }

    #[test]
    fn perceived_intensity_scales_with_backlight() {
        let p = panel();
        let half = p.perceived_intensity(200, 0.5, 0.0);
        let full = p.perceived_intensity(200, 1.0, 0.0);
        assert!((full - 2.0 * half).abs() < 1e-12);
    }

    #[test]
    fn transflective_keeps_ambient_term() {
        let p = panel();
        let dark_room = p.perceived_intensity(128, 0.3, 0.0);
        let sunlight = p.perceived_intensity(128, 0.3, 1.0);
        assert!(sunlight > dark_room);
    }

    #[test]
    fn purely_transmissive_ignores_ambient() {
        let p = Panel::new(PanelKind::Transmissive, 0.9, 0.0, 1.0);
        assert_eq!(
            p.perceived_intensity(100, 0.4, 1.0),
            p.perceived_intensity(100, 0.4, 0.0)
        );
    }

    #[test]
    #[should_panic(expected = "transmittance")]
    fn rejects_bad_transmittance() {
        Panel::new(PanelKind::Reflective, 0.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "ambient")]
    fn rejects_bad_reflectance() {
        Panel::new(PanelKind::Reflective, 0.5, 1.5, 1.0);
    }

    #[test]
    fn getters() {
        let p = panel();
        assert_eq!(p.kind(), PanelKind::Transflective);
        assert!((p.transmittance() - 0.85).abs() < 1e-12);
        assert!((p.ambient_reflectance() - 0.12).abs() < 1e-12);
        assert!((p.white_gamma() - 1.1).abs() < 1e-12);
    }
}
