//! Backlight power model.
//!
//! §5: "From our experiments we also determined that the power consumption
//! of the LCD is almost proportional to backlight level, but little
//! dependent of pixel values, allowing us to analytically estimate the
//! power savings through simulation."
//!
//! We therefore model the LCD backlight subsystem as an affine function of
//! the backlight level, `P(b) = P_floor + (P_max − P_floor) · b/255`, with a
//! small constant panel term that does not scale (drive electronics).

use crate::transfer::BacklightLevel;

/// Affine power model of a backlight subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacklightPowerModel {
    /// Power at backlight level 0 (drive electronics + panel), in watts.
    floor_w: f64,
    /// Power at backlight level 255, in watts.
    max_w: f64,
}

annolight_support::impl_json!(struct BacklightPowerModel { floor_w, max_w });

impl BacklightPowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ floor_w < max_w`.
    pub fn new(floor_w: f64, max_w: f64) -> Self {
        assert!(floor_w >= 0.0 && max_w > floor_w, "need 0 <= floor ({floor_w}) < max ({max_w})");
        Self { floor_w, max_w }
    }

    /// Power at backlight level 0, in watts.
    pub fn floor_w(&self) -> f64 {
        self.floor_w
    }

    /// Power at the maximum backlight level, in watts.
    pub fn max_w(&self) -> f64 {
        self.max_w
    }

    /// Instantaneous power draw at `level`, in watts.
    pub fn power_w(&self, level: BacklightLevel) -> f64 {
        self.floor_w + (self.max_w - self.floor_w) * level.fraction()
    }

    /// Fractional power saving of running at `level` instead of full
    /// backlight, in `[0, 1)`.
    ///
    /// This is the quantity plotted per clip in Fig. 9.
    ///
    /// ```
    /// use annolight_display::{BacklightLevel, BacklightPowerModel};
    /// let m = BacklightPowerModel::new(0.1, 0.85);
    /// assert_eq!(m.savings_vs_full(BacklightLevel::MAX), 0.0);
    /// assert!(m.savings_vs_full(BacklightLevel(64)) > 0.5);
    /// ```
    pub fn savings_vs_full(&self, level: BacklightLevel) -> f64 {
        1.0 - self.power_w(level) / self.power_w(BacklightLevel::MAX)
    }

    /// Energy consumed over `seconds` at a constant `level`, in joules.
    pub fn energy_j(&self, level: BacklightLevel, seconds: f64) -> f64 {
        self.power_w(level) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BacklightPowerModel {
        BacklightPowerModel::new(0.06, 0.90)
    }

    #[test]
    fn power_is_affine() {
        let m = model();
        assert!((m.power_w(BacklightLevel::MIN) - 0.06).abs() < 1e-12);
        assert!((m.power_w(BacklightLevel::MAX) - 0.90).abs() < 1e-12);
        let mid = m.power_w(BacklightLevel(128));
        assert!(mid > 0.06 && mid < 0.90);
    }

    #[test]
    fn power_monotone_in_level() {
        let m = model();
        let mut last = -1.0;
        for v in 0..=255u8 {
            let p = m.power_w(BacklightLevel(v));
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn savings_full_is_zero() {
        let m = model();
        assert!(m.savings_vs_full(BacklightLevel::MAX).abs() < 1e-12);
    }

    #[test]
    fn savings_off_is_bounded_by_floor() {
        let m = model();
        let s = m.savings_vs_full(BacklightLevel::MIN);
        assert!((s - (1.0 - 0.06 / 0.90)).abs() < 1e-12);
        assert!(s < 1.0);
    }

    #[test]
    fn energy_integrates_power() {
        let m = model();
        let e = m.energy_j(BacklightLevel(255), 10.0);
        assert!((e - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need 0 <= floor")]
    fn rejects_inverted_range() {
        BacklightPowerModel::new(1.0, 0.5);
    }
}
