//! Rendering a frame through the display model.
//!
//! Produces the *perceived* luminance plane a viewer (or the validation
//! camera, Fig. 2) sees when a frame is displayed on a given device at a
//! given backlight level. This is the link between the image domain and the
//! optical domain: `I = ρ · L(b) · Y^γ + ambient term`.

use crate::device::DeviceProfile;
use crate::transfer::BacklightLevel;
use annolight_imgproc::{Frame, LumaFrame};

/// Renders `frame` on `device` at `backlight`, returning the perceived
/// luminance plane scaled so that a full-white pixel at full backlight on an
/// ideal panel maps to 255.
///
/// `ambient` is the relative ambient illumination in `[0, 1]` (0 = dark
/// room, as in the paper's measurement setup).
///
/// # Example
///
/// ```
/// use annolight_display::{render_perceived, BacklightLevel, DeviceProfile};
/// use annolight_imgproc::{Frame, Rgb8};
///
/// let dev = DeviceProfile::ipaq_5555();
/// let frame = Frame::filled(8, 8, Rgb8::gray(200));
/// let full = render_perceived(&frame, &dev, BacklightLevel::MAX, 0.0);
/// let dim = render_perceived(&frame, &dev, BacklightLevel(96), 0.0);
/// assert!(dim.mean() < full.mean());
/// ```
pub fn render_perceived(
    frame: &Frame,
    device: &DeviceProfile,
    backlight: BacklightLevel,
    ambient: f64,
) -> LumaFrame {
    let l = device.transfer().luminance(backlight);
    let panel = device.panel();
    let luma = frame.to_luma();
    let mut out = Vec::with_capacity(luma.samples().len());
    // Precompute the 256-entry response once; every pixel is then a table
    // look-up (mirrors what real hardware does and keeps rendering fast).
    let mut lut = [0u8; 256];
    for (white, slot) in lut.iter_mut().enumerate() {
        let i = panel.perceived_intensity(white as u8, l, ambient);
        *slot = (i * 255.0).round().clamp(0.0, 255.0) as u8;
    }
    for &y in luma.samples() {
        out.push(lut[y as usize]);
    }
    LumaFrame::from_buffer(frame.width(), frame.height(), out)
        .expect("buffer built from the source frame always matches its dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Rgb8;

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    #[test]
    fn dimming_darkens_output() {
        let frame = Frame::filled(16, 16, Rgb8::gray(180));
        let full = render_perceived(&frame, &device(), BacklightLevel::MAX, 0.0);
        let half = render_perceived(&frame, &device(), BacklightLevel(80), 0.0);
        assert!(half.mean() < full.mean());
    }

    #[test]
    fn black_frame_renders_black() {
        let frame = Frame::new(8, 8);
        let out = render_perceived(&frame, &device(), BacklightLevel::MAX, 0.0);
        assert_eq!(out.mean(), 0.0);
    }

    #[test]
    fn output_monotone_in_input_luma() {
        let frame = Frame::from_fn(256, 1, |x, _| [x as u8, x as u8, x as u8]);
        let out = render_perceived(&frame, &device(), BacklightLevel(200), 0.0);
        let s = out.samples();
        for i in 1..s.len() {
            assert!(s[i] >= s[i - 1]);
        }
    }

    #[test]
    fn compensation_plus_dimming_preserves_perception() {
        // The core identity of the paper: dim the backlight to L', scale
        // the image by k = L/L', and the perceived output stays close for
        // unclipped pixels.
        let dev = device();
        let original = Frame::filled(8, 8, Rgb8::gray(100));
        let full_render = render_perceived(&original, &dev, BacklightLevel::MAX, 0.0);

        let target_level = dev.transfer().level_for_luminance(0.55);
        let l_ratio = 1.0 / dev.transfer().luminance(target_level);
        let mut compensated = original.clone();
        // Compensate in the luminance domain: invert the panel gamma so the
        // transmitted luminance scales by exactly l_ratio.
        let gamma = dev.panel().white_gamma();
        let k = (l_ratio).powf(1.0 / gamma) as f32;
        annolight_imgproc::contrast_enhance(&mut compensated, k);
        let dim_render = render_perceived(&compensated, &dev, target_level, 0.0);

        let diff = (dim_render.mean() - full_render.mean()).abs();
        assert!(
            diff <= 3.0,
            "perceived mean drifted by {diff} (full {} vs dim {})",
            full_render.mean(),
            dim_render.mean()
        );
    }

    #[test]
    fn ambient_light_raises_transflective_output() {
        let frame = Frame::filled(8, 8, Rgb8::gray(128));
        let dark = render_perceived(&frame, &device(), BacklightLevel(64), 0.0);
        let sunny = render_perceived(&frame, &device(), BacklightLevel(64), 0.8);
        assert!(sunny.mean() > dark.mean());
    }
}
