//! Head-to-head policy evaluation.

use crate::policies::BacklightPolicy;
use annolight_core::LuminanceProfile;
use annolight_display::DeviceProfile;

/// The measured behaviour of one policy on one clip/device.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvaluation {
    /// Policy name.
    pub policy: String,
    /// Mean backlight power saving vs. full backlight, `[0, 1)`.
    pub power_savings: f64,
    /// Mean realised clipped-pixel fraction across frames.
    pub mean_clipped: f64,
    /// Worst single-frame clipped fraction.
    pub worst_clipped: f64,
    /// Frames whose clipping exceeded the budget (quality violations).
    pub violations: u32,
    /// Total frames evaluated.
    pub frames: u32,
    /// Mean absolute backlight level change between consecutive frames
    /// (flicker proxy).
    pub mean_level_travel: f64,
}

annolight_support::impl_json!(struct PolicyEvaluation { policy, power_savings, mean_clipped, worst_clipped, violations, frames, mean_level_travel });

/// Evaluates `policy` on a profiled clip for `device`, scoring clipping
/// against `budget` (a clip fraction in `[0, 1]`).
///
/// A frame *violates* quality when the pixels above the policy's effective
/// max exceed the budget by more than 1 % absolute — slack for the
/// discrete histogram boundary.
///
/// # Panics
///
/// Panics if the policy returns the wrong number of decisions.
pub fn evaluate(
    policy: &dyn BacklightPolicy,
    profile: &LuminanceProfile,
    device: &DeviceProfile,
    budget: f64,
) -> PolicyEvaluation {
    let decisions = policy.decide(profile, device);
    assert_eq!(decisions.len(), profile.len(), "policy must decide every frame");
    let mut savings = 0.0;
    let mut clipped_sum = 0.0;
    let mut worst: f64 = 0.0;
    let mut violations = 0u32;
    let mut travel = 0.0;
    for (i, (stats, &(level, effective))) in profile.frames().iter().zip(&decisions).enumerate() {
        savings += device.backlight_power().savings_vs_full(level);
        let clipped = stats.histogram.fraction_above(effective);
        clipped_sum += clipped;
        worst = worst.max(clipped);
        if clipped > budget + 0.01 {
            violations += 1;
        }
        if i > 0 {
            travel += f64::from((i32::from(level.0) - i32::from(decisions[i - 1].0 .0)).unsigned_abs());
        }
    }
    let n = profile.len() as f64;
    PolicyEvaluation {
        policy: policy.name().to_owned(),
        power_savings: savings / n,
        mean_clipped: clipped_sum / n,
        worst_clipped: worst,
        violations,
        frames: profile.len() as u32,
        mean_level_travel: if profile.len() > 1 { travel / (n - 1.0) } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::*;
    use annolight_core::QualityLevel;
    use annolight_video::ClipLibrary;

    fn profile() -> LuminanceProfile {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(6.0);
        LuminanceProfile::of_clip(&clip).unwrap()
    }

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    #[test]
    fn full_backlight_saves_nothing_and_never_violates() {
        let e = evaluate(&FullBacklight, &profile(), &device(), 0.10);
        assert!(e.power_savings.abs() < 1e-12);
        assert_eq!(e.violations, 0);
        assert_eq!(e.mean_clipped, 0.0);
    }

    #[test]
    fn annotation_saves_without_violations() {
        let p = profile();
        let e = evaluate(&AnnotationPolicy { quality: QualityLevel::Q10 }, &p, &device(), 0.10);
        assert!(e.power_savings > 0.2, "savings {}", e.power_savings);
        // Scene-level budgets can concentrate clipping in single frames;
        // violations must still be rare.
        assert!(
            f64::from(e.violations) <= 0.1 * f64::from(e.frames),
            "{} violations of {}",
            e.violations,
            e.frames
        );
    }

    #[test]
    fn oracle_never_violates_and_saves_most() {
        let p = profile();
        let oracle = evaluate(&OracleDls { quality: QualityLevel::Q10 }, &p, &device(), 0.10);
        assert_eq!(oracle.violations, 0, "oracle has perfect knowledge");
        let anno = evaluate(&AnnotationPolicy { quality: QualityLevel::Q10 }, &p, &device(), 0.10);
        // The per-scene annotation amortises its clip budget across a whole
        // scene, so it may clip marginally more on individual frames than
        // the per-frame oracle and edge it out by content noise; allow that
        // sliver while still requiring the oracle to dominate.
        assert!(oracle.power_savings + 5e-3 >= anno.power_savings);
    }

    /// A deterministic profile with a hard dark→bright cut at frame 20.
    fn cut_profile() -> LuminanceProfile {
        use annolight_imgproc::{Frame, Rgb8};
        let mut frames: Vec<Frame> = (0..20).map(|_| Frame::filled(8, 8, Rgb8::gray(50))).collect();
        frames.extend((0..10).map(|_| Frame::filled(8, 8, Rgb8::gray(230))));
        LuminanceProfile::of_frames(10.0, frames).unwrap()
    }

    #[test]
    fn history_violates_on_scene_cuts() {
        let hist = evaluate(&HistoryPrediction::default(), &cut_profile(), &device(), 0.10);
        assert!(hist.violations > 0, "history prediction should mispredict the cut");
        let oracle =
            evaluate(&OracleDls { quality: QualityLevel::Q10 }, &cut_profile(), &device(), 0.10);
        assert_eq!(oracle.violations, 0);
    }

    #[test]
    fn static_dim_clips_bright_content() {
        // On a bright cartoon the fixed level clips most of every frame.
        let clip = ClipLibrary::paper_clip("ice_age").unwrap().preview(4.0);
        let p = LuminanceProfile::of_clip(&clip).unwrap();
        let e = evaluate(&StaticDim { effective_max: 120 }, &p, &device(), 0.10);
        assert!(e.worst_clipped > 0.3, "worst clipped {}", e.worst_clipped);
        assert!(e.violations > 0);
    }

    #[test]
    fn smoothing_trades_savings_for_stability() {
        let p = profile();
        let oracle = evaluate(&OracleDls { quality: QualityLevel::Q10 }, &p, &device(), 0.10);
        let qabs = evaluate(&QabsSmoothed { quality: QualityLevel::Q10, alpha: 0.2 }, &p, &device(), 0.10);
        assert!(qabs.mean_level_travel <= oracle.mean_level_travel + 1e-9);
        assert!(qabs.power_savings <= oracle.power_savings + 1e-9);
    }

    #[test]
    fn annotation_flickers_less_than_oracle() {
        let p = profile();
        let anno = evaluate(&AnnotationPolicy { quality: QualityLevel::Q10 }, &p, &device(), 0.10);
        let oracle = evaluate(&OracleDls { quality: QualityLevel::Q10 }, &p, &device(), 0.10);
        assert!(
            anno.mean_level_travel <= oracle.mean_level_travel,
            "per-scene annotation should switch less than per-frame oracle"
        );
    }
}
