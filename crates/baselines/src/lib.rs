//! Baseline backlight policies the annotation technique is compared with.
//!
//! §2 of the paper contrasts annotation-driven scaling with prior work:
//! hardware per-frame scaling (DLS/DCE), history-based prediction ("the
//! limited knowledge can have serious consequences on quality degradation
//! if prediction proves wrong. It would also place a heavier load on the
//! mobile device"), and smoothed scaling (QABS). This crate implements
//! comparable software policies over the same profiles, devices and
//! quality budgets, so the trade-offs can be measured head-to-head:
//!
//! * [`FullBacklight`] — no optimisation (the measurement baseline);
//! * [`StaticDim`] — a fixed dimming level, content-blind;
//! * [`HistoryPrediction`] — online per-frame prediction from recent
//!   frames, with quality *violations* when the prediction is wrong;
//! * [`OracleDls`] — per-frame scaling with perfect knowledge (the
//!   hardware-DLS upper bound);
//! * [`QabsSmoothed`] — the oracle filtered by an exponential smoother to
//!   suppress backlight flicker, QABS-style;
//! * [`DynamicToneMapping`] — DTM-style fixed-percentile scaling
//!   (unbounded distortion, simpler control);
//! * [`AnnotationPolicy`] — the paper's technique, wrapped in the same
//!   interface.
//!
//! [`evaluate()`](evaluate::evaluate) runs any policy and reports power savings, realised
//! clipping, quality violations and flicker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluate;
pub mod policies;

pub use evaluate::{evaluate, PolicyEvaluation};
pub use policies::{
    AnnotationPolicy, BacklightPolicy, DynamicToneMapping, FullBacklight, HistoryPrediction,
    OracleDls, QabsSmoothed, StaticDim,
};
