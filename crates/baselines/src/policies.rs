//! The policy implementations.

use annolight_core::plan::plan_levels;
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::{BacklightLevel, DeviceProfile};

/// A backlight policy: given a profiled clip and a device, choose a
/// backlight level for every frame.
///
/// Policies also report, per frame, the *effective maximum luminance* they
/// compensated for — pixels above it clip, which is how quality violations
/// are scored against the budget.
pub trait BacklightPolicy {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Per-frame `(backlight level, effective max luminance)` decisions.
    ///
    /// `profile` carries per-frame histograms; implementations may only
    /// use *past* frames if they claim to be online.
    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)>;

    /// Whether the policy can run without the whole clip in advance.
    fn online(&self) -> bool {
        false
    }
}

/// No optimisation: full backlight, nothing clips.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullBacklight;

impl BacklightPolicy for FullBacklight {
    fn name(&self) -> &'static str {
        "full-backlight"
    }

    fn decide(&self, profile: &LuminanceProfile, _: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        vec![(BacklightLevel::MAX, 255); profile.len()]
    }
}

/// A fixed dimming level with matching compensation, content-blind.
/// Bright frames clip heavily — the static approach the paper's intro
/// dismisses ("there is a limited gain that can be achieved from a static
/// perspective").
#[derive(Debug, Clone, Copy)]
pub struct StaticDim {
    /// The fixed effective maximum luminance (e.g. 200 ≈ 78 % headroom).
    pub effective_max: u8,
}

impl BacklightPolicy for StaticDim {
    fn name(&self) -> &'static str {
        "static-dim"
    }

    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        let (_, level) = plan_levels(device, self.effective_max);
        vec![(level, self.effective_max); profile.len()]
    }
}

/// Online history-based prediction: the effective max for frame *i* is
/// predicted from the clip levels of the last `window` frames plus a
/// safety `margin`. Mispredictions cause visible over-clipping — exactly
/// the failure mode the paper attributes to history-based schemes.
#[derive(Debug, Clone, Copy)]
pub struct HistoryPrediction {
    /// How many past frames inform the prediction.
    pub window: usize,
    /// Safety margin added to the predicted level, luminance counts.
    pub margin: u8,
    /// The quality budget used to read per-frame clip levels.
    pub quality: QualityLevel,
}

impl Default for HistoryPrediction {
    fn default() -> Self {
        Self { window: 8, margin: 8, quality: QualityLevel::Q10 }
    }
}

impl BacklightPolicy for HistoryPrediction {
    fn name(&self) -> &'static str {
        "history-prediction"
    }

    fn online(&self) -> bool {
        true
    }

    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        let q = self.quality.clip_fraction();
        let mut out = Vec::with_capacity(profile.len());
        let mut history: Vec<u8> = Vec::new();
        for stats in profile.frames() {
            let effective = if history.is_empty() {
                // No history yet: play safe at full range.
                255
            } else {
                let recent = &history[history.len().saturating_sub(self.window)..];
                let max = recent.iter().copied().max().unwrap_or(255);
                max.saturating_add(self.margin)
            };
            let (_, level) = plan_levels(device, effective);
            out.push((level, effective));
            // Only now does the client learn this frame's true statistics.
            history.push(stats.histogram.clip_level(q));
        }
        out
    }
}

/// Per-frame scaling with perfect knowledge of each frame — the upper
/// bound a hardware DLS implementation could reach.
#[derive(Debug, Clone, Copy)]
pub struct OracleDls {
    /// The quality budget.
    pub quality: QualityLevel,
}

impl BacklightPolicy for OracleDls {
    fn name(&self) -> &'static str {
        "oracle-dls"
    }

    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        let q = self.quality.clip_fraction();
        profile
            .frames()
            .iter()
            .map(|f| {
                let eff = f.histogram.clip_level(q);
                let (_, level) = plan_levels(device, eff);
                (level, eff)
            })
            .collect()
    }
}

/// The oracle's levels passed through an exponential smoother, preventing
/// frequent backlight switching (the post-processing smoothing of QABS).
#[derive(Debug, Clone, Copy)]
pub struct QabsSmoothed {
    /// The quality budget.
    pub quality: QualityLevel,
    /// Smoothing factor in `(0, 1]`; 1 = no smoothing.
    pub alpha: f64,
}

impl BacklightPolicy for QabsSmoothed {
    fn name(&self) -> &'static str {
        "qabs-smoothed"
    }

    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        let raw = OracleDls { quality: self.quality }.decide(profile, device);
        let mut out = Vec::with_capacity(raw.len());
        let mut smoothed = f64::from(raw.first().map_or(255, |(l, _)| l.0));
        for (level, _) in raw {
            smoothed += self.alpha * (f64::from(level.0) - smoothed);
            // Never smooth *below* the frame's requirement: that would
            // under-light unclipped content. Raise to the requirement.
            let applied = smoothed.max(f64::from(level.0)).round() as u8;
            // The effective max actually honoured is at least the frame's.
            let eff = effective_for_level(device, BacklightLevel(applied));
            out.push((BacklightLevel(applied), eff));
        }
        out
    }
}

/// A DTM-flavoured policy (Iranli & Pedram's dynamic tone mapping, cited
/// in §2): instead of a hard clipping budget, every frame is driven at the
/// backlight that reproduces a fixed high percentile of its luminance,
/// tone-mapping whatever sits above. Simpler than budgeted clipping, but
/// the distortion is content-dependent rather than bounded.
#[derive(Debug, Clone, Copy)]
pub struct DynamicToneMapping {
    /// The luminance percentile preserved exactly (e.g. 0.95).
    pub percentile: f64,
}

impl BacklightPolicy for DynamicToneMapping {
    fn name(&self) -> &'static str {
        "dtm-percentile"
    }

    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        profile
            .frames()
            .iter()
            .map(|f| {
                let eff = f.histogram.percentile(self.percentile);
                let (_, level) = plan_levels(device, eff);
                (level, eff)
            })
            .collect()
    }
}

/// The paper's technique wrapped as a policy (per-scene annotations).
#[derive(Debug, Clone, Copy)]
pub struct AnnotationPolicy {
    /// The quality budget.
    pub quality: QualityLevel,
}

impl BacklightPolicy for AnnotationPolicy {
    fn name(&self) -> &'static str {
        "annotation"
    }

    fn decide(&self, profile: &LuminanceProfile, device: &DeviceProfile) -> Vec<(BacklightLevel, u8)> {
        let annotated = Annotator::new(device.clone(), self.quality)
            .annotate_profile(profile)
            .expect("non-empty profile");
        let track = annotated.track();
        (0..profile.len() as u32)
            .map(|i| {
                let e = track.entry_at(i).expect("frame in range");
                (e.backlight, e.effective_max_luma)
            })
            .collect()
    }
}

/// The largest display luminance a backlight level can reproduce without
/// compensation clipping, expressed as an 8-bit effective max.
fn effective_for_level(device: &DeviceProfile, level: BacklightLevel) -> u8 {
    let gamma = device.panel().white_gamma();
    let l = device.transfer().luminance(level);
    ((l.powf(1.0 / gamma)) * 255.0).round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::{Frame, Rgb8};

    fn profile(maxes: &[u8]) -> LuminanceProfile {
        let frames: Vec<Frame> = maxes
            .iter()
            .map(|&m| {
                let mut f = Frame::filled(8, 8, Rgb8::gray(m / 2));
                f.set_pixel(0, 0, Rgb8::gray(m));
                f
            })
            .collect();
        LuminanceProfile::of_frames(10.0, frames).unwrap()
    }

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    #[test]
    fn full_backlight_never_dims() {
        let p = profile(&[100, 200, 50]);
        let d = FullBacklight.decide(&p, &device());
        assert!(d.iter().all(|&(l, e)| l == BacklightLevel::MAX && e == 255));
    }

    #[test]
    fn static_dim_is_constant() {
        let p = profile(&[100, 200, 50]);
        let d = StaticDim { effective_max: 200 }.decide(&p, &device());
        assert!(d.windows(2).all(|w| w[0] == w[1]));
        assert!(d[0].0 < BacklightLevel::MAX);
    }

    #[test]
    fn oracle_tracks_frame_content() {
        let p = profile(&[60, 240, 60]);
        let d = OracleDls { quality: QualityLevel::Q0 }.decide(&p, &device());
        assert!(d[0].0 < d[1].0, "dark frame should get dimmer backlight");
        assert_eq!(d[0].0, d[2].0);
    }

    #[test]
    fn history_first_frame_is_safe() {
        let p = profile(&[60, 60, 60]);
        let d = HistoryPrediction::default().decide(&p, &device());
        assert_eq!(d[0].0, BacklightLevel::MAX);
        assert!(d[2].0 < BacklightLevel::MAX, "later frames learn the content");
    }

    #[test]
    fn history_mispredicts_on_cut() {
        // Dark stretch then a hard bright cut: the prediction at the cut
        // is based on dark history, so the effective max is far below the
        // frame's needs.
        let mut maxes = vec![60u8; 20];
        maxes.push(250);
        let p = profile(&maxes);
        let d = HistoryPrediction::default().decide(&p, &device());
        let (_, eff_at_cut) = d[20];
        assert!(eff_at_cut < 200, "prediction should miss the cut, got {eff_at_cut}");
    }

    #[test]
    fn qabs_levels_never_below_oracle() {
        let p = profile(&[60, 240, 60, 240, 60]);
        let oracle = OracleDls { quality: QualityLevel::Q10 }.decide(&p, &device());
        let smoothed = QabsSmoothed { quality: QualityLevel::Q10, alpha: 0.3 }.decide(&p, &device());
        for (o, s) in oracle.iter().zip(&smoothed) {
            assert!(s.0 >= o.0, "smoothed {s:?} below oracle {o:?}");
        }
    }

    #[test]
    fn qabs_reduces_level_travel() {
        let p = profile(&[60, 240, 60, 240, 60, 240, 60, 240]);
        let travel = |d: &[(BacklightLevel, u8)]| {
            d.windows(2).map(|w| (i32::from(w[0].0 .0) - i32::from(w[1].0 .0)).abs()).sum::<i32>()
        };
        let oracle = OracleDls { quality: QualityLevel::Q10 }.decide(&p, &device());
        let smoothed = QabsSmoothed { quality: QualityLevel::Q10, alpha: 0.25 }.decide(&p, &device());
        assert!(travel(&smoothed) < travel(&oracle));
    }

    #[test]
    fn annotation_policy_matches_profile_length() {
        let p = profile(&[60, 60, 240, 240]);
        let d = AnnotationPolicy { quality: QualityLevel::Q10 }.decide(&p, &device());
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn dtm_tracks_percentile() {
        let p = profile(&[60, 240, 60]);
        let d = DynamicToneMapping { percentile: 0.95 }.decide(&p, &device());
        assert_eq!(d.len(), 3);
        assert!(d[1].0 > d[0].0, "bright frame needs more backlight");
    }

    #[test]
    fn dtm_distortion_is_unbounded_by_design() {
        // A frame where 30% of pixels sit above the 95th-percentile...
        // cannot exist by definition; instead check DTM clips more than a
        // 5% budget on a frame with a heavy bright mass.
        use annolight_imgproc::Frame as F;
        let f = F::from_fn(10, 10, |x, _| if x < 3 { [250, 250, 250] } else { [50, 50, 50] });
        let p = LuminanceProfile::of_frames(10.0, vec![f]).unwrap();
        let d = DynamicToneMapping { percentile: 0.5 }.decide(&p, &device());
        let (_, eff) = d[0];
        let clipped = p.frames()[0].histogram.fraction_above(eff);
        assert!(clipped > 0.2, "aggressive percentile clips a lot: {clipped}");
    }

    #[test]
    fn only_history_is_online() {
        assert!(HistoryPrediction::default().online());
        assert!(!OracleDls { quality: QualityLevel::Q0 }.online());
        assert!(!AnnotationPolicy { quality: QualityLevel::Q0 }.online());
        assert!(!FullBacklight.online());
    }
}
