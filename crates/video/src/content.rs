//! Per-scene content generators.
//!
//! Each [`ContentKind`] deterministically renders frames whose luminance
//! statistics match one of the content classes the paper's evaluation
//! depends on. All generators are seeded, so the same `(seed, scene,
//! frame)` triple always produces the identical frame — experiments are
//! reproducible bit-for-bit.

use annolight_imgproc::{Frame, Rgb8};
use annolight_support::rng::SmallRng;

/// A synthetic content class for one scene.
///
/// Luminance parameters are 8-bit values; fractions are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ContentKind {
    /// Dark live-action content: most pixels near `base`, a sparse
    /// `highlight_fraction` of pixels at `highlight` (street lamps, specular
    /// glints). This is the class the technique wins on: clipping the tiny
    /// highlight population collapses the required luminance range.
    Dark {
        /// Typical background luminance.
        base: u8,
        /// Half-width of the background luminance band.
        spread: u8,
        /// Fraction of pixels that are bright highlights.
        highlight_fraction: f64,
        /// Luminance of the highlights.
        highlight: u8,
    },
    /// Bright content (daylight documentary, white-background cartoon):
    /// the pixel mass is concentrated in the high range, so little can be
    /// clipped without visible damage.
    Bright {
        /// Typical luminance (high).
        base: u8,
        /// Half-width of the luminance band.
        spread: u8,
    },
    /// Mid-tone content with moderate highlights (indoor scenes, product
    /// demos).
    Mid {
        /// Typical luminance.
        base: u8,
        /// Half-width of the band.
        spread: u8,
        /// Fraction of bright highlight pixels.
        highlight_fraction: f64,
    },
    /// A moving diagonal gradient between `lo` and `hi`; exercises motion
    /// estimation in the codec and gives smoothly varying histograms.
    GradientPan {
        /// Darkest luminance in the gradient.
        lo: u8,
        /// Brightest luminance in the gradient.
        hi: u8,
        /// Pan speed in pixels per frame.
        speed: u32,
    },
    /// End credits: sparse bright text rows on a near-black background.
    /// The paper singles this class out — clipping too many pixels distorts
    /// text on a uniform background (§4.3, future study).
    Credits {
        /// Luminance of the text pixels.
        text: u8,
        /// Luminance of the background.
        background: u8,
        /// Fraction of pixels belonging to text.
        density: f64,
    },
    /// A linear luminance fade from `from` to `to` across the scene
    /// duration; `progress` ∈ [0, 1] is supplied per frame.
    Fade {
        /// Starting luminance.
        from: u8,
        /// Ending luminance.
        to: u8,
    },
    /// Strobing content (lightning, muzzle flashes, club scenes):
    /// alternates between a dark base and full-frame flashes every
    /// `period` frames. The pathological case for per-frame backlight
    /// scaling — exactly what the anti-flicker controller guards exist
    /// for.
    Strobe {
        /// Dark-phase luminance.
        dark: u8,
        /// Flash luminance.
        flash: u8,
        /// Frames per half-cycle (≥ 1).
        period: u32,
    },
}

annolight_support::impl_json!(enum ContentKind { Dark { base, spread, highlight_fraction, highlight }, Bright { base, spread }, Mid { base, spread, highlight_fraction }, GradientPan { lo, hi, speed }, Credits { text, background, density }, Fade { from, to }, Strobe { dark, flash, period } });

impl ContentKind {
    /// Renders frame `frame_idx` of a scene that is `scene_frames` long.
    ///
    /// `seed` must identify the (clip, scene) pair; frames are then
    /// deterministic in `frame_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `scene_frames` is zero or either dimension is zero.
    pub fn render(
        &self,
        width: u32,
        height: u32,
        seed: u64,
        frame_idx: u32,
        scene_frames: u32,
    ) -> Frame {
        assert!(scene_frames > 0, "scene must contain at least one frame");
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (u64::from(frame_idx).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        match *self {
            ContentKind::Dark { base, spread, highlight_fraction, highlight } => {
                // Real dark scenes are not bimodal: besides the sparse
                // specular highlights there is a graded mid-tone population
                // (faces, lit objects) whose tail is what the clipping
                // budget progressively eats. ~30% of pixels span
                // [base+spread, ~190].
                let mid_lo = base.saturating_add(spread);
                let mid_hi = highlight.saturating_sub(10).clamp(mid_lo.saturating_add(1), 190);
                Frame::from_fn(width, height, |_, _| {
                    if highlight_fraction > 0.0 && rng.gen_bool(highlight_fraction.min(1.0)) {
                        let v = highlight.saturating_sub(rng.gen_range(0..8));
                        [v, v, v.saturating_sub(10)]
                    } else if mid_hi > mid_lo && rng.gen_bool(0.30) {
                        // Mid-tone tail, denser towards the dark end.
                        let a: u8 = rng.gen_range(mid_lo..=mid_hi);
                        let b: u8 = rng.gen_range(mid_lo..=mid_hi);
                        let v = a.min(b);
                        [v, v.saturating_sub(3), v.saturating_sub(6)]
                    } else {
                        let lo = base.saturating_sub(spread);
                        let hi = base.saturating_add(spread);
                        let v = rng.gen_range(lo..=hi);
                        [v, v.saturating_sub(4), v.saturating_sub(8)]
                    }
                })
            }
            ContentKind::Bright { base, spread } => {
                Self::banded(width, height, &mut rng, base, spread, 0.0, 255)
            }
            ContentKind::Mid { base, spread, highlight_fraction } => {
                Self::banded(width, height, &mut rng, base, spread, highlight_fraction, 245)
            }
            ContentKind::GradientPan { lo, hi, speed } => {
                let shift = frame_idx * speed;
                let span = u32::from(hi.saturating_sub(lo)).max(1);
                Frame::from_fn(width, height, |x, y| {
                    let phase = (x + y + shift) % (width + height);
                    let v = lo as u32 + span * phase / (width + height);
                    let v = v.min(255) as u8;
                    [v, v, v]
                })
            }
            ContentKind::Credits { text, background, density } => {
                // Text rows scroll upward one row per frame; glyph pixels
                // are pseudo-random within text rows at the given density.
                let mut f = Frame::filled(width, height, Rgb8::gray(background));
                let row_period = 8u32;
                for y in 0..height {
                    let virtual_row = (y + frame_idx) % row_period;
                    if virtual_row < 2 {
                        for x in 0..width {
                            // Per-glyph hash independent of frame so text is
                            // stable while scrolling.
                            let h = hash2(seed, u64::from(x) << 32 | u64::from((y + frame_idx) / row_period));
                            if (h as f64 / u64::MAX as f64) < density * f64::from(row_period) / 2.0 {
                                f.set_pixel(x, y, Rgb8::gray(text));
                            }
                        }
                    }
                }
                f
            }
            ContentKind::Strobe { dark, flash, period } => {
                let period = period.max(1);
                let lit = (frame_idx / period) % 2 == 1;
                let base = if lit { flash } else { dark };
                let mut rng2 = rng;
                Frame::from_fn(width, height, |_, _| {
                    let n: i16 = rng2.gen_range(-4..=4);
                    let v = (i16::from(base) + n).clamp(0, 255) as u8;
                    [v, v.saturating_sub(3), v.saturating_sub(6)]
                })
            }
            ContentKind::Fade { from, to } => {
                let progress = if scene_frames <= 1 {
                    0.0
                } else {
                    f64::from(frame_idx) / f64::from(scene_frames - 1)
                };
                let v = f64::from(from) + (f64::from(to) - f64::from(from)) * progress;
                let v = v.round().clamp(0.0, 255.0) as u8;
                let mut rng2 = rng;
                Frame::from_fn(width, height, |_, _| {
                    let n: i16 = rng2.gen_range(-3..=3);
                    let s = (i16::from(v) + n).clamp(0, 255) as u8;
                    [s, s, s]
                })
            }
        }
    }

    /// Shared generator: a luminance band around `base` ± `spread`, with an
    /// optional sparse highlight population. A slight blue/amber cast keeps
    /// the frames non-gray so chroma paths in the codec are exercised.
    fn banded(
        width: u32,
        height: u32,
        rng: &mut SmallRng,
        base: u8,
        spread: u8,
        highlight_fraction: f64,
        highlight: u8,
    ) -> Frame {
        Frame::from_fn(width, height, |_, _| {
            if highlight_fraction > 0.0 && rng.gen_bool(highlight_fraction.min(1.0)) {
                let v = highlight.saturating_sub(rng.gen_range(0..8));
                [v, v, v.saturating_sub(10)]
            } else {
                let lo = base.saturating_sub(spread);
                let hi = base.saturating_add(spread);
                let v = rng.gen_range(lo..=hi);
                // mild warm cast
                [v, v.saturating_sub(4), v.saturating_sub(8)]
            }
        })
    }

    /// The approximate maximum luminance this content produces, used by the
    /// library calibration tests.
    pub fn nominal_max_luma(&self) -> u8 {
        match *self {
            ContentKind::Dark { highlight, .. } => highlight,
            ContentKind::Bright { base, spread } => base.saturating_add(spread),
            ContentKind::Mid { highlight_fraction, base, spread } => {
                if highlight_fraction > 0.0 {
                    245
                } else {
                    base.saturating_add(spread)
                }
            }
            ContentKind::GradientPan { hi, .. } => hi,
            ContentKind::Credits { text, .. } => text,
            ContentKind::Fade { from, to } => from.max(to),
            ContentKind::Strobe { dark, flash, .. } => dark.max(flash),
        }
    }
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u32 = 64;
    const H: u32 = 48;

    #[test]
    fn rendering_is_deterministic() {
        let k = ContentKind::Dark { base: 50, spread: 15, highlight_fraction: 0.01, highlight: 240 };
        let a = k.render(W, H, 7, 3, 30);
        let b = k.render(W, H, 7, 3, 30);
        assert_eq!(a, b);
    }

    #[test]
    fn different_frames_differ() {
        let k = ContentKind::Dark { base: 50, spread: 15, highlight_fraction: 0.01, highlight: 240 };
        assert_ne!(k.render(W, H, 7, 0, 30), k.render(W, H, 7, 1, 30));
    }

    #[test]
    fn dark_scene_statistics() {
        let k = ContentKind::Dark { base: 45, spread: 12, highlight_fraction: 0.005, highlight: 250 };
        let f = k.render(W, H, 1, 0, 30);
        assert!(f.mean_luma() < 100.0, "mean {}", f.mean_luma());
        assert!(f.max_luma() > 220, "max {}", f.max_luma());
        // Graded tail: clipping progressively lowers the effective max,
        // without collapsing all the way to the background band.
        let h = f.luma_histogram();
        let l2 = h.clip_level(0.02);
        let l10 = h.clip_level(0.10);
        let l20 = h.clip_level(0.20);
        assert!(l2 < h.max_nonzero().unwrap());
        assert!(l10 < l2, "10% ({l10}) should clip deeper than 2% ({l2})");
        assert!(l20 < l10);
        assert!(l20 > 57, "20% clip should not reach the background band, got {l20}");
    }

    #[test]
    fn bright_scene_statistics() {
        let k = ContentKind::Bright { base: 200, spread: 30 };
        let f = k.render(W, H, 2, 0, 30);
        assert!(f.mean_luma() > 150.0);
        // Clipping 5% barely moves the effective max: the mass is bright.
        let h = f.luma_histogram();
        assert!(h.clip_level(0.05) as i16 >= h.max_nonzero().unwrap() as i16 - 40);
    }

    #[test]
    fn gradient_pan_moves() {
        let k = ContentKind::GradientPan { lo: 20, hi: 200, speed: 2 };
        let a = k.render(W, H, 3, 0, 30);
        let b = k.render(W, H, 3, 1, 30);
        assert_ne!(a, b);
        // But the histogram is nearly unchanged (same gradient, shifted).
        let d = a.luma_histogram().emd(&b.luma_histogram());
        assert!(d < 6.0, "emd {d}");
    }

    #[test]
    fn credits_are_sparse_text_on_black() {
        let k = ContentKind::Credits { text: 235, background: 8, density: 0.05 };
        let f = k.render(W, H, 4, 0, 30);
        let h = f.luma_histogram();
        let bright = h.fraction_above(128);
        assert!(bright > 0.0 && bright < 0.2, "bright fraction {bright}");
        assert!(f.mean_luma() < 60.0);
    }

    #[test]
    fn credits_scroll() {
        let k = ContentKind::Credits { text: 235, background: 8, density: 0.08 };
        assert_ne!(k.render(W, H, 4, 0, 30), k.render(W, H, 4, 3, 30));
    }

    #[test]
    fn fade_moves_luminance() {
        let k = ContentKind::Fade { from: 20, to: 200 };
        let first = k.render(W, H, 5, 0, 40);
        let last = k.render(W, H, 5, 39, 40);
        assert!(first.mean_luma() < 35.0);
        assert!(last.mean_luma() > 180.0);
    }

    #[test]
    fn fade_single_frame_scene_uses_start() {
        let k = ContentKind::Fade { from: 30, to: 200 };
        let f = k.render(W, H, 5, 0, 1);
        assert!(f.mean_luma() < 45.0);
    }

    #[test]
    fn strobe_alternates() {
        let k = ContentKind::Strobe { dark: 30, flash: 230, period: 3 };
        let dark_frame = k.render(W, H, 8, 0, 30);
        let lit_frame = k.render(W, H, 8, 3, 30);
        assert!(dark_frame.mean_luma() < 60.0);
        assert!(lit_frame.mean_luma() > 180.0);
        // Within a half-cycle the phase is stable.
        assert!(k.render(W, H, 8, 1, 30).mean_luma() < 60.0);
    }

    #[test]
    fn strobe_period_zero_is_clamped() {
        let k = ContentKind::Strobe { dark: 30, flash: 230, period: 0 };
        let f = k.render(W, H, 8, 1, 30); // would divide by zero unclamped
        assert!(f.mean_luma() > 0.0);
    }

    #[test]
    fn nominal_max_matches_render_ballpark() {
        let cases: Vec<ContentKind> = vec![
            ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.01, highlight: 240 },
            ContentKind::Bright { base: 190, spread: 25 },
            ContentKind::GradientPan { lo: 10, hi: 180, speed: 1 },
            ContentKind::Credits { text: 230, background: 5, density: 0.1 },
        ];
        for k in cases {
            let f = k.render(W, H, 9, 0, 30);
            let measured = f.max_luma();
            let nominal = k.nominal_max_luma();
            assert!(
                (i16::from(measured) - i16::from(nominal)).abs() <= 24,
                "{k:?}: measured {measured} nominal {nominal}"
            );
        }
    }
}
