//! Deterministic synthetic video clips for the `annolight` workspace.
//!
//! The paper evaluates on ten short clips (movie previews downloaded from
//! apple.com plus two others). Those files are not redistributable, and the
//! annotation technique consumes only **luminance statistics** — per-frame
//! histograms and scene structure — so this crate provides a *synthetic
//! clip library*: deterministic, seeded frame generators whose scene
//! scripts are calibrated to mimic each clip class the paper describes
//! (dark thriller scenes with sparse highlights, bright cartoons, office
//! content, end credits, fades, hard cuts). See `DESIGN.md` §2.
//!
//! # Example
//!
//! ```
//! use annolight_video::ClipLibrary;
//!
//! let clip = ClipLibrary::paper_clip("ice_age").expect("known clip");
//! // Bright cartoon content: the average frame is bright, which is why the
//! // paper reports almost no savings for this clip.
//! let frame = clip.frame(0);
//! assert!(frame.mean_luma() > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clip;
pub mod content;
pub mod library;

pub use clip::{Clip, ClipSpec, SceneSpec};
pub use content::ContentKind;
pub use library::ClipLibrary;
