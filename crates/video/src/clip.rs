//! Clip and scene specifications.

use crate::content::ContentKind;
use annolight_imgproc::Frame;

/// One scene of a clip: a content class plus a duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneSpec {
    /// What the scene looks like.
    pub content: ContentKind,
    /// Scene duration in seconds.
    pub duration_s: f64,
}

annolight_support::impl_json!(struct SceneSpec { content, duration_s });

impl SceneSpec {
    /// Creates a scene spec.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive and finite.
    pub fn new(content: ContentKind, duration_s: f64) -> Self {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "scene duration {duration_s} must be positive"
        );
        Self { content, duration_s }
    }
}

/// The static description of a synthetic clip.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipSpec {
    /// Clip name (stable identifier used in reports).
    pub name: String,
    /// Frame width in pixels (multiple of 16 to suit the codec).
    pub width: u32,
    /// Frame height in pixels (multiple of 16 to suit the codec).
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// Deterministic seed for all pseudo-random content.
    pub seed: u64,
    /// The ground-truth scene list.
    pub scenes: Vec<SceneSpec>,
}

annolight_support::impl_json!(struct ClipSpec { name, width, height, fps, seed, scenes });

/// A renderable synthetic clip.
///
/// `Clip` is cheap to clone (the frame data is generated on demand) and
/// fully deterministic: the same spec always yields identical frames.
///
/// # Example
///
/// ```
/// use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
///
/// let spec = ClipSpec {
///     name: "demo".into(),
///     width: 32,
///     height: 32,
///     fps: 10.0,
///     seed: 42,
///     scenes: vec![
///         SceneSpec::new(ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.01, highlight: 240 }, 1.0),
///         SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.0),
///     ],
/// };
/// let clip = Clip::new(spec).unwrap();
/// assert_eq!(clip.frame_count(), 20);
/// assert!(clip.frame(0).mean_luma() < clip.frame(15).mean_luma());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    spec: ClipSpec,
    /// Cumulative frame index at which each scene starts; last entry is the
    /// total frame count.
    scene_starts: Vec<u32>,
}

/// Errors constructing a clip.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClipError {
    /// The spec contained no scenes.
    NoScenes,
    /// Dimensions must be non-zero multiples of 16 (codec macroblocks).
    BadDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
    },
    /// The frame rate must be positive and finite.
    BadFps(f64),
}

impl std::fmt::Display for ClipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClipError::NoScenes => write!(f, "clip spec has no scenes"),
            ClipError::BadDimensions { width, height } => {
                write!(f, "clip dimensions {width}x{height} must be non-zero multiples of 16")
            }
            ClipError::BadFps(fps) => write!(f, "frame rate {fps} must be positive and finite"),
        }
    }
}

impl std::error::Error for ClipError {}

impl Clip {
    /// Builds a clip from its spec.
    ///
    /// # Errors
    ///
    /// Returns [`ClipError`] when the spec has no scenes, non-multiple-of-16
    /// dimensions, or a non-positive frame rate.
    pub fn new(spec: ClipSpec) -> Result<Self, ClipError> {
        if spec.scenes.is_empty() {
            return Err(ClipError::NoScenes);
        }
        if spec.width == 0 || spec.height == 0 || !spec.width.is_multiple_of(16) || !spec.height.is_multiple_of(16) {
            return Err(ClipError::BadDimensions { width: spec.width, height: spec.height });
        }
        if !spec.fps.is_finite() || spec.fps <= 0.0 {
            return Err(ClipError::BadFps(spec.fps));
        }
        let mut scene_starts = Vec::with_capacity(spec.scenes.len() + 1);
        let mut acc = 0u32;
        for s in &spec.scenes {
            scene_starts.push(acc);
            let frames = (s.duration_s * spec.fps).round().max(1.0) as u32;
            acc += frames;
        }
        scene_starts.push(acc);
        Ok(Self { spec, scene_starts })
    }

    /// The clip spec.
    pub fn spec(&self) -> &ClipSpec {
        &self.spec
    }

    /// Clip name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> u32 {
        *self.scene_starts.last().expect("scene_starts is never empty")
    }

    /// Clip duration in seconds.
    pub fn duration_s(&self) -> f64 {
        f64::from(self.frame_count()) / self.spec.fps
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.spec.fps
    }

    /// Frame dimensions `(width, height)`.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.spec.width, self.spec.height)
    }

    /// Ground-truth scene index containing frame `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= frame_count()`.
    pub fn scene_of_frame(&self, idx: u32) -> usize {
        assert!(idx < self.frame_count(), "frame {idx} out of range");
        match self.scene_starts.binary_search(&idx) {
            Ok(i) if i + 1 == self.scene_starts.len() => i - 1,
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// The frame index range `[start, end)` of ground-truth scene `scene`.
    ///
    /// # Panics
    ///
    /// Panics if `scene` is out of range.
    pub fn scene_frames(&self, scene: usize) -> (u32, u32) {
        assert!(scene < self.spec.scenes.len(), "scene {scene} out of range");
        (self.scene_starts[scene], self.scene_starts[scene + 1])
    }

    /// Renders frame `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= frame_count()`.
    pub fn frame(&self, idx: u32) -> Frame {
        let scene = self.scene_of_frame(idx);
        let (start, end) = (self.scene_starts[scene], self.scene_starts[scene + 1]);
        let scene_seed = self
            .spec
            .seed
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(scene as u64);
        self.spec.scenes[scene].content.render(
            self.spec.width,
            self.spec.height,
            scene_seed,
            idx - start,
            end - start,
        )
    }

    /// Iterates over all frames in order.
    pub fn frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.frame_count()).map(move |i| self.frame(i))
    }

    /// Serialises the clip's spec as JSON, so custom clips can be stored
    /// and shared as sidecar files.
    ///
    /// # Panics
    ///
    /// Never panics: specs are plain data.
    pub fn to_json_spec(&self) -> String {
        annolight_support::json::to_string_pretty(&self.spec)
    }

    /// Builds a clip from a JSON spec produced by
    /// [`Clip::to_json_spec`] (or written by hand).
    ///
    /// # Errors
    ///
    /// Returns a descriptive string for malformed JSON or an invalid spec.
    pub fn from_json_spec(json: &str) -> Result<Clip, String> {
        let spec: ClipSpec = annolight_support::json::from_str(json).map_err(|e| e.to_string())?;
        Clip::new(spec).map_err(|e| e.to_string())
    }

    /// Returns a clip truncated to roughly the first `seconds` seconds
    /// (at least one scene), useful for fast tests and previews.
    pub fn preview(&self, seconds: f64) -> Clip {
        let mut remaining = seconds.max(0.0);
        let mut scenes = Vec::new();
        for s in &self.spec.scenes {
            if remaining <= 0.0 && !scenes.is_empty() {
                break;
            }
            let take = if s.duration_s <= remaining || scenes.is_empty() {
                s.duration_s.min(remaining.max(1.0 / self.spec.fps))
            } else {
                remaining
            };
            scenes.push(SceneSpec::new(s.content, take.max(1.0 / self.spec.fps)));
            remaining -= take;
        }
        let spec = ClipSpec { scenes, ..self.spec.clone() };
        Clip::new(spec).expect("preview of a valid clip is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ClipSpec {
        ClipSpec {
            name: "demo".into(),
            width: 32,
            height: 32,
            fps: 10.0,
            seed: 1,
            scenes: vec![
                SceneSpec::new(
                    ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.01, highlight: 240 },
                    2.0,
                ),
                SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.5),
                SceneSpec::new(ContentKind::Fade { from: 10, to: 150 }, 1.0),
            ],
        }
    }

    #[test]
    fn frame_count_accumulates_scene_durations() {
        let clip = Clip::new(demo_spec()).unwrap();
        assert_eq!(clip.frame_count(), 20 + 15 + 10);
        assert!((clip.duration_s() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn scene_of_frame_boundaries() {
        let clip = Clip::new(demo_spec()).unwrap();
        assert_eq!(clip.scene_of_frame(0), 0);
        assert_eq!(clip.scene_of_frame(19), 0);
        assert_eq!(clip.scene_of_frame(20), 1);
        assert_eq!(clip.scene_of_frame(34), 1);
        assert_eq!(clip.scene_of_frame(35), 2);
        assert_eq!(clip.scene_of_frame(44), 2);
    }

    #[test]
    fn scene_frames_ranges() {
        let clip = Clip::new(demo_spec()).unwrap();
        assert_eq!(clip.scene_frames(0), (0, 20));
        assert_eq!(clip.scene_frames(1), (20, 35));
        assert_eq!(clip.scene_frames(2), (35, 45));
    }

    #[test]
    fn frames_are_deterministic() {
        let a = Clip::new(demo_spec()).unwrap();
        let b = Clip::new(demo_spec()).unwrap();
        assert_eq!(a.frame(7), b.frame(7));
        assert_eq!(a.frame(25), b.frame(25));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Clip::new(demo_spec()).unwrap();
        let mut spec = demo_spec();
        spec.seed = 2;
        let b = Clip::new(spec).unwrap();
        assert_ne!(a.frame(0), b.frame(0));
    }

    #[test]
    fn rejects_empty_and_bad_dims() {
        let mut s = demo_spec();
        s.scenes.clear();
        assert_eq!(Clip::new(s).unwrap_err(), ClipError::NoScenes);

        let mut s = demo_spec();
        s.width = 33;
        assert!(matches!(Clip::new(s).unwrap_err(), ClipError::BadDimensions { .. }));

        let mut s = demo_spec();
        s.fps = 0.0;
        assert!(matches!(Clip::new(s).unwrap_err(), ClipError::BadFps(_)));
    }

    #[test]
    fn preview_truncates() {
        let clip = Clip::new(demo_spec()).unwrap();
        let p = clip.preview(2.5);
        assert!(p.duration_s() <= 2.6);
        assert!(p.frame_count() >= 1);
        assert_eq!(p.name(), "demo");
        // The preview's first frames match the original's.
        assert_eq!(p.frame(0), clip.frame(0));
    }

    #[test]
    fn preview_never_empty() {
        let clip = Clip::new(demo_spec()).unwrap();
        let p = clip.preview(0.0);
        assert!(p.frame_count() >= 1);
    }

    #[test]
    fn frames_iterator_visits_all() {
        let clip = Clip::new(demo_spec()).unwrap();
        assert_eq!(clip.frames().count() as u32, clip.frame_count());
    }

    #[test]
    fn json_spec_roundtrip() {
        let clip = Clip::new(demo_spec()).unwrap();
        let json = clip.to_json_spec();
        let back = Clip::from_json_spec(&json).unwrap();
        assert_eq!(back.spec(), clip.spec());
        assert_eq!(back.frame(5), clip.frame(5));
    }

    #[test]
    fn bad_json_spec_rejected() {
        assert!(Clip::from_json_spec("not json").is_err());
        // Valid JSON, invalid spec (odd width).
        let mut s = demo_spec();
        s.width = 30;
        let json = annolight_support::json::to_string(&s);
        assert!(Clip::from_json_spec(&json).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn frame_out_of_range_panics() {
        let clip = Clip::new(demo_spec()).unwrap();
        let _ = clip.frame(clip.frame_count());
    }
}
