//! The ten-clip library mirroring the paper's evaluation set (§5).
//!
//! "We selected some movie previews and short clips, available on the
//! Internet (apple.com). These clips vary in length between 30 seconds and
//! 3 minutes and have scenes ranging from slow to fast motion."
//!
//! Each named clip here is a *synthetic stand-in*: a scripted sequence of
//! scenes whose luminance statistics match the content class of the
//! original (see `DESIGN.md` §2). The two bright clips the paper calls out
//! as negative results (`hunter_subres`, `ice_age`) are calibrated bright;
//! the trailer clips are dominated by dark scenes with sparse highlights.

use crate::clip::{Clip, ClipSpec, SceneSpec};
use crate::content::ContentKind;
use annolight_support::rng::SmallRng;

/// Default clip width (multiple of 16 for the codec).
pub const DEFAULT_WIDTH: u32 = 128;
/// Default clip height (multiple of 16 for the codec).
pub const DEFAULT_HEIGHT: u32 = 96;
/// Default frame rate. The originals are 12–24 fps; 12 keeps experiment
/// runtime manageable without changing any per-scene statistic.
pub const DEFAULT_FPS: f64 = 12.0;

/// The names of the ten paper clips, in Fig. 9/10 order.
pub const PAPER_CLIP_NAMES: [&str; 10] = [
    "themovie",
    "catwoman",
    "hunter_subres",
    "i_robot",
    "ice_age",
    "officexp",
    "returnoftheking",
    "shrek2",
    "spiderman2",
    "theincredibles-tlr2",
];

/// Factory for the paper's clip set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClipLibrary;

/// How dark/bright a generated clip should skew.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Mix {
    /// Relative weight of dark scenes.
    dark: f64,
    /// Relative weight of mid scenes.
    mid: f64,
    /// Relative weight of bright scenes.
    bright: f64,
    /// Whether the clip ends in a credits crawl.
    credits: bool,
    /// Total duration in seconds.
    duration_s: f64,
    /// Typical dark-scene highlight fraction.
    highlight_fraction: f64,
}

impl ClipLibrary {
    /// Returns the named paper clip, or `None` for an unknown name.
    ///
    /// # Example
    ///
    /// ```
    /// use annolight_video::ClipLibrary;
    /// assert!(ClipLibrary::paper_clip("shrek2").is_some());
    /// assert!(ClipLibrary::paper_clip("unknown").is_none());
    /// ```
    pub fn paper_clip(name: &str) -> Option<Clip> {
        let mix = match name {
            // Dark thriller/action trailers: long dark stretches with
            // sparse specular highlights, occasional bright establishing
            // shots.
            "themovie" => Mix { dark: 0.72, mid: 0.20, bright: 0.08, credits: true, duration_s: 75.0, highlight_fraction: 0.004 },
            "catwoman" => Mix { dark: 0.62, mid: 0.28, bright: 0.10, credits: true, duration_s: 70.0, highlight_fraction: 0.006 },
            "i_robot" => Mix { dark: 0.58, mid: 0.30, bright: 0.12, credits: true, duration_s: 80.0, highlight_fraction: 0.006 },
            "returnoftheking" => Mix { dark: 0.70, mid: 0.22, bright: 0.08, credits: true, duration_s: 90.0, highlight_fraction: 0.005 },
            "spiderman2" => Mix { dark: 0.60, mid: 0.28, bright: 0.12, credits: true, duration_s: 75.0, highlight_fraction: 0.007 },
            // Bright content: the paper's negative results.
            "hunter_subres" => Mix { dark: 0.05, mid: 0.25, bright: 0.70, credits: false, duration_s: 45.0, highlight_fraction: 0.02 },
            "ice_age" => Mix { dark: 0.02, mid: 0.18, bright: 0.80, credits: false, duration_s: 60.0, highlight_fraction: 0.03 },
            // Mixed content.
            "officexp" => Mix { dark: 0.45, mid: 0.45, bright: 0.10, credits: false, duration_s: 40.0, highlight_fraction: 0.01 },
            "shrek2" => Mix { dark: 0.35, mid: 0.40, bright: 0.25, credits: true, duration_s: 80.0, highlight_fraction: 0.012 },
            "theincredibles-tlr2" => Mix { dark: 0.48, mid: 0.32, bright: 0.20, credits: true, duration_s: 70.0, highlight_fraction: 0.008 },
            _ => return None,
        };
        let seed = name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        });
        Some(Self::scripted(name, seed, mix))
    }

    /// All ten paper clips in Fig. 9/10 order.
    pub fn paper_clips() -> Vec<Clip> {
        PAPER_CLIP_NAMES
            .iter()
            .map(|n| Self::paper_clip(n).expect("library names are all known"))
            .collect()
    }

    /// Generates the scripted scene list for one clip.
    fn scripted(name: &str, seed: u64, mix: Mix) -> Clip {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut scenes = Vec::new();
        let credits_s = if mix.credits { 6.0 } else { 0.0 };
        let mut remaining = mix.duration_s - credits_s;
        let total_w = mix.dark + mix.mid + mix.bright;
        // Realised seconds per class (dark, mid, bright). Scene classes are
        // drawn *stratified* rather than i.i.d.: each scene takes the class
        // whose realised share trails its target mix the most, so every
        // prefix of the clip — including the short previews the experiment
        // harness uses — is representative of the calibrated mix. Scene
        // *parameters* stay pseudo-random.
        let mut used = [0.0f64; 3];
        let mut prev_max: Option<f64> = None;
        while remaining > 0.5 {
            let duration = rng.gen_range(2.0..6.0f64).min(remaining);
            let planned: f64 = used.iter().sum::<f64>() + duration;
            let targets = [mix.dark, mix.mid, mix.bright];
            let mut class = 0;
            let mut gap = f64::MIN;
            for (k, &target) in targets.iter().enumerate() {
                let g = target / total_w - used[k] / planned;
                if g > gap {
                    gap = g;
                    class = k;
                }
            }
            used[class] += duration;
            let draw = |rng: &mut SmallRng| {
                if class == 0 {
                    ContentKind::Dark {
                        base: rng.gen_range(30..70),
                        spread: rng.gen_range(8..20),
                        highlight_fraction: mix.highlight_fraction * rng.gen_range(0.5..1.5),
                        highlight: rng.gen_range(200..=255),
                    }
                } else if class == 1 {
                    if rng.gen_bool(0.2) {
                        ContentKind::GradientPan {
                            lo: rng.gen_range(10..40),
                            hi: rng.gen_range(120..200),
                            speed: rng.gen_range(1..4),
                        }
                    } else {
                        ContentKind::Mid {
                            base: rng.gen_range(90..140),
                            spread: rng.gen_range(15..35),
                            highlight_fraction: mix.highlight_fraction * rng.gen_range(0.3..1.0),
                        }
                    }
                } else if rng.gen_bool(0.15) {
                    ContentKind::Fade { from: rng.gen_range(150..200), to: rng.gen_range(200..=255) }
                } else {
                    ContentKind::Bright {
                        base: rng.gen_range(175..225),
                        spread: rng.gen_range(20..40),
                    }
                }
            };
            // Real trailers cut between visually distinct shots; keep
            // redrawing parameters while the new scene's peak luminance is
            // within the detector's 10 % band of the previous scene's, so
            // authored scene boundaries stay observable in the max-luma
            // series (§4.3 / Fig. 6).
            let mut content = draw(&mut rng);
            for _ in 0..8 {
                match prev_max {
                    Some(p) if relative_change(expected_max_luma(&content), p) < 0.12 => {
                        content = draw(&mut rng);
                    }
                    _ => break,
                }
            }
            prev_max = Some(expected_max_luma(&content));
            scenes.push(SceneSpec::new(content, duration));
            remaining -= duration;
        }
        if mix.credits {
            scenes.push(SceneSpec::new(
                ContentKind::Credits { text: 235, background: 6, density: 0.06 },
                credits_s,
            ));
        }
        Clip::new(ClipSpec {
            name: name.to_owned(),
            width: DEFAULT_WIDTH,
            height: DEFAULT_HEIGHT,
            fps: DEFAULT_FPS,
            seed,
            scenes,
        })
        .expect("library scripts are valid clip specs")
    }
}


/// The luminance a scene's brightest pixels will reach, estimated from its
/// content parameters — the signal the §4.3 scene detector watches.
fn expected_max_luma(content: &ContentKind) -> f64 {
    match *content {
        ContentKind::Dark { base, spread, highlight_fraction, highlight } => {
            if highlight_fraction > 0.0 {
                f64::from(highlight)
            } else {
                f64::from(base.saturating_add(spread))
            }
        }
        ContentKind::Bright { base, spread } => f64::from(base.saturating_add(spread).min(255)),
        ContentKind::Mid { base, spread, highlight_fraction } => {
            if highlight_fraction > 0.0 {
                245.0
            } else {
                f64::from(base.saturating_add(spread))
            }
        }
        ContentKind::GradientPan { hi, .. } => f64::from(hi),
        ContentKind::Credits { text, .. } => f64::from(text),
        ContentKind::Fade { from, to } => f64::from(from.max(to)),
        ContentKind::Strobe { flash, .. } => f64::from(flash.saturating_add(4)),
    }
}

/// Relative change between two luminance peaks, in units of the larger one.
fn relative_change(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.max(b).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_clips_construct() {
        let clips = ClipLibrary::paper_clips();
        assert_eq!(clips.len(), 10);
        for c in &clips {
            assert!(c.frame_count() > 0, "{}", c.name());
            assert!(c.duration_s() >= 30.0, "{} too short: {}", c.name(), c.duration_s());
        }
    }

    #[test]
    fn names_match_figure_order() {
        let clips = ClipLibrary::paper_clips();
        for (c, n) in clips.iter().zip(PAPER_CLIP_NAMES) {
            assert_eq!(c.name(), n);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(ClipLibrary::paper_clip("matrix").is_none());
    }

    #[test]
    fn clips_are_deterministic() {
        let a = ClipLibrary::paper_clip("themovie").unwrap();
        let b = ClipLibrary::paper_clip("themovie").unwrap();
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.frame(10), b.frame(10));
    }

    #[test]
    fn dark_clips_are_darker_than_bright_clips() {
        // Compare mean luminance over a sparse frame sample.
        let mean = |name: &str| {
            let c = ClipLibrary::paper_clip(name).unwrap();
            let n = c.frame_count();
            let mut acc = 0.0;
            let mut cnt = 0;
            let mut i = 0;
            while i < n {
                acc += c.frame(i).mean_luma();
                cnt += 1;
                i += n / 16 + 1;
            }
            acc / f64::from(cnt)
        };
        let dark = mean("returnoftheking");
        let bright = mean("ice_age");
        assert!(
            dark + 40.0 < bright,
            "expected dark clip ({dark:.1}) well below bright clip ({bright:.1})"
        );
    }

    #[test]
    fn bright_clips_use_full_range() {
        let c = ClipLibrary::paper_clip("ice_age").unwrap();
        let mut max = 0u8;
        let mut i = 0;
        while i < c.frame_count() {
            max = max.max(c.frame(i).max_luma());
            i += 20;
        }
        assert!(max > 200, "bright clip peak {max}");
    }

    #[test]
    fn trailer_clips_end_in_credits() {
        let c = ClipLibrary::paper_clip("shrek2").unwrap();
        let last = c.spec().scenes.last().unwrap();
        assert!(matches!(last.content, ContentKind::Credits { .. }));
    }

    #[test]
    fn default_dimensions_are_macroblock_aligned() {
        assert_eq!(DEFAULT_WIDTH % 16, 0);
        assert_eq!(DEFAULT_HEIGHT % 16, 0);
    }
}
