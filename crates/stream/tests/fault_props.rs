//! Property tests for the fault-injected channel: statistical behaviour
//! matches the configured model, structural invariants hold for
//! arbitrary configurations, and the zero-fault path is bit-identical
//! to the lossless [`WirelessChannel`] timing.

use annolight_stream::faults::retry::RetryPolicy;
use annolight_stream::{FaultConfig, FaultyChannel, WirelessChannel};

annolight_support::check! {
    /// The observed drop rate converges to the configured independent
    /// drop probability (no bursts, so drops are i.i.d. Bernoulli).
    fn drop_rate_converges(g, cases = 24) {
        let drop_p: f64 = f64::from(g.draw(0u32..400)) / 1000.0; // 0..0.4
        let seed = g.any::<u64>();
        let cfg = FaultConfig { drop_p, ..FaultConfig::lossless(seed) };
        let mut ch = FaultyChannel::new(WirelessChannel::wifi_80211b(), cfg);
        let n = 3000u64;
        for _ in 0..n {
            ch.send(1200);
        }
        let observed = ch.stats().dropped as f64 / n as f64;
        // 4 sigma of a Bernoulli(p) mean over n samples, floored for p≈0.
        let sigma = (drop_p * (1.0 - drop_p) / n as f64).sqrt();
        let tol = (4.0 * sigma).max(0.005);
        assert!(
            (observed - drop_p).abs() <= tol,
            "drop rate {observed:.4} vs configured {drop_p:.4} (tol {tol:.4}, seed {seed:#x})"
        );
    }

    /// Gilbert–Elliott burst lengths are geometric with mean 1/exit_p.
    fn burst_lengths_match_gilbert_elliott(g, cases = 16) {
        let exit_p: f64 = 0.2 + f64::from(g.draw(0u32..600)) / 1000.0; // 0.2..0.8
        let seed = g.any::<u64>();
        let cfg = FaultConfig {
            burst_enter_p: 0.05,
            burst_exit_p: exit_p,
            burst_drop_p: 1.0,
            ..FaultConfig::lossless(seed)
        };
        let mut ch = FaultyChannel::new(WirelessChannel::wifi_80211b(), cfg);
        let (mut bursts, mut current, mut lengths) = (0u64, 0u64, Vec::new());
        for _ in 0..20_000 {
            ch.send(1200);
            if ch.in_burst() {
                current += 1;
            } else if current > 0 {
                bursts += 1;
                lengths.push(current);
                current = 0;
            }
        }
        if bursts < 20 {
            return; // not enough bursts at this seed to estimate a mean
        }
        let mean = lengths.iter().sum::<u64>() as f64 / bursts as f64;
        let expected = 1.0 / exit_p;
        assert!(
            mean > expected * 0.5 && mean < expected * 2.0,
            "mean burst {mean:.2} vs expected {expected:.2} over {bursts} bursts (seed {seed:#x})"
        );
    }

    /// Reorder displacement never exceeds the configured window, and
    /// displaced packets still arrive after their send time.
    fn reorder_displacement_is_bounded(g, cases = 32) {
        let window = g.draw(1u32..8);
        let reorder_p = 0.1 + f64::from(g.draw(0u32..400)) / 1000.0;
        let seed = g.any::<u64>();
        let cfg = FaultConfig {
            reorder_p,
            reorder_window: window,
            ..FaultConfig::lossless(seed)
        };
        let mut ch = FaultyChannel::new(WirelessChannel::wifi_80211b(), cfg);
        let mut saw_displacement = false;
        for _ in 0..500 {
            let d = ch.send(1200);
            assert!(d.displaced <= window, "displacement {} > window {window}", d.displaced);
            if d.displaced > 0 {
                saw_displacement = true;
                let a = d.arrival_s.expect("reordered packets still arrive");
                assert!(a > d.sent_s, "arrival {a} before send {}", d.sent_s);
            }
        }
        assert!(saw_displacement, "reorder_p {reorder_p} produced no displacement in 500 packets");
    }

    /// With every fault disabled the channel is the lossless link: for an
    /// arbitrary packet-size trace, each arrival equals
    /// `WirelessChannel::transfer_time_s(cumulative bytes)` *bit for bit*.
    fn zero_fault_trace_is_bit_identical(g, cases = 32) {
        let seed = g.any::<u64>();
        let link = WirelessChannel::wifi_80211b();
        let mut ch = FaultyChannel::new(link, FaultConfig::lossless(seed));
        let mut cumulative = 0usize;
        let n = g.draw(1usize..40);
        for _ in 0..n {
            let bytes = g.draw(1usize..4000);
            cumulative += bytes;
            let d = ch.send(bytes);
            assert_eq!(d.displaced, 0);
            assert_eq!(d.duplicate_arrival_s, None);
            // Exact equality, not approximate: the fault layer must add
            // literally nothing to the baseline timing model.
            assert_eq!(d.arrival_s, Some(link.transfer_time_s(cumulative)));
        }
        let s = ch.stats();
        assert_eq!((s.dropped, s.duplicated, s.reordered, s.burst_packets), (0, 0, 0, 0));
    }

    /// The reactor's non-blocking `try_deliver` is byte-identical to the
    /// blocking send-then-retransmit sequence the threaded pipeline
    /// performs: same copies in the same order, same channel statistics,
    /// for arbitrary fault mixes, packet traces, and retry policies.
    fn try_deliver_matches_blocking_sequence(g, cases = 24) {
        let seed = g.any::<u64>();
        let cfg = FaultConfig {
            drop_p: f64::from(g.draw(0u32..300)) / 1000.0,
            dup_p: f64::from(g.draw(0u32..150)) / 1000.0,
            reorder_p: f64::from(g.draw(0u32..150)) / 1000.0,
            reorder_window: g.draw(1u32..5),
            jitter_s: f64::from(g.draw(0u32..3000)) / 1_000_000.0,
            burst_enter_p: f64::from(g.draw(0u32..50)) / 1000.0,
            burst_exit_p: 0.3,
            burst_drop_p: 0.8,
            ..FaultConfig::lossless(seed)
        };
        let link = WirelessChannel::wifi_80211b();
        let mut nonblocking = FaultyChannel::new(link, cfg);
        let mut blocking = FaultyChannel::new(link, cfg);
        let n = g.draw(50usize..400);
        for i in 0..n {
            let bytes = 40 + (i * 53) % 1400;
            let reliable = i % 3 == 0;
            let policy = if reliable {
                RetryPolicy::reliable()
            } else {
                RetryPolicy::annotation().with_deadline(0.05)
            };
            let got = nonblocking.try_deliver(bytes, |_| Some(policy.clone()));

            // The threaded discipline: send, and on loss retransmit.
            let fate = blocking.send(bytes);
            let mut want = Vec::new();
            match fate.arrival_s {
                Some(a) => {
                    want.push(a);
                    want.extend(fate.duplicate_arrival_s);
                }
                None => {
                    let out = blocking.retransmit(bytes, &policy, fate.sent_s);
                    want.extend(out.delivered_s);
                }
            }
            assert_eq!(got.sent_s.to_bits(), fate.sent_s.to_bits(), "packet {i} send clock");
            assert_eq!(got.lost_first, fate.arrival_s.is_none(), "packet {i} loss fate");
            assert_eq!(
                got.copies.iter().map(|a| a.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|a| a.to_bits()).collect::<Vec<_>>(),
                "packet {i} copies diverged (seed {seed:#x})"
            );
        }
        assert_eq!(nonblocking.stats(), blocking.stats(), "stats diverged (seed {seed:#x})");
        assert_eq!(nonblocking.clock_s().to_bits(), blocking.clock_s().to_bits());
    }

    /// Identical configuration => identical per-packet fates, even with
    /// every fault class enabled at an arbitrary seed.
    fn same_config_same_fates(g, cases = 16) {
        let seed = g.any::<u64>();
        let cfg = FaultConfig {
            drop_p: 0.1,
            dup_p: 0.05,
            reorder_p: 0.05,
            reorder_window: 3,
            jitter_s: 0.002,
            burst_enter_p: 0.02,
            burst_exit_p: 0.3,
            burst_drop_p: 0.5,
            ..FaultConfig::lossless(seed)
        };
        let mut a = FaultyChannel::new(WirelessChannel::wifi_80211b(), cfg);
        let mut b = FaultyChannel::new(WirelessChannel::wifi_80211b(), cfg);
        for i in 0..200usize {
            let bytes = 100 + (i * 37) % 1400;
            assert_eq!(a.send(bytes), b.send(bytes), "packet {i} diverged (seed {seed:#x})");
        }
        assert_eq!(a.stats(), b.stats());
    }
}
