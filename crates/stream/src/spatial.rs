//! Client-side energy pricing of spatial scaling (§3: "optimal spatial
//! ... scaling" as an annotation-driven adaptation).
//!
//! The spatial-scale policy trades resolution for energy: a half-resolution
//! stream is a quarter of the bytes, so the WNIC spends less time in
//! receive mode and the decoder touches a quarter of the pixels. Whether
//! that trade is worth making depends on *this* device's power model and
//! *this* channel's timing — which is exactly the per-client information
//! the negotiation phase carries. This module turns (geometry, channel,
//! power model) into the [`ResolutionCost`] the policy trait prices, so
//! [`annolight_core::AnnotationPolicy::select_resolution`] stays a pure
//! decision rule.
//!
//! Backlight power is deliberately excluded from the costs: backlight
//! scaling is the *other* annotation knob and is priced by the planner
//! ([`annolight_core::plan::BacklightPlan`]); keeping it out of the
//! resolution costs keeps the two decisions orthogonal, so the spatial
//! decision never double-counts savings the backlight policy already
//! claims.

use crate::network::WirelessChannel;
use annolight_core::{PolicyKind, ResolutionCost, ResolutionDecision};
use annolight_power::SystemPowerModel;

/// Pixels per second the modelled decoder sustains at full CPU. Half the
/// pixel rate of QVGA-at-30fps-class decode on a 400 MHz XScale — decode
/// of a busy clip keeps the CPU mostly, but not fully, busy.
pub const DECODE_PIXELS_PER_S: f64 = 1.5e6;

/// Prices streaming `frames` frames of `width`×`height` at `fps` over
/// `channel` into `system`'s energy budget, at full and half resolution.
///
/// Bytes are estimated with the same coarse bound the negotiation offer
/// uses (`frames · w · h · 3/2`, near one byte per subsampled pixel), so
/// the decision is made from information both ends already exchange.
/// `half_supported` requires both dimensions to stay multiples of 32 so
/// the downscaled stream still satisfies the codec's macroblock-alignment
/// rule (dimensions divisible by 16) after halving.
///
/// # Panics
///
/// Panics if `fps` is not positive or `frames` is zero.
pub fn resolution_cost(
    width: u32,
    height: u32,
    frames: u32,
    fps: f64,
    channel: &WirelessChannel,
    system: &SystemPowerModel,
) -> ResolutionCost {
    assert!(fps > 0.0, "fps {fps} must be positive");
    assert!(frames > 0, "cannot price an empty stream");
    let duration_s = f64::from(frames) / fps;
    let energy = |w: u32, h: u32| -> f64 {
        let bytes = u64::from(frames) * u64::from(w) * u64::from(h) * 3 / 2;
        let wnic_duty = (channel.transfer_time_s(bytes as usize) / duration_s).clamp(0.0, 1.0);
        let cpu_busy =
            (f64::from(w) * f64::from(h) * fps / DECODE_PIXELS_PER_S).clamp(0.0, 1.0);
        system.power_w_duty(cpu_busy, wnic_duty, 0.0) * duration_s
    };
    ResolutionCost {
        full_energy_j: energy(width, height),
        half_energy_j: energy(width / 2, height / 2),
        half_supported: width % 32 == 0 && height % 32 == 0 && width >= 32 && height >= 32,
    }
}

/// Prices the stream and asks `policy` for its resolution decision — the
/// session layer's one-call wrapper.
pub fn spatial_decision(
    policy: PolicyKind,
    width: u32,
    height: u32,
    frames: u32,
    fps: f64,
    channel: &WirelessChannel,
    system: &SystemPowerModel,
) -> ResolutionDecision {
    let cost = resolution_cost(width, height, frames, fps, channel, system);
    policy.policy().select_resolution(&cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The library clips' geometry: 128×96 at 12 fps, 3 s.
    fn library_geometry() -> (u32, u32, u32, f64) {
        (128, 96, 36, 12.0)
    }

    #[test]
    fn half_resolution_costs_less_energy() {
        let (w, h, n, fps) = library_geometry();
        let cost = resolution_cost(
            w,
            h,
            n,
            fps,
            &WirelessChannel::wifi_80211b(),
            &SystemPowerModel::ipaq_5555(),
        );
        assert!(cost.half_supported);
        assert!(
            cost.half_energy_j < cost.full_energy_j,
            "half {} vs full {}",
            cost.half_energy_j,
            cost.full_energy_j
        );
        // Both bounded by worst-case power times duration.
        let duration = f64::from(n) / fps;
        let ceiling = SystemPowerModel::ipaq_5555().power_w_duty(1.0, 1.0, 0.0) * duration;
        assert!(cost.full_energy_j <= ceiling + 1e-9);
    }

    #[test]
    fn misaligned_dimensions_do_not_offer_half() {
        let cost = resolution_cost(
            100,
            96,
            30,
            10.0,
            &WirelessChannel::wifi_80211b(),
            &SystemPowerModel::ipaq_5555(),
        );
        assert!(!cost.half_supported, "100/2 = 50 is not macroblock-aligned");
    }

    #[test]
    fn only_spatial_scale_takes_the_half_stream() {
        let (w, h, n, fps) = library_geometry();
        let channel = WirelessChannel::wifi_80211b();
        let system = SystemPowerModel::ipaq_5555();
        for p in PolicyKind::ALL {
            let d = spatial_decision(p, w, h, n, fps, &channel, &system);
            if p == PolicyKind::SpatialScale {
                assert!(d.use_half, "128×96 over 802.11b clears the margin");
            } else {
                assert!(!d.use_half, "{p:?} never rescales");
            }
        }
    }

    #[test]
    fn decision_echoes_the_costs() {
        let (w, h, n, fps) = library_geometry();
        let channel = WirelessChannel::wifi_80211b();
        let system = SystemPowerModel::ipaq_5555();
        let cost = resolution_cost(w, h, n, fps, &channel, &system);
        let d = spatial_decision(PolicyKind::SpatialScale, w, h, n, fps, &channel, &system);
        assert_eq!(d.full_energy_j, cost.full_energy_j);
        assert_eq!(d.half_energy_j, cost.half_energy_j);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn zero_frames_panics() {
        let _ = resolution_cost(
            320,
            240,
            0,
            12.0,
            &WirelessChannel::wifi_80211b(),
            &SystemPowerModel::ipaq_5555(),
        );
    }
}
