//! The proxy node.
//!
//! "The communication between the handheld device and the server can be
//! routed through a proxy node — a high-end machine with the ability to
//! process the video stream in real-time, on-the-fly (example in
//! videoconferencing). Note that for our scheme either the proxy or the
//! server node suffices."
//!
//! [`Proxy::transcode`] takes an *unannotated* stream (e.g. straight from
//! a camera or a legacy server), decodes it, profiles the decoded frames,
//! annotates for the negotiated device/quality, compensates, and
//! re-encodes — producing exactly what the annotation-aware server would
//! have sent, with no change for the client.
//!
//! Annotation itself is delegated to an [`AnnotationService`]
//! ([`annolight_serve`]): the proxy content-addresses the incoming byte
//! stream (FNV digest of the encoded input) and asks the service for the
//! track, so repeated transcodes of the same stream for the same device
//! class hit the shared cache instead of re-annotating. A proxy built
//! with [`Proxy::with_service`] can share that cache with a
//! [`crate::server::MediaServer`].

use annolight_codec::{
    decode_all_yuv_batched, encode_yuv_batched, CodecError, Decoder, EncodedStream, Encoder,
    EncoderConfig,
};
use annolight_core::digest::Digester;
use annolight_core::track::{AnnotationMode, AnnotationTrack};
use annolight_core::parallel::{self, ParallelConfig};
use annolight_core::{CoreError, HebsRemapSet, LuminanceProfile, PolicyKind, QualityLevel};
use annolight_imgproc::{Frame, Yuv420Frame};
use annolight_display::DeviceProfile;
use annolight_serve::{AnnotationService, ServiceConfig};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors during proxy transcoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProxyError {
    /// The incoming stream failed to decode.
    Codec(CodecError),
    /// Annotation failed.
    Core(CoreError),
    /// The annotation service refused or failed the request.
    Serve(annolight_serve::ServeError),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Codec(e) => write!(f, "proxy decode/encode failed: {e}"),
            ProxyError::Core(e) => write!(f, "proxy annotation failed: {e}"),
            ProxyError::Serve(e) => write!(f, "proxy annotation service failed: {e}"),
        }
    }
}

impl Error for ProxyError {}

impl From<CodecError> for ProxyError {
    fn from(e: CodecError) -> Self {
        ProxyError::Codec(e)
    }
}

impl From<CoreError> for ProxyError {
    fn from(e: CoreError) -> Self {
        ProxyError::Core(e)
    }
}

/// One clip's worth of work for [`Proxy::transcode_batch`]: an
/// unannotated input stream plus the device/quality/mode it is being
/// prepared for.
#[derive(Debug, Clone, Copy)]
pub struct TranscodeRequest<'a> {
    /// The unannotated input stream.
    pub input: &'a EncodedStream,
    /// The client device the output is negotiated for.
    pub device: &'a DeviceProfile,
    /// The negotiated quality level.
    pub quality: QualityLevel,
    /// Per-scene or per-frame annotation granularity.
    pub mode: AnnotationMode,
}

/// The transcoding proxy.
#[derive(Debug, Clone)]
pub struct Proxy {
    encoder_template: EncoderConfig,
    service: Arc<AnnotationService>,
    parallel: ParallelConfig,
    policy: PolicyKind,
}

impl Proxy {
    /// Creates a proxy that re-encodes with the given settings, backed by
    /// a private deterministic [`AnnotationService`].
    pub fn new(encoder_template: EncoderConfig) -> Self {
        Self::with_service(encoder_template, AnnotationService::new(ServiceConfig::default()))
    }

    /// Creates a proxy sharing `service` (and its annotation cache) with
    /// other proxies/servers.
    pub fn with_service(encoder_template: EncoderConfig, service: Arc<AnnotationService>) -> Self {
        Self {
            encoder_template,
            service,
            parallel: ParallelConfig::serial(),
            policy: PolicyKind::PeakClip,
        }
    }

    /// Selects the annotation-policy backend the proxy plans (and
    /// compensates) with. Distinct policies never share cached tracks —
    /// the policy is part of the service's cache key.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The annotation-policy backend in use.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Fans the proxy's decode, profiling, compensation and re-encode
    /// stages out over an intra-clip worker pool (the codec endpoints
    /// fan out per closed GOP and per macroblock band). The default
    /// (`workers == 0`) is the serial reference path; every worker count
    /// produces a byte-identical output stream (see
    /// `tests/parallel_identity.rs`).
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The intra-clip parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// The backing annotation service (e.g. for counter reports).
    pub fn service(&self) -> &Arc<AnnotationService> {
        &self.service
    }

    /// Content digest of an incoming encoded stream; `variant` tags
    /// derived framings (0 = as-is, 1 = downscaled 2×) so their tracks
    /// never alias.
    fn stream_digest(input: &EncodedStream, variant: u32) -> u64 {
        let mut d = Digester::new();
        d.write(input.as_bytes()).write_u32(variant);
        d.finish()
    }

    /// Fetches the annotation track for decoded content through the
    /// service cache.
    fn annotate(
        &self,
        digest: u64,
        profile: &LuminanceProfile,
        device: &DeviceProfile,
        quality: QualityLevel,
        mode: AnnotationMode,
    ) -> Result<Arc<AnnotationTrack>, ProxyError> {
        self.service
            .annotate_profile(digest, profile, device, quality, mode, self.policy)
            .map(|resp| resp.track)
            .map_err(ProxyError::Serve)
    }

    /// Policy-aware compensation: HEBS reshapes pixels through its
    /// per-scene equalisation remap; every other policy applies the
    /// track's linear gain on the worker pool.
    fn compensate(
        &self,
        frames: &mut [Frame],
        track: &AnnotationTrack,
        profile: &LuminanceProfile,
        quality: QualityLevel,
        mode: AnnotationMode,
    ) -> Result<(), ProxyError> {
        if self.policy == PolicyKind::Hebs {
            // Rebuilt from the same profile/mode/quality the planner saw,
            // so the remap's scene spans match the track's entries.
            let set = HebsRemapSet::new(profile, mode, quality);
            for (i, f) in frames.iter_mut().enumerate() {
                set.apply_frame(f, i as u32);
            }
            Ok(())
        } else {
            parallel::compensate_frames(frames, track, &self.parallel)
                .map_err(ProxyError::Core)?;
            Ok(())
        }
    }

    /// Transcodes `input` into an annotated, compensated stream for
    /// `device` at `quality`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError`] when the input stream cannot be decoded or
    /// the re-encode fails.
    pub fn transcode(
        &self,
        input: &EncodedStream,
        device: &DeviceProfile,
        quality: QualityLevel,
        mode: AnnotationMode,
    ) -> Result<EncodedStream, ProxyError> {
        let mut dec = Decoder::new(input)?.with_parallelism(self.parallel);
        let mut frames = dec.decode_all()?;
        let profile =
            parallel::profile_frames(input.fps(), &frames, &self.parallel).map_err(ProxyError::Core)?;
        let track =
            self.annotate(Self::stream_digest(input, 0), &profile, device, quality, mode)?;

        let mut enc = Encoder::new(EncoderConfig {
            width: input.width(),
            height: input.height(),
            fps: input.fps(),
            ..self.encoder_template
        })?
        .with_parallelism(self.parallel);
        enc.push_user_data(&track.to_rle_bytes());
        self.compensate(&mut frames, &track, &profile, quality, mode)?;
        enc.push_frames(&frames)?;
        Ok(enc.finish())
    }

    /// Transcodes a whole batch of streams, scheduling the work of all
    /// of them onto **one** worker pool per stage.
    ///
    /// [`Proxy::transcode`] fans each clip out on its own: a short clip
    /// leaves most of the pool idle while a long clip's last GOP
    /// finishes. This entry point instead batches across clips — one
    /// [`decode_all_yuv_batched`] dispatch decodes every closed GOP of
    /// every stream, one [`parallel::profile_frames_batched`] dispatch
    /// profiles every frame, one
    /// [`parallel::compensate_frames_batched`] dispatch compensates
    /// them, and one [`encode_yuv_batched`] dispatch re-encodes — so
    /// mixed-length batches load-balance across the whole pool.
    ///
    /// Every output stream is byte-identical to what
    /// [`Proxy::transcode`] produces for the same request, for every
    /// worker count (`workers <= 1` literally runs the per-clip serial
    /// reference). Annotation still goes through the shared service
    /// cache per clip.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProxyError`] encountered, in request order.
    pub fn transcode_batch(
        &self,
        requests: &[TranscodeRequest<'_>],
    ) -> Result<Vec<EncodedStream>, ProxyError> {
        if self.parallel.workers <= 1 {
            return requests
                .iter()
                .map(|r| self.transcode(r.input, r.device, r.quality, r.mode))
                .collect();
        }
        // Stage 1: one batched decode across every stream's closed GOPs,
        // then the same per-frame RGB mapping `decode_all` applies.
        let mut decoders = requests
            .iter()
            .map(|r| Decoder::new(r.input))
            .collect::<Result<Vec<_>, _>>()?;
        let mut frames: Vec<Vec<Frame>> = decode_all_yuv_batched(&mut decoders, &self.parallel)?
            .into_iter()
            .map(|clip| clip.iter().map(Yuv420Frame::to_rgb).collect())
            .collect();
        drop(decoders);

        // Stage 2: one batched profiling dispatch over every frame of
        // every clip (job-local indices keep each profile identical to
        // its serial reference).
        let profile_jobs: Vec<(f64, &[Frame])> = requests
            .iter()
            .zip(&frames)
            .map(|(r, f)| (r.input.fps(), f.as_slice()))
            .collect();
        let profiles = parallel::profile_frames_batched(&profile_jobs, &self.parallel)
            .map_err(ProxyError::Core)?;

        // Stage 3: per-clip annotation through the shared service cache
        // (cache look-ups are cheap and keep hit/miss accounting exact).
        let tracks = requests
            .iter()
            .zip(&profiles)
            .map(|(r, p)| {
                self.annotate(Self::stream_digest(r.input, 0), p, r.device, r.quality, r.mode)
            })
            .collect::<Result<Vec<_>, _>>()?;

        // Stage 4: compensation. HEBS reshapes per clip (its remap is a
        // serial per-scene table); every other policy batches all clips
        // into one dispatch.
        if self.policy == PolicyKind::Hebs {
            for ((clip, profile), r) in frames.iter_mut().zip(&profiles).zip(requests) {
                let set = HebsRemapSet::new(profile, r.mode, r.quality);
                for (i, f) in clip.iter_mut().enumerate() {
                    set.apply_frame(f, i as u32);
                }
            }
        } else {
            let mut jobs: Vec<(&mut [Frame], &AnnotationTrack)> = frames
                .iter_mut()
                .zip(&tracks)
                .map(|(f, t)| (f.as_mut_slice(), t.as_ref()))
                .collect();
            parallel::compensate_frames_batched(&mut jobs, &self.parallel)
                .map_err(ProxyError::Core)?;
        }

        // Stage 5: one batched re-encode across every stream's GOPs,
        // after the same RGB→YUV mapping `push_frames` applies.
        let mut encoders = requests
            .iter()
            .map(|r| {
                Encoder::new(EncoderConfig {
                    width: r.input.width(),
                    height: r.input.height(),
                    fps: r.input.fps(),
                    ..self.encoder_template
                })
                .map(|e| e.with_parallelism(self.parallel))
            })
            .collect::<Result<Vec<_>, _>>()?;
        for (enc, track) in encoders.iter_mut().zip(&tracks) {
            enc.push_user_data(&track.to_rle_bytes());
        }
        let yuv_clips: Vec<Vec<Yuv420Frame>> = frames
            .iter()
            .map(|clip| {
                clip.iter()
                    .map(|f| {
                        f.to_yuv420()
                            .map_err(|e| CodecError::Malformed { reason: e.to_string() })
                    })
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()
            .map_err(ProxyError::Codec)?;
        let clip_refs: Vec<&[Yuv420Frame]> = yuv_clips.iter().map(Vec::as_slice).collect();
        encode_yuv_batched(&mut encoders, &clip_refs, &self.parallel)?;
        Ok(encoders.into_iter().map(Encoder::finish).collect())
    }

    /// Transcodes *and downscales* by 2× in each dimension — the
    /// data-shaping role of the Fig. 1 proxy when the wireless hop is
    /// constrained. Annotations are recomputed on the reshaped frames.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError`] if the input cannot be decoded, the halved
    /// dimensions are not multiples of 16, or the re-encode fails.
    pub fn transcode_downscaled(
        &self,
        input: &EncodedStream,
        device: &DeviceProfile,
        quality: QualityLevel,
        mode: AnnotationMode,
    ) -> Result<EncodedStream, ProxyError> {
        let mut dec = Decoder::new(input)?.with_parallelism(self.parallel);
        let mut frames = Vec::with_capacity(dec.frame_count() as usize);
        for f in dec.decode_all()? {
            frames.push(
                annolight_imgproc::downscale_2x(&f)
                    .map_err(|e| ProxyError::Codec(CodecError::Malformed { reason: e.to_string() }))?,
            );
        }
        let profile =
            parallel::profile_frames(input.fps(), &frames, &self.parallel).map_err(ProxyError::Core)?;
        let track =
            self.annotate(Self::stream_digest(input, 1), &profile, device, quality, mode)?;
        let mut enc = Encoder::new(EncoderConfig {
            width: input.width() / 2,
            height: input.height() / 2,
            fps: input.fps(),
            ..self.encoder_template
        })?
        .with_parallelism(self.parallel);
        enc.push_user_data(&track.to_rle_bytes());
        self.compensate(&mut frames, &track, &profile, quality, mode)?;
        enc.push_frames(&frames)?;
        Ok(enc.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PlaybackClient;
    use annolight_power::SystemPowerModel;
    use annolight_video::ClipLibrary;

    fn raw_stream() -> EncodedStream {
        let clip = ClipLibrary::paper_clip("spiderman2").unwrap().preview(3.0);
        let (w, h) = clip.dimensions();
        let mut enc = Encoder::new(EncoderConfig {
            width: w,
            height: h,
            fps: clip.fps(),
            ..EncoderConfig::default()
        })
        .unwrap();
        for f in clip.frames() {
            enc.push_frame(&f).unwrap();
        }
        enc.finish()
    }

    #[test]
    fn proxy_adds_annotations_to_plain_stream() {
        let input = raw_stream();
        assert!(Decoder::new(&input).unwrap().user_data().is_empty());
        let proxy = Proxy::new(EncoderConfig::default());
        let out = proxy
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        let dec = Decoder::new(&out).unwrap();
        assert_eq!(dec.user_data().len(), 1);
        assert_eq!(out.frame_count(), input.frame_count());
    }

    #[test]
    fn proxied_stream_plays_with_savings() {
        let input = raw_stream();
        let proxy = Proxy::new(EncoderConfig::default());
        let out = proxy
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q15, AnnotationMode::PerScene)
            .unwrap();
        let client = PlaybackClient::new(DeviceProfile::ipaq_5555(), SystemPowerModel::ipaq_5555());
        let report = client.play(&out, None).unwrap();
        assert!(report.annotated);
        assert!(report.total_savings() > 0.02, "savings {}", report.total_savings());
    }

    #[test]
    fn downscaling_proxy_shrinks_stream_and_keeps_savings() {
        let input = raw_stream();
        let proxy = Proxy::new(EncoderConfig::default());
        let out = proxy
            .transcode_downscaled(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        assert_eq!(out.width(), input.width() / 2);
        assert_eq!(out.height(), input.height() / 2);
        assert_eq!(out.frame_count(), input.frame_count());
        assert!(out.len() < input.len(), "quarter-area stream must be smaller");
        let client = PlaybackClient::new(DeviceProfile::ipaq_5555(), SystemPowerModel::ipaq_5555());
        let report = client.play(&out, None).unwrap();
        assert!(report.annotated);
        assert!(report.total_savings() > 0.02);
    }

    #[test]
    fn repeat_transcodes_hit_the_shared_annotation_cache() {
        let input = raw_stream();
        let proxy = Proxy::new(EncoderConfig::default());
        let a = proxy
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        let b = proxy
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes(), "cached track yields identical output");
        let report = proxy.service().report();
        assert_eq!(report.misses, 1, "one annotation pass");
        assert_eq!(report.hits, 1, "second transcode hits the cache");
        // The downscaled variant is different content: never aliases.
        let down = proxy
            .transcode_downscaled(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        assert_eq!(down.width(), input.width() / 2);
        assert_eq!(proxy.service().report().misses, 2);
    }

    #[test]
    fn hebs_proxy_plans_darker_than_peak_clip() {
        let input = raw_stream();
        let service = AnnotationService::new(ServiceConfig::default());
        let peak = Proxy::with_service(EncoderConfig::default(), Arc::clone(&service));
        let hebs = peak.clone().with_policy(PolicyKind::Hebs);
        let a = peak
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        let b = hebs
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        let track = |s: &EncodedStream| {
            AnnotationTrack::from_rle_bytes(&Decoder::new(s).unwrap().user_data()[0]).unwrap()
        };
        let (ta, tb) = (track(&a), track(&b));
        assert_eq!(ta.entries().len(), tb.entries().len(), "same scene structure");
        for (p, h) in ta.entries().iter().zip(tb.entries()) {
            assert!(h.backlight.0 <= p.backlight.0, "scene at {}", p.start_frame);
        }
        // Distinct policies are distinct cache entries on the shared service.
        assert_eq!(service.report().misses, 2);
    }

    #[test]
    fn transcode_batch_matches_per_clip_transcode() {
        // Mixed devices, qualities and clip lengths; batched output must
        // be byte-identical to per-clip transcode for every pool shape.
        let long = raw_stream();
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(1.0);
        let (w, h) = clip.dimensions();
        let mut enc = Encoder::new(EncoderConfig {
            width: w,
            height: h,
            fps: clip.fps(),
            ..EncoderConfig::default()
        })
        .unwrap();
        for f in clip.frames() {
            enc.push_frame(&f).unwrap();
        }
        let short = enc.finish();
        let requests = [
            TranscodeRequest {
                input: &long,
                device: &DeviceProfile::ipaq_5555(),
                quality: QualityLevel::Q10,
                mode: AnnotationMode::PerScene,
            },
            TranscodeRequest {
                input: &short,
                device: &DeviceProfile::zaurus_sl5600(),
                quality: QualityLevel::Q5,
                mode: AnnotationMode::PerFrame,
            },
            TranscodeRequest {
                input: &long,
                device: &DeviceProfile::ipaq_5555(),
                quality: QualityLevel::Q15,
                mode: AnnotationMode::PerScene,
            },
        ];
        let serial = Proxy::new(EncoderConfig::default());
        let reference: Vec<EncodedStream> = requests
            .iter()
            .map(|r| serial.transcode(r.input, r.device, r.quality, r.mode).unwrap())
            .collect();
        for workers in [0usize, 2, 7] {
            let proxy = Proxy::new(EncoderConfig::default())
                .with_parallelism(ParallelConfig::with_workers(workers).with_chunk_frames(4));
            let got = proxy.transcode_batch(&requests).unwrap();
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.as_bytes(), r.as_bytes(), "workers={workers}");
            }
        }
    }

    #[test]
    fn transcode_batch_hebs_matches_per_clip_transcode() {
        let input = raw_stream();
        let requests = [TranscodeRequest {
            input: &input,
            device: &DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q10,
            mode: AnnotationMode::PerScene,
        }];
        let serial = Proxy::new(EncoderConfig::default()).with_policy(PolicyKind::Hebs);
        let reference = serial
            .transcode(&input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
            .unwrap();
        let proxy = Proxy::new(EncoderConfig::default())
            .with_policy(PolicyKind::Hebs)
            .with_parallelism(ParallelConfig::with_workers(3));
        let got = proxy.transcode_batch(&requests).unwrap();
        assert_eq!(got[0].as_bytes(), reference.as_bytes());
    }

    #[test]
    fn proxy_preserves_frame_count_and_rate() {
        let input = raw_stream();
        let proxy = Proxy::new(EncoderConfig::default());
        let out = proxy
            .transcode(&input, &DeviceProfile::zaurus_sl5600(), QualityLevel::Q5, AnnotationMode::PerScene)
            .unwrap();
        assert_eq!(out.frame_count(), input.frame_count());
        assert!((out.fps() - input.fps()).abs() < 1e-9);
    }
}
