//! End-to-end session orchestration.
//!
//! A session follows Fig. 1: the client opens with a negotiation message
//! carrying its device profile and requested quality; the server (or a
//! proxy on its behalf) answers with the annotated stream, delivered in
//! MTU-sized chunks over the wireless channel model. Server and client run
//! on separate threads connected by crossbeam channels, like the real
//! pipeline; all *timing* is simulated (the channel model), so results are
//! deterministic.

use crate::client::{PlaybackClient, PlaybackError, PlaybackReport};
use crate::faults::{deliver_lossy, DegradationConfig, DegradationEvent, FaultConfig, FaultReport};
use crate::network::WirelessChannel;
use crate::proxy::Proxy;
use crate::server::{MediaServer, ServeError, ServeRequest};
use annolight_codec::{EncodedStream, EncoderConfig};
use annolight_core::track::AnnotationMode;
use annolight_core::{PolicyKind, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_power::{EnergyMeter, SystemPowerModel};
use annolight_video::Clip;
use annolight_support::channel;
use std::error::Error;
use std::fmt;
use std::thread;

/// Where annotations are inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationSite {
    /// The server annotates (the common case).
    Server,
    /// The server sends a plain stream; a proxy annotates mid-path.
    Proxy,
}

/// Session parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The clip to stream.
    pub clip: Clip,
    /// The client's device.
    pub device: DeviceProfile,
    /// Requested quality level.
    pub quality: QualityLevel,
    /// Per-scene or per-frame annotations.
    pub mode: AnnotationMode,
    /// Who inserts the annotations.
    pub site: AnnotationSite,
    /// The wireless hop model.
    pub channel: WirelessChannel,
    /// The client's system power model.
    pub system: SystemPowerModel,
    /// Encoder settings.
    pub encoder: EncoderConfig,
    /// Embed and apply DVFS hints (the §3 extension).
    pub dvfs: bool,
    /// Burst-prefetch the stream so the WNIC idles between bursts (§3's
    /// "network packet optimizations", enabled by annotations being
    /// available ahead of the data).
    pub burst_prefetch: bool,
    /// Fault injection on the wireless hop. The default is lossless;
    /// [`run_session`] ignores it, [`run_session_faulty`] honours it.
    pub faults: FaultConfig,
    /// The annotation-policy backend the client asks for. Carried in the
    /// hello, so the serving side plans (and compensates) with it.
    pub policy: PolicyKind,
}

impl SessionConfig {
    /// A default session: server-side annotation over 802.11b to an
    /// iPAQ 5555.
    pub fn new(clip: Clip, quality: QualityLevel) -> Self {
        Self {
            clip,
            device: DeviceProfile::ipaq_5555(),
            quality,
            mode: AnnotationMode::PerScene,
            site: AnnotationSite::Server,
            channel: WirelessChannel::wifi_80211b(),
            system: SystemPowerModel::ipaq_5555(),
            encoder: EncoderConfig::default(),
            dvfs: false,
            burst_prefetch: false,
            faults: FaultConfig::lossless(0),
            policy: PolicyKind::PeakClip,
        }
    }

    /// Selects the annotation-policy backend for the session.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

/// Errors running a session.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// Negotiation failed before any media moved: the server answered
    /// the client's hello with a typed refusal (e.g. an unknown clip
    /// name). This is the client-visible form of
    /// [`crate::server::ServeError::UnknownClip`] — a protocol outcome,
    /// not a panic.
    Negotiation(ServeError),
    /// The server refused the request.
    Serve(ServeError),
    /// The proxy failed to transcode.
    Proxy(crate::proxy::ProxyError),
    /// Playback failed on the client.
    Playback(PlaybackError),
    /// A pipeline thread panicked or disconnected.
    Pipeline(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Negotiation(e) => write!(f, "negotiation failed: {e}"),
            SessionError::Serve(e) => write!(f, "server error: {e}"),
            SessionError::Proxy(e) => write!(f, "proxy error: {e}"),
            SessionError::Playback(e) => write!(f, "client error: {e}"),
            SessionError::Pipeline(r) => write!(f, "pipeline error: {r}"),
        }
    }
}

impl Error for SessionError {}

/// The outcome of a whole streaming session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The quality level the negotiation granted (closest offered level
    /// not exceeding the request).
    pub granted_quality: QualityLevel,
    /// Total stream size delivered, bytes.
    pub stream_bytes: usize,
    /// Size of the embedded annotation track, bytes.
    pub annotation_bytes: usize,
    /// Number of network packets delivered.
    pub packets: usize,
    /// Simulated delivery time over the wireless hop, seconds.
    pub transfer_time_s: f64,
    /// Whether delivery kept up with real-time playback.
    pub real_time: bool,
    /// The client's playback/energy report.
    pub playback: PlaybackReport,
    /// Per-component energy breakdown.
    pub energy_breakdown: std::collections::BTreeMap<String, f64>,
}

annolight_support::impl_json!(struct SessionReport { granted_quality, stream_bytes, annotation_bytes, packets, transfer_time_s, real_time, playback, energy_breakdown });

/// Runs one complete session.
///
/// # Errors
///
/// Returns [`SessionError`] for failures anywhere in the pipeline.
pub fn run_session(config: SessionConfig) -> Result<SessionReport, SessionError> {
    let (stream, annotation_bytes, granted, device, config) = negotiate_and_serve(config)?;
    deliver_and_play(
        &stream,
        annotation_bytes,
        granted,
        device,
        config.system,
        &config.channel,
        config.burst_prefetch,
    )
}

/// The wired half of every session — negotiation, then serving or proxy
/// transcoding — shared by the lossless and fault-injected paths (and by
/// the reactor state machines in [`crate::machine`]).
#[allow(clippy::type_complexity)]
pub(crate) fn negotiate_and_serve(
    config: SessionConfig,
) -> Result<(EncodedStream, usize, QualityLevel, DeviceProfile, SessionConfig), SessionError> {
    negotiate_and_serve_at(config, true)
}

/// [`negotiate_and_serve`] with the spatial-scaling escape hatch.
///
/// `allow_spatial: false` pins the stream to full resolution even when the
/// negotiated policy is [`PolicyKind::SpatialScale`] — the governor uses
/// this, because its energy ladders are calibrated against full-resolution
/// playback and a mid-session geometry change would invalidate them.
#[allow(clippy::type_complexity)]
pub(crate) fn negotiate_and_serve_at(
    config: SessionConfig,
    allow_spatial: bool,
) -> Result<(EncodedStream, usize, QualityLevel, DeviceProfile, SessionConfig), SessionError> {
    let clip_name = config.clip.name().to_owned();

    // --- Server-side preparation (Fig. 1, wired segment) ----------------
    let mut server = MediaServer::new(config.encoder);
    server.add_clip(config.clip.clone());

    // --- Negotiation (§4.3): the client sends its device profile and ---
    // --- requested quality; the server answers with a typed offer ------
    let hello = crate::message::ClientHello::new(
        clip_name.clone(),
        config.device.clone(),
        config.quality,
        config.mode,
    )
    .with_policy(config.policy);
    let hello = crate::message::ClientHello::from_wire(&hello.to_wire())
        .map_err(SessionError::Pipeline)?;
    let offer = server.negotiate(&hello).map_err(SessionError::Negotiation)?;
    let granted = offer.granted_quality;
    let config =
        SessionConfig { quality: granted, device: hello.device, policy: hello.policy, ..config };

    // --- Spatial scaling (§3): the policy prices full vs. half --------
    // --- resolution with *this* client's channel and power model ------
    let downscale = allow_spatial
        && config.policy == PolicyKind::SpatialScale
        && crate::spatial::spatial_decision(
            config.policy,
            offer.width,
            offer.height,
            config.clip.frame_count(),
            offer.fps,
            &config.channel,
            &config.system,
        )
        .use_half;

    let (stream, annotation_bytes) = if downscale {
        // The data-shaping role of the Fig. 1 proxy: fetch the pictures
        // losslessly, downscale 2×, and annotate the reshaped frames.
        let plain = server
            .serve(&ServeRequest {
                clip_name,
                device: config.device.clone(),
                quality: QualityLevel::Q0,
                mode: config.mode,
                dvfs: false,
                policy: PolicyKind::PeakClip,
            })
            .map_err(SessionError::Serve)?;
        let proxy = Proxy::new(config.encoder).with_policy(config.policy);
        let out = proxy
            .transcode_downscaled(&plain.stream, &config.device, config.quality, config.mode)
            .map_err(SessionError::Proxy)?;
        let annotation = annolight_codec::Decoder::new(&out)
            .map_err(|e| SessionError::Pipeline(e.to_string()))?
            .user_data()
            .first()
            .map_or(0, |b| b.len());
        (out, annotation)
    } else {
        match config.site {
            AnnotationSite::Server => {
                let served = server
                    .serve(&ServeRequest {
                        clip_name,
                        device: config.device.clone(),
                        quality: config.quality,
                        mode: config.mode,
                        dvfs: config.dvfs,
                        policy: config.policy,
                    })
                    .map_err(SessionError::Serve)?;
                (served.stream, served.annotation_bytes)
            }
            AnnotationSite::Proxy => {
                // Legacy server: plain stream; proxy annotates on the fly.
                let plain = server
                    .serve(&ServeRequest {
                        clip_name,
                        device: config.device.clone(),
                        quality: QualityLevel::Q0,
                        mode: config.mode,
                        dvfs: false,
                        policy: PolicyKind::PeakClip,
                    })
                    .map_err(SessionError::Serve)?;
                // Strip annotations by re-encoding without user data is what a
                // legacy server would emit; transcode from the clean pictures.
                let proxy = Proxy::new(config.encoder).with_policy(config.policy);
                let out = proxy
                    .transcode(&plain.stream, &config.device, config.quality, config.mode)
                    .map_err(SessionError::Proxy)?;
                let annotation = annolight_codec::Decoder::new(&out)
                    .map_err(|e| SessionError::Pipeline(e.to_string()))?
                    .user_data()
                    .first()
                    .map_or(0, |b| b.len());
                (out, annotation)
            }
        }
    };
    let device = config.device.clone();
    Ok((stream, annotation_bytes, granted, device, config))
}

/// The outcome of a fault-injected session ([`run_session_faulty`]).
#[derive(Debug, Clone)]
pub struct FaultySessionReport {
    /// The usual session measurements. With a lossless
    /// [`SessionConfig::faults`] this is byte-for-byte what
    /// [`run_session`] reports.
    pub session: SessionReport,
    /// Channel/retransmission/hint-loss summary, including the WNIC
    /// energy the retransmissions cost.
    pub faults: FaultReport,
    /// The client's degradation log (deterministic per seed).
    pub events: Vec<DegradationEvent>,
    /// Frames played without their annotation available.
    pub degraded_frames: u32,
    /// Mean perceived-intensity error vs. the annotated schedule.
    pub perceived_error: f64,
}

annolight_support::impl_json!(struct FaultySessionReport { session, faults, events, degraded_frames, perceived_error });

/// Runs one complete session over the fault-injected wireless hop in
/// [`SessionConfig::faults`]: annotation hints are streamed as lossy
/// per-scene deltas (retried only until their scene starts), pictures are
/// retransmitted reliably, and the client degrades gracefully — playback
/// never stalls on a lost hint. Retransmission energy is charged to the
/// meter as `wnic_retransmit` on top of the playback breakdown.
///
/// # Errors
///
/// Returns [`SessionError`] for failures anywhere in the pipeline.
pub fn run_session_faulty(config: SessionConfig) -> Result<FaultySessionReport, SessionError> {
    let (stream, annotation_bytes, granted, device, config) = negotiate_and_serve(config)?;
    let lossy = deliver_lossy(&stream, &config.channel, &config.faults)
        .map_err(SessionError::Pipeline)?;
    let total = stream.as_bytes().len();
    finish_faulty(
        lossy,
        total,
        annotation_bytes,
        granted,
        device,
        &config.channel,
        &config.system,
        config.burst_prefetch,
    )
}

/// The client-side tail of a fault-injected session: degraded playback,
/// retransmission energy accounting, and report assembly. Shared by
/// [`run_session_faulty`] and the reactor's resumable faulty session
/// machine so both produce byte-identical reports from the same
/// [`LossyDelivery`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_faulty(
    lossy: crate::faults::LossyDelivery,
    total: usize,
    annotation_bytes: usize,
    granted: QualityLevel,
    device: DeviceProfile,
    channel: &WirelessChannel,
    system: &SystemPowerModel,
    burst_prefetch: bool,
) -> Result<FaultySessionReport, SessionError> {
    let transfer_time = channel.transfer_time_s(total);
    let meter = EnergyMeter::new();
    let mut client = PlaybackClient::new(device, system.clone());
    if burst_prefetch && lossy.stream.frame_count() > 0 {
        let duration =
            f64::from(lossy.stream.frame_count()) / lossy.stream.fps().max(f64::EPSILON);
        let duty = (transfer_time / duration).clamp(0.0, 1.0);
        client = client.with_wnic_duty(duty);
    }
    let degraded = client
        .play_degraded(&lossy.stream, &lossy.arrivals, DegradationConfig::default(), Some(&meter))
        .map_err(SessionError::Playback)?;

    let mut faults = lossy.report;
    if faults.channel.retransmits > 0 {
        // Each retransmission keeps the radio receiving for one extra
        // packet airtime and transmits a NACK — charged above the
        // baseline the playback already accounts.
        let slot = (channel.mtu as f64 * 8.0) / channel.bandwidth_bps;
        faults.retransmit_energy_j =
            system.retransmit_energy_j(faults.channel.retransmits, slot);
        meter.add("wnic_retransmit", faults.retransmit_energy_j);
    }

    let playback = degraded.report;
    Ok(FaultySessionReport {
        session: SessionReport {
            granted_quality: granted,
            stream_bytes: total,
            annotation_bytes,
            packets: lossy.picture_packets,
            transfer_time_s: transfer_time,
            real_time: transfer_time <= playback.duration_s,
            playback,
            energy_breakdown: meter.breakdown(),
        },
        faults,
        events: degraded.events,
        degraded_frames: degraded.degraded_frames,
        perceived_error: degraded.perceived_error,
    })
}

/// Client-side knobs for [`run_session_with_server`]: what the clip and
/// device do *not* determine (the hop model, the power model, and the
/// optional §3 extensions).
#[derive(Debug, Clone)]
pub struct SharedSessionOptions {
    /// The wireless hop model.
    pub channel: WirelessChannel,
    /// The client's system power model.
    pub system: SystemPowerModel,
    /// Embed DVFS hints.
    pub dvfs: bool,
    /// Burst-prefetch the stream (see [`SessionConfig::burst_prefetch`]).
    pub burst_prefetch: bool,
}

impl Default for SharedSessionOptions {
    /// 802.11b to an iPAQ 5555, no extensions.
    fn default() -> Self {
        Self {
            channel: WirelessChannel::wifi_80211b(),
            system: SystemPowerModel::ipaq_5555(),
            dvfs: false,
            burst_prefetch: false,
        }
    }
}

/// Runs a session against an existing (possibly shared) server
/// catalogue. Unlike [`run_session`], which builds a private server
/// around one clip, this entry negotiates by *name*: a hello for a clip
/// the server does not store comes back as
/// [`SessionError::Negotiation`]`(`[`ServeError::UnknownClip`]`)` — the
/// typed, client-visible failure — rather than a panic or a silent
/// empty stream.
///
/// # Errors
///
/// Returns [`SessionError::Negotiation`] when the hello is refused and
/// the usual [`SessionError`] variants for downstream failures.
pub fn run_session_with_server(
    server: &MediaServer,
    hello: &crate::message::ClientHello,
    options: &SharedSessionOptions,
) -> Result<SessionReport, SessionError> {
    // Wire round-trip: the server sees exactly what crossed the network.
    let hello = crate::message::ClientHello::from_wire(&hello.to_wire())
        .map_err(SessionError::Pipeline)?;
    let offer = server.negotiate(&hello).map_err(SessionError::Negotiation)?;
    let granted = offer.granted_quality;
    let served = server
        .serve(&ServeRequest {
            clip_name: hello.clip_name.clone(),
            device: hello.device.clone(),
            quality: granted,
            mode: hello.mode,
            dvfs: options.dvfs,
            policy: hello.policy,
        })
        .map_err(SessionError::Serve)?;
    deliver_and_play(
        &served.stream,
        served.annotation_bytes,
        granted,
        hello.device,
        options.system.clone(),
        &options.channel,
        options.burst_prefetch,
    )
}

/// The shared tail of every session: chunked wireless delivery over a
/// sender/receiver thread pair, reassembly, then client playback with
/// energy accounting.
fn deliver_and_play(
    stream: &EncodedStream,
    annotation_bytes: usize,
    granted: QualityLevel,
    device: DeviceProfile,
    system: SystemPowerModel,
    wireless: &WirelessChannel,
    burst_prefetch: bool,
) -> Result<SessionReport, SessionError> {
    let mtu = wireless.mtu;
    let bytes = stream.as_bytes().to_vec();
    let total = bytes.len();
    let (tx, rx) = channel::bounded::<Vec<u8>>(64);
    let sender = thread::spawn(move || {
        for chunk in bytes.chunks(mtu) {
            if tx.send(chunk.to_vec()).is_err() {
                return;
            }
        }
    });
    let receiver = thread::spawn(move || {
        let mut buf = Vec::with_capacity(total);
        let mut packets = 0usize;
        for chunk in rx.iter() {
            packets += 1;
            buf.extend_from_slice(&chunk);
        }
        (buf, packets)
    });
    sender
        .join()
        .map_err(|_| SessionError::Pipeline("sender thread panicked".into()))?;
    let (received, packets) = receiver
        .join()
        .map_err(|_| SessionError::Pipeline("receiver thread panicked".into()))?;
    play_received(
        received,
        packets,
        annotation_bytes,
        granted,
        device,
        system,
        wireless,
        burst_prefetch,
    )
}

/// The client half of a lossless delivery: reassembly of the received
/// bytes, then playback with energy accounting. Shared by the threaded
/// [`deliver_and_play`] pipeline and the reactor's resumable session
/// machine, which accumulates the same chunks cooperatively — both feed
/// this function, so their reports are byte-identical by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn play_received(
    received: Vec<u8>,
    packets: usize,
    annotation_bytes: usize,
    granted: QualityLevel,
    device: DeviceProfile,
    system: SystemPowerModel,
    wireless: &WirelessChannel,
    burst_prefetch: bool,
) -> Result<SessionReport, SessionError> {
    let total = received.len();
    let delivered = EncodedStream::from_bytes(received)
        .map_err(|e| SessionError::Pipeline(format!("reassembly failed: {e}")))?;

    // --- Client playback with energy accounting ------------------------
    let transfer_time = wireless.transfer_time_s(total);
    let meter = EnergyMeter::new();
    let mut client = PlaybackClient::new(device, system);
    if burst_prefetch && delivered.frame_count() > 0 {
        // With annotations the client knows the stream layout up front and
        // can fetch it in bursts: the radio only needs to receive for the
        // fraction of playback the transfer actually takes.
        let duration = f64::from(delivered.frame_count()) / delivered.fps().max(f64::EPSILON);
        let duty = (transfer_time / duration).clamp(0.0, 1.0);
        client = client.with_wnic_duty(duty);
    }
    let playback = client.play(&delivered, Some(&meter)).map_err(SessionError::Playback)?;
    Ok(SessionReport {
        granted_quality: granted,
        stream_bytes: total,
        annotation_bytes,
        packets,
        transfer_time_s: transfer_time,
        real_time: transfer_time <= playback.duration_s,
        playback,
        energy_breakdown: meter.breakdown(),
    })
}

/// Runs several sessions sharing one wireless hop (Fig. 1 shows multiple
/// users behind the access point): the channel bandwidth is divided
/// equally among the clients, then each session runs independently.
///
/// # Errors
///
/// Returns the first [`SessionError`] encountered.
pub fn run_shared_sessions(configs: Vec<SessionConfig>) -> Result<Vec<SessionReport>, SessionError> {
    let n = configs.len().max(1) as f64;
    configs
        .into_iter()
        .map(|mut cfg| {
            cfg.channel =
                WirelessChannel { bandwidth_bps: cfg.channel.bandwidth_bps / n, ..cfg.channel };
            run_session(cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_video::ClipLibrary;

    fn config(quality: QualityLevel) -> SessionConfig {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(3.0);
        SessionConfig::new(clip, quality)
    }

    #[test]
    fn server_annotated_session_end_to_end() {
        let report = run_session(config(QualityLevel::Q10)).unwrap();
        assert!(report.playback.annotated);
        assert!(report.playback.total_savings() > 0.02);
        assert!(report.annotation_bytes > 0);
        assert!(report.packets >= report.stream_bytes / 1500);
        assert!(report.real_time, "transfer {}s", report.transfer_time_s);
        assert!(!report.energy_breakdown.is_empty());
    }

    #[test]
    fn proxy_annotated_session_end_to_end() {
        let mut cfg = config(QualityLevel::Q10);
        cfg.site = AnnotationSite::Proxy;
        let report = run_session(cfg).unwrap();
        assert!(report.playback.annotated);
        assert!(report.playback.total_savings() > 0.02);
    }

    #[test]
    fn delivery_is_lossless() {
        let report = run_session(config(QualityLevel::Q5)).unwrap();
        // All frames decoded: the chunked transfer reassembled the exact
        // byte stream.
        assert!(report.playback.frames > 0);
        assert_eq!(report.playback.frames, 36); // 3 s at 12 fps
    }

    #[test]
    fn negotiation_grants_closest_offered_quality() {
        // A 12% request is granted the 10% stream — the server never
        // degrades more than the user agreed to.
        let mut cfg = config(QualityLevel::Custom(0.12));
        cfg.clip = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
        let report = run_session(cfg).unwrap();
        assert_eq!(report.granted_quality, QualityLevel::Q10);
    }

    #[test]
    fn burst_prefetch_idles_the_radio() {
        let plain = run_session(config(QualityLevel::Q10)).unwrap();
        let mut cfg = config(QualityLevel::Q10);
        cfg.burst_prefetch = true;
        let burst = run_session(cfg).unwrap();
        assert!(
            burst.playback.total_savings() > plain.playback.total_savings() + 0.02,
            "burst {} vs plain {}",
            burst.playback.total_savings(),
            plain.playback.total_savings()
        );
    }

    #[test]
    fn hebs_session_dims_the_backlight_at_least_as_far() {
        let peak = run_session(config(QualityLevel::Q10)).unwrap();
        let hebs = run_session(config(QualityLevel::Q10).with_policy(PolicyKind::Hebs)).unwrap();
        assert!(hebs.playback.annotated);
        assert!(
            hebs.playback.mean_backlight <= peak.playback.mean_backlight + 1e-9,
            "hebs {} vs peak-clip {}",
            hebs.playback.mean_backlight,
            peak.playback.mean_backlight
        );
        assert!(hebs.playback.total_savings() + 1e-9 >= peak.playback.total_savings());
    }

    #[test]
    fn spatial_scale_session_halves_the_stream() {
        let peak = run_session(config(QualityLevel::Q10)).unwrap();
        let spatial =
            run_session(config(QualityLevel::Q10).with_policy(PolicyKind::SpatialScale)).unwrap();
        // 128×96 over 802.11b clears the energy margin, so the policy
        // reshapes the stream to quarter area and far fewer bytes.
        assert!(
            spatial.stream_bytes * 2 < peak.stream_bytes,
            "spatial {} vs full {}",
            spatial.stream_bytes,
            peak.stream_bytes
        );
        assert!(spatial.playback.annotated, "downscaled stream is still annotated");
        assert_eq!(spatial.playback.frames, peak.playback.frames);
        assert!(spatial.transfer_time_s < peak.transfer_time_s);
    }

    #[test]
    fn session_report_serialises_for_tooling() {
        let report = run_session(config(QualityLevel::Q5)).unwrap();
        let json = annolight_support::json::to_string(&report);
        let back: SessionReport = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back.stream_bytes, report.stream_bytes);
        assert!((back.playback.energy_j - report.playback.energy_j).abs() < 1e-12);
    }

    #[test]
    fn shared_channel_divides_bandwidth() {
        let mk = || {
            let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(2.0);
            SessionConfig::new(clip, QualityLevel::Q10)
        };
        let solo = run_session(mk()).unwrap();
        let shared = run_shared_sessions(vec![mk(), mk(), mk(), mk()]).unwrap();
        assert_eq!(shared.len(), 4);
        for r in &shared {
            assert!(
                r.transfer_time_s > solo.transfer_time_s * 3.0,
                "shared {} vs solo {}",
                r.transfer_time_s,
                solo.transfer_time_s
            );
            // The energy result is unchanged — contention affects
            // delivery, not the playback power.
            assert!((r.playback.energy_j - solo.playback.energy_j).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_server_session_and_typed_unknown_clip() {
        use crate::message::ClientHello;
        let mut server = MediaServer::new(EncoderConfig::default());
        server.add_clip(ClipLibrary::paper_clip("themovie").unwrap().preview(2.0));
        let options = SharedSessionOptions::default();

        // Happy path: two clients, second rides the annotation cache.
        let hello = ClientHello::new(
            "themovie",
            DeviceProfile::ipaq_5555(),
            QualityLevel::Q10,
            AnnotationMode::PerScene,
        );
        let a = run_session_with_server(&server, &hello, &options).unwrap();
        let b = run_session_with_server(&server, &hello, &options).unwrap();
        assert!(a.playback.annotated && b.playback.annotated);
        let report = server.service().report();
        assert_eq!(report.misses, 1, "one profile pass serves both sessions");
        assert!(report.hits >= 1);

        // Unknown clip: a typed negotiation failure reaches the client.
        let bad = ClientHello::new(
            "not-in-catalogue",
            DeviceProfile::ipaq_5555(),
            QualityLevel::Q10,
            AnnotationMode::PerScene,
        );
        match run_session_with_server(&server, &bad, &options) {
            Err(SessionError::Negotiation(ServeError::UnknownClip(name))) => {
                assert_eq!(name, "not-in-catalogue");
            }
            other => panic!("expected typed negotiation failure, got {other:?}"),
        }
    }

    #[test]
    fn faulty_session_lossless_matches_plain_byte_for_byte() {
        let plain = run_session(config(QualityLevel::Q10)).unwrap();
        let faulty = run_session_faulty(config(QualityLevel::Q10)).unwrap();
        assert_eq!(
            annolight_support::json::to_string(&plain),
            annolight_support::json::to_string(&faulty.session),
            "zero-fault session must reproduce the lossless trace exactly"
        );
        assert!(faulty.events.is_empty());
        assert_eq!(faulty.degraded_frames, 0);
        assert_eq!(faulty.perceived_error, 0.0);
        assert_eq!(faulty.faults.channel.dropped, 0);
        assert_eq!(faulty.faults.deltas_lost, 0);
    }

    #[test]
    fn lossy_session_degrades_but_never_stalls() {
        let mut cfg = config(QualityLevel::Q10);
        cfg.faults = FaultConfig::lossy(42, 0.2);
        let r = run_session_faulty(cfg).unwrap();
        // Every frame still plays — annotation loss degrades, never stalls.
        assert_eq!(r.session.playback.frames, 36);
        assert!(r.faults.channel.dropped > 0, "20 % loss must drop packets");
        assert!(r.perceived_error <= 0.25, "error {}", r.perceived_error);
        assert!(r.faults.channel.retransmits > 0);
        assert!(r.faults.retransmit_energy_j > 0.0);
        assert!(r.session.energy_breakdown.contains_key("wnic_retransmit"));
    }

    #[test]
    fn proxy_annotated_session_survives_burst_loss() {
        let mut cfg = config(QualityLevel::Q10);
        cfg.site = AnnotationSite::Proxy;
        cfg.faults = FaultConfig::bursty(7);
        let r = run_session_faulty(cfg).unwrap();
        assert!(r.session.playback.annotated);
        assert_eq!(r.session.playback.frames, 36);
    }

    #[test]
    fn faulty_report_serialises_for_tooling() {
        let mut cfg = config(QualityLevel::Q5);
        cfg.faults = FaultConfig::lossy(1, 0.1);
        let r = run_session_faulty(cfg).unwrap();
        let json = annolight_support::json::to_string(&r);
        let back: FaultySessionReport = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back.session.stream_bytes, r.session.stream_bytes);
        assert_eq!(back.faults.channel.dropped, r.faults.channel.dropped);
        assert_eq!(back.events.len(), r.events.len());
    }

    #[test]
    fn quality_sweep_is_monotone() {
        let mut last = -1.0;
        for q in [QualityLevel::Q0, QualityLevel::Q10, QualityLevel::Q20] {
            let r = run_session(config(q)).unwrap();
            let s = r.playback.total_savings();
            assert!(s + 1e-9 >= last, "saving {s} decreased at {q:?}");
            last = s;
        }
    }
}
