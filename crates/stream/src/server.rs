//! The media server.
//!
//! "The server stores media content and streams videos to clients upon
//! user requests." Our server stores *clips* (synthetic sources) and
//! serves per-request streams: annotated for the negotiated device and
//! quality, frames compensated server-side, and the RLE annotation track
//! embedded as a user-data packet ahead of the pictures.
//!
//! Since the serve-tier refactor, the expensive work — profiling and
//! annotation — is delegated to an [`AnnotationService`]
//! ([`annolight_serve`]): a sharded, content-addressed cache in front of
//! a work-stealing profiling pool. A server created with
//! [`MediaServer::new`] owns a private deterministic service; servers
//! created with [`MediaServer::with_service`] share one service (and
//! therefore one cache) with other servers and proxies, which is how one
//! profile pass is amortised across every client of the same content.

use crate::message::{grant_quality, ClientHello, ServerOffer};
use annolight_codec::{Encoder, EncoderConfig};
use annolight_core::track::AnnotationTrack;
use annolight_core::{apply::compensate_frame, HebsRemapSet, PolicyKind, QualityLevel, SceneSpan};
use annolight_display::DeviceProfile;
use annolight_serve::{AnnotationRequest, AnnotationService, Service, ServiceConfig};
use annolight_video::Clip;
use annolight_core::track::AnnotationMode;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A client's request, as negotiated at session start (§4.3: "client
/// characteristics are sent during the initial negotiation phase").
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Which clip to stream.
    pub clip_name: String,
    /// The client's device profile.
    pub device: DeviceProfile,
    /// The user-selected quality level.
    pub quality: QualityLevel,
    /// Per-scene or per-frame annotation.
    pub mode: AnnotationMode,
    /// Also embed per-scene DVFS hints (§3's frequency/voltage-scaling
    /// application of annotations).
    pub dvfs: bool,
    /// The annotation-policy backend to plan (and compensate) with.
    pub policy: PolicyKind,
}

impl ServeRequest {
    /// A request with the defaults (per-scene mode, no DVFS hints,
    /// peak-clip policy).
    pub fn new(clip_name: impl Into<String>, device: DeviceProfile, quality: QualityLevel) -> Self {
        Self {
            clip_name: clip_name.into(),
            device,
            quality,
            mode: AnnotationMode::PerScene,
            dvfs: false,
            policy: PolicyKind::PeakClip,
        }
    }

    /// Enables DVFS hint embedding.
    pub fn with_dvfs(mut self) -> Self {
        self.dvfs = true;
        self
    }

    /// Selects the annotation mode.
    pub fn with_mode(mut self, mode: AnnotationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the annotation-policy backend.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

/// Errors serving a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The requested clip is not in the server's catalogue.
    UnknownClip(String),
    /// The annotation service rejected the request at admission — the
    /// tenant's queue is full. Back off and retry with
    /// [`crate::faults::retry::RetryPolicy::service`] (truncated
    /// exponential backoff with jitter), which
    /// `annolight_serve::AnnotationService::call_with_retry` implements.
    Overloaded {
        /// The tenant whose queue bound was hit.
        tenant: String,
    },
    /// Annotation or encoding failed.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownClip(name) => write!(f, "unknown clip {name:?}"),
            ServeError::Overloaded { tenant } => {
                write!(f, "service overloaded for tenant {tenant:?}")
            }
            ServeError::Internal(reason) => write!(f, "serve failed: {reason}"),
        }
    }
}

impl Error for ServeError {}

impl From<annolight_serve::ServeError> for ServeError {
    fn from(e: annolight_serve::ServeError) -> Self {
        match e {
            annolight_serve::ServeError::UnknownClip(name) => ServeError::UnknownClip(name),
            annolight_serve::ServeError::Overloaded { tenant } => ServeError::Overloaded { tenant },
            annolight_serve::ServeError::Internal(msg) => ServeError::Internal(msg),
        }
    }
}

/// The outcome of serving: the encoded stream plus server-side metadata.
#[derive(Debug, Clone)]
pub struct ServedStream {
    /// The encoded, annotated, compensated stream.
    pub stream: annolight_codec::EncodedStream,
    /// The annotation track the service returned (shared with its cache).
    pub track: Arc<AnnotationTrack>,
    /// Whether the track came from the service's cache (no profiling).
    pub cache_hit: bool,
    /// Size of the embedded annotation track, bytes.
    pub annotation_bytes: usize,
    /// Total pixels clipped by server-side compensation.
    pub clipped_pixels: u64,
    /// Total pixels processed by server-side compensation.
    pub total_pixels: u64,
}

/// Scene spans reconstructed from a track's entry boundaries. For
/// per-scene tracks this is exactly the plan's scene list
/// ([`AnnotationTrack::from_plan`] maps scenes 1:1 onto entries).
fn entry_spans(track: &AnnotationTrack) -> Vec<SceneSpan> {
    let entries = track.entries();
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| SceneSpan {
            start: e.start_frame,
            end: entries.get(i + 1).map_or(track.frame_count(), |n| n.start_frame),
        })
        .collect()
}

/// The multimedia server of Fig. 1.
#[derive(Debug)]
pub struct MediaServer {
    clips: HashMap<String, Clip>,
    service: Arc<AnnotationService>,
    encoder_template: EncoderConfig,
}

impl MediaServer {
    /// Creates an empty server with the given encoder settings (dimensions
    /// are taken per clip; fps/gop/qscale from the template) and a private
    /// deterministic [`AnnotationService`].
    pub fn new(encoder_template: EncoderConfig) -> Self {
        Self::with_service(encoder_template, AnnotationService::new(ServiceConfig::default()))
    }

    /// Creates a server backed by a shared annotation service: several
    /// servers (and proxies) pointed at the same service share one
    /// content-addressed track cache and one profiling pool.
    pub fn with_service(encoder_template: EncoderConfig, service: Arc<AnnotationService>) -> Self {
        Self { clips: HashMap::new(), service, encoder_template }
    }

    /// The backing annotation service (e.g. for counter reports).
    pub fn service(&self) -> &Arc<AnnotationService> {
        &self.service
    }

    /// Adds a clip to the catalogue, registering it with the annotation
    /// service and profiling it eagerly ("the video clips available for
    /// streaming at the servers are first profiled").
    ///
    /// # Panics
    ///
    /// Panics if the clip has no frames (library clips never do).
    pub fn add_clip(&mut self, clip: Clip) {
        let name = clip.name().to_owned();
        self.service.register_clip(clip.clone());
        self.service.profile_for(&name).expect("clips have at least one frame");
        self.clips.insert(name, clip);
    }

    /// Names of the stored clips (unordered).
    pub fn catalogue(&self) -> Vec<&str> {
        self.clips.keys().map(String::as_str).collect()
    }

    /// Answers a [`ClientHello`] with this server's offer: the paper's
    /// quality ladder, the granted (closest, never-exceeding) quality and
    /// the stream geometry. Unknown clip names are a *typed* negotiation
    /// failure — the session layer forwards them to the client instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownClip`] if the clip is not stored.
    pub fn negotiate(&self, hello: &ClientHello) -> Result<ServerOffer, ServeError> {
        let clip = self
            .clips
            .get(&hello.clip_name)
            .ok_or_else(|| ServeError::UnknownClip(hello.clip_name.clone()))?;
        let (w, h) = clip.dimensions();
        Ok(ServerOffer {
            offered_qualities: QualityLevel::PAPER_LEVELS.to_vec(),
            granted_quality: grant_quality(&QualityLevel::PAPER_LEVELS, hello.quality),
            width: w,
            height: h,
            fps: clip.fps(),
            // Coarse upper-bound estimate for client buffering: the
            // codec's worst case is near one byte per subsampled pixel.
            stream_bytes: u64::from(clip.frame_count()) * u64::from(w) * u64::from(h) * 3 / 2,
        })
    }

    /// Serves a request: obtain the annotation track from the service
    /// (cache hit or freshly profiled on the pool), compensate every
    /// frame, encode, and embed the track as user data *before* the
    /// pictures.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownClip`] for an unknown name,
    /// [`ServeError::Overloaded`] when the service sheds load, and
    /// [`ServeError::Internal`] for annotation/encode failures.
    pub fn serve(&self, req: &ServeRequest) -> Result<ServedStream, ServeError> {
        let clip = self
            .clips
            .get(&req.clip_name)
            .ok_or_else(|| ServeError::UnknownClip(req.clip_name.clone()))?;

        // The fairness domain is the requesting device class: every
        // device model shares one queue at the service.
        let response = self
            .service
            .call(AnnotationRequest {
                tenant: req.device.name().to_owned(),
                clip: req.clip_name.clone(),
                device: req.device.clone(),
                quality: req.quality,
                mode: req.mode,
                policy: req.policy,
            })
            .map_err(ServeError::from)?;
        let track = response.track;
        let track_bytes = track.to_rle_bytes();

        let (w, h) = clip.dimensions();
        let mut enc = Encoder::new(EncoderConfig {
            width: w,
            height: h,
            fps: clip.fps(),
            ..self.encoder_template
        })
        .map_err(|e| ServeError::Internal(e.to_string()))?;
        enc.push_user_data(&track_bytes);
        if req.dvfs {
            // DVFS hints need the luminance profile; the service memoises
            // it, so this is a lookup, not a re-profile.
            let profile = self.service.profile_for(&req.clip_name).map_err(ServeError::from)?;
            let spans = entry_spans(&track);
            let hints = annolight_core::extensions::dvfs_hints(&profile, &spans);
            enc.push_user_data(&annolight_core::extensions::hints_to_bytes(&hints));
        }

        // HEBS compensates through a per-scene histogram-equalisation
        // remap rather than the linear gain baked into the track; the
        // remap tables are rebuilt over the track's own entry spans so
        // server-side pixels and the embedded annotations always agree.
        let remaps = if req.policy == PolicyKind::Hebs {
            let profile = self.service.profile_for(&req.clip_name).map_err(ServeError::from)?;
            Some(HebsRemapSet::for_spans(&profile, entry_spans(&track), req.quality))
        } else {
            None
        };

        let mut clipped = 0u64;
        let mut total = 0u64;
        for i in 0..clip.frame_count() {
            let mut frame = clip.frame(i);
            let stats = match &remaps {
                Some(set) => set.apply_frame(&mut frame, i),
                None => compensate_frame(&mut frame, &track, i)
                    .map_err(|e| ServeError::Internal(e.to_string()))?,
            };
            clipped += stats.clipped_pixels;
            total += stats.total_pixels;
            enc.push_frame(&frame).map_err(|e| ServeError::Internal(e.to_string()))?;
        }
        Ok(ServedStream {
            stream: enc.finish(),
            annotation_bytes: track_bytes.len(),
            track,
            cache_hit: response.cache_hit,
            clipped_pixels: clipped,
            total_pixels: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_codec::Decoder;
    use annolight_video::ClipLibrary;

    fn server_with(name: &str, seconds: f64) -> (MediaServer, String) {
        let clip = ClipLibrary::paper_clip(name).unwrap().preview(seconds);
        let mut server = MediaServer::new(EncoderConfig::default());
        server.add_clip(clip);
        (server, name.to_owned())
    }

    fn request(clip: &str) -> ServeRequest {
        ServeRequest {
            clip_name: clip.into(),
            device: DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q10,
            mode: AnnotationMode::PerScene,
            dvfs: false,
            policy: PolicyKind::PeakClip,
        }
    }

    #[test]
    fn unknown_clip_is_error() {
        let (server, _) = server_with("themovie", 2.0);
        let err = server.serve(&request("nope")).unwrap_err();
        assert_eq!(err, ServeError::UnknownClip("nope".into()));
    }

    #[test]
    fn served_stream_contains_track_before_pictures() {
        let (server, name) = server_with("themovie", 3.0);
        let served = server.serve(&request(&name)).unwrap();
        let dec = Decoder::new(&served.stream).unwrap();
        assert_eq!(dec.user_data().len(), 1);
        let track = AnnotationTrack::from_rle_bytes(&dec.user_data()[0]).unwrap();
        assert_eq!(track.frame_count(), served.stream.frame_count());
        assert_eq!(track.device_name(), "ipaq-5555");
    }

    #[test]
    fn compensation_respects_quality_budget() {
        // The budget is defined over pixel *luminance*; compensation
        // saturates individual RGB channels, and a colored pixel's maximum
        // channel sits slightly above its luminance — the paper's "pixels
        // become saturated and clipping occurs or colors change". The
        // channel-level clip count may therefore exceed the luminance
        // budget by a small epsilon, never by much.
        let (server, name) = server_with("themovie", 4.0);
        let served = server.serve(&request(&name)).unwrap();
        let frac = served.clipped_pixels as f64 / served.total_pixels as f64;
        assert!(frac <= 0.10 + 0.02, "clipped fraction {frac}");
        assert!(served.total_pixels > 0);
    }

    #[test]
    fn annotation_overhead_is_tiny() {
        let (server, name) = server_with("catwoman", 6.0);
        let served = server.serve(&request(&name)).unwrap();
        assert!(
            served.annotation_bytes * 100 < served.stream.len(),
            "annotation {} vs stream {}",
            served.annotation_bytes,
            served.stream.len()
        );
    }

    #[test]
    fn lossless_quality_barely_clips() {
        // Q0 admits no *luminance* clipping; the only saturation left is
        // the channel-vs-luminance epsilon on colored pixels (see
        // `compensation_respects_quality_budget`), well under 1 %.
        let (server, name) = server_with("i_robot", 3.0);
        let req = ServeRequest { quality: QualityLevel::Q0, ..request(&name) };
        let served = server.serve(&req).unwrap();
        let frac = served.clipped_pixels as f64 / served.total_pixels as f64;
        assert!(frac < 0.01, "lossless clipped fraction {frac}");
    }

    #[test]
    fn catalogue_lists_clips() {
        let (server, name) = server_with("shrek2", 2.0);
        assert_eq!(server.catalogue(), vec![name.as_str()]);
    }

    #[test]
    fn repeat_serves_hit_the_annotation_cache() {
        let (server, name) = server_with("themovie", 2.0);
        let cold = server.serve(&request(&name)).unwrap();
        let warm = server.serve(&request(&name)).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert!(Arc::ptr_eq(&cold.track, &warm.track), "one resident track serves both");
        let report = server.service().report();
        assert_eq!((report.hits, report.misses), (1, 1));
    }

    #[test]
    fn shared_service_amortises_across_servers() {
        let service = AnnotationService::new(ServiceConfig::default());
        let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(2.0);
        let mut a = MediaServer::with_service(EncoderConfig::default(), Arc::clone(&service));
        let mut b = MediaServer::with_service(EncoderConfig::default(), Arc::clone(&service));
        a.add_clip(clip.clone());
        b.add_clip(clip); // same bytes => same content digest
        let first = a.serve(&request("officexp")).unwrap();
        let second = b.serve(&request("officexp")).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit, "server B reuses server A's profiling work");
        assert_eq!(service.report().misses, 1);
    }

    #[test]
    fn negotiate_offers_paper_ladder_and_typed_unknown_clip() {
        let (server, name) = server_with("themovie", 2.0);
        let hello = ClientHello::new(
            name.clone(),
            DeviceProfile::ipaq_5555(),
            QualityLevel::Custom(0.12),
            AnnotationMode::PerScene,
        );
        let offer = server.negotiate(&hello).unwrap();
        assert_eq!(offer.granted_quality, QualityLevel::Q10);
        assert_eq!(offer.offered_qualities, QualityLevel::PAPER_LEVELS.to_vec());
        assert!(offer.width > 0 && offer.fps > 0.0 && offer.stream_bytes > 0);

        let bad = ClientHello::new(
            "missing",
            DeviceProfile::ipaq_5555(),
            QualityLevel::Q10,
            AnnotationMode::PerScene,
        );
        assert_eq!(
            server.negotiate(&bad).unwrap_err(),
            ServeError::UnknownClip("missing".into())
        );
    }

    #[test]
    fn hebs_policy_plans_darker_and_stays_within_budget() {
        let (server, name) = server_with("themovie", 4.0);
        let peak = server.serve(&request(&name)).unwrap();
        let hebs = server.serve(&request(&name).with_policy(PolicyKind::Hebs)).unwrap();
        // HEBS reshapes pixels to tolerate a dimmer backlight: entrywise
        // never brighter than the peak-clip plan for the same scenes.
        for (p, h) in peak.track.entries().iter().zip(hebs.track.entries()) {
            assert!(h.backlight.0 <= p.backlight.0, "scene at {}", p.start_frame);
        }
        // The remap honours the same clip budget the track was planned to.
        let frac = hebs.clipped_pixels as f64 / hebs.total_pixels as f64;
        assert!(frac <= 0.10 + 0.02, "hebs clipped fraction {frac}");
        // Distinct policy => distinct cache entry, not a collision.
        assert!(!hebs.cache_hit);
    }

    #[test]
    fn dvfs_hints_survive_the_service_refactor() {
        let (server, name) = server_with("spiderman2", 3.0);
        let served = server.serve(&request(&name).with_dvfs()).unwrap();
        let dec = Decoder::new(&served.stream).unwrap();
        assert_eq!(dec.user_data().len(), 2, "track + DVFS hints");
        let hints =
            annolight_core::extensions::hints_from_bytes(&dec.user_data()[1]).unwrap();
        assert_eq!(hints.len(), served.track.entries().len());
    }
}
