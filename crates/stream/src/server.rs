//! The media server.
//!
//! "The server stores media content and streams videos to clients upon
//! user requests." Our server stores *clips* (synthetic sources), profiles
//! them once, and serves per-request streams: annotated for the
//! negotiated device and quality, frames compensated server-side, and the
//! RLE annotation track embedded as a user-data packet ahead of the
//! pictures.

use annolight_codec::{Encoder, EncoderConfig};
use annolight_core::{apply::compensate_frame, AnnotatedClip, Annotator, LuminanceProfile, QualityLevel};
use annolight_core::track::AnnotationMode;
use annolight_display::DeviceProfile;
use annolight_video::Clip;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A client's request, as negotiated at session start (§4.3: "client
/// characteristics are sent during the initial negotiation phase").
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Which clip to stream.
    pub clip_name: String,
    /// The client's device profile.
    pub device: DeviceProfile,
    /// The user-selected quality level.
    pub quality: QualityLevel,
    /// Per-scene or per-frame annotation.
    pub mode: AnnotationMode,
    /// Also embed per-scene DVFS hints (§3's frequency/voltage-scaling
    /// application of annotations).
    pub dvfs: bool,
}

impl ServeRequest {
    /// A request with the defaults (per-scene mode, no DVFS hints).
    pub fn new(clip_name: impl Into<String>, device: DeviceProfile, quality: QualityLevel) -> Self {
        Self {
            clip_name: clip_name.into(),
            device,
            quality,
            mode: AnnotationMode::PerScene,
            dvfs: false,
        }
    }

    /// Enables DVFS hint embedding.
    pub fn with_dvfs(mut self) -> Self {
        self.dvfs = true;
        self
    }

    /// Selects the annotation mode.
    pub fn with_mode(mut self, mode: AnnotationMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Errors serving a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The requested clip is not in the server's catalogue.
    UnknownClip(String),
    /// Annotation or encoding failed.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownClip(name) => write!(f, "unknown clip {name:?}"),
            ServeError::Internal(reason) => write!(f, "serve failed: {reason}"),
        }
    }
}

impl Error for ServeError {}

/// The outcome of serving: the encoded stream plus server-side metadata.
#[derive(Debug, Clone)]
pub struct ServedStream {
    /// The encoded, annotated, compensated stream.
    pub stream: annolight_codec::EncodedStream,
    /// The annotation the server computed (for reports/analysis).
    pub annotated: AnnotatedClip,
    /// Size of the embedded annotation track, bytes.
    pub annotation_bytes: usize,
    /// Total pixels clipped by server-side compensation.
    pub clipped_pixels: u64,
    /// Total pixels processed by server-side compensation.
    pub total_pixels: u64,
}

/// The multimedia server of Fig. 1.
#[derive(Debug)]
pub struct MediaServer {
    clips: HashMap<String, Clip>,
    profiles: HashMap<String, LuminanceProfile>,
    encoder_template: EncoderConfig,
}

impl MediaServer {
    /// Creates an empty server with the given encoder settings (dimensions
    /// are taken per clip; fps/gop/qscale from the template).
    pub fn new(encoder_template: EncoderConfig) -> Self {
        Self { clips: HashMap::new(), profiles: HashMap::new(), encoder_template }
    }

    /// Adds a clip to the catalogue, profiling it immediately ("the video
    /// clips available for streaming at the servers are first profiled").
    ///
    /// # Panics
    ///
    /// Panics if the clip has no frames (library clips never do).
    pub fn add_clip(&mut self, clip: Clip) {
        let profile = LuminanceProfile::of_clip(&clip).expect("clips have at least one frame");
        self.profiles.insert(clip.name().to_owned(), profile);
        self.clips.insert(clip.name().to_owned(), clip);
    }

    /// Names of the stored clips (unordered).
    pub fn catalogue(&self) -> Vec<&str> {
        self.clips.keys().map(String::as_str).collect()
    }

    /// Serves a request: annotate for the negotiated device/quality,
    /// compensate every frame, encode, and embed the annotation track as
    /// user data *before* the pictures.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownClip`] for an unknown name and
    /// [`ServeError::Internal`] for annotation/encode failures.
    pub fn serve(&self, req: &ServeRequest) -> Result<ServedStream, ServeError> {
        let clip = self
            .clips
            .get(&req.clip_name)
            .ok_or_else(|| ServeError::UnknownClip(req.clip_name.clone()))?;
        let profile = &self.profiles[&req.clip_name];

        let annotator = Annotator::new(req.device.clone(), req.quality).with_mode(req.mode);
        let annotated = annotator
            .annotate_profile(profile)
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        let track_bytes = annotated.track().to_rle_bytes();

        let (w, h) = clip.dimensions();
        let mut enc = Encoder::new(EncoderConfig {
            width: w,
            height: h,
            fps: clip.fps(),
            ..self.encoder_template
        })
        .map_err(|e| ServeError::Internal(e.to_string()))?;
        enc.push_user_data(&track_bytes);
        if req.dvfs {
            let spans: Vec<_> = annotated.plan().scenes().iter().map(|s| s.span).collect();
            let hints = annolight_core::extensions::dvfs_hints(profile, &spans);
            enc.push_user_data(&annolight_core::extensions::hints_to_bytes(&hints));
        }

        let mut clipped = 0u64;
        let mut total = 0u64;
        for i in 0..clip.frame_count() {
            let mut frame = clip.frame(i);
            let stats = compensate_frame(&mut frame, annotated.track(), i)
                .map_err(|e| ServeError::Internal(e.to_string()))?;
            clipped += stats.clipped_pixels;
            total += stats.total_pixels;
            enc.push_frame(&frame).map_err(|e| ServeError::Internal(e.to_string()))?;
        }
        Ok(ServedStream {
            stream: enc.finish(),
            annotation_bytes: track_bytes.len(),
            annotated,
            clipped_pixels: clipped,
            total_pixels: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_codec::Decoder;
    use annolight_core::track::AnnotationTrack;
    use annolight_video::ClipLibrary;

    fn server_with(name: &str, seconds: f64) -> (MediaServer, String) {
        let clip = ClipLibrary::paper_clip(name).unwrap().preview(seconds);
        let mut server = MediaServer::new(EncoderConfig::default());
        server.add_clip(clip);
        (server, name.to_owned())
    }

    fn request(clip: &str) -> ServeRequest {
        ServeRequest {
            clip_name: clip.into(),
            device: DeviceProfile::ipaq_5555(),
            quality: QualityLevel::Q10,
            mode: AnnotationMode::PerScene,
            dvfs: false,
        }
    }

    #[test]
    fn unknown_clip_is_error() {
        let (server, _) = server_with("themovie", 2.0);
        let err = server.serve(&request("nope")).unwrap_err();
        assert_eq!(err, ServeError::UnknownClip("nope".into()));
    }

    #[test]
    fn served_stream_contains_track_before_pictures() {
        let (server, name) = server_with("themovie", 3.0);
        let served = server.serve(&request(&name)).unwrap();
        let dec = Decoder::new(&served.stream).unwrap();
        assert_eq!(dec.user_data().len(), 1);
        let track = AnnotationTrack::from_rle_bytes(&dec.user_data()[0]).unwrap();
        assert_eq!(track.frame_count(), served.stream.frame_count());
        assert_eq!(track.device_name(), "ipaq-5555");
    }

    #[test]
    fn compensation_respects_quality_budget() {
        // The budget is defined over pixel *luminance*; compensation
        // saturates individual RGB channels, and a colored pixel's maximum
        // channel sits slightly above its luminance — the paper's "pixels
        // become saturated and clipping occurs or colors change". The
        // channel-level clip count may therefore exceed the luminance
        // budget by a small epsilon, never by much.
        let (server, name) = server_with("themovie", 4.0);
        let served = server.serve(&request(&name)).unwrap();
        let frac = served.clipped_pixels as f64 / served.total_pixels as f64;
        assert!(frac <= 0.10 + 0.02, "clipped fraction {frac}");
        assert!(served.total_pixels > 0);
    }

    #[test]
    fn annotation_overhead_is_tiny() {
        let (server, name) = server_with("catwoman", 6.0);
        let served = server.serve(&request(&name)).unwrap();
        assert!(
            served.annotation_bytes * 100 < served.stream.len(),
            "annotation {} vs stream {}",
            served.annotation_bytes,
            served.stream.len()
        );
    }

    #[test]
    fn lossless_quality_barely_clips() {
        // Q0 admits no *luminance* clipping; the only saturation left is
        // the channel-vs-luminance epsilon on colored pixels (see
        // `compensation_respects_quality_budget`), well under 1 %.
        let (server, name) = server_with("i_robot", 3.0);
        let req = ServeRequest { quality: QualityLevel::Q0, ..request(&name) };
        let served = server.serve(&req).unwrap();
        let frac = served.clipped_pixels as f64 / served.total_pixels as f64;
        assert!(frac < 0.01, "lossless clipped fraction {frac}");
    }

    #[test]
    fn catalogue_lists_clips() {
        let (server, name) = server_with("shrek2", 2.0);
        assert_eq!(server.catalogue(), vec![name.as_str()]);
    }
}
