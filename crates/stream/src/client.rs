//! The playback client.
//!
//! "The only extra operation that the device has to perform during
//! playback is to adjust the backlight level periodically, according to
//! the annotations in the video stream." The client decodes the stream,
//! reads the annotation track from the user data (before decoding any
//! picture), drives the backlight controller, and accounts energy with the
//! device + system power models — producing the measured numbers behind
//! Fig. 10.

use crate::faults::{
    AnnotationArrivals, DegradationConfig, DegradationEvent, DegradationKind, DegradedPlayback,
};
use annolight_codec::{CodecError, Decoder, EncodedStream};
use annolight_core::track::AnnotationTrack;
use annolight_display::{BacklightController, BacklightLevel, ControllerConfig, DeviceProfile, SwitchStats};
use annolight_power::{EnergyMeter, SystemPowerModel};
use std::error::Error;
use std::fmt;

/// Fraction of CPU time spent decoding while playing (XScale 400 MHz
/// decoding QVGA-class MPEG in software runs near saturation).
pub(crate) const DECODE_CPU_BUSY: f64 = 0.75;

/// Extra CPU-busy fraction charged per backlight switch — "because
/// adjustments are not performed very often, the amount of work is
/// negligible" (a multiplication and a table look-up).
const SWITCH_CPU_COST: f64 = 1e-4;

/// Errors during playback.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlaybackError {
    /// The bitstream failed to decode.
    Codec(CodecError),
    /// The embedded annotation track was malformed.
    BadTrack(String),
    /// The annotation track targets a different device.
    DeviceMismatch {
        /// Device named in the track.
        track_device: String,
        /// The client's actual device.
        client_device: String,
    },
}

impl fmt::Display for PlaybackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaybackError::Codec(e) => write!(f, "decode failed: {e}"),
            PlaybackError::BadTrack(r) => write!(f, "bad annotation track: {r}"),
            PlaybackError::DeviceMismatch { track_device, client_device } => write!(
                f,
                "annotation track is for {track_device} but this client is {client_device}"
            ),
        }
    }
}

impl Error for PlaybackError {}

impl From<CodecError> for PlaybackError {
    fn from(e: CodecError) -> Self {
        PlaybackError::Codec(e)
    }
}

/// The result of playing one stream to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// Number of frames decoded and displayed.
    pub frames: u32,
    /// Playback duration, seconds.
    pub duration_s: f64,
    /// Total device energy with annotations applied, joules.
    pub energy_j: f64,
    /// Total device energy the same playback would use at full backlight.
    pub baseline_energy_j: f64,
    /// Mean total device power, watts.
    pub avg_power_w: f64,
    /// Backlight subsystem energy, joules.
    pub backlight_energy_j: f64,
    /// Whether an annotation track was found and applied.
    pub annotated: bool,
    /// Whether DVFS hints were found and applied.
    pub dvfs_applied: bool,
    /// Backlight switching statistics.
    pub switches: SwitchStats,
    /// Mean backlight level over the session.
    pub mean_backlight: f64,
}

annolight_support::impl_json!(struct PlaybackReport { frames, duration_s, energy_j, baseline_energy_j, avg_power_w, backlight_energy_j, annotated, dvfs_applied, switches, mean_backlight });

impl PlaybackReport {
    /// Fractional total-device power saving vs. full backlight — the
    /// per-clip quantity of Fig. 10.
    pub fn total_savings(&self) -> f64 {
        if self.baseline_energy_j <= 0.0 {
            0.0
        } else {
            1.0 - self.energy_j / self.baseline_energy_j
        }
    }
}

/// The handheld playback client.
#[derive(Debug, Clone)]
pub struct PlaybackClient {
    device: DeviceProfile,
    system: SystemPowerModel,
    controller: ControllerConfig,
    /// WNIC receive duty cycle during playback (1.0 = continuous
    /// reception; below 1 models annotation-driven burst prefetching,
    /// §3's "network packet optimizations").
    wnic_duty: f64,
}

impl PlaybackClient {
    /// Creates a client for `device` with the given system power model.
    pub fn new(device: DeviceProfile, system: SystemPowerModel) -> Self {
        Self { device, system, controller: ControllerConfig::default(), wnic_duty: 1.0 }
    }

    /// Sets the WNIC receive duty cycle (see the field docs).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn with_wnic_duty(mut self, duty: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty), "wnic duty {duty} outside [0, 1]");
        self.wnic_duty = duty;
        self
    }

    /// Overrides the backlight controller configuration.
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// The client's device profile (what it sends in the negotiation
    /// phase).
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Plays a stream to completion, returning the energy report.
    ///
    /// An annotation track found in the stream's user data is applied; a
    /// stream without one plays at full backlight. Optionally `meter`
    /// receives a per-component energy breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`PlaybackError`] for codec failures, malformed tracks, or
    /// a track targeting a different device.
    pub fn play(
        &self,
        stream: &EncodedStream,
        meter: Option<&EnergyMeter>,
    ) -> Result<PlaybackReport, PlaybackError> {
        self.play_loop(stream, meter, |frame, _now, track| match track {
            Some(t) => Ok(t
                .entry_at(frame.min(t.frame_count().saturating_sub(1)))
                .map_err(|e| PlaybackError::BadTrack(e.to_string()))?
                .backlight),
            None => Ok(BacklightLevel::MAX),
        })
    }

    /// Scans the stream's user data for the annotation track and DVFS
    /// hints, validating the track against this client's device.
    #[allow(clippy::type_complexity)]
    fn scan_user_data(
        &self,
        dec: &Decoder,
    ) -> Result<
        (Option<AnnotationTrack>, Option<Vec<annolight_core::extensions::DvfsHint>>),
        PlaybackError,
    > {
        // Annotations are available before any picture is decoded (§3).
        // User-data payloads are distinguished by magic: `ALT1` is the
        // backlight track, `ADV1` a DVFS hint packet.
        let mut track: Option<AnnotationTrack> = None;
        let mut hints: Option<Vec<annolight_core::extensions::DvfsHint>> = None;
        for bytes in dec.user_data() {
            if annolight_core::extensions::is_dvfs_payload(bytes) {
                hints = Some(
                    annolight_core::extensions::hints_from_bytes(bytes)
                        .map_err(|e| PlaybackError::BadTrack(e.to_string()))?,
                );
            } else if track.is_none() {
                let t = AnnotationTrack::from_rle_bytes(bytes)
                    .map_err(|e| PlaybackError::BadTrack(e.to_string()))?;
                if t.device_name() != self.device.name() {
                    return Err(PlaybackError::DeviceMismatch {
                        track_device: t.device_name().to_owned(),
                        client_device: self.device.name().to_owned(),
                    });
                }
                track = Some(t);
            }
        }
        Ok((track, hints))
    }

    /// The shared playback loop. `desired` picks the backlight level to
    /// *request* for each frame (given the frame index, the playback time
    /// and the embedded track); everything else — decoding, the
    /// controller, the power integration — is identical between the
    /// lossless and degraded paths, which is what makes their reports
    /// byte-identical when every annotation arrives on time.
    fn play_loop(
        &self,
        stream: &EncodedStream,
        meter: Option<&EnergyMeter>,
        mut desired: impl FnMut(u32, f64, Option<&AnnotationTrack>) -> Result<BacklightLevel, PlaybackError>,
    ) -> Result<PlaybackReport, PlaybackError> {
        let mut dec = Decoder::new(stream)?;
        let (track, hints) = self.scan_user_data(&dec)?;

        let fps = dec.fps().max(f64::EPSILON);
        let dt = 1.0 / fps;
        let mut controller = BacklightController::new(self.controller);
        let mut frames = 0u32;
        let mut energy = 0.0f64;
        let mut baseline = 0.0f64;
        let mut backlight_energy = 0.0f64;
        let mut level_sum = 0.0f64;

        while dec.decode_next()?.is_some() {
            let now = f64::from(frames) * dt;
            let want = desired(frames, now, track.as_ref())?;
            let level = controller.request(now, want);
            let backlight_w = self.device.backlight_power().power_w(level);
            let full_w = self.device.backlight_power().power_w(BacklightLevel::MAX);
            let switch_cost = SWITCH_CPU_COST * controller.stats().switches as f64;
            // With DVFS hints the decoder runs at the annotated frequency:
            // busier per cycle, but far cheaper per cycle.
            let p = match hints
                .as_deref()
                .and_then(|h| annolight_core::extensions::hint_for_frame(h, frames))
            {
                Some(h) => {
                    let busy = (h.busy_at(h.frequency) + switch_cost).min(1.0);
                    // DVFS scales the CPU term; the WNIC duty is applied on
                    // top by subtracting the idle↔rx difference saved.
                    let full_duty =
                        self.system.power_w_dvfs(busy, h.frequency.relative_power(), true, backlight_w);
                    full_duty
                        - (1.0 - self.wnic_duty) * (self.system.wnic_rx_w - self.system.wnic_idle_w)
                }
                None => self.system.power_w_duty(
                    (DECODE_CPU_BUSY + switch_cost).min(1.0),
                    self.wnic_duty,
                    backlight_w,
                ),
            };
            let p_base = self.system.power_w(DECODE_CPU_BUSY, true, full_w);
            energy += p * dt;
            baseline += p_base * dt;
            backlight_energy += backlight_w * dt;
            level_sum += f64::from(level.0);
            if let Some(m) = meter {
                m.add("backlight", backlight_w * dt);
                m.add("system", (p - backlight_w) * dt);
            }
            frames += 1;
        }

        let duration = f64::from(frames) * dt;
        Ok(PlaybackReport {
            frames,
            duration_s: duration,
            energy_j: energy,
            baseline_energy_j: baseline,
            avg_power_w: if duration > 0.0 { energy / duration } else { 0.0 },
            backlight_energy_j: backlight_energy,
            annotated: track.is_some(),
            dvfs_applied: hints.is_some(),
            switches: controller.stats(),
            mean_backlight: if frames > 0 { level_sum / f64::from(frames) } else { 255.0 },
        })
    }

    /// Plays a stream whose annotation hints crossed a lossy hop.
    ///
    /// `arrivals` records when each scene's hint reached the client (see
    /// [`crate::faults::deliver_lossy`]). A scene whose hint is present by
    /// the time its first frame displays plays exactly as [`Self::play`]
    /// would; a missing hint triggers the graceful-degradation policy in
    /// `degradation` — hold the last annotated level for a few frames,
    /// then slew gently toward full backlight (always-safe brightness,
    /// bounded step size, so no flicker) — and a hint that lands mid-scene
    /// is applied from that frame on. Every transition is recorded as a
    /// [`DegradationEvent`]; identical seeds produce byte-identical logs.
    ///
    /// With every hint on time the returned report is *byte-identical* to
    /// [`Self::play`] — the two paths share one playback loop.
    ///
    /// # Errors
    ///
    /// Returns [`PlaybackError`] for the same conditions as
    /// [`Self::play`].
    pub fn play_degraded(
        &self,
        stream: &EncodedStream,
        arrivals: &AnnotationArrivals,
        degradation: DegradationConfig,
        meter: Option<&EnergyMeter>,
    ) -> Result<DegradedPlayback, PlaybackError> {
        let mut events: Vec<DegradationEvent> = Vec::new();
        let mut degraded_frames = 0u32;
        let mut error_sum = 0.0f64;
        let mut last_good = BacklightLevel::MAX;
        let mut degraded_since: Option<u32> = None;
        let mut missing_seq: Option<u32> = None;

        let report = self.play_loop(stream, meter, |frame, now, track| {
            let Some(t) = track else { return Ok(BacklightLevel::MAX) };
            let entries = t.entries();
            let f = frame.min(t.frame_count().saturating_sub(1));
            let idx = match entries.binary_search_by_key(&f, |e| e.start_frame) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let annotated = entries[idx].backlight;
            if arrivals.arrived_by(idx, now) {
                if missing_seq.take() == Some(idx as u32) {
                    // The hint landed mid-scene: recover from this frame.
                    events.push(DegradationEvent {
                        frame,
                        seq: idx as u32,
                        kind: DegradationKind::Recovered,
                        level: annotated.0,
                    });
                }
                degraded_since = None;
                last_good = annotated;
                return Ok(annotated);
            }
            if missing_seq != Some(idx as u32) {
                missing_seq = Some(idx as u32);
                degraded_since = Some(frame);
                events.push(DegradationEvent {
                    frame,
                    seq: idx as u32,
                    kind: DegradationKind::Missed,
                    level: last_good.0,
                });
            }
            let held = frame - degraded_since.unwrap_or(frame);
            let level = if held < degradation.hold_frames {
                // Hold: the last annotated level stays a good guess for a
                // short while (scenes change slowly).
                last_good
            } else {
                // Slew toward full backlight — always legible, and the
                // bounded step keeps the ramp invisible.
                let ramp = u32::from(degradation.ramp_step_per_frame)
                    * (held - degradation.hold_frames + 1);
                BacklightLevel((u32::from(last_good.0) + ramp).min(255) as u8)
            };
            degraded_frames += 1;
            error_sum += f64::from(level.0.abs_diff(annotated.0));
            Ok(level)
        })?;

        // Post-hoc: hints that arrived only after their whole scene had
        // played (useless arrivals — the scene degraded start to finish).
        if report.annotated && !arrivals.is_empty() {
            let dec = Decoder::new(stream)?;
            if let (Some(t), _) = self.scan_user_data(&dec)? {
                let fps = stream.fps().max(f64::EPSILON);
                let entries = t.entries();
                for (i, e) in entries.iter().enumerate() {
                    let end_frame =
                        entries.get(i + 1).map_or(t.frame_count(), |n| n.start_frame);
                    let last_frame_s = f64::from(end_frame.saturating_sub(1)) / fps;
                    if let Some(a) = arrivals.arrival_s(i) {
                        if a > arrivals.startup_s() + last_frame_s {
                            events.push(DegradationEvent {
                                frame: end_frame.saturating_sub(1).min(report.frames.saturating_sub(1)),
                                seq: i as u32,
                                kind: DegradationKind::Late,
                                level: e.backlight.0,
                            });
                        }
                    }
                }
            }
            events.sort_by_key(|e| (e.frame, e.seq));
        }

        let perceived_error = if report.frames > 0 {
            error_sum / (255.0 * f64::from(report.frames))
        } else {
            0.0
        };
        Ok(DegradedPlayback { report, events, degraded_frames, perceived_error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{MediaServer, ServeRequest};
    use annolight_codec::EncoderConfig;
    use annolight_core::track::AnnotationMode;
    use annolight_core::QualityLevel;
    use annolight_video::ClipLibrary;

    fn served(quality: QualityLevel) -> annolight_codec::EncodedStream {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(4.0);
        let mut server = MediaServer::new(EncoderConfig::default());
        server.add_clip(clip);
        server
            .serve(&ServeRequest {
                clip_name: "themovie".into(),
                device: DeviceProfile::ipaq_5555(),
                quality,
                mode: AnnotationMode::PerScene,
                dvfs: false,
                policy: annolight_core::PolicyKind::PeakClip,
            })
            .unwrap()
            .stream
    }

    fn client() -> PlaybackClient {
        PlaybackClient::new(DeviceProfile::ipaq_5555(), SystemPowerModel::ipaq_5555())
    }

    #[test]
    fn annotated_playback_saves_total_power() {
        let report = client().play(&served(QualityLevel::Q10), None).unwrap();
        assert!(report.annotated);
        assert!(report.frames > 0);
        let s = report.total_savings();
        assert!(s > 0.02 && s < 0.30, "total savings {s}");
        assert!(report.mean_backlight < 255.0);
    }

    #[test]
    fn unannotated_stream_plays_at_full_backlight() {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
        let (w, h) = clip.dimensions();
        let mut enc = annolight_codec::Encoder::new(EncoderConfig {
            width: w,
            height: h,
            fps: clip.fps(),
            ..EncoderConfig::default()
        })
        .unwrap();
        for f in clip.frames() {
            enc.push_frame(&f).unwrap();
        }
        let report = client().play(&enc.finish(), None).unwrap();
        assert!(!report.annotated);
        assert!(report.total_savings().abs() < 1e-9);
        assert_eq!(report.mean_backlight, 255.0);
    }

    #[test]
    fn device_mismatch_is_detected() {
        let stream = served(QualityLevel::Q10); // annotated for ipaq-5555
        let wrong =
            PlaybackClient::new(DeviceProfile::ipaq_3650(), SystemPowerModel::ipaq_5555());
        assert!(matches!(
            wrong.play(&stream, None),
            Err(PlaybackError::DeviceMismatch { .. })
        ));
    }

    #[test]
    fn higher_quality_loss_saves_more() {
        let low = client().play(&served(QualityLevel::Q0), None).unwrap();
        let high = client().play(&served(QualityLevel::Q20), None).unwrap();
        assert!(high.total_savings() > low.total_savings());
    }

    #[test]
    fn dvfs_hints_add_savings_on_top_of_backlight() {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(4.0);
        let mut server = MediaServer::new(EncoderConfig::default());
        server.add_clip(clip);
        let base_req = ServeRequest::new("themovie", DeviceProfile::ipaq_5555(), QualityLevel::Q10);
        let plain = server.serve(&base_req).unwrap().stream;
        let dvfs = server.serve(&base_req.clone().with_dvfs()).unwrap().stream;

        let c = client();
        let plain_report = c.play(&plain, None).unwrap();
        let dvfs_report = c.play(&dvfs, None).unwrap();
        assert!(!plain_report.dvfs_applied);
        assert!(dvfs_report.dvfs_applied);
        assert!(
            dvfs_report.total_savings() > plain_report.total_savings(),
            "dvfs {} vs plain {}",
            dvfs_report.total_savings(),
            plain_report.total_savings()
        );
    }

    #[test]
    fn meter_breakdown_matches_total() {
        let meter = EnergyMeter::new();
        let report = client().play(&served(QualityLevel::Q10), Some(&meter)).unwrap();
        let sum = meter.total_j();
        assert!((sum - report.energy_j).abs() < 1e-6, "meter {sum} vs report {}", report.energy_j);
        assert!(meter.component_j("backlight") > 0.0);
    }

    #[test]
    fn degraded_with_punctual_arrivals_matches_plain_play() {
        let stream = served(QualityLevel::Q10);
        let c = client();
        let plain = c.play(&stream, None).unwrap();
        let deg = c
            .play_degraded(
                &stream,
                &AnnotationArrivals::punctual(64),
                DegradationConfig::default(),
                None,
            )
            .unwrap();
        // Byte-identical: the two paths share one playback loop.
        assert_eq!(deg.report, plain);
        assert!(deg.events.is_empty());
        assert_eq!(deg.degraded_frames, 0);
        assert_eq!(deg.perceived_error, 0.0);
    }

    #[test]
    fn missing_hints_hold_then_ramp_to_full() {
        let stream = served(QualityLevel::Q20);
        let c = client();
        let none = AnnotationArrivals::new(0.0, 12.0, vec![0.0; 64], vec![None; 64]);
        let deg = c
            .play_degraded(
                &stream,
                &none,
                DegradationConfig { hold_frames: 2, ramp_step_per_frame: 50 },
                None,
            )
            .unwrap();
        assert!(deg.degraded_frames > 0);
        assert!(deg.perceived_error > 0.0);
        assert!(deg.events.iter().any(|e| e.kind == DegradationKind::Missed));
        // The ramp heads toward full backlight: never darker than the
        // annotated schedule would have been on average.
        let plain = c.play(&stream, None).unwrap();
        assert!(deg.report.mean_backlight >= plain.mean_backlight);
    }

    #[test]
    fn late_hint_triggers_missed_then_recovered() {
        let stream = served(QualityLevel::Q10);
        let fps = stream.fps();
        let mut arr = vec![Some(0.0); 64];
        arr[0] = Some(5.5 / fps); // scene 0's hint lands ~6 frames late
        let arrivals = AnnotationArrivals::new(0.0, fps, vec![0.0; 64], arr);
        let c = client();
        let deg = c
            .play_degraded(&stream, &arrivals, DegradationConfig::default(), None)
            .unwrap();
        let kinds: Vec<_> = deg.events.iter().map(|e| (e.seq, e.kind)).collect();
        assert!(kinds.contains(&(0, DegradationKind::Missed)));
        assert!(kinds.contains(&(0, DegradationKind::Recovered)));
        assert!(deg.degraded_frames >= 5);
        // Identical inputs replay to a byte-identical event log.
        let again = c
            .play_degraded(&stream, &arrivals, DegradationConfig::default(), None)
            .unwrap();
        assert_eq!(
            annolight_support::json::to_string(&deg.events),
            annolight_support::json::to_string(&again.events)
        );
    }

    #[test]
    fn energy_is_power_times_time() {
        let report = client().play(&served(QualityLevel::Q10), None).unwrap();
        assert!((report.avg_power_w * report.duration_s - report.energy_j).abs() < 1e-9);
        assert!(report.avg_power_w > 1.5 && report.avg_power_w < 4.0);
    }
}
