//! The negotiation protocol (§4.3).
//!
//! "These can be computed by either the server/proxy (client
//! characteristics are sent during the initial negotiation phase), or by
//! the client itself." The messages here are what crosses the wire before
//! streaming starts: the client announces its device profile and requested
//! quality; the server answers with the qualities it offers and the chosen
//! stream parameters.

use annolight_core::track::AnnotationMode;
use annolight_core::{PolicyKind, QualityLevel};
use annolight_display::DeviceProfile;

/// Client → server: session opening.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientHello {
    /// The clip the user asked for.
    pub clip_name: String,
    /// The client's full display characterisation — this is what lets the
    /// server tailor backlight levels per device.
    pub device: DeviceProfile,
    /// The user-selected quality level.
    pub quality: QualityLevel,
    /// Whether the client's backlight driver prefers per-scene or
    /// per-frame updates.
    pub mode: AnnotationMode,
    /// The annotation-policy backend the client asks the server/proxy to
    /// plan with (peak-clip, HEBS, or spatial scaling).
    pub policy: PolicyKind,
    /// Protocol version, for forward compatibility.
    pub version: u16,
}

annolight_support::impl_json!(struct ClientHello { clip_name, device, quality, mode, policy, version });

/// Server → client: the offer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerOffer {
    /// Quality levels this server pre-computes ("the server … provides a
    /// number of different video qualities … 5 in our case").
    pub offered_qualities: Vec<QualityLevel>,
    /// The quality the server will actually stream (closest offered to
    /// the request).
    pub granted_quality: QualityLevel,
    /// Stream dimensions.
    pub width: u32,
    /// Stream dimensions.
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// Expected stream size, bytes (for client buffering decisions).
    pub stream_bytes: u64,
}

annolight_support::impl_json!(struct ServerOffer { offered_qualities, granted_quality, width, height, fps, stream_bytes });

/// Protocol version implemented by this crate.
pub const PROTOCOL_VERSION: u16 = 1;

impl ClientHello {
    /// Builds a hello with the current protocol version.
    pub fn new(
        clip_name: impl Into<String>,
        device: DeviceProfile,
        quality: QualityLevel,
        mode: AnnotationMode,
    ) -> Self {
        Self {
            clip_name: clip_name.into(),
            device,
            quality,
            mode,
            policy: PolicyKind::PeakClip,
            version: PROTOCOL_VERSION,
        }
    }

    /// Selects the annotation-policy backend negotiated for the session.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Serialises to the JSON wire form.
    ///
    /// # Panics
    ///
    /// Never panics for well-formed hellos (all fields are serialisable).
    pub fn to_wire(&self) -> Vec<u8> {
        annolight_support::json::to_vec(self)
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string for malformed input.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        annolight_support::json::from_slice(bytes).map_err(|e| e.to_string())
    }
}

/// What a [`StreamPacket`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// An MTU-sized slice of the encoded picture stream.
    Picture,
    /// One incremental annotation update
    /// ([`annolight_core::delta::AnnotationDelta`] wire bytes).
    Delta,
}

annolight_support::impl_json!(enum PacketKind { Picture, Delta });

/// One packet of the media session as it crosses the lossy hop: a
/// session-global sequence number (so the receiver can detect gaps and
/// request retransmission), a kind tag, and the payload bytes.
///
/// Annotation packets are *hints*: a receiver that cannot recover one
/// keeps playing and degrades gracefully (see
/// [`crate::faults`]). Picture packets are retransmitted reliably.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPacket {
    /// Session-global send sequence number.
    pub seq: u32,
    /// Payload discriminator.
    pub kind: PacketKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Wire magic for stream packets (`AP1`: AnnoLight Packet v1).
const PACKET_MAGIC: &[u8; 3] = b"AP1";

impl StreamPacket {
    /// Frames a picture slice.
    #[must_use]
    pub fn picture(seq: u32, payload: Vec<u8>) -> Self {
        Self { seq, kind: PacketKind::Picture, payload }
    }

    /// Frames an annotation delta.
    #[must_use]
    pub fn delta(seq: u32, payload: Vec<u8>) -> Self {
        Self { seq, kind: PacketKind::Delta, payload }
    }

    /// Serialises to the binary wire form:
    /// `magic ∥ kind ∥ seq(le) ∥ len(le) ∥ payload`.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.payload.len());
        out.extend_from_slice(PACKET_MAGIC);
        out.push(match self.kind {
            PacketKind::Picture => 0,
            PacketKind::Delta => 1,
        });
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string for truncated, mistagged, or
    /// length-inconsistent input — a corrupt packet is treated like a
    /// lost one by the session layer, never trusted.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 12 {
            return Err(format!("stream packet truncated: {} bytes", bytes.len()));
        }
        if &bytes[0..3] != PACKET_MAGIC {
            return Err("bad stream packet magic".into());
        }
        let kind = match bytes[3] {
            0 => PacketKind::Picture,
            1 => PacketKind::Delta,
            k => return Err(format!("unknown stream packet kind {k}")),
        };
        let seq = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        if bytes.len() != 12 + len {
            return Err(format!("stream packet length mismatch: header {len}, body {}", bytes.len() - 12));
        }
        Ok(Self { seq, kind, payload: bytes[12..].to_vec() })
    }
}

/// Picks the offered quality closest to (and not exceeding) the request —
/// the server never degrades more than the user agreed to.
pub fn grant_quality(offered: &[QualityLevel], requested: QualityLevel) -> QualityLevel {
    let req = requested.clip_fraction();
    offered
        .iter()
        .copied()
        .filter(|q| q.clip_fraction() <= req + 1e-12)
        .max_by(|a, b| a.clip_fraction().total_cmp(&b.clip_fraction()))
        .unwrap_or(QualityLevel::Q0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_wire_roundtrip() {
        let hello = ClientHello::new(
            "themovie",
            DeviceProfile::ipaq_5555(),
            QualityLevel::Q10,
            AnnotationMode::PerScene,
        );
        let wire = hello.to_wire();
        let back = ClientHello::from_wire(&wire).unwrap();
        assert_eq!(hello, back);
        assert_eq!(back.version, PROTOCOL_VERSION);
        assert_eq!(back.device.name(), "ipaq-5555");
        assert_eq!(back.policy, PolicyKind::PeakClip, "default policy is the paper's");
    }

    #[test]
    fn hello_policy_survives_the_wire() {
        for p in PolicyKind::ALL {
            let hello = ClientHello::new(
                "themovie",
                DeviceProfile::ipaq_5555(),
                QualityLevel::Q10,
                AnnotationMode::PerScene,
            )
            .with_policy(p);
            let back = ClientHello::from_wire(&hello.to_wire()).unwrap();
            assert_eq!(back.policy, p);
        }
    }

    #[test]
    fn malformed_hello_rejected() {
        assert!(ClientHello::from_wire(b"not json").is_err());
        assert!(ClientHello::from_wire(b"{}").is_err());
    }

    #[test]
    fn grant_picks_closest_not_exceeding() {
        let offered = QualityLevel::PAPER_LEVELS.to_vec();
        assert_eq!(grant_quality(&offered, QualityLevel::Q10), QualityLevel::Q10);
        assert_eq!(
            grant_quality(&offered, QualityLevel::Custom(0.12)),
            QualityLevel::Q10,
            "12% request grants the 10% stream, never 15%"
        );
        assert_eq!(grant_quality(&offered, QualityLevel::Custom(0.001)), QualityLevel::Q0);
    }

    #[test]
    fn grant_defaults_to_lossless() {
        assert_eq!(grant_quality(&[], QualityLevel::Q20), QualityLevel::Q0);
    }

    #[test]
    fn packet_wire_roundtrip() {
        let p = StreamPacket::picture(7, vec![1, 2, 3, 4, 5]);
        let wire = p.to_wire();
        assert_eq!(wire.len(), 12 + 5);
        let back = StreamPacket::from_wire(&wire).unwrap();
        assert_eq!(back, p);

        let d = StreamPacket::delta(0xDEAD_BEEF, vec![]);
        let back = StreamPacket::from_wire(&d.to_wire()).unwrap();
        assert_eq!(back.kind, PacketKind::Delta);
        assert_eq!(back.seq, 0xDEAD_BEEF);
        assert!(back.payload.is_empty());
    }

    #[test]
    fn malformed_packet_rejected() {
        // Truncated.
        assert!(StreamPacket::from_wire(b"AP1").is_err());
        // Bad magic.
        let mut wire = StreamPacket::picture(1, vec![9]).to_wire();
        wire[0] = b'X';
        assert!(StreamPacket::from_wire(&wire).is_err());
        // Unknown kind tag.
        let mut wire = StreamPacket::picture(1, vec![9]).to_wire();
        wire[3] = 9;
        assert!(StreamPacket::from_wire(&wire).is_err());
        // Length mismatch (truncated payload).
        let wire = StreamPacket::picture(1, vec![1, 2, 3]).to_wire();
        assert!(StreamPacket::from_wire(&wire[..wire.len() - 1]).is_err());
        // Trailing garbage.
        let mut wire = StreamPacket::picture(1, vec![1, 2, 3]).to_wire();
        wire.push(0);
        assert!(StreamPacket::from_wire(&wire).is_err());
    }

    #[test]
    fn offer_serialises() {
        let offer = ServerOffer {
            offered_qualities: QualityLevel::PAPER_LEVELS.to_vec(),
            granted_quality: QualityLevel::Q5,
            width: 128,
            height: 96,
            fps: 12.0,
            stream_bytes: 1_000_000,
        };
        let json = annolight_support::json::to_string(&offer);
        let back: ServerOffer = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(offer, back);
    }
}
