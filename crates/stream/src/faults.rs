//! Lossy-channel fault injection (the robustness tier).
//!
//! The paper's wireless hop is an 802.11b link — lossy in practice, lossless
//! in the baseline [`WirelessChannel`] model. This module extends the hop
//! with *seeded, replayable* faults so the annotation pipeline can be tested
//! under packet loss instead of merely alongside it:
//!
//! * [`FaultyChannel`] — a [`WirelessChannel`] wrapped with independent-drop
//!   **and** Gilbert–Elliott burst loss, duplication, bounded reordering and
//!   per-packet delay jitter. Every fault class draws from its **own**
//!   [`SmallRng`] stream (split from one seed), so enabling one fault never
//!   perturbs another's decisions and every run replays exactly from the
//!   seed.
//! * [`retry`] — the deadline-aware exponential-backoff
//!   [`RetryPolicy`](retry::RetryPolicy) (shared with the serve tier's
//!   admission backpressure; it lives in `annolight_support::retry`).
//! * [`deliver_lossy`] — the end-to-end delivery engine: picture packets are
//!   retransmitted *reliably* (the player buffers), annotation deltas are
//!   *hints* retried only until their scene starts; a lost hint degrades
//!   playback gracefully instead of stalling it.
//! * [`DegradationEvent`] / [`DegradationConfig`] — the client-side policy
//!   when a hint is missing: hold the last annotated level briefly, then
//!   slew toward full backlight (safe brightness, no flicker), and recover
//!   the moment a late hint lands.
//!
//! Determinism contract: a zero-fault [`FaultConfig`] consumes RNG draws but
//! triggers nothing, and the channel clock is the *same f64 expression* as
//! [`WirelessChannel::transfer_time_s`], so the lossless path is
//! bit-identical to the baseline model — a property the test tier pins.

use crate::message::{PacketKind, StreamPacket};
use crate::network::WirelessChannel;
use annolight_codec::{Decoder, EncodedStream};
use annolight_core::delta::{AnnotationDelta, DeltaTracker};
use annolight_core::track::AnnotationTrack;
use annolight_support::channel;
use annolight_support::rng::SmallRng;
use std::thread;

/// Deadline-aware retry with exponential backoff and jitter.
///
/// Re-exported from [`annolight_support::retry`] so the stream tier's
/// retransmission code and the serve tier's admission backoff share one
/// policy type without a crate cycle.
pub mod retry {
    pub use annolight_support::retry::RetryPolicy;
}

use retry::RetryPolicy;

/// Per-concern RNG stream identifiers (see [`SmallRng::stream`]).
mod stream_id {
    pub const GILBERT: u64 = 1;
    pub const DROP: u64 = 2;
    pub const DUP: u64 = 3;
    pub const REORDER: u64 = 4;
    pub const JITTER: u64 = 5;
    pub const RETRY: u64 = 6;
}

/// Fault-injection parameters for one session. All probabilities are per
/// packet; a default config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every fault class derives its own stream from it.
    pub seed: u64,
    /// Independent drop probability outside a burst (the Good state).
    pub drop_p: f64,
    /// Probability of entering a loss burst (Good → Bad), per packet.
    pub burst_enter_p: f64,
    /// Probability of leaving a burst (Bad → Good), per packet; the mean
    /// burst length is `1 / burst_exit_p` packets.
    pub burst_exit_p: f64,
    /// Drop probability inside a burst (the Bad state).
    pub burst_drop_p: f64,
    /// Duplication probability (the channel or a raced retransmit delivers
    /// a second copy one packet slot later).
    pub dup_p: f64,
    /// Probability a delivered packet is displaced behind later traffic.
    pub reorder_p: f64,
    /// Maximum displacement of a reordered packet, in packets.
    pub reorder_window: u32,
    /// Maximum extra one-way delay jitter, seconds (uniform in `[0, j]`).
    pub jitter_s: f64,
    /// Client-side buffering before playback starts, seconds. Annotation
    /// deadlines are measured against `latency + startup_buffer_s`.
    pub startup_buffer_s: f64,
}

annolight_support::impl_json!(struct FaultConfig { seed, drop_p, burst_enter_p, burst_exit_p, burst_drop_p, dup_p, reorder_p, reorder_window, jitter_s, startup_buffer_s });

impl Default for FaultConfig {
    fn default() -> Self {
        Self::lossless(0)
    }
}

impl FaultConfig {
    /// No faults at all; the channel is bit-identical to the baseline
    /// [`WirelessChannel`] timing.
    #[must_use]
    pub fn lossless(seed: u64) -> Self {
        Self {
            seed,
            drop_p: 0.0,
            burst_enter_p: 0.0,
            burst_exit_p: 0.0,
            burst_drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_window: 0,
            jitter_s: 0.0,
            startup_buffer_s: 0.25,
        }
    }

    /// Independent (Bernoulli) loss at rate `drop_p`, nothing else.
    ///
    /// # Panics
    ///
    /// Panics if `drop_p` is outside `[0, 1]`.
    #[must_use]
    pub fn lossy(seed: u64, drop_p: f64) -> Self {
        let cfg = Self { drop_p, ..Self::lossless(seed) };
        cfg.validate();
        cfg
    }

    /// A bursty 802.11b-like hop: occasional fades (2 % entry) lasting
    /// ~4 packets (25 % exit) during which half the packets are lost, on
    /// top of a small independent floor.
    #[must_use]
    pub fn bursty(seed: u64) -> Self {
        Self {
            drop_p: 0.01,
            burst_enter_p: 0.02,
            burst_exit_p: 0.25,
            burst_drop_p: 0.5,
            ..Self::lossless(seed)
        }
    }

    /// Whether this config can inject any fault at all.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.drop_p == 0.0
            && (self.burst_enter_p == 0.0 || self.burst_drop_p == 0.0)
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.jitter_s == 0.0
    }

    /// Checks every field is in range.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or a duration is
    /// negative.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_p", self.drop_p),
            ("burst_enter_p", self.burst_enter_p),
            ("burst_exit_p", self.burst_exit_p),
            ("burst_drop_p", self.burst_drop_p),
            ("dup_p", self.dup_p),
            ("reorder_p", self.reorder_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} {p} outside [0, 1]");
        }
        assert!(self.jitter_s >= 0.0, "jitter_s {} negative", self.jitter_s);
        assert!(self.startup_buffer_s >= 0.0, "startup_buffer_s {} negative", self.startup_buffer_s);
    }
}

/// Counters accumulated by a [`FaultyChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelStats {
    /// Packets offered to the channel (first transmissions).
    pub packets: u64,
    /// First transmissions lost.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Delivered packets displaced behind later traffic.
    pub reordered: u64,
    /// Packets sent while the Gilbert–Elliott state was Bad.
    pub burst_packets: u64,
    /// Link-layer retransmissions attempted (all packet kinds).
    pub retransmits: u64,
    /// Total backoff waited across all retransmissions, seconds.
    pub retransmit_backoff_s: f64,
    /// Retransmission sequences that exhausted their budget or deadline.
    pub retransmit_failures: u64,
}

annolight_support::impl_json!(struct ChannelStats { packets, dropped, duplicated, reordered, burst_packets, retransmits, retransmit_backoff_s, retransmit_failures });

/// The fate of one packet offered to a [`FaultyChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the packet's serialisation onto the link finished, seconds.
    pub sent_s: f64,
    /// Arrival time at the receiver, `None` if the packet was lost.
    pub arrival_s: Option<f64>,
    /// Arrival time of a duplicated second copy, if any.
    pub duplicate_arrival_s: Option<f64>,
    /// Reorder displacement, packets (0 = in order).
    pub displaced: u32,
}

/// The result of a retransmission sequence ([`FaultyChannel::retransmit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryOutcome {
    /// Arrival time of the recovered packet, `None` if the policy's
    /// attempt budget or deadline ran out first.
    pub delivered_s: Option<f64>,
    /// Retransmissions actually sent.
    pub attempts: u32,
    /// Total backoff waited, seconds.
    pub backoff_s: f64,
}

/// A [`WirelessChannel`] with seeded fault injection.
///
/// The clock is *cumulative bytes over bandwidth*: after `n` bytes the send
/// time is `(n as f64 * 8.0) / bandwidth_bps` — the identical expression
/// [`WirelessChannel::transfer_time_s`] uses, so zero-fault arrivals are
/// bit-identical to the baseline model.
#[derive(Debug, Clone)]
pub struct FaultyChannel {
    link: WirelessChannel,
    cfg: FaultConfig,
    bytes_sent: u64,
    in_burst: bool,
    ge_rng: SmallRng,
    drop_rng: SmallRng,
    dup_rng: SmallRng,
    reorder_rng: SmallRng,
    jitter_rng: SmallRng,
    retry_rng: SmallRng,
    stats: ChannelStats,
}

impl FaultyChannel {
    /// Wraps `link` with the faults in `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FaultConfig::validate`].
    #[must_use]
    pub fn new(link: WirelessChannel, cfg: FaultConfig) -> Self {
        cfg.validate();
        Self {
            link,
            cfg,
            bytes_sent: 0,
            in_burst: false,
            ge_rng: SmallRng::stream(cfg.seed, stream_id::GILBERT),
            drop_rng: SmallRng::stream(cfg.seed, stream_id::DROP),
            dup_rng: SmallRng::stream(cfg.seed, stream_id::DUP),
            reorder_rng: SmallRng::stream(cfg.seed, stream_id::REORDER),
            jitter_rng: SmallRng::stream(cfg.seed, stream_id::JITTER),
            retry_rng: SmallRng::stream(cfg.seed, stream_id::RETRY),
            stats: ChannelStats::default(),
        }
    }

    /// The underlying lossless link model.
    #[must_use]
    pub fn link(&self) -> &WirelessChannel {
        &self.link
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Whether the Gilbert–Elliott state machine is currently in a burst.
    #[must_use]
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// The send clock: when the last byte so far finished serialising.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        (self.bytes_sent as f64 * 8.0) / self.link.bandwidth_bps
    }

    /// Serialisation time of one MTU-sized packet, seconds.
    #[must_use]
    pub fn mtu_slot_s(&self) -> f64 {
        (self.link.mtu as f64 * 8.0) / self.link.bandwidth_bps
    }

    /// The loss probability in the current Gilbert–Elliott state.
    #[must_use]
    pub fn loss_p_now(&self) -> f64 {
        if self.in_burst {
            self.cfg.burst_drop_p.max(self.cfg.drop_p)
        } else {
            self.cfg.drop_p
        }
    }

    /// Offers one packet of `bytes` to the channel and returns its fate.
    ///
    /// Every call consumes a *fixed* number of draws from each fault
    /// stream regardless of configuration, so enabling one fault class
    /// never shifts another's decisions.
    pub fn send(&mut self, bytes: usize) -> Delivery {
        self.stats.packets += 1;
        self.bytes_sent += bytes as u64;
        let sent_s = (self.bytes_sent as f64 * 8.0) / self.link.bandwidth_bps;

        // Gilbert–Elliott state advance: exactly one draw per packet.
        let flip = self.ge_rng.gen_f64();
        self.in_burst = if self.in_burst {
            flip >= self.cfg.burst_exit_p
        } else {
            flip < self.cfg.burst_enter_p
        };
        if self.in_burst {
            self.stats.burst_packets += 1;
        }

        // Loss decision: one draw.
        let lost = self.drop_rng.gen_f64() < self.loss_p_now();
        // Duplication: one draw.
        let dup = self.dup_rng.gen_f64() < self.cfg.dup_p;
        // Reorder: two draws (trigger + displacement), always consumed.
        let reorder_roll = self.reorder_rng.gen_f64();
        let displacement_roll = self.reorder_rng.next_u64();
        // Jitter: one draw.
        let jitter = self.jitter_rng.gen_f64() * self.cfg.jitter_s;

        let displaced = if reorder_roll < self.cfg.reorder_p && self.cfg.reorder_window > 0 {
            1 + (displacement_roll % u64::from(self.cfg.reorder_window)) as u32
        } else {
            0
        };

        if lost {
            self.stats.dropped += 1;
            return Delivery { sent_s, arrival_s: None, duplicate_arrival_s: None, displaced: 0 };
        }
        if displaced > 0 {
            self.stats.reordered += 1;
        }
        let slot = self.mtu_slot_s();
        let arrival = sent_s + self.link.latency_s + jitter + f64::from(displaced) * slot;
        let duplicate = if dup {
            self.stats.duplicated += 1;
            Some(arrival + slot)
        } else {
            None
        };
        Delivery { sent_s, arrival_s: Some(arrival), duplicate_arrival_s: duplicate, displaced }
    }

    /// Drives one packet's complete fate — first transmission plus, on
    /// loss, the recovery sequence `recovery` chooses — in a single
    /// **non-blocking** call, so a reactor task can step fault delivery
    /// without the helper threads the blocking pipeline uses.
    ///
    /// `recovery` receives the send-clock time of the lost first copy
    /// and returns the [`RetryPolicy`] to recover with (`None` = give
    /// the packet up). The RNG draw order is exactly
    /// [`Self::send`]-then-[`Self::retransmit`], so fates are
    /// byte-identical to the threaded delivery loop — a property the
    /// `fault_props` tier pins.
    pub fn try_deliver(
        &mut self,
        bytes: usize,
        recovery: impl FnOnce(f64) -> Option<RetryPolicy>,
    ) -> DeliveredCopies {
        let fate = self.send(bytes);
        let mut copies = Vec::new();
        match fate.arrival_s {
            Some(a) => {
                copies.push(a);
                copies.extend(fate.duplicate_arrival_s);
            }
            None => {
                if let Some(policy) = recovery(fate.sent_s) {
                    let out = self.retransmit(bytes, &policy, fate.sent_s);
                    copies.extend(out.delivered_s);
                }
            }
        }
        DeliveredCopies { sent_s: fate.sent_s, lost_first: fate.arrival_s.is_none(), copies }
    }

    /// Runs a retransmission sequence for a packet lost at `lost_s`,
    /// following `policy` (whose deadline is *relative to the loss*).
    /// Each attempt waits the jittered backoff, occupies link airtime,
    /// and traverses the current loss state again.
    pub fn retransmit(&mut self, bytes: usize, policy: &RetryPolicy, lost_s: f64) -> RetryOutcome {
        let mut elapsed = 0.0f64;
        let mut attempts = 0u32;
        loop {
            let Some(delay) = policy.next_delay_s(attempts, elapsed, &mut self.retry_rng) else {
                self.stats.retransmit_failures += 1;
                self.stats.retransmit_backoff_s += elapsed;
                return RetryOutcome { delivered_s: None, attempts, backoff_s: elapsed };
            };
            elapsed += delay;
            attempts += 1;
            self.stats.retransmits += 1;
            // The retransmission itself occupies airtime on the link.
            self.bytes_sent += bytes as u64;
            let resend_s = (self.bytes_sent as f64 * 8.0) / self.link.bandwidth_bps;
            if self.retry_rng.gen_f64() >= self.loss_p_now() {
                self.stats.retransmit_backoff_s += elapsed;
                let arrival = lost_s.max(resend_s) + elapsed + self.link.latency_s;
                return RetryOutcome { delivered_s: Some(arrival), attempts, backoff_s: elapsed };
            }
        }
    }
}

/// Every arrival produced for one packet by [`FaultyChannel::try_deliver`]:
/// the primary copy (or its recovered retransmission) first, then any
/// duplicate — the exact order the threaded sender forwards them.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredCopies {
    /// When the first transmission finished serialising, seconds.
    pub sent_s: f64,
    /// Whether the first transmission was lost (recovery may still have
    /// delivered a copy).
    pub lost_first: bool,
    /// Arrival times of every delivered copy; empty = the packet never
    /// reached the receiver.
    pub copies: Vec<f64>,
}

/// Per-sequence arrival record for the annotation hint stream: when (and
/// whether) each [`AnnotationDelta`] reached the client, against the
/// deadline of the scene it governs.
///
/// Playback time `now` is relative to the first displayed frame; wall
/// clock = `startup_s + now`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationArrivals {
    /// Wall-clock time of the first displayed frame (latency + buffering).
    startup_s: f64,
    /// Frame rate the deadlines were computed against.
    fps: f64,
    /// Per-sequence deadline: `startup_s + start_frame / fps`.
    deadlines_s: Vec<f64>,
    /// Per-sequence first arrival (wall clock), `None` = never arrived.
    arrivals_s: Vec<Option<f64>>,
}

annolight_support::impl_json!(struct AnnotationArrivals { startup_s, fps, deadlines_s, arrivals_s });

impl AnnotationArrivals {
    /// Builds from raw parts (mainly for tests and tooling).
    #[must_use]
    pub fn new(startup_s: f64, fps: f64, deadlines_s: Vec<f64>, arrivals_s: Vec<Option<f64>>) -> Self {
        assert_eq!(deadlines_s.len(), arrivals_s.len(), "deadline/arrival length mismatch");
        Self { startup_s, fps, deadlines_s, arrivals_s }
    }

    /// Every one of `n` deltas arrived instantly — the lossless fiction
    /// used to pin degraded playback against the plain path.
    #[must_use]
    pub fn punctual(n: usize) -> Self {
        Self { startup_s: 0.0, fps: 1.0, deadlines_s: vec![0.0; n], arrivals_s: vec![Some(0.0); n] }
    }

    /// No annotation stream at all.
    #[must_use]
    pub fn empty() -> Self {
        Self::punctual(0)
    }

    /// Number of sequences tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals_s.len()
    }

    /// Whether no deltas are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals_s.is_empty()
    }

    /// Wall-clock start of playback.
    #[must_use]
    pub fn startup_s(&self) -> f64 {
        self.startup_s
    }

    /// First arrival of sequence `seq`, wall clock.
    #[must_use]
    pub fn arrival_s(&self, seq: usize) -> Option<f64> {
        self.arrivals_s.get(seq).copied().flatten()
    }

    /// Deadline of sequence `seq` (its scene start), wall clock.
    #[must_use]
    pub fn deadline_s(&self, seq: usize) -> Option<f64> {
        self.deadlines_s.get(seq).copied()
    }

    /// Whether sequence `seq` has arrived by playback time `now` (seconds
    /// since the first displayed frame). Out-of-range sequences count as
    /// never arrived.
    #[must_use]
    pub fn arrived_by(&self, seq: usize, now_s: f64) -> bool {
        match self.arrival_s(seq) {
            Some(a) => a <= self.startup_s + now_s,
            None => false,
        }
    }

    /// Deltas that never arrived.
    #[must_use]
    pub fn lost(&self) -> usize {
        self.arrivals_s.iter().filter(|a| a.is_none()).count()
    }

    /// Deltas that arrived after their scene had started.
    #[must_use]
    pub fn late(&self) -> usize {
        self.arrivals_s
            .iter()
            .zip(&self.deadlines_s)
            .filter(|(a, d)| a.is_some_and(|a| a > **d))
            .count()
    }

    /// Whether every delta made its deadline.
    #[must_use]
    pub fn all_on_time(&self) -> bool {
        self.lost() == 0 && self.late() == 0
    }
}

/// Summary of one lossy delivery, serialisable for the bench tables and
/// the CI determinism diff.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Channel counters (drops, bursts, retransmissions, …).
    pub channel: ChannelStats,
    /// Annotation hint packets sent.
    pub delta_packets: u64,
    /// Hints that never reached the client.
    pub deltas_lost: u64,
    /// Hints that arrived after their scene had started.
    pub deltas_late: u64,
    /// Duplicate hint arrivals the tracker ignored.
    pub delta_duplicates: u64,
    /// Sequence gaps the tracker observed.
    pub delta_gaps: u64,
    /// Extra WNIC energy spent on retransmissions, joules (filled in by
    /// the session layer, which owns the power model).
    pub retransmit_energy_j: f64,
    /// Wall-clock arrival of the last packet, seconds.
    pub transfer_time_s: f64,
}

annolight_support::impl_json!(struct FaultReport { channel, delta_packets, deltas_lost, deltas_late, delta_duplicates, delta_gaps, retransmit_energy_j, transfer_time_s });

/// Everything [`deliver_lossy`] hands back.
#[derive(Debug, Clone)]
pub struct LossyDelivery {
    /// The reassembled picture stream (byte-identical to the input —
    /// pictures are retransmitted reliably).
    pub stream: EncodedStream,
    /// Picture packets delivered (duplicates excluded).
    pub picture_packets: usize,
    /// Per-sequence annotation arrival record.
    pub arrivals: AnnotationArrivals,
    /// Fault summary.
    pub report: FaultReport,
}

/// The sender half of lossy delivery as a resumable **pull** engine: the
/// packet plan (annotation hints first, then MTU picture chunks) plus the
/// [`FaultyChannel`] that decides each packet's fate.
///
/// One [`Self::pump`] call drives exactly one packet — a bounded,
/// non-blocking slice of work — so a reactor task can host a lossy
/// session without the sender thread the blocking pipeline spawns.
/// [`deliver_lossy`] itself delegates to this engine, which is what keeps
/// the two paths byte-identical by construction.
#[derive(Debug)]
pub struct LossyEngine {
    chan: FaultyChannel,
    deltas: Vec<AnnotationDelta>,
    deadlines: Vec<f64>,
    bytes: Vec<u8>,
    mtu: usize,
    startup: f64,
    fps: f64,
    next_delta: usize,
    chunk_off: usize,
    seq: u32,
}

impl LossyEngine {
    /// Builds the packet plan for delivering `stream` over `link` with
    /// the faults in `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when the stream or its embedded
    /// annotation track cannot be decoded.
    pub fn new(
        stream: &EncodedStream,
        link: &WirelessChannel,
        cfg: &FaultConfig,
    ) -> Result<Self, String> {
        cfg.validate();
        // The sender knows the track (it produced the stream): split it
        // into sequence-numbered hints.
        let dec = Decoder::new(stream).map_err(|e| e.to_string())?;
        let mut track: Option<AnnotationTrack> = None;
        for bytes in dec.user_data() {
            if !annolight_core::extensions::is_dvfs_payload(bytes) && track.is_none() {
                track = Some(AnnotationTrack::from_rle_bytes(bytes).map_err(|e| e.to_string())?);
            }
        }
        let fps = stream.fps().max(f64::EPSILON);
        let startup = link.latency_s + cfg.startup_buffer_s;
        let deltas = track.as_ref().map(AnnotationDelta::from_track).unwrap_or_default();
        let deadlines: Vec<f64> =
            deltas.iter().map(|d| startup + f64::from(d.entry.start_frame) / fps).collect();
        Ok(Self {
            chan: FaultyChannel::new(*link, *cfg),
            deltas,
            deadlines,
            bytes: stream.as_bytes().to_vec(),
            mtu: link.mtu,
            startup,
            fps,
            next_delta: 0,
            chunk_off: 0,
            seq: 0,
        })
    }

    /// Wall-clock start of playback (latency + startup buffering).
    #[must_use]
    pub fn startup_s(&self) -> f64 {
        self.startup
    }

    /// The channel's send clock so far, seconds — what a cooperative
    /// driver sleeps to between pumps.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.chan.clock_s()
    }

    /// Packets not yet driven (hints + picture chunks).
    #[must_use]
    pub fn remaining_packets(&self) -> usize {
        (self.deltas.len() - self.next_delta) + self.bytes.len().saturating_sub(self.chunk_off).div_ceil(self.mtu)
    }

    /// Drives the next packet's fate. Returns the `(arrival, wire)`
    /// copies the receiver sees — primary/recovered first, duplicate
    /// second — or `None` once the plan is exhausted.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when a picture packet exhausts even
    /// the reliable retry budget (only possible under certain loss).
    pub fn pump(&mut self) -> Result<Option<Vec<(f64, Vec<u8>)>>, String> {
        // Annotations ride ahead of the data (§3): all hints first.
        if self.next_delta < self.deltas.len() {
            let i = self.next_delta;
            let wire = StreamPacket::delta(self.seq, self.deltas[i].to_bytes()).to_wire();
            let deadline = self.deadlines[i];
            // A hint is only worth retrying until its scene starts.
            let fate = self.chan.try_deliver(wire.len(), |sent_s| {
                Some(RetryPolicy::annotation().with_deadline((deadline - sent_s).max(0.0)))
            });
            self.next_delta += 1;
            self.seq += 1;
            return Ok(Some(fate.copies.iter().map(|&a| (a, wire.clone())).collect()));
        }
        // Picture data: reliable.
        if self.chunk_off < self.bytes.len() {
            let end = (self.chunk_off + self.mtu).min(self.bytes.len());
            let wire =
                StreamPacket::picture(self.seq, self.bytes[self.chunk_off..end].to_vec()).to_wire();
            let fate = self.chan.try_deliver(wire.len(), |_| Some(RetryPolicy::reliable()));
            if fate.copies.is_empty() {
                return Err(format!("picture packet {} undeliverable", self.seq));
            }
            self.chunk_off = end;
            self.seq += 1;
            return Ok(Some(fate.copies.iter().map(|&a| (a, wire.clone())).collect()));
        }
        Ok(None)
    }

    /// Folds the receiver-side state back into the final
    /// [`LossyDelivery`] once every packet has been pumped and offered.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when the reassembled bytes do not
    /// decode.
    pub fn finish(self, collector: LossyCollector) -> Result<LossyDelivery, String> {
        let LossyCollector { buf, picture_packets, mut delta_events, last_arrival, .. } = collector;
        let delivered = EncodedStream::from_bytes(buf)
            .map_err(|e| format!("lossy reassembly failed: {e}"))?;

        // The client sees hints in *arrival* order.
        delta_events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.seq.cmp(&b.1.seq)));
        let mut tracker = DeltaTracker::new();
        let mut arrivals: Vec<Option<f64>> = vec![None; self.deltas.len()];
        for (arrival, d) in &delta_events {
            let now_frame = if *arrival <= self.startup {
                0
            } else {
                ((*arrival - self.startup) * self.fps).floor() as u32
            };
            tracker.offer(d, now_frame);
            let slot = arrivals.get_mut(d.seq as usize);
            if let Some(slot) = slot {
                if slot.is_none_or(|prev| *arrival < prev) {
                    *slot = Some(*arrival);
                }
            }
        }
        let n_deltas = self.deltas.len();
        let arrivals = AnnotationArrivals::new(self.startup, self.fps, self.deadlines, arrivals);
        let report = FaultReport {
            channel: self.chan.stats(),
            delta_packets: n_deltas as u64,
            deltas_lost: arrivals.lost() as u64,
            deltas_late: arrivals.late() as u64,
            delta_duplicates: u64::from(tracker.duplicates()),
            delta_gaps: u64::from(tracker.gaps()),
            retransmit_energy_j: 0.0,
            transfer_time_s: last_arrival,
        };
        Ok(LossyDelivery { stream: delivered, picture_packets, arrivals, report })
    }
}

/// The receiver half of lossy delivery: reassembles picture bytes
/// (deduplicating by sequence number) and records hint arrivals, one
/// non-blocking [`Self::offer`] per delivered copy.
#[derive(Debug)]
pub struct LossyCollector {
    buf: Vec<u8>,
    picture_packets: usize,
    next_picture_seq: Option<u32>,
    delta_events: Vec<(f64, AnnotationDelta)>,
    last_arrival: f64,
}

impl LossyCollector {
    /// A collector expecting roughly `total` picture bytes.
    #[must_use]
    pub fn with_capacity(total: usize) -> Self {
        Self {
            buf: Vec::with_capacity(total),
            picture_packets: 0,
            next_picture_seq: None,
            delta_events: Vec::new(),
            last_arrival: 0.0,
        }
    }

    /// Accepts one delivered copy.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when the wire bytes do not parse.
    pub fn offer(&mut self, arrival: f64, wire: &[u8]) -> Result<(), String> {
        let pkt = StreamPacket::from_wire(wire)?;
        self.last_arrival = self.last_arrival.max(arrival);
        match pkt.kind {
            PacketKind::Picture => {
                // Duplicates carry a seq the receiver already has.
                if self.next_picture_seq.is_none_or(|n| pkt.seq >= n) {
                    self.buf.extend_from_slice(&pkt.payload);
                    self.picture_packets += 1;
                    self.next_picture_seq = Some(pkt.seq + 1);
                }
            }
            PacketKind::Delta => {
                let d = AnnotationDelta::from_bytes(&pkt.payload).map_err(|e| e.to_string())?;
                self.delta_events.push((arrival, d));
            }
        }
        Ok(())
    }
}

/// Delivers `stream` over `link` with the faults in `cfg`.
///
/// The annotation hints (one [`AnnotationDelta`] per canonical track
/// entry) ride just ahead of the picture data; each is retried only until
/// its scene starts ([`RetryPolicy::annotation`]), while picture packets
/// use the generous [`RetryPolicy::reliable`] budget. Sender and receiver
/// run on separate threads connected by a bounded channel, mirroring the
/// lossless session pipeline — but both delegate to the non-blocking
/// [`LossyEngine`]/[`LossyCollector`] pair, the same machinery the
/// reactor drives without threads, so the two paths produce
/// byte-identical fates.
///
/// The embedded track stays inside the (reliable) picture bytes — it
/// describes the compensation already baked into the pixels. What the
/// lossy hop decides is *when* the client learns each scene's backlight
/// level: that is the hint stream recorded in
/// [`LossyDelivery::arrivals`].
///
/// # Errors
///
/// Returns a descriptive string when the stream cannot be decoded, a
/// pipeline thread fails, or a picture packet exhausts even the reliable
/// retry budget (only possible under certain loss).
pub fn deliver_lossy(
    stream: &EncodedStream,
    link: &WirelessChannel,
    cfg: &FaultConfig,
) -> Result<LossyDelivery, String> {
    let mut engine = LossyEngine::new(stream, link, cfg)?;
    let total = stream.as_bytes().len();

    let (tx, rx) = channel::bounded::<(f64, Vec<u8>)>(64);
    let sender = thread::spawn(move || -> Result<LossyEngine, String> {
        while let Some(copies) = engine.pump()? {
            for (arrival, wire) in copies {
                if tx.send((arrival, wire)).is_err() {
                    return Ok(engine);
                }
            }
        }
        Ok(engine)
    });

    let receiver = thread::spawn(move || -> Result<LossyCollector, String> {
        let mut collector = LossyCollector::with_capacity(total);
        for (arrival, wire) in rx.iter() {
            collector.offer(arrival, &wire)?;
        }
        Ok(collector)
    });

    let engine = sender
        .join()
        .map_err(|_| "fault sender thread panicked".to_owned())??;
    let collector = receiver
        .join()
        .map_err(|_| "fault receiver thread panicked".to_owned())??;
    engine.finish(collector)
}

/// Client policy when a scene's annotation hint is missing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Frames to hold the last annotated level before ramping.
    pub hold_frames: u32,
    /// Levels per frame to slew toward full backlight after the hold.
    /// Bounded slew means a lost hint never causes a visible flash.
    pub ramp_step_per_frame: u8,
}

annolight_support::impl_json!(struct DegradationConfig { hold_frames, ramp_step_per_frame });

impl Default for DegradationConfig {
    /// Hold ~half a second at 12 fps, then ramp gently (≈ 21 frames from
    /// darkest to full).
    fn default() -> Self {
        Self { hold_frames: 6, ramp_step_per_frame: 12 }
    }
}

/// What happened at one point of degraded playback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationKind {
    /// A scene started without its annotation hint.
    Missed,
    /// The hint arrived mid-scene and was applied from this frame on.
    Recovered,
    /// The hint arrived only after its entire scene had played.
    Late,
}

annolight_support::impl_json!(enum DegradationKind { Missed, Recovered, Late });

/// One entry of the degradation log. Two runs with the same seed must
/// produce byte-identical logs — the CI determinism guard diffs them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationEvent {
    /// Frame index the event occurred at.
    pub frame: u32,
    /// Annotation sequence (scene index) concerned.
    pub seq: u32,
    /// What happened.
    pub kind: DegradationKind,
    /// Backlight level applied at that frame.
    pub level: u8,
}

annolight_support::impl_json!(struct DegradationEvent { frame, seq, kind, level });

/// The result of [`crate::client::PlaybackClient::play_degraded`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedPlayback {
    /// The usual playback/energy report.
    pub report: crate::client::PlaybackReport,
    /// The degradation log, in frame order.
    pub events: Vec<DegradationEvent>,
    /// Frames played without their annotation available.
    pub degraded_frames: u32,
    /// Mean perceived-intensity error vs. the annotated schedule,
    /// normalised to `[0, 1]`: `Σ |applied − annotated| / (255 · frames)`,
    /// summed over degraded frames only. Zero when nothing was lost.
    pub perceived_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> WirelessChannel {
        WirelessChannel::wifi_80211b()
    }

    #[test]
    fn zero_fault_timing_is_bit_identical_to_baseline() {
        let mut ch = FaultyChannel::new(link(), FaultConfig::lossless(7));
        let sizes = [1500usize, 1500, 900, 1500, 33];
        let total: usize = sizes.iter().sum();
        let mut last = 0.0;
        for s in sizes {
            let d = ch.send(s);
            let a = d.arrival_s.expect("lossless channel never drops");
            assert!(d.duplicate_arrival_s.is_none());
            assert_eq!(d.displaced, 0);
            assert!(a > last);
            last = a;
        }
        // Exactly the baseline expression, not approximately.
        assert_eq!(last, link().transfer_time_s(total));
        let st = ch.stats();
        assert_eq!((st.dropped, st.duplicated, st.reordered), (0, 0, 0));
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = FaultConfig { dup_p: 0.1, reorder_p: 0.2, reorder_window: 4, jitter_s: 0.002, ..FaultConfig::bursty(42) };
        let mut a = FaultyChannel::new(link(), cfg);
        let mut b = FaultyChannel::new(link(), cfg);
        for _ in 0..500 {
            assert_eq!(a.send(1500), b.send(1500));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn fault_streams_are_independent() {
        // Enabling duplication must not change which packets drop.
        let drops = |dup_p: f64| -> Vec<bool> {
            let cfg = FaultConfig { dup_p, ..FaultConfig::lossy(9, 0.2) };
            let mut ch = FaultyChannel::new(link(), cfg);
            (0..400).map(|_| ch.send(1500).arrival_s.is_none()).collect()
        };
        assert_eq!(drops(0.0), drops(0.5));
        assert!(drops(0.0).iter().any(|&d| d), "20 % loss must drop something");
    }

    #[test]
    fn drop_rate_converges_to_p() {
        let mut ch = FaultyChannel::new(link(), FaultConfig::lossy(1, 0.1));
        let n = 5000;
        let dropped = (0..n).filter(|_| ch.send(1500).arrival_s.is_none()).count();
        let rate = dropped as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bursts_follow_gilbert_elliott() {
        // Permanently Bad channel: first transition enters, none exits.
        let cfg = FaultConfig {
            burst_enter_p: 1.0,
            burst_exit_p: 0.0,
            burst_drop_p: 1.0,
            ..FaultConfig::lossless(3)
        };
        let mut ch = FaultyChannel::new(link(), cfg);
        for _ in 0..50 {
            assert!(ch.send(1500).arrival_s.is_none());
        }
        assert_eq!(ch.stats().burst_packets, 50);
    }

    #[test]
    fn retransmit_recovers_and_respects_deadline() {
        let mut ch = FaultyChannel::new(link(), FaultConfig::lossy(5, 0.3));
        let fate = ch.send(1500);
        // Recover with a generous budget: always succeeds at 30 % loss.
        let out = ch.retransmit(1500, &RetryPolicy::reliable(), fate.sent_s);
        assert!(out.delivered_s.is_some());
        assert!(out.attempts >= 1);
        // A deadline already in the past permits no attempt.
        let none = ch.retransmit(1500, &RetryPolicy::annotation().with_deadline(0.0), 1.0);
        assert!(none.delivered_s.is_none());
        assert_eq!(none.attempts, 0);
        assert_eq!(ch.stats().retransmit_failures, 1);
    }

    #[test]
    fn arrivals_bookkeeping() {
        let a = AnnotationArrivals::new(
            0.1,
            12.0,
            vec![0.1, 1.0, 2.0],
            vec![Some(0.05), Some(1.5), None],
        );
        assert_eq!(a.len(), 3);
        assert_eq!(a.lost(), 1);
        assert_eq!(a.late(), 1);
        assert!(!a.all_on_time());
        assert!(a.arrived_by(0, 0.0));
        assert!(!a.arrived_by(1, 1.0)); // arrives at wall 1.5 = now 1.4
        assert!(a.arrived_by(1, 1.5));
        assert!(!a.arrived_by(2, 100.0));
        assert!(!a.arrived_by(99, 100.0), "out of range is never arrived");
        assert!(AnnotationArrivals::punctual(4).all_on_time());
    }

    #[test]
    fn config_validation_rejects_bad_probabilities() {
        let bad = FaultConfig { drop_p: 1.5, ..FaultConfig::lossless(0) };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
        let ok = FaultConfig::bursty(1);
        ok.validate();
        assert!(!ok.is_lossless());
        assert!(FaultConfig::lossless(1).is_lossless());
    }

    #[test]
    fn fault_config_json_roundtrip() {
        let cfg = FaultConfig { dup_p: 0.05, jitter_s: 0.001, ..FaultConfig::bursty(0xA110) };
        let json = annolight_support::json::to_string(&cfg);
        let back: FaultConfig = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
