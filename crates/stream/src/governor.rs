//! Closed-loop governed sessions: fit this playback into N joules.
//!
//! Wires the [`annolight_core::governor`] control law into the session
//! tier. The server negotiates as usual and additionally prepares a
//! per-quality **plan ladder** (one [`BacklightPlan`] per offered level,
//! sharing one scene detection); the client then plays scene by scene
//! under the governor:
//!
//! 1. each scene, project the energy of *everything still to play* at
//!    every ladder level — plan backlight × device transfer × system
//!    power model × duration, the same per-frame arithmetic the playback
//!    client integrates;
//! 2. read the device state: remaining joule budget (derated to the
//!    battery charge), the thermal Schmitt trigger, the ambient light
//!    sensor (a seeded per-scene stream);
//! 3. run the knob search + hysteresis ([`QualityGovernor::decide`]);
//! 4. ship the decision upstream as a [`GovernorFeedback`] packet over
//!    the same sequence-numbered hint channel the annotation deltas ride
//!    (`StreamPacket::delta` wire round-trip — the server re-plans the
//!    remainder of the session from the *decoded* packet, so the wire
//!    format is load-bearing);
//! 5. play the scene from the plan at the actuated knob, drain the
//!    battery, integrate the thermal state.
//!
//! Over a faulty hop ([`run_session_governed_faulty`]) the hint stream
//! crosses the seeded lossy channel first: retransmission energy is
//! debited against the budget *before* the first scene plays, and a
//! scene whose hint missed its deadline plays at full backlight at every
//! knob — the governor compensates on the scenes it still controls. With
//! a lossless fault config the governed trace is byte-identical to the
//! fault-free reference ([`run_session_governed`]) — the two paths share
//! [`GovernorDriver`], as does the reactor machine
//! ([`crate::machine::GovernedSessionMachine`]), which is what makes
//! governor traces byte-identical across hosts and worker counts.

use crate::client::DECODE_CPU_BUSY;
use crate::faults::{deliver_lossy, AnnotationArrivals};
use crate::message::StreamPacket;
use crate::session::{negotiate_and_serve_at, SessionConfig, SessionError};
use annolight_codec::{Decoder, EncodedStream};
use annolight_core::extensions::DvfsHint;
use annolight_core::governor::{
    trace_digest, GovernorControl, GovernorEvent, GovernorFeedback,
    QualityGovernor, ThermalModel, ThermalState,
};
use annolight_core::scenes::SceneSpan;
use annolight_core::track::{AnnotationMode, AnnotationTrack};
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::BacklightLevel;
use annolight_power::{Battery, BatteryState, SystemPowerModel};
use annolight_support::rng::SmallRng;

/// RNG stream id for the ambient light sensor (one draw per scene).
const AMBIENT_STREAM: u64 = 11;

/// Ambient light below which the eye fully resolves backlight error,
/// lux; brighter surroundings mask it (the `ext_ambient` model).
const AMBIENT_MASK_LUX: f64 = 300.0;

/// A governed session: the usual [`SessionConfig`] plus the joule
/// budget and the device-state models the governor reads.
#[derive(Debug, Clone)]
pub struct GovernorSessionConfig {
    /// The underlying session (clip, device, requested quality, channel,
    /// power model, extensions, faults). Governed sessions use per-scene
    /// annotation mode.
    pub session: SessionConfig,
    /// The whole-session energy budget, joules. Always derated to the
    /// battery charge at every decision point.
    pub budget_j: f64,
    /// The battery pack model.
    pub battery: Battery,
    /// Initial charge as a fraction of usable energy.
    pub battery_fraction: f64,
    /// Control-law parameters (ladder, hysteresis).
    pub control: GovernorControl,
    /// The thermal model.
    pub thermal: ThermalModel,
    /// Seed for the ambient light sensor stream (one lux draw per
    /// scene; weights the perceived-quality error).
    pub ambient_seed: u64,
}

impl GovernorSessionConfig {
    /// A governed session over the default lossless hop with a full
    /// iPAQ pack and the paper's quality ladder.
    #[must_use]
    pub fn new(session: SessionConfig, budget_j: f64) -> Self {
        Self {
            session,
            budget_j,
            battery: Battery::ipaq_5555(),
            battery_fraction: 1.0,
            control: GovernorControl::default(),
            thermal: ThermalModel::ipaq_passive(),
            ambient_seed: 0,
        }
    }

    /// Sets the ambient sensor seed.
    #[must_use]
    pub fn with_ambient_seed(mut self, seed: u64) -> Self {
        self.ambient_seed = seed;
        self
    }
}

/// The outcome of a governed session — the deterministic artefact the
/// budget conformance tier double-runs and byte-compares.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernedSessionReport {
    /// The negotiated quality (the user's request, granted).
    pub granted_quality: QualityLevel,
    /// The configured session budget, joules.
    pub budget_j: f64,
    /// The budget after battery derating at session start, joules.
    pub effective_budget_j: f64,
    /// Playback energy under governance, joules.
    pub playback_energy_j: f64,
    /// Retransmission energy debited against the budget, joules.
    pub retransmit_energy_j: f64,
    /// Everything charged against the budget, joules.
    pub total_j: f64,
    /// Whether the session landed within the effective budget.
    pub within_budget: bool,
    /// Whether any scene found no knob that fit (best-effort floor).
    pub infeasible: bool,
    /// Projected energy at the granted quality, joules (what the
    /// session would have cost open-loop).
    pub requested_energy_j: f64,
    /// Energy at full backlight without annotations, joules.
    pub full_energy_j: f64,
    /// Fractional saving vs. the open-loop granted quality.
    pub savings_vs_requested: f64,
    /// Fractional saving vs. full backlight.
    pub savings_vs_full: f64,
    /// Perceived-quality error: mean per-frame backlight *shortfall*
    /// below the granted-quality plan (playing at or above the request
    /// is not a loss), visibility-weighted by ambient light, in
    /// `[0, 1]`.
    pub quality_error: f64,
    /// Scenes that played at full backlight because their hint missed
    /// its deadline.
    pub degraded_scenes: u32,
    /// Scenes decided under thermal throttling.
    pub throttled_scenes: u32,
    /// Hint packets lost on the faulty hop (0 on the reference path).
    pub deltas_lost: u64,
    /// Link-layer retransmissions spent (0 on the reference path).
    pub retransmits: u64,
    /// Battery charge remaining after the session, joules.
    pub final_battery_j: f64,
    /// Case temperature after the session, °C.
    pub final_temp_c: f64,
    /// Frames played.
    pub frames: u32,
    /// Playback duration, seconds.
    pub duration_s: f64,
    /// Scenes governed.
    pub scenes: u32,
    /// Stream size delivered, bytes.
    pub stream_bytes: usize,
    /// FNV-1a digest of the governor trace, hex.
    pub trace_hex: String,
    /// The per-scene governor trace.
    pub events: Vec<GovernorEvent>,
}

annolight_support::impl_json!(struct GovernedSessionReport { granted_quality, budget_j, effective_budget_j, playback_energy_j, retransmit_energy_j, total_j, within_budget, infeasible, requested_energy_j, full_energy_j, savings_vs_requested, savings_vs_full, quality_error, degraded_scenes, throttled_scenes, deltas_lost, retransmits, final_battery_j, final_temp_c, frames, duration_s, scenes, stream_bytes, trace_hex, events });

// ---------------------------------------------------------------------------
// Server-side preparation: the plan ladder.
// ---------------------------------------------------------------------------

/// Everything the governed playback loop needs, computed once per
/// session from the served stream: the scene spans, one plan per ladder
/// level (shared spans), the scene → hint-sequence map, the DVFS hints,
/// and the precomputed per-knob per-scene backlight wattages.
#[derive(Debug)]
pub(crate) struct GovernedPrep {
    pub(crate) granted: QualityLevel,
    pub(crate) requested_knob: usize,
    pub(crate) fps: f64,
    pub(crate) frames: u32,
    pub(crate) spans: Vec<SceneSpan>,
    /// `[knob][scene]` backlight power, watts.
    pub(crate) backlight_w: Vec<Vec<f64>>,
    /// Backlight power at `BacklightLevel::MAX`, watts.
    pub(crate) full_w: f64,
    /// Backlight levels `[knob][scene]` (for the quality-error metric).
    pub(crate) levels: Vec<Vec<u8>>,
    /// Scene → canonical hint sequence number.
    pub(crate) scene_seq: Vec<usize>,
    pub(crate) hints: Option<Vec<DvfsHint>>,
    pub(crate) wnic_duty: f64,
    pub(crate) stream_bytes: usize,
}

impl GovernedPrep {
    /// Builds the ladder for a served stream. `config` is the
    /// post-negotiation session config.
    fn build(
        stream: &EncodedStream,
        granted: QualityLevel,
        config: &SessionConfig,
        control: &GovernorControl,
    ) -> Result<Self, SessionError> {
        control.validate();
        let pipeline = |e: String| SessionError::Pipeline(e);

        // The embedded track (for the hint-sequence map) and DVFS hints,
        // exactly as the playback client scans them.
        let dec = Decoder::new(stream).map_err(|e| pipeline(e.to_string()))?;
        let mut track: Option<AnnotationTrack> = None;
        let mut hints: Option<Vec<DvfsHint>> = None;
        for bytes in dec.user_data() {
            if annolight_core::extensions::is_dvfs_payload(bytes) {
                hints = Some(
                    annolight_core::extensions::hints_from_bytes(bytes)
                        .map_err(|e| pipeline(e.to_string()))?,
                );
            } else if track.is_none() {
                track = Some(
                    AnnotationTrack::from_rle_bytes(bytes).map_err(|e| pipeline(e.to_string()))?,
                );
            }
        }
        let track = track
            .ok_or_else(|| pipeline("governed session needs an annotated stream".into()))?;

        // The plan ladder: one profile pass, one plan per ladder level
        // (the same annotator pipeline the server ran for the granted
        // level, so scene spans line up with the served track).
        let profile =
            LuminanceProfile::of_clip(&config.clip).map_err(|e| pipeline(e.to_string()))?;
        let mut spans: Option<Vec<SceneSpan>> = None;
        let mut backlight_w: Vec<Vec<f64>> = Vec::with_capacity(control.levels.len());
        let mut levels: Vec<Vec<u8>> = Vec::with_capacity(control.levels.len());
        for &level in &control.levels {
            let annotated = Annotator::new(config.device.clone(), level)
                .with_mode(AnnotationMode::PerScene)
                .with_policy(config.policy)
                .annotate_profile(&profile)
                .map_err(|e| pipeline(e.to_string()))?;
            let plan = annotated.plan();
            if spans.is_none() {
                spans = Some(plan.scenes().iter().map(|s| s.span).collect());
            }
            backlight_w.push(
                plan.scenes()
                    .iter()
                    .map(|s| config.device.backlight_power().power_w(s.backlight))
                    .collect(),
            );
            levels.push(plan.scenes().iter().map(|s| s.backlight.0).collect());
        }
        let spans = spans.expect("ladder has at least one level");

        // Scene → canonical hint sequence: the served track, RLE-merged,
        // is what crossed (or failed to cross) the lossy hop.
        let entries = track.canonicalized();
        let entries = entries.entries();
        let scene_seq: Vec<usize> = spans
            .iter()
            .map(|span| {
                match entries.binary_search_by_key(&span.start, |e| e.start_frame) {
                    Ok(i) => i,
                    Err(i) => i.saturating_sub(1),
                }
            })
            .collect();

        let fps = stream.fps().max(f64::EPSILON);
        let frames = stream.frame_count();
        let stream_bytes = stream.as_bytes().len();
        let wnic_duty = if config.burst_prefetch && frames > 0 {
            let duration = f64::from(frames) / fps;
            (config.channel.transfer_time_s(stream_bytes) / duration).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let requested_knob = control
            .levels
            .iter()
            .position(|&l| (l.clip_fraction() - granted.clip_fraction()).abs() < 1e-12)
            .unwrap_or(0);
        Ok(Self {
            granted,
            requested_knob,
            fps,
            frames,
            spans,
            backlight_w,
            full_w: config.device.backlight_power().power_w(BacklightLevel::MAX),
            levels,
            scene_seq,
            hints: if config.dvfs { hints } else { None },
            wnic_duty,
            stream_bytes,
        })
    }

    /// Mean device power during `scene` at `knob`, watts — the same
    /// per-frame expression [`crate::client::PlaybackClient`] integrates
    /// (sans the negligible per-switch microcost). A scene whose hint is
    /// missing plays at full backlight at every knob.
    fn scene_power_w(
        &self,
        system: &SystemPowerModel,
        knob: usize,
        scene: usize,
        hint_present: bool,
    ) -> f64 {
        let backlight_w =
            if hint_present { self.backlight_w[knob][scene] } else { self.full_w };
        let span = self.spans[scene];
        match self
            .hints
            .as_deref()
            .and_then(|h| annolight_core::extensions::hint_for_frame(h, span.start))
        {
            Some(h) => {
                let busy = h.busy_at(h.frequency).min(1.0);
                system.power_w_dvfs(busy, h.frequency.relative_power(), true, backlight_w)
                    - (1.0 - self.wnic_duty) * (system.wnic_rx_w - system.wnic_idle_w)
            }
            None => system.power_w_duty(DECODE_CPU_BUSY, self.wnic_duty, backlight_w),
        }
    }

    /// Energy of `scene` at `knob`, joules.
    fn scene_energy_j(
        &self,
        system: &SystemPowerModel,
        knob: usize,
        scene: usize,
        hint_present: bool,
    ) -> f64 {
        self.scene_power_w(system, knob, scene, hint_present)
            * (f64::from(self.spans[scene].len()) / self.fps)
    }

    /// Projected energy of scenes `from..` at every knob, given the
    /// per-scene hint availability. Monotone non-increasing in the knob
    /// (deeper clipping never brightens a scene).
    fn projections_from(
        &self,
        system: &SystemPowerModel,
        from: usize,
        hint_present: &dyn Fn(usize) -> bool,
    ) -> Vec<f64> {
        (0..self.backlight_w.len())
            .map(|k| {
                (from..self.spans.len())
                    .map(|s| self.scene_energy_j(system, k, s, hint_present(s)))
                    .sum()
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The shared driver.
// ---------------------------------------------------------------------------

/// Fault-tier inputs the faulty path debits before the first scene.
#[derive(Debug, Clone, Default)]
pub(crate) struct GovernedFaultInputs {
    pub(crate) arrivals: Option<AnnotationArrivals>,
    pub(crate) retransmit_energy_j: f64,
    pub(crate) retransmits: u64,
    pub(crate) deltas_lost: u64,
}

/// The governed playback loop as a resumable scene-stepper, shared by
/// the threaded entry points and the reactor machine — one
/// implementation, so governor traces are byte-identical across hosts
/// by construction.
#[derive(Debug)]
pub(crate) struct GovernorDriver {
    prep: GovernedPrep,
    system: SystemPowerModel,
    governor: QualityGovernor,
    thermal_model: ThermalModel,
    thermal: ThermalState,
    battery: BatteryState,
    ambient: SmallRng,
    budget_j: f64,
    effective_budget_j: f64,
    spent_j: f64,
    faults: GovernedFaultInputs,
    scene: usize,
    seq: u32,
    events: Vec<GovernorEvent>,
    err_weighted_frames: f64,
    degraded_scenes: u32,
    throttled_scenes: u32,
    infeasible: bool,
}

impl GovernorDriver {
    pub(crate) fn new(
        prep: GovernedPrep,
        cfg: &GovernorSessionConfig,
        faults: GovernedFaultInputs,
    ) -> Self {
        let mut battery = BatteryState::at_fraction(cfg.battery, cfg.battery_fraction);
        let effective_budget_j = battery.budget_clamp_j(cfg.budget_j);
        // Retransmissions already happened when playback starts: debit
        // them against the budget (and the pack) before scene 0.
        battery.drain_j(faults.retransmit_energy_j.min(battery.remaining_j()));
        let governor =
            QualityGovernor::new(cfg.control.clone()).with_knob(prep.requested_knob);
        Self {
            system: cfg.session.system.clone(),
            governor,
            thermal_model: cfg.thermal,
            thermal: cfg.thermal.start(),
            battery,
            ambient: SmallRng::stream(cfg.ambient_seed, AMBIENT_STREAM),
            budget_j: cfg.budget_j,
            effective_budget_j,
            spent_j: faults.retransmit_energy_j,
            faults,
            scene: 0,
            seq: 0,
            events: Vec::with_capacity(prep.spans.len()),
            err_weighted_frames: 0.0,
            degraded_scenes: 0,
            throttled_scenes: 0,
            infeasible: false,
            prep,
        }
    }

    fn hint_present(&self, scene: usize) -> bool {
        match &self.faults.arrivals {
            None => true,
            Some(arrivals) => {
                let now = f64::from(self.prep.spans[scene].start) / self.prep.fps;
                arrivals.arrived_by(self.prep.scene_seq[scene], now)
            }
        }
    }

    /// Whether another scene remains to govern.
    pub(crate) fn done(&self) -> bool {
        self.scene >= self.prep.spans.len()
    }

    /// Playback time at which the current scene ends, seconds (the
    /// reactor machine's sleep clock).
    pub(crate) fn scene_end_s(&self) -> f64 {
        let end = self
            .prep
            .spans
            .get(self.scene)
            .map_or(self.prep.frames, |s| s.end);
        f64::from(end) / self.prep.fps
    }

    /// Governs and plays one scene.
    ///
    /// # Errors
    ///
    /// Returns a pipeline error when the upstream feedback packet fails
    /// to round-trip the wire.
    pub(crate) fn step_scene(&mut self) -> Result<(), SessionError> {
        let s = self.scene;
        debug_assert!(s < self.prep.spans.len());
        let span = self.prep.spans[s];

        // Device state at the decision point.
        let lux = 50.0 + self.ambient.gen_f64() * 950.0;
        let throttled = self.thermal.throttled;
        let remaining = self.battery.budget_clamp_j(self.budget_j - self.spent_j);
        let hint_present = self.hint_present(s);

        // Project everything still to play, at every knob.
        let projections = self
            .prep
            .projections_from(&self.system, s, &|t| self.hint_present(t));

        let decision = self.governor.decide(remaining, &projections, throttled);
        if !decision.fits {
            self.infeasible = true;
        }

        // Ship the decision upstream over the hint channel and actuate
        // the *decoded* knob — the wire format is load-bearing.
        let mut flags = 0u8;
        if throttled {
            flags |= GovernorFeedback::FLAG_THROTTLED;
        }
        if !decision.fits {
            flags |= GovernorFeedback::FLAG_BEST_EFFORT;
        }
        let feedback = GovernorFeedback {
            scene: s as u32,
            knob: decision.knob as u8,
            flags,
            remaining_mj: (remaining * 1000.0).round().min(u64::MAX as f64).max(0.0) as u64,
        };
        let wire = StreamPacket::delta(self.seq, feedback.to_bytes()).to_wire();
        self.seq = self.seq.wrapping_add(1);
        let packet = StreamPacket::from_wire(&wire).map_err(SessionError::Pipeline)?;
        let echoed = GovernorFeedback::from_bytes(&packet.payload)
            .map_err(|e| SessionError::Pipeline(e.to_string()))?;
        let knob = usize::from(echoed.knob);

        // Play the scene at the actuated knob.
        let scene_j = self.prep.scene_energy_j(&self.system, knob, s, hint_present);
        let dt = f64::from(span.len()) / self.prep.fps;
        let power_w = if dt > 0.0 { scene_j / dt } else { 0.0 };
        self.spent_j += scene_j;
        self.battery.drain_j(scene_j.min(self.battery.remaining_j()));
        self.thermal.step(&self.thermal_model, power_w, dt);

        // Perceived-quality error vs. the granted-quality plan,
        // one-sided (only a backlight *shortfall* below the requested
        // plan is a quality loss — improvements and the full-backlight
        // missing-hint fallback play at or above the request) and
        // visibility-weighted by ambient light (bright surroundings
        // mask backlight deviation).
        let requested_level = self.prep.levels[self.prep.requested_knob][s];
        let applied_level = if hint_present { self.prep.levels[knob][s] } else { 255 };
        let visibility = (AMBIENT_MASK_LUX / lux.max(AMBIENT_MASK_LUX)).min(1.0);
        self.err_weighted_frames += visibility
            * (f64::from(requested_level.saturating_sub(applied_level)) / 255.0)
            * f64::from(span.len());

        if !hint_present {
            self.degraded_scenes += 1;
        }
        if throttled {
            self.throttled_scenes += 1;
        }
        self.events.push(GovernorEvent {
            scene: s as u32,
            start_frame: span.start,
            knob: knob as u32,
            quality: self.governor.control().levels[knob],
            action: decision.action,
            fits: decision.fits,
            probes: decision.probes,
            projected_j: decision.projected_j,
            scene_j,
            remaining_j: remaining,
            battery_j: self.battery.remaining_j(),
            temp_c: self.thermal.temp_c,
            throttled,
            ambient_lux: lux,
            hint_missing: !hint_present,
        });
        self.scene += 1;
        Ok(())
    }

    /// Assembles the report once every scene has played.
    pub(crate) fn finish(self) -> GovernedSessionReport {
        debug_assert!(self.done());
        let prep = &self.prep;
        let duration = f64::from(prep.frames) / prep.fps;
        // Open-loop baselines: the granted-quality plan with every hint
        // on time, and full backlight without annotations (the client's
        // baseline power expression).
        let requested_energy_j: f64 = (0..prep.spans.len())
            .map(|s| prep.scene_energy_j(&self.system, prep.requested_knob, s, true))
            .sum();
        let full_energy_j =
            self.system.power_w(DECODE_CPU_BUSY, true, prep.full_w) * duration;
        let playback_energy_j = self.spent_j - self.faults.retransmit_energy_j;
        let total_j = self.spent_j;
        let frames_governed: f64 =
            prep.spans.iter().map(|s| f64::from(s.len())).sum();
        let quality_error = if frames_governed > 0.0 {
            self.err_weighted_frames / frames_governed
        } else {
            0.0
        };
        GovernedSessionReport {
            granted_quality: prep.granted,
            budget_j: self.budget_j,
            effective_budget_j: self.effective_budget_j,
            playback_energy_j,
            retransmit_energy_j: self.faults.retransmit_energy_j,
            total_j,
            within_budget: total_j <= self.effective_budget_j + 1e-9,
            infeasible: self.infeasible,
            requested_energy_j,
            full_energy_j,
            savings_vs_requested: if requested_energy_j > 0.0 {
                1.0 - playback_energy_j / requested_energy_j
            } else {
                0.0
            },
            savings_vs_full: if full_energy_j > 0.0 {
                1.0 - playback_energy_j / full_energy_j
            } else {
                0.0
            },
            quality_error,
            degraded_scenes: self.degraded_scenes,
            throttled_scenes: self.throttled_scenes,
            deltas_lost: self.faults.deltas_lost,
            retransmits: self.faults.retransmits,
            final_battery_j: self.battery.remaining_j(),
            final_temp_c: self.thermal.temp_c,
            frames: prep.frames,
            duration_s: duration,
            scenes: prep.spans.len() as u32,
            stream_bytes: prep.stream_bytes,
            trace_hex: format!("{:016x}", trace_digest(&self.events)),
            events: self.events,
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded entry points.
// ---------------------------------------------------------------------------

/// Negotiates, serves and prepares the governed session halves shared by
/// the threaded paths and the reactor machine.
pub(crate) fn prepare_governed(
    cfg: &GovernorSessionConfig,
) -> Result<(EncodedStream, GovernedPrep, SessionConfig), SessionError> {
    // Full resolution always: the governor's ladders price quality levels
    // against a fixed stream geometry, so spatial rescaling is pinned off.
    let (stream, _, granted, _, config) = negotiate_and_serve_at(cfg.session.clone(), false)?;
    let prep = GovernedPrep::build(&stream, granted, &config, &cfg.control)?;
    Ok((stream, prep, config))
}

fn drive_to_completion(
    prep: GovernedPrep,
    cfg: &GovernorSessionConfig,
    faults: GovernedFaultInputs,
) -> Result<GovernedSessionReport, SessionError> {
    let mut driver = GovernorDriver::new(prep, cfg, faults);
    while !driver.done() {
        driver.step_scene()?;
    }
    Ok(driver.finish())
}

/// Runs one governed session over a lossless hop — the fault-free
/// reference trace.
///
/// # Errors
///
/// Returns [`SessionError`] for failures anywhere in the pipeline.
pub fn run_session_governed(
    cfg: GovernorSessionConfig,
) -> Result<GovernedSessionReport, SessionError> {
    let (_, prep, _) = prepare_governed(&cfg)?;
    drive_to_completion(prep, &cfg, GovernedFaultInputs::default())
}

/// Runs one governed session with the hint stream crossing the faulty
/// hop in [`SessionConfig::faults`]: retransmission energy is debited
/// against the budget before the first scene, and scenes whose hints
/// missed their deadline play at full backlight — the governor
/// compensates on the scenes it still controls. With a lossless fault
/// config the report is byte-identical to [`run_session_governed`].
///
/// # Errors
///
/// Returns [`SessionError`] for failures anywhere in the pipeline.
pub fn run_session_governed_faulty(
    cfg: GovernorSessionConfig,
) -> Result<GovernedSessionReport, SessionError> {
    let (stream, prep, config) = prepare_governed(&cfg)?;
    let lossy = deliver_lossy(&stream, &config.channel, &config.faults)
        .map_err(SessionError::Pipeline)?;
    drive_to_completion(prep, &cfg, governed_fault_inputs(&lossy, &config))
}

/// Derives the governed fault inputs from a lossy delivery: arrivals
/// plus the retransmission energy expression shared with
/// [`crate::session::run_session_faulty`].
pub(crate) fn governed_fault_inputs(
    lossy: &crate::faults::LossyDelivery,
    config: &SessionConfig,
) -> GovernedFaultInputs {
    let retransmits = lossy.report.channel.retransmits;
    let retransmit_energy_j = if retransmits > 0 {
        let slot = (config.channel.mtu as f64 * 8.0) / config.channel.bandwidth_bps;
        config.system.retransmit_energy_j(retransmits, slot)
    } else {
        0.0
    };
    GovernedFaultInputs {
        arrivals: Some(lossy.arrivals.clone()),
        retransmit_energy_j,
        retransmits,
        deltas_lost: lossy.report.deltas_lost,
    }
}

/// Projects the whole-session energy at every ladder level with all
/// hints on time — what tests and benches use to derive joule budgets
/// ("fit this playback into N joules" needs to know what the playback
/// could cost).
///
/// # Errors
///
/// Returns [`SessionError`] for negotiation/pipeline failures.
pub fn governed_projections(cfg: &GovernorSessionConfig) -> Result<Vec<f64>, SessionError> {
    let (_, prep, _) = prepare_governed(cfg)?;
    Ok(prep.projections_from(&cfg.session.system, 0, &|_| true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use annolight_core::governor::GovernorAction;
    use annolight_video::ClipLibrary;

    fn governed(budget_j: f64) -> GovernorSessionConfig {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(3.0);
        GovernorSessionConfig::new(SessionConfig::new(clip, QualityLevel::Q10), budget_j)
    }

    #[test]
    fn loose_budget_plays_at_the_granted_quality() {
        let cfg = governed(1.0e6);
        let ladder = governed_projections(&cfg).unwrap();
        let r = run_session_governed(cfg).unwrap();
        assert!(r.within_budget && !r.infeasible);
        // Never degrades below the request when the budget is loose.
        assert!(r.events.iter().all(|e| e.knob <= 2), "knobs {:?}",
            r.events.iter().map(|e| e.knob).collect::<Vec<_>>());
        assert!((r.playback_energy_j - ladder[2]).abs() < ladder[2] * 0.05 + 1e-9);
        assert_eq!(r.degraded_scenes, 0);
        assert_eq!(r.retransmit_energy_j, 0.0);
    }

    #[test]
    fn tight_budget_degrades_and_still_fits() {
        let ladder = governed_projections(&governed(0.0)).unwrap();
        let budget = ladder[ladder.len() - 1] + 0.05 * (ladder[0] - ladder[ladder.len() - 1]);
        let r = run_session_governed(governed(budget)).unwrap();
        assert!(r.within_budget, "total {} vs budget {}", r.total_j, r.effective_budget_j);
        assert!(!r.infeasible);
        assert!(r.events.iter().any(|e| e.action == GovernorAction::Degrade));
        assert!(r.quality_error > 0.0 && r.quality_error < 0.5);
    }

    #[test]
    fn infeasible_budget_floors_at_best_effort() {
        let r = run_session_governed(governed(0.5)).unwrap();
        assert!(r.infeasible);
        let floor = (r.events[0].probes, r.events[0].knob);
        assert_eq!(floor.1, 4, "must pin the most aggressive knob");
        assert!(r.events.iter().all(|e| e.knob == 4));
    }

    #[test]
    fn battery_derates_the_budget() {
        let mut cfg = governed(1.0e6);
        cfg.battery_fraction = 0.0005; // ~7.7 J left in the pack
        let r = run_session_governed(cfg).unwrap();
        assert!(r.effective_budget_j < 10.0);
        assert!(r.infeasible, "an exhausted pack cannot fit the session");
        assert_eq!(r.final_battery_j, 0.0);
    }

    #[test]
    fn double_run_is_byte_identical() {
        let run = || {
            let ladder = governed_projections(&governed(0.0)).unwrap();
            let budget = (ladder[0] + ladder[4]) / 2.0;
            let r =
                run_session_governed(governed(budget).with_ambient_seed(7)).unwrap();
            annolight_support::json::to_string_pretty(&r)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_fault_governed_trace_matches_reference() {
        let ladder = governed_projections(&governed(0.0)).unwrap();
        let budget = (ladder[0] + ladder[4]) / 2.0;
        let reference = run_session_governed(governed(budget)).unwrap();
        let mut cfg = governed(budget);
        cfg.session.faults = FaultConfig::lossless(42);
        let faulty = run_session_governed_faulty(cfg).unwrap();
        assert_eq!(
            annolight_support::json::to_string_pretty(&reference),
            annolight_support::json::to_string_pretty(&faulty),
            "zero-fault governed path must reproduce the reference byte for byte"
        );
    }

    #[test]
    fn report_serialises_for_tooling() {
        let r = run_session_governed(governed(1000.0)).unwrap();
        let json = annolight_support::json::to_string(&r);
        let back: GovernedSessionReport = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back.trace_hex, r.trace_hex);
        assert_eq!(back.events.len(), r.events.len());
        assert!((back.total_j - r.total_j).abs() < 1e-12);
    }
}
