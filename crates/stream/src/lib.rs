//! The streaming system model of Fig. 1.
//!
//! "The system entities include a multimedia server, an (optional) proxy
//! node that can perform various operations on the stream (transcoding),
//! the users with low-power mobile devices and other network equipment. …
//! The annotations can be generated and added to the video stream at
//! either the server or proxy node, with no changes for the client."
//!
//! * [`server`] — stores profiled clips and serves annotated, compensated,
//!   encoded streams for a negotiated device/quality;
//! * [`proxy`] — transcodes an *unannotated* stream on the fly, inserting
//!   annotations and compensation mid-path;
//! * [`client`] — decodes, obeys the annotation track through the
//!   backlight controller, and accounts energy with the device power
//!   model;
//! * [`network`] — a bandwidth/latency channel model for the wireless hop;
//! * [`faults`] — seeded fault injection on that hop (burst loss,
//!   duplication, reordering, jitter), retry/backoff retransmission, and
//!   the client's graceful-degradation policy for lost annotation hints;
//! * [`session`] — end-to-end orchestration (threaded server → client
//!   delivery over crossbeam channels), producing the measurements behind
//!   Fig. 10;
//! * [`machine`] — the same session lifecycle re-hosted as resumable
//!   state machines on the deterministic reactor, scaling one process to
//!   10⁵⁺ concurrent sessions;
//! * [`governor`] — closed-loop battery/thermal-aware quality governance:
//!   fit a whole playback into an N-joule budget by searching the quality
//!   knob per scene and shipping the decision upstream over the hint
//!   channel;
//! * [`spatial`] — energy pricing of half-resolution streaming, feeding
//!   the spatial-scale annotation policy's resolution decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod governor;
pub mod machine;
pub mod message;
pub mod network;
pub mod proxy;
pub mod server;
pub mod session;
pub mod spatial;

pub use client::{PlaybackClient, PlaybackReport};
pub use faults::{
    deliver_lossy, AnnotationArrivals, ChannelStats, DegradationConfig, DegradationEvent,
    DegradationKind, DegradedPlayback, FaultConfig, FaultReport, FaultyChannel, LossyDelivery,
    RetryOutcome,
};
pub use governor::{
    governed_projections, run_session_governed, run_session_governed_faulty,
    GovernedSessionReport, GovernorSessionConfig,
};
pub use machine::{
    run_faulty_sessions_on_reactor, run_governed_faulty_sessions_on_reactor,
    run_governed_sessions_on_reactor, run_sessions_on_reactor, FaultySessionMachine,
    GovernedSessionMachine, ScaleOutcome, ScaleSession, ScaleSpec, SessionMachine,
};
pub use message::{grant_quality, ClientHello, PacketKind, ServerOffer, StreamPacket};
pub use network::WirelessChannel;
pub use proxy::{Proxy, TranscodeRequest};
pub use server::{MediaServer, ServeError, ServeRequest, ServedStream};
pub use session::{
    run_session, run_session_faulty, run_session_with_server, run_shared_sessions,
    FaultySessionReport, SessionConfig, SessionError, SessionReport, SharedSessionOptions,
};
pub use spatial::{resolution_cost, spatial_decision, DECODE_PIXELS_PER_S};
