//! The wireless hop: a bandwidth/latency channel model.
//!
//! The paper streams over 802.11b through an access point. For energy
//! accounting we only need delivery *timing* (how long the WNIC stays in
//! receive mode) — a fluid bandwidth + fixed latency model captures that.


/// A point-to-point channel with finite bandwidth and fixed latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirelessChannel {
    /// Usable throughput, bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency, seconds.
    pub latency_s: f64,
    /// Maximum transfer unit, bytes (packetisation granularity).
    pub mtu: usize,
}

annolight_support::impl_json!(struct WirelessChannel { bandwidth_bps, latency_s, mtu });

impl WirelessChannel {
    /// A typical 802.11b link of the era: ~5 Mbit/s goodput, 4 ms one-way
    /// latency, 1500-byte MTU.
    pub fn wifi_80211b() -> Self {
        Self { bandwidth_bps: 5_000_000.0, latency_s: 0.004, mtu: 1500 }
    }

    /// Number of packets needed for `bytes`.
    pub fn packets_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.mtu).max(1)
    }

    /// Time to deliver `bytes` (serialisation + latency), seconds.
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        (bytes as f64 * 8.0) / self.bandwidth_bps + self.latency_s
    }

    /// Whether a stream of `bytes` total, playing for `duration_s`, can be
    /// delivered in real time over this channel.
    pub fn sustains_real_time(&self, bytes: usize, duration_s: f64) -> bool {
        self.transfer_time_s(bytes) <= duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let ch = WirelessChannel::wifi_80211b();
        assert!(ch.transfer_time_s(2000) > ch.transfer_time_s(1000));
    }

    #[test]
    fn known_transfer_time() {
        let ch = WirelessChannel { bandwidth_bps: 1_000_000.0, latency_s: 0.01, mtu: 1500 };
        // 125000 bytes = 1 Mbit → 1 s + 10 ms latency.
        assert!((ch.transfer_time_s(125_000) - 1.01).abs() < 1e-9);
    }

    #[test]
    fn packetisation_rounds_up() {
        let ch = WirelessChannel::wifi_80211b();
        assert_eq!(ch.packets_for(1), 1);
        assert_eq!(ch.packets_for(1500), 1);
        assert_eq!(ch.packets_for(1501), 2);
        assert_eq!(ch.packets_for(0), 1);
    }

    #[test]
    fn real_time_check() {
        let ch = WirelessChannel::wifi_80211b();
        // A 1 MB clip playing for 60 s is easily real-time on 5 Mbit/s.
        assert!(ch.sustains_real_time(1_000_000, 60.0));
        // 100 MB in one second is not.
        assert!(!ch.sustains_real_time(100_000_000, 1.0));
    }
}
