//! Sessions as resumable reactor state machines.
//!
//! The thread-per-session entry points ([`crate::session::run_session`],
//! [`crate::session::run_session_faulty`]) pin an OS stack per live
//! playback — the hard ceiling between a soak test and the "millions of
//! users" fleet scenarios. This module re-hosts the same session
//! lifecycle (negotiate → stream → retransmit → degrade → ramp) as
//! cooperative [`Task`]s on the [`annolight_support::reactor`]:
//!
//! * [`SessionMachine`] / [`FaultySessionMachine`] — **full-fidelity**
//!   machines that reuse the exact negotiation/delivery/playback halves
//!   of the threaded paths (`negotiate_and_serve`, `play_received`,
//!   `finish_faulty`, [`LossyEngine`]/[`LossyCollector`]), so their
//!   reports are byte-identical to the thread-per-session reference by
//!   construction — the determinism tier pins this.
//! * [`ScaleSession`] — the **lightweight** tier for 10⁵⁺ concurrent
//!   sessions: per-session state is one [`FaultyChannel`] plus a few
//!   counters (≈ a few hundred bytes), the packet plan and annotation
//!   schedule are shared behind one [`ScaleSpec`] `Arc`, and received
//!   copies fold into an FNV digest instead of buffering bytes. Fault
//!   fates still come from the real seeded channel; the degradation tail
//!   replays the client's hold-then-ramp policy arithmetically.

use crate::faults::{
    retry::RetryPolicy, DegradationConfig, FaultConfig, FaultyChannel, LossyCollector, LossyEngine,
};
use crate::governor::{
    governed_fault_inputs, prepare_governed, GovernedFaultInputs, GovernedSessionReport,
    GovernorDriver, GovernorSessionConfig,
};
use crate::message::StreamPacket;
use crate::network::WirelessChannel;
use crate::session::{
    finish_faulty, negotiate_and_serve, play_received, FaultySessionReport, SessionConfig,
    SessionError, SessionReport,
};
use annolight_codec::{Decoder, EncodedStream};
use annolight_core::delta::AnnotationDelta;
use annolight_core::track::AnnotationTrack;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_power::SystemPowerModel;
use annolight_support::channel::{self, Sender};
use annolight_support::reactor::{Context, Reactor, ReactorConfig, ReactorReport, Step, Task};
use annolight_support::wheel::ticks_from_secs;
use std::sync::Arc;

/// MTU chunks a lossless machine moves per cooperative step.
const CHUNKS_PER_STEP: usize = 16;

/// Packets a faulty machine pumps per cooperative step.
const PACKETS_PER_STEP: usize = 16;

fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Full-fidelity lossless machine.
// ---------------------------------------------------------------------------

struct PlainDeliver {
    bytes: Vec<u8>,
    offset: usize,
    packets: usize,
    received: Vec<u8>,
    annotation_bytes: usize,
    granted: QualityLevel,
    device: DeviceProfile,
    system: SystemPowerModel,
    channel: WirelessChannel,
    burst_prefetch: bool,
}

enum PlainState {
    Init(Box<SessionConfig>),
    Deliver(Box<PlainDeliver>),
    Finished,
}

/// [`crate::session::run_session`] as a resumable state machine:
/// negotiate/serve in the first step, then move MTU chunks
/// cooperatively (sleeping the virtual send clock between batches), then
/// play back through the shared `play_received` tail. The result arrives
/// on the output channel as `(index, report)`.
pub struct SessionMachine {
    state: PlainState,
    index: usize,
    out: Sender<(usize, Result<SessionReport, SessionError>)>,
}

impl SessionMachine {
    /// A machine for `config`, reporting as session `index` on `out`.
    #[must_use]
    pub fn new(
        config: SessionConfig,
        index: usize,
        out: Sender<(usize, Result<SessionReport, SessionError>)>,
    ) -> Self {
        Self { state: PlainState::Init(Box::new(config)), index, out }
    }
}

impl Task for SessionMachine {
    fn step(&mut self, _cx: &Context) -> Step {
        match std::mem::replace(&mut self.state, PlainState::Finished) {
            PlainState::Init(config) => match negotiate_and_serve(*config) {
                Ok((stream, annotation_bytes, granted, device, config)) => {
                    let bytes = stream.as_bytes().to_vec();
                    self.state = PlainState::Deliver(Box::new(PlainDeliver {
                        received: Vec::with_capacity(bytes.len()),
                        bytes,
                        offset: 0,
                        packets: 0,
                        annotation_bytes,
                        granted,
                        device,
                        system: config.system,
                        channel: config.channel,
                        burst_prefetch: config.burst_prefetch,
                    }));
                    Step::Yield
                }
                Err(e) => {
                    let _ = self.out.send((self.index, Err(e)));
                    Step::Done
                }
            },
            PlainState::Deliver(mut d) => {
                let mtu = d.channel.mtu;
                for _ in 0..CHUNKS_PER_STEP {
                    if d.offset >= d.bytes.len() {
                        break;
                    }
                    let end = (d.offset + mtu).min(d.bytes.len());
                    d.received.extend_from_slice(&d.bytes[d.offset..end]);
                    d.offset = end;
                    d.packets += 1;
                }
                if d.offset >= d.bytes.len() {
                    let result = play_received(
                        d.received,
                        d.packets,
                        d.annotation_bytes,
                        d.granted,
                        d.device,
                        d.system,
                        &d.channel,
                        d.burst_prefetch,
                    );
                    let _ = self.out.send((self.index, result));
                    return Step::Done;
                }
                // Sleep to the cumulative send clock — the same
                // bytes-over-bandwidth expression the channel model uses.
                let clock =
                    (d.offset as f64 * 8.0) / d.channel.bandwidth_bps + d.channel.latency_s;
                self.state = PlainState::Deliver(d);
                Step::Sleep(ticks_from_secs(clock))
            }
            PlainState::Finished => Step::Done,
        }
    }
}

// ---------------------------------------------------------------------------
// Full-fidelity faulty machine.
// ---------------------------------------------------------------------------

struct FaultyDeliver {
    engine: LossyEngine,
    collector: LossyCollector,
    total: usize,
    annotation_bytes: usize,
    granted: QualityLevel,
    device: DeviceProfile,
    system: SystemPowerModel,
    channel: WirelessChannel,
    burst_prefetch: bool,
}

enum FaultyState {
    Init(Box<SessionConfig>),
    Deliver(Box<FaultyDeliver>),
    Finished,
}

/// [`crate::session::run_session_faulty`] as a resumable state machine:
/// the [`LossyEngine`] pumps packet fates (loss, bursts, retransmission
/// deadlines) cooperatively into the [`LossyCollector`], then the shared
/// `finish_faulty` tail degrades/ramps playback — byte-identical to the
/// threaded path, which pumps the same engine from a thread.
pub struct FaultySessionMachine {
    state: FaultyState,
    index: usize,
    out: Sender<(usize, Result<FaultySessionReport, SessionError>)>,
}

impl FaultySessionMachine {
    /// A machine for `config`, reporting as session `index` on `out`.
    #[must_use]
    pub fn new(
        config: SessionConfig,
        index: usize,
        out: Sender<(usize, Result<FaultySessionReport, SessionError>)>,
    ) -> Self {
        Self { state: FaultyState::Init(Box::new(config)), index, out }
    }

    fn fail(&mut self, e: SessionError) -> Step {
        let _ = self.out.send((self.index, Err(e)));
        Step::Done
    }
}

impl Task for FaultySessionMachine {
    fn step(&mut self, _cx: &Context) -> Step {
        match std::mem::replace(&mut self.state, FaultyState::Finished) {
            FaultyState::Init(config) => match negotiate_and_serve(*config) {
                Ok((stream, annotation_bytes, granted, device, config)) => {
                    let total = stream.as_bytes().len();
                    let engine = match LossyEngine::new(&stream, &config.channel, &config.faults)
                    {
                        Ok(engine) => engine,
                        Err(e) => return self.fail(SessionError::Pipeline(e)),
                    };
                    self.state = FaultyState::Deliver(Box::new(FaultyDeliver {
                        engine,
                        collector: LossyCollector::with_capacity(total),
                        total,
                        annotation_bytes,
                        granted,
                        device,
                        system: config.system,
                        channel: config.channel,
                        burst_prefetch: config.burst_prefetch,
                    }));
                    Step::Yield
                }
                Err(e) => self.fail(e),
            },
            FaultyState::Deliver(mut d) => {
                for _ in 0..PACKETS_PER_STEP {
                    match d.engine.pump() {
                        Ok(Some(copies)) => {
                            for (arrival, wire) in copies {
                                if let Err(e) = d.collector.offer(arrival, &wire) {
                                    return self.fail(SessionError::Pipeline(e));
                                }
                            }
                        }
                        Ok(None) => {
                            let lossy = match d.engine.finish(d.collector) {
                                Ok(lossy) => lossy,
                                Err(e) => return self.fail(SessionError::Pipeline(e)),
                            };
                            let result = finish_faulty(
                                lossy,
                                d.total,
                                d.annotation_bytes,
                                d.granted,
                                d.device,
                                &d.channel,
                                &d.system,
                                d.burst_prefetch,
                            );
                            let _ = self.out.send((self.index, result));
                            return Step::Done;
                        }
                        Err(e) => return self.fail(SessionError::Pipeline(e)),
                    }
                }
                let clock = d.engine.clock_s();
                self.state = FaultyState::Deliver(d);
                Step::Sleep(ticks_from_secs(clock))
            }
            FaultyState::Finished => Step::Done,
        }
    }
}

// ---------------------------------------------------------------------------
// Full-fidelity governed machine.
// ---------------------------------------------------------------------------

struct GovernedDeliver {
    engine: LossyEngine,
    collector: LossyCollector,
    cfg: GovernorSessionConfig,
    config: SessionConfig,
    prep: Option<crate::governor::GovernedPrep>,
}

enum GovernedState {
    Init(Box<GovernorSessionConfig>),
    Deliver(Box<GovernedDeliver>),
    Govern(Box<GovernorDriver>),
    Finished,
}

/// [`crate::governor::run_session_governed`] /
/// [`crate::governor::run_session_governed_faulty`] as a resumable state
/// machine: negotiate/serve and build the plan ladder in the first step,
/// (optionally) pump the hint stream through the seeded lossy channel
/// cooperatively, then govern **one scene per step**, sleeping the
/// playback clock to each scene boundary. The machine drives the same
/// [`GovernorDriver`] the threaded entry points drive, so governor
/// traces are byte-identical across hosts and worker counts by
/// construction — the reactor parity tier pins this.
pub struct GovernedSessionMachine {
    state: GovernedState,
    faulty: bool,
    index: usize,
    out: Sender<(usize, Result<GovernedSessionReport, SessionError>)>,
}

impl GovernedSessionMachine {
    /// A machine that runs `cfg` with the hint stream crossing the
    /// faulty hop in `cfg.session.faults`.
    #[must_use]
    pub fn new(
        cfg: GovernorSessionConfig,
        index: usize,
        out: Sender<(usize, Result<GovernedSessionReport, SessionError>)>,
    ) -> Self {
        Self { state: GovernedState::Init(Box::new(cfg)), faulty: true, index, out }
    }

    /// A machine that runs `cfg` over the lossless reference hop.
    #[must_use]
    pub fn reference(
        cfg: GovernorSessionConfig,
        index: usize,
        out: Sender<(usize, Result<GovernedSessionReport, SessionError>)>,
    ) -> Self {
        Self { state: GovernedState::Init(Box::new(cfg)), faulty: false, index, out }
    }

    fn fail(&mut self, e: SessionError) -> Step {
        let _ = self.out.send((self.index, Err(e)));
        Step::Done
    }
}

impl Task for GovernedSessionMachine {
    fn step(&mut self, _cx: &Context) -> Step {
        match std::mem::replace(&mut self.state, GovernedState::Finished) {
            GovernedState::Init(cfg) => {
                let (stream, prep, config) = match prepare_governed(&cfg) {
                    Ok(parts) => parts,
                    Err(e) => return self.fail(e),
                };
                if self.faulty {
                    let engine =
                        match LossyEngine::new(&stream, &config.channel, &config.faults) {
                            Ok(engine) => engine,
                            Err(e) => return self.fail(SessionError::Pipeline(e)),
                        };
                    let total = stream.as_bytes().len();
                    self.state = GovernedState::Deliver(Box::new(GovernedDeliver {
                        engine,
                        collector: LossyCollector::with_capacity(total),
                        cfg: *cfg,
                        config,
                        prep: Some(prep),
                    }));
                } else {
                    self.state = GovernedState::Govern(Box::new(GovernorDriver::new(
                        prep,
                        &cfg,
                        GovernedFaultInputs::default(),
                    )));
                }
                Step::Yield
            }
            GovernedState::Deliver(mut d) => {
                for _ in 0..PACKETS_PER_STEP {
                    match d.engine.pump() {
                        Ok(Some(copies)) => {
                            for (arrival, wire) in copies {
                                if let Err(e) = d.collector.offer(arrival, &wire) {
                                    return self.fail(SessionError::Pipeline(e));
                                }
                            }
                        }
                        Ok(None) => {
                            let lossy = match d.engine.finish(d.collector) {
                                Ok(lossy) => lossy,
                                Err(e) => return self.fail(SessionError::Pipeline(e)),
                            };
                            let prep = d.prep.take().expect("prep consumed once");
                            self.state = GovernedState::Govern(Box::new(GovernorDriver::new(
                                prep,
                                &d.cfg,
                                governed_fault_inputs(&lossy, &d.config),
                            )));
                            return Step::Yield;
                        }
                        Err(e) => return self.fail(SessionError::Pipeline(e)),
                    }
                }
                let clock = d.engine.clock_s();
                self.state = GovernedState::Deliver(d);
                Step::Sleep(ticks_from_secs(clock))
            }
            GovernedState::Govern(mut driver) => {
                if driver.done() {
                    let _ = self.out.send((self.index, Ok(driver.finish())));
                    return Step::Done;
                }
                if let Err(e) = driver.step_scene() {
                    return self.fail(e);
                }
                let clock = driver.scene_end_s();
                self.state = GovernedState::Govern(driver);
                Step::Sleep(ticks_from_secs(clock))
            }
            GovernedState::Finished => Step::Done,
        }
    }
}

// ---------------------------------------------------------------------------
// Lightweight scale tier.
// ---------------------------------------------------------------------------

/// The shared, immutable part of a fleet of [`ScaleSession`]s: the
/// per-packet wire lengths (hints first, then MTU picture chunks), the
/// hint deadlines, and the annotation schedule for the degradation
/// replay. Built once per stream, shared behind an `Arc` by every
/// session — per-session memory stays a few hundred bytes.
#[derive(Debug)]
pub struct ScaleSpec {
    delta_lens: Vec<usize>,
    picture_lens: Vec<usize>,
    deadlines: Vec<f64>,
    startup_s: f64,
    fps: f64,
    frames: u32,
    /// `(start_frame, backlight level)` per scene, in frame order.
    schedule: Vec<(u32, u8)>,
    link: WirelessChannel,
}

impl ScaleSpec {
    /// Negotiates and serves `config`'s clip once (the same
    /// server-side path the threaded sessions take) and derives the
    /// fleet's shared packet plan from the served stream.
    ///
    /// # Errors
    ///
    /// Propagates negotiation/pipeline failures.
    pub fn negotiate(config: SessionConfig) -> Result<Self, SessionError> {
        let (stream, _, _, _, config) = negotiate_and_serve(config)?;
        Self::from_stream(&stream, &config.channel, config.faults.startup_buffer_s)
            .map_err(SessionError::Pipeline)
    }

    /// Derives the packet plan for delivering `stream` over `link` with
    /// `startup_buffer_s` of client-side buffering.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when the stream or its annotation
    /// track cannot be decoded.
    pub fn from_stream(
        stream: &EncodedStream,
        link: &WirelessChannel,
        startup_buffer_s: f64,
    ) -> Result<Self, String> {
        let dec = Decoder::new(stream).map_err(|e| e.to_string())?;
        let mut track: Option<AnnotationTrack> = None;
        for bytes in dec.user_data() {
            if !annolight_core::extensions::is_dvfs_payload(bytes) && track.is_none() {
                track = Some(AnnotationTrack::from_rle_bytes(bytes).map_err(|e| e.to_string())?);
            }
        }
        let fps = stream.fps().max(f64::EPSILON);
        let startup = link.latency_s + startup_buffer_s;
        let deltas = track.as_ref().map(AnnotationDelta::from_track).unwrap_or_default();
        let deadlines: Vec<f64> =
            deltas.iter().map(|d| startup + f64::from(d.entry.start_frame) / fps).collect();
        let mut seq = 0u32;
        let delta_lens: Vec<usize> = deltas
            .iter()
            .map(|d| {
                let len = StreamPacket::delta(seq, d.to_bytes()).to_wire().len();
                seq += 1;
                len
            })
            .collect();
        let picture_lens: Vec<usize> = stream
            .as_bytes()
            .chunks(link.mtu)
            .map(|c| {
                let len = StreamPacket::picture(seq, c.to_vec()).to_wire().len();
                seq += 1;
                len
            })
            .collect();
        let schedule = track
            .as_ref()
            .map(|t| t.entries().iter().map(|e| (e.start_frame, e.backlight.0)).collect())
            .unwrap_or_default();
        Ok(Self {
            delta_lens,
            picture_lens,
            deadlines,
            startup_s: startup,
            fps,
            frames: stream.frame_count(),
            schedule,
            link: *link,
        })
    }

    /// Packets one session drives (hints + picture chunks).
    #[must_use]
    pub fn packets(&self) -> usize {
        self.delta_lens.len() + self.picture_lens.len()
    }
}

/// What one [`ScaleSession`] reports when it finishes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOutcome {
    /// FNV fold of every arrival time the session observed — the
    /// per-session fingerprint the scale bench aggregates.
    pub digest: u64,
    /// First transmissions offered to the channel.
    pub packets: u64,
    /// First transmissions lost.
    pub dropped: u64,
    /// Link-layer retransmissions spent.
    pub retransmits: u64,
    /// Picture packets that exhausted even the reliable retry budget.
    pub undeliverable: u32,
    /// Frames played without their annotation available.
    pub degraded_frames: u32,
    /// Mean perceived-intensity error of the degradation replay.
    pub perceived_error: f64,
    /// The send clock when the session finished, seconds.
    pub finish_s: f64,
}

/// A playback session small enough to run 10⁵⁺ concurrently: real
/// seeded fault fates from its own [`FaultyChannel`], the shared
/// [`ScaleSpec`] packet plan, arrivals folded into a digest instead of
/// buffered, and the client's hold-then-ramp degradation policy replayed
/// arithmetically over the annotation schedule.
pub struct ScaleSession {
    spec: Arc<ScaleSpec>,
    chan: FaultyChannel,
    degradation: DegradationConfig,
    next: usize,
    arrivals: Vec<Option<f64>>,
    digest: u64,
    undeliverable: u32,
    index: usize,
    out: Sender<(usize, ScaleOutcome)>,
}

impl ScaleSession {
    /// A session driving `spec`'s packet plan through a fresh channel
    /// with the faults in `faults`.
    #[must_use]
    pub fn new(
        spec: Arc<ScaleSpec>,
        faults: FaultConfig,
        index: usize,
        out: Sender<(usize, ScaleOutcome)>,
    ) -> Self {
        let n = spec.delta_lens.len();
        Self {
            chan: FaultyChannel::new(spec.link, faults),
            spec,
            degradation: DegradationConfig::default(),
            next: 0,
            arrivals: vec![None; n],
            digest: 0xcbf2_9ce4_8422_2325,
            undeliverable: 0,
            index,
            out,
        }
    }

    /// The client's graceful-degradation policy
    /// ([`crate::client::PlaybackClient::play_degraded`]) replayed over
    /// the annotation schedule: hold the last annotated level briefly,
    /// then slew toward full backlight, recovering when a hint lands.
    fn replay_degradation(&self) -> (u32, f64) {
        let spec = &self.spec;
        if spec.schedule.is_empty() || spec.frames == 0 {
            return (0, 0.0);
        }
        let mut degraded = 0u32;
        let mut error_sum = 0.0f64;
        let mut last_good: u8 = 255;
        let mut degraded_since: Option<u32> = None;
        let mut missing_seq: Option<usize> = None;
        for frame in 0..spec.frames {
            let now = f64::from(frame) / spec.fps;
            let idx = match spec.schedule.binary_search_by_key(&frame, |e| e.0) {
                Ok(i) => i,
                Err(i) => i.saturating_sub(1),
            };
            let annotated = spec.schedule[idx].1;
            let arrived = self
                .arrivals
                .get(idx)
                .copied()
                .flatten()
                .is_some_and(|a| a <= spec.startup_s + now);
            if arrived {
                last_good = annotated;
                degraded_since = None;
                missing_seq = None;
                continue;
            }
            if missing_seq != Some(idx) {
                missing_seq = Some(idx);
                degraded_since = Some(frame);
            }
            let held = frame - degraded_since.unwrap_or(frame);
            let level = if held < self.degradation.hold_frames {
                last_good
            } else {
                let ramp = u32::from(self.degradation.ramp_step_per_frame)
                    * (held - self.degradation.hold_frames + 1);
                (u32::from(last_good) + ramp).min(255) as u8
            };
            degraded += 1;
            error_sum += f64::from(level.abs_diff(annotated));
        }
        (degraded, error_sum / (255.0 * f64::from(spec.frames)))
    }
}

impl Task for ScaleSession {
    fn step(&mut self, _cx: &Context) -> Step {
        let n_deltas = self.spec.delta_lens.len();
        for _ in 0..PACKETS_PER_STEP {
            if self.next < n_deltas {
                let i = self.next;
                let deadline = self.spec.deadlines[i];
                let len = self.spec.delta_lens[i];
                let fate = self.chan.try_deliver(len, |sent_s| {
                    Some(RetryPolicy::annotation().with_deadline((deadline - sent_s).max(0.0)))
                });
                if let Some(&first) = fate.copies.first() {
                    self.arrivals[i] = Some(first);
                }
                for &a in &fate.copies {
                    self.digest = fnv_fold(self.digest, a.to_bits());
                }
                self.next += 1;
            } else if self.next < self.spec.packets() {
                let len = self.spec.picture_lens[self.next - n_deltas];
                let fate = self.chan.try_deliver(len, |_| Some(RetryPolicy::reliable()));
                if fate.copies.is_empty() {
                    self.undeliverable += 1;
                }
                for &a in &fate.copies {
                    self.digest = fnv_fold(self.digest, a.to_bits());
                }
                self.next += 1;
            } else {
                let (degraded_frames, perceived_error) = self.replay_degradation();
                let digest = fnv_fold(self.digest, u64::from(degraded_frames));
                let stats = self.chan.stats();
                let _ = self.out.send((
                    self.index,
                    ScaleOutcome {
                        digest,
                        packets: stats.packets,
                        dropped: stats.dropped,
                        retransmits: stats.retransmits,
                        undeliverable: self.undeliverable,
                        degraded_frames,
                        perceived_error,
                        finish_s: self.chan.clock_s(),
                    },
                ));
                return Step::Done;
            }
        }
        Step::Sleep(ticks_from_secs(self.chan.clock_s()))
    }
}

// ---------------------------------------------------------------------------
// Reactor runners.
// ---------------------------------------------------------------------------

fn collect_indexed<T>(
    rx: channel::Receiver<(usize, T)>,
    n: usize,
    what: &str,
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    for (index, value) in rx.iter() {
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("{what} session {i} never reported")))
        .collect()
}

/// Runs every config as a [`SessionMachine`] on one reactor; results in
/// spawn order, plus the reactor's schedule report.
#[must_use]
pub fn run_sessions_on_reactor(
    configs: Vec<SessionConfig>,
    reactor_config: ReactorConfig,
) -> (Vec<Result<SessionReport, SessionError>>, ReactorReport) {
    let n = configs.len();
    let (tx, rx) = channel::unbounded();
    let mut reactor = Reactor::with_config(reactor_config);
    for (index, config) in configs.into_iter().enumerate() {
        reactor.spawn(Box::new(SessionMachine::new(config, index, tx.clone())));
    }
    drop(tx);
    let report = reactor.run();
    (collect_indexed(rx, n, "lossless"), report)
}

/// Runs every config as a [`FaultySessionMachine`] on one reactor;
/// results in spawn order, plus the reactor's schedule report.
#[must_use]
pub fn run_faulty_sessions_on_reactor(
    configs: Vec<SessionConfig>,
    reactor_config: ReactorConfig,
) -> (Vec<Result<FaultySessionReport, SessionError>>, ReactorReport) {
    let n = configs.len();
    let (tx, rx) = channel::unbounded();
    let mut reactor = Reactor::with_config(reactor_config);
    for (index, config) in configs.into_iter().enumerate() {
        reactor.spawn(Box::new(FaultySessionMachine::new(config, index, tx.clone())));
    }
    drop(tx);
    let report = reactor.run();
    (collect_indexed(rx, n, "faulty"), report)
}

/// Runs every config as a reference (lossless) [`GovernedSessionMachine`]
/// on one reactor; results in spawn order, plus the reactor's schedule
/// report.
#[must_use]
pub fn run_governed_sessions_on_reactor(
    configs: Vec<GovernorSessionConfig>,
    reactor_config: ReactorConfig,
) -> (Vec<Result<GovernedSessionReport, SessionError>>, ReactorReport) {
    let n = configs.len();
    let (tx, rx) = channel::unbounded();
    let mut reactor = Reactor::with_config(reactor_config);
    for (index, cfg) in configs.into_iter().enumerate() {
        reactor.spawn(Box::new(GovernedSessionMachine::reference(cfg, index, tx.clone())));
    }
    drop(tx);
    let report = reactor.run();
    (collect_indexed(rx, n, "governed"), report)
}

/// Runs every config as a faulty [`GovernedSessionMachine`] on one
/// reactor; results in spawn order, plus the reactor's schedule report.
#[must_use]
pub fn run_governed_faulty_sessions_on_reactor(
    configs: Vec<GovernorSessionConfig>,
    reactor_config: ReactorConfig,
) -> (Vec<Result<GovernedSessionReport, SessionError>>, ReactorReport) {
    let n = configs.len();
    let (tx, rx) = channel::unbounded();
    let mut reactor = Reactor::with_config(reactor_config);
    for (index, cfg) in configs.into_iter().enumerate() {
        reactor.spawn(Box::new(GovernedSessionMachine::new(cfg, index, tx.clone())));
    }
    drop(tx);
    let report = reactor.run();
    (collect_indexed(rx, n, "governed-faulty"), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::run_session;
    use annolight_video::ClipLibrary;

    fn config(seed: u64) -> SessionConfig {
        let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
        let mut cfg = SessionConfig::new(clip, QualityLevel::Q10);
        cfg.faults = FaultConfig::lossless(seed);
        cfg
    }

    #[test]
    fn reactor_session_matches_threaded_reference_byte_for_byte() {
        let threaded = run_session(config(1)).unwrap();
        let (results, _) =
            run_sessions_on_reactor(vec![config(1)], ReactorConfig::default());
        let hosted = results.into_iter().next().unwrap().unwrap();
        assert_eq!(
            annolight_support::json::to_string(&threaded),
            annolight_support::json::to_string(&hosted),
            "reactor-hosted session must reproduce the threaded report exactly"
        );
    }

    #[test]
    fn reactor_faulty_session_matches_threaded_reference() {
        let mut cfg = config(42);
        cfg.faults = FaultConfig::lossy(42, 0.2);
        let threaded = crate::session::run_session_faulty(cfg.clone()).unwrap();
        let (results, _) =
            run_faulty_sessions_on_reactor(vec![cfg], ReactorConfig::default());
        let hosted = results.into_iter().next().unwrap().unwrap();
        assert_eq!(
            annolight_support::json::to_string(&threaded),
            annolight_support::json::to_string(&hosted),
            "reactor-hosted faulty session must reproduce the threaded report exactly"
        );
    }

    #[test]
    fn reactor_governed_session_matches_threaded_reference() {
        let governed = |faults: Option<FaultConfig>| {
            let mut cfg = GovernorSessionConfig::new(config(3), 400.0).with_ambient_seed(3);
            if let Some(f) = faults {
                cfg.session.faults = f;
            }
            cfg
        };
        // Reference hop.
        let threaded = crate::governor::run_session_governed(governed(None)).unwrap();
        let (results, _) =
            run_governed_sessions_on_reactor(vec![governed(None)], ReactorConfig::default());
        let hosted = results.into_iter().next().unwrap().unwrap();
        assert_eq!(
            annolight_support::json::to_string(&threaded),
            annolight_support::json::to_string(&hosted),
            "reactor-hosted governed session must reproduce the threaded report exactly"
        );
        // Faulty hop.
        let faults = Some(FaultConfig::lossy(42, 0.2));
        let threaded =
            crate::governor::run_session_governed_faulty(governed(faults)).unwrap();
        let (results, _) = run_governed_faulty_sessions_on_reactor(
            vec![governed(faults)],
            ReactorConfig::default(),
        );
        let hosted = results.into_iter().next().unwrap().unwrap();
        assert_eq!(
            annolight_support::json::to_string(&threaded),
            annolight_support::json::to_string(&hosted),
            "reactor-hosted faulty governed session must reproduce the threaded report"
        );
    }

    #[test]
    fn scale_sessions_complete_and_replay_deterministically() {
        let (stream, _, _, _, config) = negotiate_and_serve(config(7)).unwrap();
        let spec = Arc::new(
            ScaleSpec::from_stream(&stream, &config.channel, config.faults.startup_buffer_s)
                .unwrap(),
        );
        let run = |seed: u64| {
            let (tx, rx) = channel::unbounded();
            let mut reactor = Reactor::new(seed);
            for i in 0..64usize {
                let faults = if i % 2 == 0 {
                    FaultConfig::bursty(seed ^ i as u64)
                } else {
                    FaultConfig::lossy(seed ^ i as u64, 0.1)
                };
                reactor.spawn(Box::new(ScaleSession::new(
                    Arc::clone(&spec),
                    faults,
                    i,
                    tx.clone(),
                )));
            }
            drop(tx);
            let report = reactor.run();
            (collect_indexed(rx, 64, "scale"), report.digest.value())
        };
        let (a, da) = run(3);
        let (b, db) = run(3);
        assert_eq!(a, b, "same seed must replay identical outcomes");
        assert_eq!(da, db);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|o| o.packets > 0 && o.undeliverable == 0));
        assert!(a.iter().any(|o| o.dropped > 0), "lossy fleet must drop something");
    }
}
