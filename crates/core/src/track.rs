//! The annotation track attached to a video stream.
//!
//! §4.3: "for each scene the required level of backlight is computed and
//! annotated to the video stream. … The annotations are RLE compressed, so
//! the overhead is minimal, in the order of hundreds of bytes for our video
//! clips which are on the order of a few megabytes."
//!
//! A track is a sequence of [`AnnotationEntry`] records, each effective
//! from its `start_frame` until the next entry. The compact wire format is
//! run-length-compressed (adjacent entries with identical levels merge) and
//! delta/varint coded; a JSON sidecar form is provided for inspection.

use crate::error::CoreError;
use crate::plan::BacklightPlan;
use crate::quality::QualityLevel;
use annolight_display::BacklightLevel;

/// Whether the track annotates whole scenes or individual frames.
///
/// §4.3: "Sometimes, better results are obtained if we allow backlight
/// changes for each frame (but it may introduce some flicker)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnnotationMode {
    /// One entry per detected scene (the paper's default).
    #[default]
    PerScene,
    /// One entry per frame (maximum savings, flicker-prone).
    PerFrame,
}

annolight_support::impl_json!(enum AnnotationMode { PerScene, PerFrame });

/// One annotation record: the backlight setting in effect from
/// `start_frame` until the next record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationEntry {
    /// First frame this entry applies to.
    pub start_frame: u32,
    /// Backlight level the client should program.
    pub backlight: BacklightLevel,
    /// Pixel compensation factor `k` (applied server/proxy side).
    pub compensation: f32,
    /// Effective maximum luminance the compensation was derived from.
    pub effective_max_luma: u8,
}

annolight_support::impl_json!(struct AnnotationEntry { start_frame, backlight, compensation, effective_max_luma });

impl AnnotationEntry {
    fn k_fixed(&self) -> u16 {
        // 8.8 fixed point; k is in [1, 255].
        (self.compensation.clamp(0.0, 255.996) * 256.0).round() as u16
    }

    fn from_k_fixed(start_frame: u32, backlight: u8, k: u16, effective: u8) -> Self {
        Self {
            start_frame,
            backlight: BacklightLevel(backlight),
            compensation: f32::from(k) / 256.0,
            effective_max_luma: effective,
        }
    }

    fn same_levels(&self, other: &AnnotationEntry) -> bool {
        self.backlight == other.backlight
            && self.k_fixed() == other.k_fixed()
            && self.effective_max_luma == other.effective_max_luma
    }
}

/// A complete annotation track for one clip on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationTrack {
    device_name: String,
    quality: QualityLevel,
    mode: AnnotationMode,
    fps: f64,
    frame_count: u32,
    entries: Vec<AnnotationEntry>,
}

annolight_support::impl_json!(struct AnnotationTrack { device_name, quality, mode, fps, frame_count, entries });

const MAGIC: &[u8; 4] = b"ALT1";

impl AnnotationTrack {
    /// Builds a track from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedTrack`] when `entries` is empty, does
    /// not start at frame 0, or is not strictly increasing in
    /// `start_frame`.
    pub fn new(
        device_name: impl Into<String>,
        quality: QualityLevel,
        mode: AnnotationMode,
        fps: f64,
        frame_count: u32,
        entries: Vec<AnnotationEntry>,
    ) -> Result<Self, CoreError> {
        if entries.is_empty() {
            return Err(CoreError::MalformedTrack { reason: "no entries".into() });
        }
        if entries[0].start_frame != 0 {
            return Err(CoreError::MalformedTrack {
                reason: format!("first entry starts at frame {}", entries[0].start_frame),
            });
        }
        for w in entries.windows(2) {
            if w[1].start_frame <= w[0].start_frame {
                return Err(CoreError::MalformedTrack {
                    reason: "entries not strictly increasing".into(),
                });
            }
        }
        if let Some(last) = entries.last() {
            if last.start_frame >= frame_count {
                return Err(CoreError::MalformedTrack {
                    reason: format!(
                        "last entry starts at {} but clip has {} frames",
                        last.start_frame, frame_count
                    ),
                });
            }
        }
        Ok(Self {
            device_name: device_name.into(),
            quality,
            mode,
            fps,
            frame_count,
            entries,
        })
    }

    /// Builds the track for a computed [`BacklightPlan`].
    pub fn from_plan(plan: &BacklightPlan, mode: AnnotationMode, frame_count: u32) -> Self {
        let entries = plan
            .scenes()
            .iter()
            .map(|s| AnnotationEntry {
                start_frame: s.span.start,
                backlight: s.backlight,
                compensation: s.compensation,
                effective_max_luma: s.effective_max_luma,
            })
            .collect();
        Self::new(plan.device_name().to_owned(), plan.quality(), mode, plan.fps(), frame_count, entries)
            .expect("plans always produce well-formed tracks")
    }

    /// Device the track was computed for.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// Quality level of the track.
    pub fn quality(&self) -> QualityLevel {
        self.quality
    }

    /// Per-scene or per-frame mode.
    pub fn mode(&self) -> AnnotationMode {
        self.mode
    }

    /// Frame rate of the annotated stream.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of frames the track covers.
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// The annotation entries in playback order.
    pub fn entries(&self) -> &[AnnotationEntry] {
        &self.entries
    }

    /// The entry in effect at `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameOutOfRange`] past the end of the track.
    pub fn entry_at(&self, frame: u32) -> Result<&AnnotationEntry, CoreError> {
        if frame >= self.frame_count {
            return Err(CoreError::FrameOutOfRange { frame, frames: self.frame_count });
        }
        let idx = match self.entries.binary_search_by_key(&frame, |e| e.start_frame) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Ok(&self.entries[idx])
    }

    /// Returns a copy with adjacent entries carrying identical levels
    /// merged (the RLE canonical form).
    pub fn canonicalized(&self) -> AnnotationTrack {
        let mut out: Vec<AnnotationEntry> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            match out.last() {
                Some(last) if last.same_levels(e) => {}
                _ => out.push(*e),
            }
        }
        AnnotationTrack { entries: out, ..self.clone() }
    }

    /// Serialises the track to the compact RLE wire format carried inside
    /// the video stream. Adjacent identical levels are merged first, then
    /// frame starts are delta/varint coded.
    ///
    /// ```
    /// use annolight_core::track::{AnnotationEntry, AnnotationMode, AnnotationTrack};
    /// use annolight_core::QualityLevel;
    /// use annolight_display::BacklightLevel;
    ///
    /// let track = AnnotationTrack::new(
    ///     "ipaq-5555", QualityLevel::Q10, AnnotationMode::PerScene, 12.0, 100,
    ///     vec![AnnotationEntry {
    ///         start_frame: 0,
    ///         backlight: BacklightLevel(90),
    ///         compensation: 1.9,
    ///         effective_max_luma: 135,
    ///     }],
    /// )?;
    /// let wire = track.to_rle_bytes();
    /// let back = AnnotationTrack::from_rle_bytes(&wire)?;
    /// assert_eq!(back.entries().len(), 1);
    /// # Ok::<(), annolight_core::CoreError>(())
    /// ```
    pub fn to_rle_bytes(&self) -> Vec<u8> {
        let canon = self.canonicalized();
        let mut out = Vec::with_capacity(16 + canon.entries.len() * 6);
        out.extend_from_slice(MAGIC);
        let name = canon.device_name.as_bytes();
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        let qx100 = (canon.quality.clip_fraction() * 10_000.0).round() as u16;
        out.extend_from_slice(&qx100.to_le_bytes());
        out.push(match canon.mode {
            AnnotationMode::PerScene => 0,
            AnnotationMode::PerFrame => 1,
        });
        out.extend_from_slice(&((canon.fps * 1000.0).round() as u32).to_le_bytes());
        out.extend_from_slice(&canon.frame_count.to_le_bytes());
        write_varint(&mut out, canon.entries.len() as u64);
        let mut prev = 0u32;
        for e in &canon.entries {
            write_varint(&mut out, u64::from(e.start_frame - prev));
            prev = e.start_frame;
            out.push(e.backlight.0);
            out.extend_from_slice(&e.k_fixed().to_le_bytes());
            out.push(e.effective_max_luma);
        }
        out
    }

    /// Parses the compact wire format produced by
    /// [`AnnotationTrack::to_rle_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedTrack`] for any truncated or
    /// inconsistent input.
    pub fn from_rle_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(CoreError::MalformedTrack { reason: "bad magic".into() });
        }
        let name_len = r.u8()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CoreError::MalformedTrack { reason: "device name not UTF-8".into() })?
            .to_owned();
        let qx100 = r.u16()?;
        let quality = match qx100 {
            0 => QualityLevel::Q0,
            500 => QualityLevel::Q5,
            1000 => QualityLevel::Q10,
            1500 => QualityLevel::Q15,
            2000 => QualityLevel::Q20,
            q => QualityLevel::Custom(f64::from(q) / 10_000.0),
        };
        let mode = match r.u8()? {
            0 => AnnotationMode::PerScene,
            1 => AnnotationMode::PerFrame,
            m => {
                return Err(CoreError::MalformedTrack { reason: format!("unknown mode byte {m}") })
            }
        };
        let fps = f64::from(r.u32()?) / 1000.0;
        let frame_count = r.u32()?;
        let entry_count = r.varint()? as usize;
        let mut entries = Vec::with_capacity(entry_count.min(1 << 20));
        let mut frame = 0u32;
        for i in 0..entry_count {
            let delta = r.varint()? as u32;
            if i > 0 && delta == 0 {
                return Err(CoreError::MalformedTrack { reason: "zero frame delta".into() });
            }
            frame += delta;
            let backlight = r.u8()?;
            let k = r.u16()?;
            let eff = r.u8()?;
            entries.push(AnnotationEntry::from_k_fixed(frame, backlight, k, eff));
        }
        Self::new(name, quality, mode, fps, frame_count, entries)
    }

    /// Serialises the track as a human-readable JSON sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedTrack`] if serialisation fails (it
    /// cannot for well-formed tracks).
    pub fn to_json(&self) -> Result<String, CoreError> {
        Ok(annolight_support::json::to_string_pretty(self))
    }

    /// Parses the JSON sidecar form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedTrack`] for invalid JSON.
    pub fn from_json(json: &str) -> Result<Self, CoreError> {
        annolight_support::json::from_str(json).map_err(|e| CoreError::MalformedTrack { reason: e.to_string() })
    }

    /// Size of the compact wire form in bytes (the per-clip overhead the
    /// paper reports as "hundreds of bytes").
    pub fn overhead_bytes(&self) -> usize {
        self.to_rle_bytes().len()
    }

    /// Resident in-memory size of this track in bytes: the struct itself
    /// plus its heap allocations (device-name string and entry vector).
    ///
    /// This is the byte-budget unit of the serving tier's annotation
    /// cache: evicting a track frees exactly this much, so a cache's
    /// accounted total must always equal the sum of `resident_bytes()`
    /// over its resident entries (a property the serve crate tests).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.device_name.capacity()
            + self.entries.capacity() * std::mem::size_of::<AnnotationEntry>()
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(CoreError::MalformedTrack { reason: "unexpected end of input".into() });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CoreError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn varint(&mut self) -> Result<u64, CoreError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(CoreError::MalformedTrack { reason: "varint overflow".into() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u32, backlight: u8, k: f32, eff: u8) -> AnnotationEntry {
        AnnotationEntry {
            start_frame: start,
            backlight: BacklightLevel(backlight),
            compensation: k,
            effective_max_luma: eff,
        }
    }

    fn demo_track() -> AnnotationTrack {
        AnnotationTrack::new(
            "ipaq-5555",
            QualityLevel::Q10,
            AnnotationMode::PerScene,
            12.0,
            100,
            vec![
                entry(0, 120, 1.5, 170),
                entry(30, 200, 1.1, 230),
                entry(60, 120, 1.5, 170),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_entries() {
        let e = AnnotationTrack::new("d", QualityLevel::Q0, AnnotationMode::PerScene, 10.0, 5, vec![]);
        assert!(matches!(e, Err(CoreError::MalformedTrack { .. })));
    }

    #[test]
    fn rejects_nonzero_start() {
        let e = AnnotationTrack::new(
            "d",
            QualityLevel::Q0,
            AnnotationMode::PerScene,
            10.0,
            5,
            vec![entry(1, 10, 1.0, 10)],
        );
        assert!(matches!(e, Err(CoreError::MalformedTrack { .. })));
    }

    #[test]
    fn rejects_non_increasing() {
        let e = AnnotationTrack::new(
            "d",
            QualityLevel::Q0,
            AnnotationMode::PerScene,
            10.0,
            50,
            vec![entry(0, 10, 1.0, 10), entry(10, 20, 1.0, 20), entry(10, 30, 1.0, 30)],
        );
        assert!(matches!(e, Err(CoreError::MalformedTrack { .. })));
    }

    #[test]
    fn rejects_entry_past_frame_count() {
        let e = AnnotationTrack::new(
            "d",
            QualityLevel::Q0,
            AnnotationMode::PerScene,
            10.0,
            5,
            vec![entry(0, 10, 1.0, 10), entry(7, 20, 1.0, 20)],
        );
        assert!(matches!(e, Err(CoreError::MalformedTrack { .. })));
    }

    #[test]
    fn entry_at_selects_correct_scene() {
        let t = demo_track();
        assert_eq!(t.entry_at(0).unwrap().backlight, BacklightLevel(120));
        assert_eq!(t.entry_at(29).unwrap().backlight, BacklightLevel(120));
        assert_eq!(t.entry_at(30).unwrap().backlight, BacklightLevel(200));
        assert_eq!(t.entry_at(99).unwrap().backlight, BacklightLevel(120));
        assert!(matches!(t.entry_at(100), Err(CoreError::FrameOutOfRange { .. })));
    }

    #[test]
    fn rle_roundtrip_exact() {
        let t = demo_track();
        let bytes = t.to_rle_bytes();
        let back = AnnotationTrack::from_rle_bytes(&bytes).unwrap();
        assert_eq!(back.device_name(), "ipaq-5555");
        assert_eq!(back.quality(), QualityLevel::Q10);
        assert_eq!(back.mode(), AnnotationMode::PerScene);
        assert_eq!(back.frame_count(), 100);
        assert_eq!(back.entries().len(), 3);
        for (a, b) in t.entries().iter().zip(back.entries()) {
            assert_eq!(a.start_frame, b.start_frame);
            assert_eq!(a.backlight, b.backlight);
            assert_eq!(a.effective_max_luma, b.effective_max_luma);
            assert!((a.compensation - b.compensation).abs() < 1.0 / 256.0);
        }
    }

    #[test]
    fn rle_merges_identical_runs() {
        // A per-frame track where every frame has the same level collapses
        // to one entry on the wire.
        let entries: Vec<AnnotationEntry> = (0..50).map(|i| entry(i, 99, 1.25, 200)).collect();
        let t = AnnotationTrack::new(
            "d",
            QualityLevel::Q5,
            AnnotationMode::PerFrame,
            12.0,
            50,
            entries,
        )
        .unwrap();
        let canon = t.canonicalized();
        assert_eq!(canon.entries().len(), 1);
        let back = AnnotationTrack::from_rle_bytes(&t.to_rle_bytes()).unwrap();
        assert_eq!(back.entries().len(), 1);
        // The level sequence is preserved exactly.
        for f in 0..50 {
            assert_eq!(back.entry_at(f).unwrap().backlight, BacklightLevel(99));
        }
    }

    #[test]
    fn overhead_is_hundreds_of_bytes_for_long_tracks() {
        // 60 scenes (a 3-minute clip) — the paper's "hundreds of bytes".
        let entries: Vec<AnnotationEntry> =
            (0..60).map(|i| entry(i * 36, (i * 4 % 250) as u8, 1.3, 180)).collect();
        let t = AnnotationTrack::new(
            "ipaq-5555",
            QualityLevel::Q10,
            AnnotationMode::PerScene,
            12.0,
            60 * 36,
            entries,
        )
        .unwrap();
        let n = t.overhead_bytes();
        assert!(n < 600, "overhead {n} bytes");
        assert!(n > 60, "suspiciously small: {n} bytes");
    }

    #[test]
    fn json_roundtrip() {
        let t = demo_track();
        let json = t.to_json().unwrap();
        let back = AnnotationTrack::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(AnnotationTrack::from_rle_bytes(b"").is_err());
        assert!(AnnotationTrack::from_rle_bytes(b"XXXX").is_err());
        let mut bytes = demo_track().to_rle_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(AnnotationTrack::from_rle_bytes(&bytes).is_err());
    }

    #[test]
    fn resident_bytes_tracks_entry_count() {
        let t = demo_track();
        let n = t.resident_bytes();
        assert!(n >= std::mem::size_of::<AnnotationTrack>() + 3 * std::mem::size_of::<AnnotationEntry>());
        // A longer track occupies strictly more memory.
        let entries: Vec<AnnotationEntry> =
            (0..64).map(|i| entry(i * 2, (i % 250) as u8, 1.2, 150)).collect();
        let long = AnnotationTrack::new(
            "ipaq-5555",
            QualityLevel::Q10,
            AnnotationMode::PerScene,
            12.0,
            200,
            entries,
        )
        .unwrap();
        assert!(long.resident_bytes() > n);
    }

    #[test]
    fn custom_quality_survives_wire() {
        let t = AnnotationTrack::new(
            "d",
            QualityLevel::Custom(0.125),
            AnnotationMode::PerScene,
            10.0,
            10,
            vec![entry(0, 50, 2.0, 128)],
        )
        .unwrap();
        let back = AnnotationTrack::from_rle_bytes(&t.to_rle_bytes()).unwrap();
        assert!((back.quality().clip_fraction() - 0.125).abs() < 1e-4);
    }
}
