//! # annolight-core — the DATE 2006 contribution
//!
//! Annotation-driven LCD backlight scaling for multimedia streaming
//! (Cornea, Nicolau, Dutt — *Software Annotations for Power Optimization on
//! Mobile Devices*, DATE 2006).
//!
//! The pipeline implemented here matches §4 of the paper:
//!
//! 1. **Profile** ([`profile`]) — analyse the stream offline (at the server
//!    or proxy): per-frame maximum luminance and luminance histograms.
//! 2. **Detect scenes** ([`scenes`]) — group frames into scenes using the
//!    paper's heuristic: a ≥10 % change in frame maximum luminance is a
//!    scene change, but no more often than a guard interval.
//! 3. **Plan** ([`plan`]) — per scene, pick the *effective* maximum
//!    luminance allowed by the user's [`QualityLevel`] (the brightest
//!    0/5/10/15/20 % of pixels may clip), derive the compensation factor
//!    `k = L/L'` and invert the device's backlight→luminance transfer to
//!    get the backlight level.
//! 4. **Annotate** ([`track`], [`annotate`]) — attach the per-scene
//!    backlight levels to the stream as an RLE-compressed annotation track
//!    ("hundreds of bytes for clips of a few megabytes").
//! 5. **Apply** ([`apply`]) — server/proxy side: compensate the frames;
//!    client side: a multiplication and a table look-up per scene change.
//!
//! # Example
//!
//! ```
//! use annolight_core::{Annotator, QualityLevel};
//! use annolight_display::DeviceProfile;
//! use annolight_video::ClipLibrary;
//!
//! let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(8.0);
//! let device = DeviceProfile::ipaq_5555();
//! let annotator = Annotator::new(device.clone(), QualityLevel::Q10);
//! let annotated = annotator.annotate_clip(&clip).unwrap();
//!
//! // The annotation track is tiny relative to the stream it describes...
//! assert!(annotated.track().to_rle_bytes().len() < 1000);
//! // ...and predicts a real backlight power saving on dark content.
//! assert!(annotated.predicted_backlight_savings(&device) > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod apply;
pub mod delta;
pub mod digest;
pub mod error;
pub mod extensions;
pub mod governor;
pub mod online;
pub mod parallel;
pub mod plan;
pub mod policy;
pub mod profile;
pub mod quality;
pub mod roi;
pub mod scenes;
pub mod track;

pub use annotate::{AnnotatedClip, Annotator};
pub use delta::{AnnotationDelta, DeltaStatus, DeltaTracker};
pub use apply::{apply_annotation, client_side_levels, compensate_frame};
pub use digest::clip_digest;
pub use error::CoreError;
pub use governor::{
    fit_knob, trace_digest, GovernorAction, GovernorControl, GovernorDecision, GovernorEvent,
    GovernorFeedback, KnobSearch, QualityGovernor, ThermalModel, ThermalState,
};
pub use online::OnlineAnnotator;
pub use parallel::{
    chunk_ranges, chunked_map, compensate_frames_batched, profile_frames_batched, ParallelConfig,
};
pub use plan::{plan_levels_ambient, BacklightPlan, ScenePlan};
pub use policy::{
    hebs_levels, AnnotationPolicy, HebsRemapSet, PolicyKind, ResolutionCost, ResolutionDecision,
    SPATIAL_MARGIN,
};
pub use profile::{FrameStats, LuminanceProfile};
pub use quality::QualityLevel;
pub use roi::{plan_scene_with_roi, Rect, RegionOfInterest};
pub use scenes::{SceneDetector, SceneDetectorConfig, SceneSpan};
pub use track::{AnnotationEntry, AnnotationMode, AnnotationTrack};
