//! Per-scene backlight planning (§4.1 + §4.3).
//!
//! For each detected scene the planner computes:
//!
//! * the **effective maximum luminance** — the histogram level below which
//!   the scene's pixels lie once the quality level's clipping budget is
//!   spent on the brightest pixels (Fig. 5);
//! * the **backlight luminance ratio** `L'/L` needed so that the
//!   compensated effective-max pixel is perceived exactly as before
//!   (`I = ρ·L·Y` kept constant);
//! * the **compensation factor** `k` applied to the pixel values
//!   (`C' = min(1, C·k)`); and
//! * the discrete **backlight level** obtained by inverting the device's
//!   measured transfer function ("the resulted value is later plugged into
//!   the backlight-luminance function").

use crate::parallel::{chunked_map, ParallelConfig};
use crate::profile::LuminanceProfile;
use crate::quality::QualityLevel;
use crate::scenes::SceneSpan;
use annolight_display::{BacklightLevel, DeviceProfile};

/// The plan for one scene.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenePlan {
    /// Frame range of the scene.
    pub span: SceneSpan,
    /// Scene maximum luminance before clipping.
    pub raw_max_luma: u8,
    /// Effective maximum luminance after spending the clipping budget.
    pub effective_max_luma: u8,
    /// Fraction of scene pixels that will clip at this level.
    pub clipped_fraction: f64,
    /// Pixel-domain compensation factor `k ≥ 1`.
    pub compensation: f32,
    /// Backlight level for the device this plan targets.
    pub backlight: BacklightLevel,
    /// Fractional backlight power saving vs. full backlight for this scene.
    pub power_savings: f64,
}

annolight_support::impl_json!(struct ScenePlan { span, raw_max_luma, effective_max_luma, clipped_fraction, compensation, backlight, power_savings });

/// A complete per-scene plan for one clip on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct BacklightPlan {
    device_name: String,
    quality: QualityLevel,
    fps: f64,
    scenes: Vec<ScenePlan>,
}

annolight_support::impl_json!(struct BacklightPlan { device_name, quality, fps, scenes });

impl BacklightPlan {
    /// Plans every scene of `profile` (split as `spans`) for `device` at
    /// `quality`.
    ///
    /// # Panics
    ///
    /// Panics if `spans` is empty or does not lie within the profile.
    pub fn compute(
        profile: &LuminanceProfile,
        spans: &[SceneSpan],
        device: &DeviceProfile,
        quality: QualityLevel,
    ) -> Self {
        Self::compute_parallel(profile, spans, device, quality, &ParallelConfig::serial())
    }

    /// [`compute`](Self::compute) with scene planning fanned out over a
    /// scoped worker pool.
    ///
    /// Each scene plan depends only on the (immutable) profile, so the
    /// spans are chunked and planned concurrently, then reassembled in
    /// span order. The output is byte-identical to the serial path for
    /// every worker count — `cfg.workers == 0` *is* the serial path.
    ///
    /// # Panics
    ///
    /// Panics if `spans` is empty or does not lie within the profile.
    pub fn compute_parallel(
        profile: &LuminanceProfile,
        spans: &[SceneSpan],
        device: &DeviceProfile,
        quality: QualityLevel,
        cfg: &ParallelConfig,
    ) -> Self {
        Self::compute_policy(profile, spans, device, quality, crate::policy::PolicyKind::PeakClip, cfg)
    }

    /// [`compute_parallel`](Self::compute_parallel) with the scene planner
    /// dispatched through an [`AnnotationPolicy`](crate::policy::AnnotationPolicy)
    /// backend. `PolicyKind::PeakClip` reproduces the legacy planner
    /// byte-for-byte (it *is* the extracted legacy scene kernel); other
    /// backends substitute their own per-scene levels while keeping the
    /// same chunked fan-out, so every policy is byte-identical across
    /// worker counts.
    ///
    /// # Panics
    ///
    /// Panics if `spans` is empty or does not lie within the profile.
    pub fn compute_policy(
        profile: &LuminanceProfile,
        spans: &[SceneSpan],
        device: &DeviceProfile,
        quality: QualityLevel,
        policy: crate::policy::PolicyKind,
        cfg: &ParallelConfig,
    ) -> Self {
        assert!(!spans.is_empty(), "cannot plan zero scenes");
        let backend = policy.policy();
        let chunks = chunked_map(spans.len(), cfg, |range| {
            spans[range]
                .iter()
                .map(|&span| backend.plan_scene(profile, span, device, quality))
                .collect::<Vec<_>>()
        });
        let scenes = chunks.into_iter().flatten().collect();
        Self {
            device_name: device.name().to_owned(),
            quality,
            fps: profile.fps(),
            scenes,
        }
    }

    /// Name of the device the plan targets.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// The quality level the plan was computed for.
    pub fn quality(&self) -> QualityLevel {
        self.quality
    }

    /// Frame rate of the underlying profile.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// The per-scene plans, in playback order.
    pub fn scenes(&self) -> &[ScenePlan] {
        &self.scenes
    }

    /// Replaces the per-scene plans (used by the credits guard, which
    /// re-plans individual scenes at a capped quality).
    pub(crate) fn replace_scenes(&mut self, scenes: Vec<ScenePlan>) {
        assert_eq!(scenes.len(), self.scenes.len(), "scene count must be preserved");
        self.scenes = scenes;
    }

    /// Duration-weighted mean backlight power saving over the whole clip —
    /// the per-clip quantity plotted in Fig. 9.
    pub fn mean_backlight_savings(&self) -> f64 {
        let total: u32 = self.scenes.iter().map(|s| s.span.len()).sum();
        if total == 0 {
            return 0.0;
        }
        self.scenes
            .iter()
            .map(|s| s.power_savings * f64::from(s.span.len()))
            .sum::<f64>()
            / f64::from(total)
    }

    /// Duration-weighted mean clipped-pixel fraction (the realised quality
    /// degradation; always ≤ the requested quality level).
    pub fn mean_clipped_fraction(&self) -> f64 {
        let total: u32 = self.scenes.iter().map(|s| s.span.len()).sum();
        if total == 0 {
            return 0.0;
        }
        self.scenes
            .iter()
            .map(|s| s.clipped_fraction * f64::from(s.span.len()))
            .sum::<f64>()
            / f64::from(total)
    }
}

/// The paper's peak-clipping scene planner, extracted verbatim from the
/// pre-policy `BacklightPlan` so the `PeakClip` backend is the
/// byte-identity reference: merged histogram → clip-budget effective
/// maximum → [`plan_levels`] → backlight power saving.
pub(crate) fn peak_clip_scene(
    profile: &LuminanceProfile,
    span: SceneSpan,
    device: &DeviceProfile,
    quality: QualityLevel,
) -> ScenePlan {
    let hist = profile.merged_histogram(span.start, span.end);
    let raw_max = hist.max_nonzero().unwrap_or(0);
    let effective = hist.clip_level(quality.clip_fraction());
    let clipped_fraction = hist.fraction_above(effective);
    let (k, backlight) = plan_levels(device, effective);
    let power_savings = device.backlight_power().savings_vs_full(backlight);
    ScenePlan {
        span,
        raw_max_luma: raw_max,
        effective_max_luma: effective,
        clipped_fraction,
        compensation: k,
        backlight,
        power_savings,
    }
}

/// Computes the `(compensation factor, backlight level)` pair that lets a
/// scene with effective maximum luminance `effective_max` be displayed
/// with unchanged perceived intensity.
///
/// The compensation stretches `effective_max` to full scale
/// (`k = 255 / effective_max`, the paper's `k = L/L'` expressed in the
/// pixel domain), and the backlight is dimmed so the *transmitted*
/// luminance of a full-scale pixel equals what `effective_max` produced at
/// full backlight: `L' = (effective_max/255)^γ` with `γ` the panel's white
/// response gamma, then inverted through the device transfer function.
pub fn plan_levels(device: &DeviceProfile, effective_max: u8) -> (f32, BacklightLevel) {
    if effective_max == 0 {
        // A black scene: any backlight level works; use the minimum.
        return (1.0, BacklightLevel::MIN);
    }
    let gamma = device.panel().white_gamma();
    let y = f64::from(effective_max) / 255.0;
    let target_luminance = y.powf(gamma);
    let backlight = device.transfer().level_for_luminance(target_luminance);
    // Compensate in the pixel domain against the *achieved* luminance (the
    // discrete level may slightly overshoot the target, needing less k).
    let achieved = device.transfer().luminance(backlight).max(f64::EPSILON);
    let k = (1.0 / achieved).powf(1.0 / gamma) as f32;
    (k.max(1.0), backlight)
}

/// Ambient-aware variant of [`plan_levels`]: on reflective/transflective
/// panels part of the perceived intensity comes from reflected ambient
/// light, which does not dim with the backlight. The preserved-intensity
/// equation `K·(ρ·L' + a·r) = ρ·L_max + a·r` (with `K = k^γ` the applied
/// luminance gain) then admits a *lower* `L'` than the dark-room plan —
/// outdoors, the same scene needs even less backlight.
///
/// `ambient` is the relative ambient illumination in `[0, 1]` (0 recovers
/// [`plan_levels`]' backlight level exactly; the compensation factor is
/// the ideal `255/effective_max` rather than the achieved-level-adjusted
/// one).
///
/// # Panics
///
/// Panics if `ambient` is outside `[0, 1]`.
pub fn plan_levels_ambient(
    device: &DeviceProfile,
    effective_max: u8,
    ambient: f64,
) -> (f32, BacklightLevel) {
    assert!((0.0..=1.0).contains(&ambient), "ambient {ambient} outside [0, 1]");
    if effective_max == 0 {
        return (1.0, BacklightLevel::MIN);
    }
    let gamma = device.panel().white_gamma();
    let rho = device.panel().transmittance();
    let reflect = device.panel().ambient_reflectance() * ambient;
    // Full compensation stretches the effective max to full scale.
    let k = 255.0 / f64::from(effective_max);
    let big_k = k.powf(gamma);
    let l_max = device.transfer().luminance(BacklightLevel::MAX);
    // Solve K·(ρ·L' + a·r) = ρ·L_max + a·r for L'.
    let l_target = ((rho * l_max + reflect) / big_k - reflect) / rho;
    let backlight = device.transfer().level_for_luminance(l_target.max(0.0));
    (k as f32, backlight)
}

/// The brightness-compensation delta for a scene (§4.1's alternative
/// operator, `C' = min(1, C + δC)`): the constant that stretches the
/// effective maximum to full scale.
pub fn brightness_delta(effective_max: u8) -> u8 {
    255 - effective_max
}

/// Mean perceived-intensity error (relative, over a gray ramp up to the
/// effective max) that a compensation operator leaves after dimming.
///
/// Contrast enhancement preserves `ρ·L·Y` exactly for every unclipped
/// pixel; brightness compensation only matches at the effective max and
/// over-brightens everything darker — this function quantifies that,
/// supporting the paper's choice ("We use this method in our work").
pub fn operator_distortion(
    device: &DeviceProfile,
    effective_max: u8,
    kind: annolight_imgproc::CompensationKind,
) -> f64 {
    use annolight_imgproc::CompensationKind;
    if effective_max == 0 {
        return 0.0;
    }
    let gamma = device.panel().white_gamma();
    let (k, level) = plan_levels(device, effective_max);
    let delta = brightness_delta(effective_max);
    let l_full = device.transfer().luminance(annolight_display::BacklightLevel::MAX);
    let l_dim = device.transfer().luminance(level);
    let mut err = 0.0;
    let mut count = 0u32;
    for c in 1..=effective_max {
        let compensated = match kind {
            CompensationKind::ContrastEnhancement => (f64::from(c) * f64::from(k)).min(255.0),
            CompensationKind::BrightnessCompensation => f64::from(c.saturating_add(delta)),
        };
        let original = l_full * (f64::from(c) / 255.0).powf(gamma);
        let dimmed = l_dim * (compensated / 255.0).powf(gamma);
        err += (dimmed - original).abs() / original.max(1e-9);
        count += 1;
    }
    err / f64::from(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::SceneDetector;
    use annolight_imgproc::{CompensationKind, Frame, Rgb8};

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    fn dark_profile() -> LuminanceProfile {
        // 30 frames: dark 40-gray with one 250 highlight pixel each.
        let frames: Vec<Frame> = (0..30)
            .map(|_| {
                let mut f = Frame::filled(10, 10, Rgb8::gray(40));
                f.set_pixel(0, 0, Rgb8::gray(250));
                f
            })
            .collect();
        LuminanceProfile::of_frames(10.0, frames).unwrap()
    }

    #[test]
    fn lossless_plan_keeps_raw_max() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let plan = BacklightPlan::compute(&p, &spans, &device(), QualityLevel::Q0);
        let s = &plan.scenes()[0];
        assert_eq!(s.raw_max_luma, 250);
        assert_eq!(s.effective_max_luma, 250);
        assert_eq!(s.clipped_fraction, 0.0);
    }

    #[test]
    fn clipping_collapses_dark_scene() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let q0 = BacklightPlan::compute(&p, &spans, &device(), QualityLevel::Q0);
        let q5 = BacklightPlan::compute(&p, &spans, &device(), QualityLevel::Q5);
        // 1% of pixels are highlights; a 5% budget eats them all.
        assert_eq!(q5.scenes()[0].effective_max_luma, 40);
        assert!(q5.mean_backlight_savings() > q0.mean_backlight_savings() + 0.2);
    }

    #[test]
    fn clipped_fraction_never_exceeds_budget() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        for q in QualityLevel::PAPER_LEVELS {
            let plan = BacklightPlan::compute(&p, &spans, &device(), q);
            for s in plan.scenes() {
                assert!(
                    s.clipped_fraction <= q.clip_fraction() + 1e-12,
                    "{q:?}: {s:?}"
                );
            }
        }
    }

    #[test]
    fn savings_monotone_in_quality() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let mut last = -1.0;
        for q in QualityLevel::PAPER_LEVELS {
            let s = BacklightPlan::compute(&p, &spans, &device(), q).mean_backlight_savings();
            assert!(s + 1e-12 >= last, "savings should not decrease with quality loss");
            last = s;
        }
    }

    #[test]
    fn plan_levels_full_scale_scene_saves_nothing() {
        let (k, b) = plan_levels(&device(), 255);
        assert_eq!(b, BacklightLevel::MAX);
        assert!((k - 1.0).abs() < 1e-5);
    }

    #[test]
    fn plan_levels_black_scene() {
        let (k, b) = plan_levels(&device(), 0);
        assert_eq!(b, BacklightLevel::MIN);
        assert!((k - 1.0).abs() < 1e-6);
    }

    #[test]
    fn plan_levels_perception_identity() {
        // For the effective-max pixel the compensated render at the dimmed
        // backlight must match the original render at full backlight.
        let dev = device();
        for effective in [32u8, 64, 100, 180, 240] {
            let (k, b) = plan_levels(&dev, effective);
            let gamma = dev.panel().white_gamma();
            let original =
                dev.transfer().luminance(BacklightLevel::MAX) * (f64::from(effective) / 255.0).powf(gamma);
            let compensated_pixel = (f64::from(effective) * f64::from(k)).min(255.0);
            let dimmed = dev.transfer().luminance(b) * (compensated_pixel / 255.0).powf(gamma);
            assert!(
                (original - dimmed).abs() < 0.02,
                "effective {effective}: original {original:.4} vs dimmed {dimmed:.4}"
            );
        }
    }

    #[test]
    fn compensation_at_least_one() {
        for e in 1..=255u8 {
            let (k, _) = plan_levels(&device(), e);
            assert!(k >= 1.0, "k {k} < 1 for effective {e}");
        }
    }

    #[test]
    fn ambient_zero_matches_dark_room_plan() {
        for dev in DeviceProfile::paper_devices() {
            for eff in [40u8, 100, 180, 240] {
                let (_, dark) = plan_levels(&dev, eff);
                let (_, amb0) = plan_levels_ambient(&dev, eff, 0.0);
                assert_eq!(dark, amb0, "{} at {eff}", dev.name());
            }
        }
    }

    #[test]
    fn ambient_light_allows_dimmer_backlight() {
        // Transflective/reflective panels: reflected sunlight carries part
        // of the perceived intensity, so the backlight can drop further.
        for dev in DeviceProfile::paper_devices() {
            let (_, dark) = plan_levels_ambient(&dev, 150, 0.0);
            let (_, sunny) = plan_levels_ambient(&dev, 150, 0.8);
            assert!(
                sunny < dark,
                "{}: sunny {sunny} should be dimmer than dark {dark}",
                dev.name()
            );
        }
    }

    #[test]
    fn ambient_savings_monotone_in_ambient() {
        let dev = device();
        let mut last = BacklightLevel::MAX;
        for a in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let (_, level) = plan_levels_ambient(&dev, 160, a);
            assert!(level <= last, "ambient {a}");
            last = level;
        }
    }

    #[test]
    fn ambient_black_scene_is_min() {
        let (k, b) = plan_levels_ambient(&device(), 0, 0.5);
        assert_eq!(b, BacklightLevel::MIN);
        assert!((k - 1.0).abs() < 1e-6);
    }

    #[test]
    fn brightness_delta_stretches_to_full_scale() {
        assert_eq!(brightness_delta(200), 55);
        assert_eq!(brightness_delta(255), 0);
        assert_eq!(brightness_delta(0), 255);
    }

    #[test]
    fn contrast_operator_is_more_faithful_than_brightness() {
        // The paper picks contrast enhancement; brightness compensation
        // over-brightens everything below the effective max.
        let dev = device();
        for effective in [80u8, 128, 190] {
            let contrast = operator_distortion(&dev, effective, CompensationKind::ContrastEnhancement);
            let brightness =
                operator_distortion(&dev, effective, CompensationKind::BrightnessCompensation);
            assert!(
                contrast < brightness / 4.0,
                "effective {effective}: contrast {contrast} vs brightness {brightness}"
            );
            assert!(contrast < 0.05, "contrast error should be near zero, got {contrast}");
        }
    }

    #[test]
    fn mean_savings_is_duration_weighted() {
        let p = dark_profile();
        let spans = vec![
            SceneSpan { start: 0, end: 10 },
            SceneSpan { start: 10, end: 30 },
        ];
        let plan = BacklightPlan::compute(&p, &spans, &device(), QualityLevel::Q10);
        let s0 = plan.scenes()[0].power_savings;
        let s1 = plan.scenes()[1].power_savings;
        let expected = (s0 * 10.0 + s1 * 20.0) / 30.0;
        assert!((plan.mean_backlight_savings() - expected).abs() < 1e-12);
    }
}
