//! Intra-clip parallel profiling and compensation.
//!
//! The offline pipeline — per-frame luminance histograms, scene-level
//! planning, per-frame compensation — is embarrassingly parallel across
//! frames and scenes. This module chunks that work across a scoped
//! worker pool built on [`annolight_support::channel`] and
//! `std::thread::scope`, with one headline guarantee:
//!
//! > **Parallel output is byte-identical to serial output** for every
//! > clip, quality level, chunk size and worker count.
//!
//! The guarantee holds by construction:
//!
//! * every unit of work (a frame's [`FrameStats`], a scene's plan, a
//!   frame's compensation) is a pure function of its inputs — exact
//!   integer/fixed-point kernels, no shared mutable state;
//! * chunks are claimed from an atomic cursor in any order, but results
//!   are **reassembled by chunk index**, so the merged output is a pure
//!   function of the input regardless of scheduling;
//! * histogram merging is an unsigned integer sum per bin — an
//!   order- and partitioning-independent reduction
//!   ([`annolight_imgproc::Histogram::merged`]).
//!
//! `workers == 0` selects the inline serial path, which is the
//! deterministic reference the differential suite
//! (`tests/parallel_identity.rs`) compares every other configuration
//! against.

use crate::apply::compensate_frame;
use crate::error::CoreError;
use crate::profile::{FrameStats, LuminanceProfile};
use crate::track::AnnotationTrack;
use annolight_imgproc::{ClipStats, CompensationLut, Frame};
use annolight_support::channel;
use annolight_support::sync::Mutex;
use annolight_video::Clip;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How much intra-clip parallelism to use.
///
/// The default (`workers == 0`) is the serial reference: all work runs
/// inline, in order, on the calling thread. Any `workers > 0` spawns
/// that many scoped threads which claim fixed-size frame chunks from a
/// shared cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads; `0` = inline serial reference.
    pub workers: usize,
    /// Frames (or scenes) per work chunk. Chunking granularity never
    /// affects output bytes, only load balance.
    pub chunk_frames: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::serial()
    }
}

impl ParallelConfig {
    /// Default chunk granularity: one chunk ≈ one scene's worth of
    /// frames at the library's 12 fps.
    pub const DEFAULT_CHUNK_FRAMES: usize = 16;

    /// The deterministic inline reference configuration.
    #[must_use]
    pub fn serial() -> Self {
        Self { workers: 0, chunk_frames: Self::DEFAULT_CHUNK_FRAMES }
    }

    /// `workers` threads with the default chunk size (`0` = serial).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::serial() }
    }

    /// Overrides the chunk granularity (clamped to ≥ 1 at use sites).
    #[must_use]
    pub fn with_chunk_frames(mut self, chunk_frames: usize) -> Self {
        self.chunk_frames = chunk_frames;
        self
    }

    /// Whether this configuration runs inline on the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.workers == 0
    }
}

/// Splits `0..n` into contiguous chunks of at most `chunk` items.
#[must_use]
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Maps `f` over the chunk ranges of `0..n`, returning results in chunk
/// order.
///
/// Serial configurations (or single-chunk inputs) evaluate inline and
/// in order. Parallel configurations claim chunk indices from an atomic
/// cursor, stream `(index, result)` pairs back over a channel, and
/// reassemble by index — so the returned vector is identical for every
/// worker count.
pub fn chunked_map<T, F>(n: usize, cfg: &ParallelConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, cfg.chunk_frames);
    let threads = if cfg.workers == 0 { 0 } else { cfg.workers.min(ranges.len()) };
    if threads <= 1 {
        // Serial reference (also taken when one worker would just add
        // thread hand-off latency for an identical, in-order result).
        return ranges.into_iter().map(f).collect();
    }
    let n_chunks = ranges.len();
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    std::thread::scope(|s| {
        let (tx, rx) = channel::unbounded::<(usize, T)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let ranges = &ranges;
            let f = &f;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(range) = ranges.get(i) else { break };
                let value = f(range.clone());
                if tx.send((i, value)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for _ in 0..n_chunks {
            let (i, value) = rx.recv().expect("every chunk produces one result");
            slots[i] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("chunk index delivered exactly once"))
        .collect()
}

/// Profiles every frame of `clip`, chunked across `cfg`'s workers.
///
/// Byte-identical to [`LuminanceProfile::of_clip`] for every
/// configuration (each chunk renders and profiles its own frames; the
/// per-chunk stats are concatenated in frame order).
///
/// # Errors
///
/// Returns [`CoreError::EmptyClip`] if the clip has no frames.
pub fn profile_clip(clip: &Clip, cfg: &ParallelConfig) -> Result<LuminanceProfile, CoreError> {
    let n = clip.frame_count() as usize;
    if n == 0 {
        return Err(CoreError::EmptyClip);
    }
    let chunks = chunked_map(n, cfg, |range| {
        range
            .map(|i| FrameStats::of_frame(i as u32, &clip.frame(i as u32)))
            .collect::<Vec<_>>()
    });
    LuminanceProfile::from_stats(clip.fps(), chunks.into_iter().flatten().collect())
}

/// Profiles a decoded frame slice at `fps`, chunked across `cfg`'s
/// workers. Byte-identical to
/// [`LuminanceProfile::of_frames`] over the same frames.
///
/// # Errors
///
/// Returns [`CoreError::EmptyClip`] for an empty slice.
pub fn profile_frames(
    fps: f64,
    frames: &[Frame],
    cfg: &ParallelConfig,
) -> Result<LuminanceProfile, CoreError> {
    if frames.is_empty() {
        return Err(CoreError::EmptyClip);
    }
    let chunks = chunked_map(frames.len(), cfg, |range| {
        range
            .map(|i| FrameStats::of_frame(i as u32, &frames[i]))
            .collect::<Vec<_>>()
    });
    LuminanceProfile::from_stats(fps, chunks.into_iter().flatten().collect())
}

/// Profiles several decoded clips in **one** chunked dispatch.
///
/// Each job is `(fps, frames)`; the result holds one profile per job,
/// byte-identical to calling [`profile_frames`] per job. The frames of
/// all jobs are flattened into a single global index space so one
/// worker pool load-balances across every clip at once — short clips no
/// longer leave workers idle while a long clip finishes, which is the
/// point of batched GOP scheduling in the transcode proxy.
///
/// # Errors
///
/// Returns [`CoreError::EmptyClip`] if any job has no frames (checked
/// up front, before any work is dispatched).
pub fn profile_frames_batched(
    jobs: &[(f64, &[Frame])],
    cfg: &ParallelConfig,
) -> Result<Vec<LuminanceProfile>, CoreError> {
    let mut offsets = Vec::with_capacity(jobs.len());
    let mut total = 0usize;
    for (_, frames) in jobs {
        if frames.is_empty() {
            return Err(CoreError::EmptyClip);
        }
        offsets.push(total);
        total += frames.len();
    }
    let chunks = chunked_map(total, cfg, |range| {
        range
            .map(|g| {
                // Map the global frame index back to (job, local index);
                // stats carry the *job-local* index so the per-job
                // profile matches the serial reference exactly.
                let j = offsets.partition_point(|&o| o <= g) - 1;
                let local = g - offsets[j];
                FrameStats::of_frame(local as u32, &jobs[j].1[local])
            })
            .collect::<Vec<_>>()
    });
    let mut flat = chunks.into_iter().flatten();
    jobs.iter()
        .map(|(fps, frames)| {
            LuminanceProfile::from_stats(*fps, flat.by_ref().take(frames.len()).collect())
        })
        .collect()
}

/// Compensates several clips (each against its own track) in **one**
/// chunked dispatch, in place, returning per-job clipping statistics in
/// frame order.
///
/// Byte-identical (frames *and* stats) to calling
/// [`compensate_frames`] per job, for every chunk size and worker
/// count; like [`profile_frames_batched`], all jobs share one worker
/// pool so mixed-length batches load-balance.
///
/// # Errors
///
/// Returns [`CoreError::FrameOutOfRange`] if any job's slice is longer
/// than its annotated range (checked up front, before any frame of any
/// job is modified).
pub fn compensate_frames_batched(
    jobs: &mut [(&mut [Frame], &AnnotationTrack)],
    cfg: &ParallelConfig,
) -> Result<Vec<Vec<ClipStats>>, CoreError> {
    // Validate every job before touching any pixels so a failure in one
    // clip can't leave another half-compensated.
    for (frames, track) in jobs.iter() {
        if !frames.is_empty() {
            track.entry_at((frames.len() - 1) as u32)?;
        }
    }
    let chunk = cfg.chunk_frames.max(1);
    let chunk_counts: Vec<usize> =
        jobs.iter().map(|(frames, _)| frames.len().div_ceil(chunk)).collect();
    let n_chunks: usize = chunk_counts.iter().sum();
    let threads = if cfg.workers == 0 { 0 } else { cfg.workers.min(n_chunks) };
    if threads <= 1 {
        return jobs
            .iter_mut()
            .map(|(frames, track)| {
                frames
                    .iter_mut()
                    .enumerate()
                    .map(|(i, frame)| compensate_frame(frame, track, i as u32))
                    .collect()
            })
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, usize, &AnnotationTrack, &mut [Frame])>> = {
        let mut q = VecDeque::with_capacity(n_chunks);
        let mut slot = 0usize;
        for (frames, track) in jobs.iter_mut() {
            for (ci, slice) in frames.chunks_mut(chunk).enumerate() {
                q.push_back((slot, ci * chunk, *track, slice));
                slot += 1;
            }
        }
        Mutex::new(q)
    };
    let mut slots: Vec<Option<Vec<ClipStats>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    std::thread::scope(|s| {
        let (tx, rx) = channel::unbounded::<(usize, Vec<ClipStats>)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                let item = queue.lock().pop_front();
                let Some((slot, base, track, slice)) = item else { break };
                let stats: Vec<ClipStats> = slice
                    .iter_mut()
                    .enumerate()
                    .map(|(j, frame)| {
                        let entry = track
                            .entry_at((base + j) as u32)
                            .expect("range validated before dispatch");
                        CompensationLut::new(entry.compensation).apply(frame)
                    })
                    .collect();
                if tx.send((slot, stats)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for _ in 0..n_chunks {
            let (slot, stats) = rx.recv().expect("every chunk produces one result");
            slots[slot] = Some(stats);
        }
    });
    let mut flat = slots.into_iter().map(|v| v.expect("chunk index delivered exactly once"));
    Ok(chunk_counts
        .iter()
        .map(|&c| flat.by_ref().take(c).flatten().collect())
        .collect())
}

/// Compensates `frames[i]` against `track` entry `i` for every frame,
/// in place, returning the per-frame clipping statistics in frame
/// order. Frame `i`'s compensation factor builds one 256-entry
/// [`CompensationLut`] (the fixed-point `k·Y` table), applied as table
/// look-ups.
///
/// Byte-identical (frames *and* stats) to calling
/// [`compensate_frame`] serially, for every chunk size and worker
/// count.
///
/// # Errors
///
/// Returns [`CoreError::FrameOutOfRange`] if the slice is longer than
/// the annotated range (checked up front, before any frame is
/// modified).
pub fn compensate_frames(
    frames: &mut [Frame],
    track: &AnnotationTrack,
    cfg: &ParallelConfig,
) -> Result<Vec<ClipStats>, CoreError> {
    let n = frames.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Validate the whole range before touching any pixels so a partial
    // failure can't leave a half-compensated buffer.
    track.entry_at((n - 1) as u32)?;
    let chunk = cfg.chunk_frames.max(1);
    let n_chunks = n.div_ceil(chunk);
    let threads = if cfg.workers == 0 { 0 } else { cfg.workers.min(n_chunks) };
    if threads <= 1 {
        let mut stats = Vec::with_capacity(n);
        for (i, frame) in frames.iter_mut().enumerate() {
            stats.push(compensate_frame(frame, track, i as u32)?);
        }
        return Ok(stats);
    }
    let queue: Mutex<VecDeque<(usize, usize, &mut [Frame])>> = Mutex::new(
        frames
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| (ci, ci * chunk, slice))
            .collect(),
    );
    let mut slots: Vec<Option<Vec<ClipStats>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    std::thread::scope(|s| {
        let (tx, rx) = channel::unbounded::<(usize, Vec<ClipStats>)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                let item = queue.lock().pop_front();
                let Some((ci, base, slice)) = item else { break };
                let stats: Vec<ClipStats> = slice
                    .iter_mut()
                    .enumerate()
                    .map(|(j, frame)| {
                        let entry = track
                            .entry_at((base + j) as u32)
                            .expect("range validated before dispatch");
                        CompensationLut::new(entry.compensation).apply(frame)
                    })
                    .collect();
                if tx.send((ci, stats)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for _ in 0..n_chunks {
            let (ci, stats) = rx.recv().expect("every chunk produces one result");
            slots[ci] = Some(stats);
        }
    });
    Ok(slots
        .into_iter()
        .flat_map(|v| v.expect("chunk index delivered exactly once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::Annotator;
    use crate::quality::QualityLevel;
    use annolight_display::DeviceProfile;
    use annolight_video::{ClipLibrary, ClipSpec, ContentKind, SceneSpec};

    fn test_clip() -> Clip {
        ClipLibrary::paper_clip("themovie").unwrap().preview(2.0)
    }

    #[test]
    fn chunk_ranges_tile_exactly() {
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 100), vec![0..3]);
        // Degenerate chunk size clamps to 1.
        assert_eq!(chunk_ranges(2, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn chunked_map_orders_results_for_every_worker_count() {
        let reference: Vec<Vec<usize>> =
            chunked_map(23, &ParallelConfig::serial().with_chunk_frames(5), |r| {
                r.collect::<Vec<_>>()
            });
        for workers in [1, 2, 3, 4, 7, 16] {
            let cfg = ParallelConfig::with_workers(workers).with_chunk_frames(5);
            let got = chunked_map(23, &cfg, |r| r.collect::<Vec<_>>());
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn profile_clip_matches_serial_reference() {
        let clip = test_clip();
        let reference = LuminanceProfile::of_clip(&clip).unwrap();
        for workers in [0, 1, 2, 4] {
            for chunk in [1, 3, 16, 1000] {
                let cfg = ParallelConfig::with_workers(workers).with_chunk_frames(chunk);
                let got = profile_clip(&clip, &cfg).unwrap();
                assert_eq!(got, reference, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn profile_frames_matches_of_frames() {
        let clip = test_clip();
        let frames: Vec<Frame> = clip.frames().collect();
        let reference = LuminanceProfile::of_frames(clip.fps(), frames.iter().cloned()).unwrap();
        let cfg = ParallelConfig::with_workers(3).with_chunk_frames(7);
        assert_eq!(profile_frames(clip.fps(), &frames, &cfg).unwrap(), reference);
    }

    #[test]
    fn empty_inputs_error() {
        let empty: Vec<Frame> = Vec::new();
        assert_eq!(
            profile_frames(10.0, &empty, &ParallelConfig::serial()).unwrap_err(),
            CoreError::EmptyClip
        );
    }

    #[test]
    fn compensate_matches_serial_reference_bytes_and_stats() {
        let clip = test_clip();
        let annotated = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10)
            .annotate_clip(&clip)
            .unwrap();
        let track = annotated.track();
        let original: Vec<Frame> = clip.frames().collect();

        let mut reference = original.clone();
        let mut ref_stats = Vec::new();
        for (i, f) in reference.iter_mut().enumerate() {
            ref_stats.push(compensate_frame(f, track, i as u32).unwrap());
        }
        for workers in [0usize, 1, 2, 4, 7] {
            for chunk in [1usize, 5, 16] {
                let cfg = ParallelConfig::with_workers(workers).with_chunk_frames(chunk);
                let mut frames = original.clone();
                let stats = compensate_frames(&mut frames, track, &cfg).unwrap();
                assert_eq!(frames, reference, "workers={workers} chunk={chunk}");
                assert_eq!(stats, ref_stats, "workers={workers} chunk={chunk}");
            }
        }
    }

    fn small_clip(seed: u64, w: u32, h: u32, secs: f64) -> Clip {
        Clip::new(ClipSpec {
            name: format!("b{seed}"),
            width: w,
            height: h,
            fps: 8.0,
            seed,
            scenes: vec![
                SceneSpec::new(ContentKind::Bright { base: 170, spread: 30 }, secs / 2.0),
                SceneSpec::new(
                    ContentKind::Dark {
                        base: 60,
                        spread: 25,
                        highlight_fraction: 0.02,
                        highlight: 235,
                    },
                    secs / 2.0,
                ),
            ],
        })
        .unwrap()
    }

    #[test]
    fn profile_frames_batched_matches_per_job_serial() {
        // Mixed lengths and geometries: batched output must equal the
        // per-job serial reference profile for every pool shape.
        let clips =
            [small_clip(3, 32, 32, 2.0), small_clip(9, 48, 32, 0.5), small_clip(5, 16, 16, 1.5)];
        let frames: Vec<Vec<Frame>> = clips.iter().map(|c| c.frames().collect()).collect();
        let jobs: Vec<(f64, &[Frame])> =
            clips.iter().zip(&frames).map(|(c, f)| (c.fps(), f.as_slice())).collect();
        let reference: Vec<LuminanceProfile> = jobs
            .iter()
            .map(|(fps, f)| profile_frames(*fps, f, &ParallelConfig::serial()).unwrap())
            .collect();
        for workers in [0usize, 1, 2, 4, 7] {
            for chunk in [1usize, 5, 16] {
                let cfg = ParallelConfig::with_workers(workers).with_chunk_frames(chunk);
                let got = profile_frames_batched(&jobs, &cfg).unwrap();
                assert_eq!(got, reference, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn profile_frames_batched_rejects_empty_job() {
        let clip = small_clip(1, 16, 16, 1.0);
        let frames: Vec<Frame> = clip.frames().collect();
        let jobs: Vec<(f64, &[Frame])> = vec![(clip.fps(), &frames), (clip.fps(), &[])];
        assert_eq!(
            profile_frames_batched(&jobs, &ParallelConfig::with_workers(2)).unwrap_err(),
            CoreError::EmptyClip
        );
    }

    #[test]
    fn compensate_frames_batched_matches_per_job_serial() {
        let clips =
            [small_clip(3, 32, 32, 2.0), small_clip(9, 48, 32, 0.5), small_clip(5, 16, 16, 1.5)];
        let annotated: Vec<_> = clips
            .iter()
            .map(|c| {
                Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10)
                    .annotate_clip(c)
                    .unwrap()
            })
            .collect();
        let original: Vec<Vec<Frame>> = clips.iter().map(|c| c.frames().collect()).collect();

        let mut reference = original.clone();
        let mut ref_stats = Vec::new();
        for (frames, ann) in reference.iter_mut().zip(&annotated) {
            ref_stats
                .push(compensate_frames(frames, ann.track(), &ParallelConfig::serial()).unwrap());
        }
        for workers in [0usize, 1, 2, 4, 7] {
            for chunk in [1usize, 5, 16] {
                let cfg = ParallelConfig::with_workers(workers).with_chunk_frames(chunk);
                let mut frames = original.clone();
                let mut jobs: Vec<(&mut [Frame], &AnnotationTrack)> = frames
                    .iter_mut()
                    .zip(&annotated)
                    .map(|(f, a)| (f.as_mut_slice(), a.track()))
                    .collect();
                let stats = compensate_frames_batched(&mut jobs, &cfg).unwrap();
                assert_eq!(frames, reference, "workers={workers} chunk={chunk}");
                assert_eq!(stats, ref_stats, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn compensate_frames_batched_validates_every_job_before_mutating() {
        let clip = small_clip(2, 16, 16, 1.0);
        let annotated = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q5)
            .annotate_clip(&clip)
            .unwrap();
        let mut good: Vec<Frame> = clip.frames().collect();
        // One frame more than the track covers in the *second* job.
        let mut bad: Vec<Frame> = clip.frames().collect();
        bad.push(clip.frame(0));
        let (good_before, bad_before) = (good.clone(), bad.clone());
        let mut jobs: Vec<(&mut [Frame], &AnnotationTrack)> = vec![
            (good.as_mut_slice(), annotated.track()),
            (bad.as_mut_slice(), annotated.track()),
        ];
        let err = compensate_frames_batched(&mut jobs, &ParallelConfig::with_workers(2))
            .unwrap_err();
        assert!(matches!(err, CoreError::FrameOutOfRange { .. }));
        assert_eq!(good, good_before, "no job's frames may be modified on failure");
        assert_eq!(bad, bad_before);
    }

    #[test]
    fn compensate_validates_range_before_mutating() {
        let clip = Clip::new(ClipSpec {
            name: "t".into(),
            width: 16,
            height: 16,
            fps: 4.0,
            seed: 1,
            scenes: vec![SceneSpec::new(ContentKind::Bright { base: 180, spread: 10 }, 1.0)],
        })
        .unwrap();
        let annotated = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q5)
            .annotate_clip(&clip)
            .unwrap();
        // One frame more than the track covers: typed error, no mutation.
        let mut frames: Vec<Frame> = clip.frames().collect();
        frames.push(clip.frame(0));
        let before = frames.clone();
        let err = compensate_frames(&mut frames, annotated.track(), &ParallelConfig::with_workers(2))
            .unwrap_err();
        assert!(matches!(err, CoreError::FrameOutOfRange { .. }));
        assert_eq!(frames, before, "no frame may be modified on failure");
    }

    #[test]
    fn compensate_empty_slice_is_ok() {
        let clip = test_clip();
        let annotated = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10)
            .annotate_clip(&clip)
            .unwrap();
        let mut frames: Vec<Frame> = Vec::new();
        let stats =
            compensate_frames(&mut frames, annotated.track(), &ParallelConfig::with_workers(4))
                .unwrap();
        assert!(stats.is_empty());
    }
}
