//! Cheap content digests for content-addressed annotation caching.
//!
//! The serving tier (`annolight-serve`) keys its annotation cache on
//! *what the pixels are*, not on catalogue names: two tenants requesting
//! the same content for the same device/quality must share one cached
//! track, and a renamed or re-registered clip must never serve a stale
//! track computed for different content.
//!
//! A full-stream hash would defeat the point of server-side profiling
//! (it reads every pixel, which is what profiling itself costs), so
//! [`clip_digest`] samples instead: clip geometry and timing are mixed
//! in exactly, and a bounded number of frames ([`DIGEST_FRAMES`]) are
//! rendered and strided-sampled. For the synthetic, deterministic clips
//! this workspace generates, identical specs give identical digests and
//! any content edit shows up in the sampled frames with overwhelming
//! probability. The hash is FNV-1a/64 — deterministic across runs and
//! platforms (unlike `DefaultHasher`, whose algorithm is unspecified).

use annolight_video::Clip;

/// Frames sampled (evenly spaced, always including first and last) by
/// [`clip_digest`].
pub const DIGEST_FRAMES: u32 = 5;

/// Pixels sampled per digested frame (strided across the RGB buffer).
pub const DIGEST_PIXELS_PER_FRAME: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a/64 over a byte slice: the workspace's deterministic,
/// dependency-free hash for cache addressing.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental FNV-1a/64 hasher for mixing heterogeneous fields.
#[derive(Debug, Clone)]
pub struct Digester {
    state: u64,
}

impl Default for Digester {
    fn default() -> Self {
        Self::new()
    }
}

impl Digester {
    /// Fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Mixes a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Mixes an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A cheap, deterministic content digest of a clip.
///
/// Mixes exact geometry/timing (dimensions, fps bits, frame count) with
/// strided pixel samples from [`DIGEST_FRAMES`] evenly spaced frames.
/// Cost is bounded regardless of clip length — rendering a handful of
/// frames — which is orders of magnitude cheaper than profiling the
/// whole clip, the operation the digest exists to deduplicate.
///
/// ```
/// use annolight_core::digest::clip_digest;
/// use annolight_video::ClipLibrary;
///
/// let a = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
/// let b = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
/// assert_eq!(clip_digest(&a), clip_digest(&b));
/// let other = ClipLibrary::paper_clip("catwoman").unwrap().preview(2.0);
/// assert_ne!(clip_digest(&a), clip_digest(&other));
/// ```
#[must_use]
pub fn clip_digest(clip: &Clip) -> u64 {
    let (w, h) = clip.dimensions();
    let frames = clip.frame_count();
    let mut d = Digester::new();
    d.write_u32(w).write_u32(h).write_u32(frames).write_f64(clip.fps());
    // Evenly spaced frame indices, first and last inclusive.
    let n = DIGEST_FRAMES.min(frames).max(1);
    for i in 0..n {
        let idx = if n == 1 { 0 } else { (u64::from(i) * u64::from(frames - 1) / u64::from(n - 1)) as u32 };
        let frame = clip.frame(idx);
        let bytes = frame.as_bytes();
        let stride = (bytes.len() / DIGEST_PIXELS_PER_FRAME.saturating_mul(3)).max(1) * 3;
        d.write_u32(idx);
        let mut pos = 0;
        while pos + 2 < bytes.len() {
            d.write(&bytes[pos..pos + 3]);
            pos += stride;
        }
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};

    fn clip(seed: u64, base: u8) -> Clip {
        Clip::new(ClipSpec {
            name: "d".into(),
            width: 32,
            height: 32,
            fps: 10.0,
            seed,
            scenes: vec![
                SceneSpec::new(
                    ContentKind::Dark { base, spread: 10, highlight_fraction: 0.01, highlight: 230 },
                    1.0,
                ),
                SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.0),
            ],
        })
        .unwrap()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(clip_digest(&clip(7, 40)), clip_digest(&clip(7, 40)));
    }

    #[test]
    fn digest_separates_content() {
        let base = clip_digest(&clip(7, 40));
        assert_ne!(base, clip_digest(&clip(8, 40)), "different seed, different pixels");
        assert_ne!(base, clip_digest(&clip(7, 90)), "different luminance base");
    }

    #[test]
    fn digest_ignores_name() {
        // Content addressing: the catalogue name must not influence the key.
        let a = clip(7, 40);
        let mut spec = a.spec().clone();
        spec.name = "renamed".into();
        let b = Clip::new(spec).unwrap();
        assert_eq!(clip_digest(&a), clip_digest(&b));
    }

    #[test]
    fn digester_mixes_field_order() {
        let mut a = Digester::new();
        a.write_u32(1).write_u32(2);
        let mut b = Digester::new();
        b.write_u32(2).write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
