//! Extensions beyond the paper's core experiments.
//!
//! Two items the paper explicitly points at but does not evaluate:
//!
//! * **End-credits guard** — §4.3: the fixed-percentage clipping heuristic
//!   "works well for most videos, except end credits where it may distort
//!   the text if too many pixels are clipped and the background is uniform
//!   (this is subject of future study)". [`CreditsGuard`] detects
//!   credits-like scenes from their histogram signature and caps the
//!   clipping budget there.
//! * **DVFS hints** — §3: "Optimizations like frequency/voltage scaling can
//!   be applied before decoding is finished, because the annotated
//!   information is available early from the data stream."
//!   [`dvfs_hints`] derives per-scene CPU frequency recommendations from
//!   the profiled content complexity.

use crate::plan::BacklightPlan;
use crate::profile::LuminanceProfile;
use crate::quality::QualityLevel;
use crate::scenes::SceneSpan;
use annolight_display::DeviceProfile;
use annolight_imgproc::Histogram;

/// Detects credits-like scenes and caps their clipping budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditsGuard {
    /// Fraction of pixels that must sit in the darkest band for a scene to
    /// look like a credits background.
    pub background_fraction: f64,
    /// Upper luminance bound of the "dark background" band.
    pub background_level: u8,
    /// Maximum clipping fraction allowed in a guarded scene.
    pub max_clip_fraction: f64,
}

annolight_support::impl_json!(struct CreditsGuard { background_fraction, background_level, max_clip_fraction });

impl Default for CreditsGuard {
    fn default() -> Self {
        Self { background_fraction: 0.80, background_level: 32, max_clip_fraction: 0.01 }
    }
}

impl CreditsGuard {
    /// Whether a histogram looks like credits: a dominant near-black
    /// background plus a small population of bright text pixels.
    pub fn looks_like_credits(&self, hist: &Histogram) -> bool {
        if hist.is_empty() {
            return false;
        }
        let total = hist.total() as f64;
        let dark: u64 = (0..=self.background_level).map(|v| hist.bin(v)).sum();
        let dark_frac = dark as f64 / total;
        let bright_frac = hist.fraction_above(160);
        dark_frac >= self.background_fraction && bright_frac > 0.0 && bright_frac < 0.25
    }

    /// Computes a plan where credits-like scenes get a capped clipping
    /// budget while ordinary scenes use the requested quality.
    pub(crate) fn guarded_plan(
        &self,
        profile: &LuminanceProfile,
        spans: &[SceneSpan],
        device: &DeviceProfile,
        quality: QualityLevel,
    ) -> BacklightPlan {
        // Plan each span with the quality appropriate for its content,
        // then stitch the per-scene plans back together.
        let mut scenes = Vec::with_capacity(spans.len());
        for &span in spans {
            let hist = profile.merged_histogram(span.start, span.end);
            let q = if self.looks_like_credits(&hist) {
                QualityLevel::Custom(quality.clip_fraction().min(self.max_clip_fraction))
            } else {
                quality
            };
            let sub = BacklightPlan::compute(profile, &[span], device, q);
            scenes.extend(sub.scenes().iter().cloned());
        }
        // Re-assemble under the *requested* quality label so the track
        // advertises what the user asked for.
        let rebuilt = BacklightPlan::compute(profile, spans, device, quality);
        let mut plan = rebuilt;
        plan.replace_scenes(scenes);
        plan
    }
}

/// XScale-style CPU frequency steps (the iPAQ 5555's PXA255 ancestry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum CpuFrequency {
    Mhz150,
    Mhz200,
    Mhz300,
    Mhz400,
}

annolight_support::impl_json!(enum CpuFrequency { Mhz150, Mhz200, Mhz300, Mhz400 });

impl CpuFrequency {
    /// Frequency in MHz.
    pub fn mhz(self) -> u32 {
        match self {
            CpuFrequency::Mhz150 => 150,
            CpuFrequency::Mhz200 => 200,
            CpuFrequency::Mhz300 => 300,
            CpuFrequency::Mhz400 => 400,
        }
    }

    /// Relative CPU power at this frequency (affine-in-f, quadratic-in-V
    /// scaling collapsed onto the XScale's paired V/f steps).
    pub fn relative_power(self) -> f64 {
        match self {
            CpuFrequency::Mhz150 => 0.28,
            CpuFrequency::Mhz200 => 0.40,
            CpuFrequency::Mhz300 => 0.65,
            CpuFrequency::Mhz400 => 1.00,
        }
    }
}

/// A per-scene DVFS hint derived from profiled content complexity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsHint {
    /// The scene this hint covers.
    pub span: SceneSpan,
    /// Estimated decode complexity in `[0, 1]` (0 = static dark scene,
    /// 1 = full-range busy scene).
    pub complexity: f64,
    /// Recommended CPU frequency for decoding the scene in real time.
    pub frequency: CpuFrequency,
}

annolight_support::impl_json!(struct DvfsHint { span, complexity, frequency });

impl DvfsHint {
    /// Estimated CPU-busy fraction decoding this scene at 400 MHz: even a
    /// static scene pays fixed per-frame costs; a full-range busy scene
    /// nearly saturates the core.
    pub fn busy_at_400mhz(&self) -> f64 {
        0.30 + 0.55 * self.complexity
    }

    /// CPU-busy fraction when decoding at `freq` (work scales inversely
    /// with the clock), clamped to 1.
    pub fn busy_at(&self, freq: CpuFrequency) -> f64 {
        (self.busy_at_400mhz() * 400.0 / f64::from(freq.mhz())).min(1.0)
    }
}

/// Headroom kept when picking a frequency: decode must fit within this
/// fraction of the scene's frame time (deadline safety margin).
const DVFS_UTILISATION_CAP: f64 = 0.9;

/// Derives DVFS hints for each scene: scenes with low luminance activity
/// decode cheaply (sparser DCT coefficients, smaller motion residuals) and
/// can run at a reduced frequency. The chosen step is the lowest one that
/// still decodes the scene in real time with a 10 % deadline margin.
///
/// # Panics
///
/// Panics if any span is empty or out of range for the profile.
pub fn dvfs_hints(profile: &LuminanceProfile, spans: &[SceneSpan]) -> Vec<DvfsHint> {
    spans
        .iter()
        .map(|&span| {
            let hist = profile.merged_histogram(span.start, span.end);
            // Complexity proxy: occupied dynamic range × mean activity.
            let range = f64::from(hist.dynamic_range()) / 255.0;
            let mean = hist.mean() / 255.0;
            let complexity = (0.6 * range + 0.4 * mean).clamp(0.0, 1.0);
            let busy400 = 0.30 + 0.55 * complexity;
            let required_mhz = busy400 * 400.0 / DVFS_UTILISATION_CAP;
            let frequency = [
                CpuFrequency::Mhz150,
                CpuFrequency::Mhz200,
                CpuFrequency::Mhz300,
                CpuFrequency::Mhz400,
            ]
            .into_iter()
            .find(|f| f64::from(f.mhz()) >= required_mhz)
            .unwrap_or(CpuFrequency::Mhz400);
            DvfsHint { span, complexity, frequency }
        })
        .collect()
}

/// Magic prefix of a serialised DVFS-hint payload in the stream's user
/// data (the annotation track uses `ALT1`).
pub const DVFS_MAGIC: &[u8; 4] = b"ADV1";

/// Serialises hints for embedding as a user-data packet.
pub fn hints_to_bytes(hints: &[DvfsHint]) -> Vec<u8> {
    let mut out = DVFS_MAGIC.to_vec();
    out.extend(annolight_support::json::to_vec(hints));
    out
}

/// Parses a payload produced by [`hints_to_bytes`].
///
/// # Errors
///
/// Returns [`crate::CoreError::MalformedTrack`] for wrong magic or
/// malformed JSON.
pub fn hints_from_bytes(bytes: &[u8]) -> Result<Vec<DvfsHint>, crate::CoreError> {
    if bytes.len() < 4 || &bytes[..4] != DVFS_MAGIC {
        return Err(crate::CoreError::MalformedTrack { reason: "not a DVFS payload".into() });
    }
    annolight_support::json::from_slice(&bytes[4..])
        .map_err(|e| crate::CoreError::MalformedTrack { reason: e.to_string() })
}

/// Whether a user-data payload is a DVFS-hint packet.
pub fn is_dvfs_payload(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == DVFS_MAGIC
}

/// Finds the hint covering `frame`, if any.
pub fn hint_for_frame(hints: &[DvfsHint], frame: u32) -> Option<&DvfsHint> {
    hints.iter().find(|h| h.span.start <= frame && frame < h.span.end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::{Frame, Rgb8};

    fn credits_hist() -> Histogram {
        let mut h = Histogram::new();
        h.add_count(5, 9000); // black background
        h.add_count(235, 400); // text
        h
    }

    fn bright_hist() -> Histogram {
        let mut h = Histogram::new();
        h.add_count(200, 8000);
        h.add_count(250, 2000);
        h
    }

    #[test]
    fn credits_signature_detected() {
        let g = CreditsGuard::default();
        assert!(g.looks_like_credits(&credits_hist()));
        assert!(!g.looks_like_credits(&bright_hist()));
        assert!(!g.looks_like_credits(&Histogram::new()));
    }

    #[test]
    fn plain_dark_scene_is_not_credits() {
        // All-dark with no bright text at all.
        let mut h = Histogram::new();
        h.add_count(10, 10_000);
        assert!(!CreditsGuard::default().looks_like_credits(&h));
    }

    #[test]
    fn guard_caps_clipping_in_credits_scene() {
        // 20 frames of credits-like content.
        let frames: Vec<Frame> = (0..20)
            .map(|_| {
                let mut f = Frame::filled(20, 20, Rgb8::gray(5));
                for x in 0..20 {
                    f.set_pixel(x, 3, Rgb8::gray(235));
                }
                f
            })
            .collect();
        let profile = LuminanceProfile::of_frames(10.0, frames).unwrap();
        let spans = vec![SceneSpan { start: 0, end: 20 }];
        let device = DeviceProfile::ipaq_5555();
        let guard = CreditsGuard::default();

        let unguarded = BacklightPlan::compute(&profile, &spans, &device, QualityLevel::Q20);
        let guarded = guard.guarded_plan(&profile, &spans, &device, QualityLevel::Q20);
        // Unguarded Q20 clips the text rows (5% of pixels) and dims hard;
        // the guard keeps the text unclipped.
        assert!(unguarded.scenes()[0].effective_max_luma < 100);
        assert_eq!(guarded.scenes()[0].effective_max_luma, 235);
        assert!(guarded.scenes()[0].clipped_fraction <= guard.max_clip_fraction + 1e-12);
    }

    #[test]
    fn dvfs_dark_scene_runs_slow() {
        let dark: Vec<Frame> = (0..10).map(|_| Frame::filled(8, 8, Rgb8::gray(20))).collect();
        let profile = LuminanceProfile::of_frames(10.0, dark).unwrap();
        let hints = dvfs_hints(&profile, &[SceneSpan { start: 0, end: 10 }]);
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].frequency, CpuFrequency::Mhz150);
    }

    #[test]
    fn dvfs_busy_scene_runs_fast() {
        let busy: Vec<Frame> = (0..10)
            .map(|i| {
                Frame::from_fn(16, 16, |x, y| {
                    let v = ((x * 16 + y * 7 + i * 13) % 256) as u8;
                    [v, v, v]
                })
            })
            .collect();
        let profile = LuminanceProfile::of_frames(10.0, busy).unwrap();
        let hints = dvfs_hints(&profile, &[SceneSpan { start: 0, end: 10 }]);
        assert!(hints[0].frequency >= CpuFrequency::Mhz300);
        assert!(hints[0].complexity > 0.5);
    }

    #[test]
    fn hints_serialise_roundtrip() {
        let hints = vec![
            DvfsHint { span: SceneSpan { start: 0, end: 10 }, complexity: 0.2, frequency: CpuFrequency::Mhz200 },
            DvfsHint { span: SceneSpan { start: 10, end: 25 }, complexity: 0.8, frequency: CpuFrequency::Mhz400 },
        ];
        let bytes = hints_to_bytes(&hints);
        assert!(is_dvfs_payload(&bytes));
        let back = hints_from_bytes(&bytes).unwrap();
        assert_eq!(hints, back);
    }

    #[test]
    fn track_bytes_are_not_dvfs_payload() {
        assert!(!is_dvfs_payload(b"ALT1whatever"));
        assert!(!is_dvfs_payload(b""));
        assert!(hints_from_bytes(b"ALT1xx").is_err());
    }

    #[test]
    fn hint_lookup_by_frame() {
        let hints = vec![
            DvfsHint { span: SceneSpan { start: 0, end: 10 }, complexity: 0.1, frequency: CpuFrequency::Mhz150 },
            DvfsHint { span: SceneSpan { start: 10, end: 20 }, complexity: 0.9, frequency: CpuFrequency::Mhz400 },
        ];
        assert_eq!(hint_for_frame(&hints, 0).unwrap().frequency, CpuFrequency::Mhz150);
        assert_eq!(hint_for_frame(&hints, 9).unwrap().frequency, CpuFrequency::Mhz150);
        assert_eq!(hint_for_frame(&hints, 10).unwrap().frequency, CpuFrequency::Mhz400);
        assert!(hint_for_frame(&hints, 20).is_none());
    }

    #[test]
    fn chosen_frequency_meets_realtime_deadline() {
        // For any complexity the selected step decodes within the 90%
        // utilisation cap (unless even 400 MHz cannot, which our busy
        // model never produces).
        let frames: Vec<annolight_imgproc::Frame> = (0..5)
            .map(|i| {
                annolight_imgproc::Frame::from_fn(16, 16, |x, y| {
                    let v = ((x * 16 + y * (i + 1)) % 256) as u8;
                    [v, v, v]
                })
            })
            .collect();
        let profile = LuminanceProfile::of_frames(10.0, frames).unwrap();
        let hints = dvfs_hints(&profile, &[SceneSpan { start: 0, end: 5 }]);
        for h in hints {
            assert!(h.busy_at(h.frequency) <= 0.9 + 1e-9, "{h:?}");
        }
    }

    #[test]
    fn frequency_power_monotone() {
        let freqs = [
            CpuFrequency::Mhz150,
            CpuFrequency::Mhz200,
            CpuFrequency::Mhz300,
            CpuFrequency::Mhz400,
        ];
        for w in freqs.windows(2) {
            assert!(w[0].mhz() < w[1].mhz());
            assert!(w[0].relative_power() < w[1].relative_power());
        }
    }
}
