//! Closed-loop quality governor: the control law.
//!
//! The paper's annotations are open-loop offline hints — the quality
//! level is fixed at negotiation time. This module closes the loop: a
//! deterministic per-scene controller that folds live device state
//! (remaining joule budget, battery charge, thermal throttling) into the
//! quality-knob selection, StEP/DEPO-style — search the knob monotonely
//! until the projected remaining-session energy fits the remaining
//! budget, with hysteresis so the picture quality never oscillates.
//!
//! The module is deliberately *power-model agnostic*: callers project
//! per-knob energies (joules for the remainder of the session at each
//! quality level, monotone non-increasing in the knob index) and the
//! governor picks the knob. The session wiring — plan ladders, battery
//! drain, the upstream feedback channel — lives in `annolight-stream`'s
//! `governor` module; the decision itself ships upstream as a
//! [`GovernorFeedback`] packet over the same hint channel the
//! [`AnnotationDelta`](crate::delta::AnnotationDelta)s ride.
//!
//! Invariants the property tier pins:
//!
//! * the knob search probes at most `⌈log₂ K⌉ + 1` projections;
//! * a feasible budget is **never overshot**: the chosen knob's
//!   projection fits the remaining budget whenever any knob's does;
//! * the governor is **idempotent once converged**: constant inputs
//!   reproduce the same knob with [`GovernorAction::Hold`] forever.

use crate::error::CoreError;
use crate::quality::QualityLevel;

/// Wire magic for a governor feedback packet (`ALG1`: AnnoLight
/// Governor v1).
pub const GOVERNOR_MAGIC: &[u8; 4] = b"ALG1";

/// FNV-1a offset basis (the digest the trace fold starts from).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------------
// Knob search.
// ---------------------------------------------------------------------------

/// The outcome of one [`fit_knob`] search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobSearch {
    /// The least aggressive knob whose projection fits the budget — or
    /// the most aggressive knob when nothing fits.
    pub knob: usize,
    /// Projections examined by the search (≤ `⌈log₂ K⌉ + 1`).
    pub probes: u32,
    /// Whether the chosen knob's projection fits the budget.
    pub fits: bool,
}

/// Binary-searches the quality ladder for the least aggressive knob
/// whose projected energy fits `budget_j`.
///
/// `projections[k]` is the projected energy at knob `k`; knob indices
/// run from least aggressive (full quality, most energy) to most
/// aggressive (deepest clipping, least energy), so the slice must be
/// monotone non-increasing — that monotonicity is what makes the
/// partition-point search exact. When no knob fits, the most aggressive
/// one is returned with `fits == false` (best effort).
///
/// # Panics
///
/// Panics when `projections` is empty.
#[must_use]
pub fn fit_knob(projections: &[f64], budget_j: f64) -> KnobSearch {
    assert!(!projections.is_empty(), "knob search needs at least one level");
    debug_assert!(
        projections.windows(2).all(|w| w[0] >= w[1]),
        "projections must be monotone non-increasing in the knob index"
    );
    let mut lo = 0usize;
    let mut hi = projections.len();
    let mut probes = 0u32;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if projections[mid] <= budget_j {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo < projections.len() {
        KnobSearch { knob: lo, probes, fits: true }
    } else {
        KnobSearch { knob: projections.len() - 1, probes, fits: false }
    }
}

// ---------------------------------------------------------------------------
// Thermal model.
// ---------------------------------------------------------------------------

/// First-order lumped thermal model of a passively cooled handheld: the
/// case heats in proportion to dissipated power and cools toward
/// ambient, and a Schmitt trigger with separate throttle/release
/// thresholds models the firmware's thermal governor (hysteresis — no
/// chatter at the threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Heating rate per watt of dissipation, °C/s/W.
    pub c_per_w: f64,
    /// Newtonian cooling coefficient, 1/s.
    pub cool_per_s: f64,
    /// Case temperature that engages throttling, °C.
    pub throttle_c: f64,
    /// Case temperature that releases throttling, °C (below
    /// `throttle_c`).
    pub release_c: f64,
}

annolight_support::impl_json!(struct ThermalModel { ambient_c, c_per_w, cool_per_s, throttle_c, release_c });

impl ThermalModel {
    /// A passively cooled iPAQ-class handheld at room temperature:
    /// ~3 W of streaming dissipation settles around 55 °C, so sustained
    /// playback eventually throttles at 45 °C and releases at 41 °C.
    #[must_use]
    pub fn ipaq_passive() -> Self {
        Self { ambient_c: 25.0, c_per_w: 0.5, cool_per_s: 0.05, throttle_c: 45.0, release_c: 41.0 }
    }

    /// The initial state: case at ambient, not throttled.
    #[must_use]
    pub fn start(&self) -> ThermalState {
        ThermalState { temp_c: self.ambient_c, throttled: false }
    }
}

/// The live thermal state the governor reads each scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalState {
    /// Case temperature, °C.
    pub temp_c: f64,
    /// Whether the thermal governor is currently throttling.
    pub throttled: bool,
}

annolight_support::impl_json!(struct ThermalState { temp_c, throttled });

impl ThermalState {
    /// Integrates `dt_s` seconds at a constant `power_w` dissipation and
    /// updates the Schmitt trigger.
    pub fn step(&mut self, model: &ThermalModel, power_w: f64, dt_s: f64) {
        let heat = model.c_per_w * power_w;
        let cool = model.cool_per_s * (self.temp_c - model.ambient_c);
        self.temp_c = (self.temp_c + dt_s * (heat - cool)).max(model.ambient_c);
        if self.throttled {
            if self.temp_c <= model.release_c {
                self.throttled = false;
            }
        } else if self.temp_c >= model.throttle_c {
            self.throttled = true;
        }
    }
}

// ---------------------------------------------------------------------------
// The governor.
// ---------------------------------------------------------------------------

/// Control-law parameters: the quality ladder and the hysteresis that
/// keeps the knob from oscillating.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorControl {
    /// The quality ladder, least → most aggressive (more clipping →
    /// dimmer backlight → less energy).
    pub levels: Vec<QualityLevel>,
    /// Fractional budget margin required before *improving* quality: a
    /// down-step is only taken when the improved knob's projection fits
    /// `remaining × (1 − headroom)`. Degradations ignore it (budget
    /// safety is immediate).
    pub headroom: f64,
    /// Scenes the knob must dwell unchanged before an improvement is
    /// considered.
    pub dwell_scenes: u32,
}

impl Default for GovernorControl {
    /// The paper's five-level ladder with 5 % improvement headroom and a
    /// two-scene dwell.
    fn default() -> Self {
        Self { levels: QualityLevel::PAPER_LEVELS.to_vec(), headroom: 0.05, dwell_scenes: 2 }
    }
}

impl GovernorControl {
    /// Panics unless the ladder is non-empty and `headroom ∈ [0, 1)`.
    pub fn validate(&self) {
        assert!(!self.levels.is_empty(), "governor needs a non-empty quality ladder");
        assert!(
            (0.0..1.0).contains(&self.headroom),
            "headroom {} outside [0, 1)",
            self.headroom
        );
    }
}

/// What the governor did this scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorAction {
    /// Knob unchanged.
    Hold,
    /// Stepped toward a more aggressive (cheaper) knob — immediate, for
    /// budget or thermal safety.
    Degrade,
    /// Stepped one knob toward better quality — dwell and headroom
    /// gated.
    Improve,
    /// No knob fits the remaining budget; pinned at the most aggressive
    /// level (best effort).
    BestEffort,
}

annolight_support::impl_json!(enum GovernorAction { Hold, Degrade, Improve, BestEffort });

/// One scene's decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorDecision {
    /// Knob before the decision.
    pub knob_before: usize,
    /// Knob after the decision (the actuated value).
    pub knob: usize,
    /// What happened.
    pub action: GovernorAction,
    /// Whether the chosen knob's projection fits the remaining budget.
    pub fits: bool,
    /// Projections the knob search examined.
    pub probes: u32,
    /// Projected remaining-session energy at the chosen knob, joules.
    pub projected_j: f64,
}

/// The deterministic per-scene quality governor.
///
/// Degradations (toward the aggressive end) are taken immediately — the
/// budget is a hard constraint. Improvements are hysteresis-gated: the
/// knob must have dwelt [`GovernorControl::dwell_scenes`] scenes, the
/// improved projection must fit the remaining budget with
/// [`GovernorControl::headroom`] to spare, and at most one step is taken
/// per scene — so a borderline budget cannot make the backlight pump.
/// While the device is thermally throttled the governor never improves
/// quality and prefers one extra aggressive step (shed heat).
#[derive(Debug, Clone)]
pub struct QualityGovernor {
    control: GovernorControl,
    knob: usize,
    scenes_since_change: u32,
}

impl QualityGovernor {
    /// A governor starting at the least aggressive knob.
    ///
    /// # Panics
    ///
    /// Panics when `control` fails [`GovernorControl::validate`].
    #[must_use]
    pub fn new(control: GovernorControl) -> Self {
        control.validate();
        Self { control, knob: 0, scenes_since_change: 0 }
    }

    /// Sets the starting knob (e.g. the negotiated quality level).
    ///
    /// # Panics
    ///
    /// Panics when `knob` is outside the ladder.
    #[must_use]
    pub fn with_knob(mut self, knob: usize) -> Self {
        assert!(knob < self.control.levels.len(), "start knob {knob} outside ladder");
        self.knob = knob;
        self
    }

    /// The current knob index.
    #[must_use]
    pub fn knob(&self) -> usize {
        self.knob
    }

    /// The quality level at the current knob.
    #[must_use]
    pub fn quality(&self) -> QualityLevel {
        self.control.levels[self.knob]
    }

    /// The control parameters.
    #[must_use]
    pub fn control(&self) -> &GovernorControl {
        &self.control
    }

    /// Decides the knob for the next scene given the remaining joule
    /// budget, the per-knob projections of everything still to play
    /// (monotone non-increasing, one entry per ladder level), and the
    /// thermal throttle flag.
    ///
    /// # Panics
    ///
    /// Panics when `projections` does not match the ladder length.
    pub fn decide(
        &mut self,
        remaining_j: f64,
        projections: &[f64],
        throttled: bool,
    ) -> GovernorDecision {
        assert_eq!(
            projections.len(),
            self.control.levels.len(),
            "one projection per ladder level"
        );
        let knob_before = self.knob;
        let last = projections.len() - 1;
        let search = fit_knob(projections, remaining_j);
        let mut target = search.knob;
        if throttled {
            // Thermal pressure: at least one step more aggressive than
            // the current knob (monotone projections keep this within
            // budget whenever the search's knob was).
            target = target.max((self.knob + 1).min(last));
        }
        let (knob, action) = if !search.fits {
            (last, GovernorAction::BestEffort)
        } else if target > self.knob {
            // Budget/thermal safety: jump straight to the target.
            (target, GovernorAction::Degrade)
        } else if target < self.knob {
            // Improvement: dwell- and headroom-gated, one step at a time.
            let next = self.knob - 1;
            if !throttled
                && self.scenes_since_change >= self.control.dwell_scenes
                && projections[next] <= remaining_j * (1.0 - self.control.headroom)
            {
                (next, GovernorAction::Improve)
            } else {
                (self.knob, GovernorAction::Hold)
            }
        } else {
            (self.knob, GovernorAction::Hold)
        };
        if knob == self.knob {
            self.scenes_since_change = self.scenes_since_change.saturating_add(1);
        } else {
            self.scenes_since_change = 0;
        }
        self.knob = knob;
        GovernorDecision {
            knob_before,
            knob,
            action,
            fits: search.fits,
            probes: search.probes,
            projected_j: projections[knob],
        }
    }
}

// ---------------------------------------------------------------------------
// Trace events.
// ---------------------------------------------------------------------------

/// One scene of the governor trace — the deterministic artefact the
/// budget tier double-runs and the reactor parity tier compares across
/// hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorEvent {
    /// Scene index.
    pub scene: u32,
    /// First frame of the scene.
    pub start_frame: u32,
    /// Knob actuated for this scene.
    pub knob: u32,
    /// Quality level at that knob.
    pub quality: QualityLevel,
    /// What the governor did.
    pub action: GovernorAction,
    /// Whether the chosen knob's projection fit the remaining budget.
    pub fits: bool,
    /// Projections examined by the knob search.
    pub probes: u32,
    /// Projected remaining-session energy at the chosen knob, joules.
    pub projected_j: f64,
    /// Energy this scene actually cost, joules.
    pub scene_j: f64,
    /// Budget remaining at decision time, joules.
    pub remaining_j: f64,
    /// Battery charge remaining at decision time, joules.
    pub battery_j: f64,
    /// Case temperature at decision time, °C.
    pub temp_c: f64,
    /// Whether the thermal governor was throttling.
    pub throttled: bool,
    /// Ambient light at decision time, lux.
    pub ambient_lux: f64,
    /// Whether this scene's annotation hint had not arrived (plays at
    /// full backlight regardless of the knob).
    pub hint_missing: bool,
}

annolight_support::impl_json!(struct GovernorEvent { scene, start_frame, knob, quality, action, fits, probes, projected_j, scene_j, remaining_j, battery_j, temp_c, throttled, ambient_lux, hint_missing });

/// FNV-1a digest of a governor trace: every numeric field of every
/// event folds in, so two traces share a digest iff they are
/// bit-identical.
#[must_use]
pub fn trace_digest(events: &[GovernorEvent]) -> u64 {
    let mut hash = FNV_OFFSET;
    for e in events {
        hash = fnv_fold(hash, u64::from(e.scene));
        hash = fnv_fold(hash, u64::from(e.start_frame));
        hash = fnv_fold(hash, u64::from(e.knob));
        hash = fnv_fold(hash, e.quality.clip_fraction().to_bits());
        hash = fnv_fold(hash, e.action as u64);
        hash = fnv_fold(hash, u64::from(e.fits) | (u64::from(e.throttled) << 1) | (u64::from(e.hint_missing) << 2));
        hash = fnv_fold(hash, u64::from(e.probes));
        hash = fnv_fold(hash, e.projected_j.to_bits());
        hash = fnv_fold(hash, e.scene_j.to_bits());
        hash = fnv_fold(hash, e.remaining_j.to_bits());
        hash = fnv_fold(hash, e.battery_j.to_bits());
        hash = fnv_fold(hash, e.temp_c.to_bits());
        hash = fnv_fold(hash, e.ambient_lux.to_bits());
    }
    hash
}

// ---------------------------------------------------------------------------
// Upstream feedback wire format.
// ---------------------------------------------------------------------------

/// The governor's decision as it ships upstream over the hint channel —
/// the same sequence-numbered packet stream the
/// [`AnnotationDelta`](crate::delta::AnnotationDelta)s ride, so the
/// server/proxy can re-plan the remainder of the session mid-stream.
/// Distinguished from delta payloads by the [`GOVERNOR_MAGIC`] tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorFeedback {
    /// The scene this decision takes effect from.
    pub scene: u32,
    /// The actuated knob index.
    pub knob: u8,
    /// Bit 0: thermally throttled; bit 1: best-effort (budget
    /// infeasible).
    pub flags: u8,
    /// Remaining budget at decision time, millijoules (telemetry;
    /// saturating).
    pub remaining_mj: u64,
}

impl GovernorFeedback {
    /// Flag bit: the device was thermally throttled.
    pub const FLAG_THROTTLED: u8 = 0b01;
    /// Flag bit: no knob fit the budget (best effort).
    pub const FLAG_BEST_EFFORT: u8 = 0b10;

    /// Serialises to the compact wire form (18 bytes).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18);
        out.extend_from_slice(GOVERNOR_MAGIC);
        out.extend_from_slice(&self.scene.to_le_bytes());
        out.push(self.knob);
        out.push(self.flags);
        out.extend_from_slice(&self.remaining_mj.to_le_bytes());
        out
    }

    /// Parses the wire form produced by [`GovernorFeedback::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedTrack`] for truncated or mistagged
    /// input — a corrupt feedback packet is dropped like a lost one,
    /// never trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() < 18 {
            return Err(CoreError::MalformedTrack {
                reason: "governor feedback packet truncated".into(),
            });
        }
        if &bytes[0..4] != GOVERNOR_MAGIC {
            return Err(CoreError::MalformedTrack { reason: "bad governor feedback magic".into() });
        }
        let scene = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let knob = bytes[8];
        let flags = bytes[9];
        let remaining_mj = u64::from_le_bytes([
            bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16],
            bytes[17],
        ]);
        Ok(Self { scene, knob, flags, remaining_mj })
    }

    /// Whether `bytes` starts with the governor feedback magic.
    #[must_use]
    pub fn is_governor_payload(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[0..4] == GOVERNOR_MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Vec<f64> {
        // Monotone non-increasing, like a real plan ladder.
        vec![100.0, 92.0, 85.0, 80.0, 76.0]
    }

    #[test]
    fn fit_knob_picks_least_aggressive_fitting_level() {
        let p = ladder();
        assert_eq!(fit_knob(&p, 200.0).knob, 0);
        assert_eq!(fit_knob(&p, 92.0).knob, 1);
        assert_eq!(fit_knob(&p, 91.0).knob, 2);
        assert_eq!(fit_knob(&p, 80.0).knob, 3);
        assert_eq!(fit_knob(&p, 76.0).knob, 4);
        assert!(fit_knob(&p, 76.0).fits);
    }

    #[test]
    fn fit_knob_best_effort_when_nothing_fits() {
        let s = fit_knob(&ladder(), 10.0);
        assert_eq!(s.knob, 4);
        assert!(!s.fits);
    }

    #[test]
    fn fit_knob_probe_bound_is_logarithmic() {
        for len in 1usize..=64 {
            let p: Vec<f64> = (0..len).map(|i| (len - i) as f64).collect();
            let bound = (usize::BITS - (len - 1).max(1).leading_zeros()) + 1;
            for budget in [-1.0, 0.5, 1.0, len as f64 / 2.0, len as f64 + 1.0] {
                let s = fit_knob(&p, budget);
                assert!(
                    s.probes <= bound,
                    "len {len} budget {budget}: {} probes > bound {bound}",
                    s.probes
                );
            }
        }
    }

    #[test]
    fn degrade_is_immediate_improve_is_dwell_gated() {
        let control = GovernorControl { dwell_scenes: 2, headroom: 0.0, ..Default::default() };
        let mut g = QualityGovernor::new(control);
        // Tight budget: immediate jump to the fitting knob.
        let d = g.decide(80.0, &ladder(), false);
        assert_eq!((d.knob, d.action), (3, GovernorAction::Degrade));
        // Budget recovers: improvement waits out the dwell...
        let d = g.decide(1000.0, &ladder(), false);
        assert_eq!((d.knob, d.action), (3, GovernorAction::Hold));
        let d = g.decide(1000.0, &ladder(), false);
        assert_eq!((d.knob, d.action), (3, GovernorAction::Hold));
        // ...then steps one knob per scene, not straight to 0.
        let d = g.decide(1000.0, &ladder(), false);
        assert_eq!((d.knob, d.action), (2, GovernorAction::Improve));
    }

    #[test]
    fn throttling_blocks_improvement_and_forces_a_step_down() {
        let mut g = QualityGovernor::new(GovernorControl::default()).with_knob(1);
        let d = g.decide(1000.0, &ladder(), true);
        assert_eq!((d.knob, d.action), (2, GovernorAction::Degrade));
        // Still throttled: holds (already one past the search target).
        let d = g.decide(1000.0, &ladder(), true);
        assert_eq!((d.knob, d.action), (3, GovernorAction::Degrade));
        let d = g.decide(1000.0, &ladder(), true);
        assert_eq!((d.knob, d.action), (4, GovernorAction::Degrade));
        // Pinned at the floor while throttled.
        let d = g.decide(1000.0, &ladder(), true);
        assert_eq!((d.knob, d.action), (4, GovernorAction::Hold));
    }

    #[test]
    fn converged_governor_is_idempotent() {
        let mut g = QualityGovernor::new(GovernorControl::default());
        let p = ladder();
        for _ in 0..16 {
            g.decide(85.0, &p, false);
        }
        let knob = g.knob();
        for _ in 0..8 {
            let d = g.decide(85.0, &p, false);
            assert_eq!((d.knob, d.action), (knob, GovernorAction::Hold));
        }
    }

    #[test]
    fn thermal_schmitt_trigger_has_hysteresis() {
        let m = ThermalModel::ipaq_passive();
        let mut s = m.start();
        // Heat at 3.2 W until throttled.
        let mut heated = 0.0;
        while !s.throttled {
            s.step(&m, 3.2, 1.0);
            heated += 1.0;
            assert!(heated < 600.0, "never throttled");
        }
        assert!(s.temp_c >= m.throttle_c);
        // One cool second is not enough to release (hysteresis gap).
        s.step(&m, 0.0, 1.0);
        assert!(s.throttled, "released inside the hysteresis band");
        // Cooling to the release threshold does release.
        while s.throttled {
            s.step(&m, 0.0, 1.0);
        }
        assert!(s.temp_c <= m.release_c);
        // And temperature never falls below ambient.
        for _ in 0..10_000 {
            s.step(&m, 0.0, 1.0);
        }
        assert!(s.temp_c >= m.ambient_c - 1e-12);
    }

    #[test]
    fn feedback_wire_roundtrip() {
        let fb = GovernorFeedback {
            scene: 42,
            knob: 3,
            flags: GovernorFeedback::FLAG_THROTTLED,
            remaining_mj: 123_456_789,
        };
        let bytes = fb.to_bytes();
        assert!(GovernorFeedback::is_governor_payload(&bytes));
        assert_eq!(GovernorFeedback::from_bytes(&bytes).unwrap(), fb);
        // Truncated and mistagged packets are typed failures.
        assert!(GovernorFeedback::from_bytes(&bytes[..17]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(GovernorFeedback::from_bytes(&bad).is_err());
        // Delta payloads are not governor payloads.
        assert!(!GovernorFeedback::is_governor_payload(b"ALD1rest"));
    }

    #[test]
    fn trace_digest_separates_traces() {
        let e = GovernorEvent {
            scene: 0,
            start_frame: 0,
            knob: 2,
            quality: QualityLevel::Q10,
            action: GovernorAction::Hold,
            fits: true,
            probes: 3,
            projected_j: 10.0,
            scene_j: 1.0,
            remaining_j: 12.0,
            battery_j: 15_000.0,
            temp_c: 25.0,
            throttled: false,
            ambient_lux: 300.0,
            hint_missing: false,
        };
        let mut e2 = e.clone();
        e2.scene_j = 1.0 + 1e-12;
        assert_ne!(trace_digest(&[e.clone()]), trace_digest(&[e2]));
        assert_eq!(trace_digest(&[e.clone()]), trace_digest(&[e]));
    }
}
