//! User-selected quality levels.
//!
//! §4.2: "The user specifies the quality level when he requests the video
//! clip from the server and the system tries to maximize power savings
//! while maintaining the quality of service above the given threshold."
//! The experiments use 0, 5, 10, 15 and 20 % of clipped high-luminance
//! pixels; the server offers the same five qualities to every client type.

use std::fmt;

/// A quality degradation level: the maximum fraction of high-luminance
/// pixels that may be clipped by the compensation step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum QualityLevel {
    /// Loss-less: no pixel may clip (smallest savings).
    #[default]
    Q0,
    /// Up to 5 % of pixels may clip ("visual degradation is virtually
    /// unnoticeable").
    Q5,
    /// Up to 10 % of pixels may clip (the example in Fig. 6).
    Q10,
    /// Up to 15 % of pixels may clip.
    Q15,
    /// Up to 20 % of pixels may clip (the most aggressive level evaluated).
    Q20,
    /// A custom clipping fraction in `[0, 1]` (for sweeps beyond the
    /// paper's five levels).
    Custom(f64),
}

annolight_support::impl_json!(enum QualityLevel { Q0, Q5, Q10, Q15, Q20, Custom(value) });

impl QualityLevel {
    /// The five levels used in the paper's experiments, in order.
    pub const PAPER_LEVELS: [QualityLevel; 5] = [
        QualityLevel::Q0,
        QualityLevel::Q5,
        QualityLevel::Q10,
        QualityLevel::Q15,
        QualityLevel::Q20,
    ];

    /// The maximum clipped-pixel fraction, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics for a [`QualityLevel::Custom`] value outside `[0, 1]` or not
    /// finite.
    pub fn clip_fraction(self) -> f64 {
        match self {
            QualityLevel::Q0 => 0.0,
            QualityLevel::Q5 => 0.05,
            QualityLevel::Q10 => 0.10,
            QualityLevel::Q15 => 0.15,
            QualityLevel::Q20 => 0.20,
            QualityLevel::Custom(f) => {
                assert!(
                    f.is_finite() && (0.0..=1.0).contains(&f),
                    "custom quality {f} outside [0, 1]"
                );
                f
            }
        }
    }

    /// Builds the level from a percentage (`0`, `5`, `10`, `15`, `20` map
    /// to the named levels; anything else becomes [`QualityLevel::Custom`]).
    pub fn from_percent(p: f64) -> Self {
        if p == 0.0 {
            QualityLevel::Q0
        } else if p == 5.0 {
            QualityLevel::Q5
        } else if p == 10.0 {
            QualityLevel::Q10
        } else if p == 15.0 {
            QualityLevel::Q15
        } else if p == 20.0 {
            QualityLevel::Q20
        } else {
            QualityLevel::Custom(p / 100.0)
        }
    }
}

impl fmt::Display for QualityLevel {
    /// Formats as a percentage, e.g. `10%`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.clip_fraction() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_levels_fractions() {
        let fracs: Vec<f64> = QualityLevel::PAPER_LEVELS.iter().map(|q| q.clip_fraction()).collect();
        assert_eq!(fracs, vec![0.0, 0.05, 0.10, 0.15, 0.20]);
    }

    #[test]
    fn from_percent_maps_named() {
        assert_eq!(QualityLevel::from_percent(0.0), QualityLevel::Q0);
        assert_eq!(QualityLevel::from_percent(10.0), QualityLevel::Q10);
        assert!(matches!(QualityLevel::from_percent(7.5), QualityLevel::Custom(_)));
    }

    #[test]
    fn custom_fraction_passthrough() {
        assert!((QualityLevel::Custom(0.33).clip_fraction() - 0.33).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn custom_out_of_range_panics() {
        QualityLevel::Custom(1.5).clip_fraction();
    }

    #[test]
    fn display_formats_percent() {
        assert_eq!(QualityLevel::Q5.to_string(), "5%");
    }

    #[test]
    fn default_is_lossless() {
        assert_eq!(QualityLevel::default(), QualityLevel::Q0);
    }
}
