//! Offline luminance profiling of a video stream.
//!
//! §4: "The video clips available for streaming at the servers are first
//! profiled, processed and annotated with data characterizing the luminance
//! levels during various scenes." Profiling happens once, at the server or
//! proxy, so the handheld never has to analyse frames at runtime.

use crate::error::CoreError;
use annolight_imgproc::{Frame, Histogram};
use annolight_video::Clip;

/// Per-frame luminance statistics gathered during profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameStats {
    /// Frame index within the clip.
    pub index: u32,
    /// Maximum pixel luminance (the signal driving scene detection,
    /// Fig. 6).
    pub max_luma: u8,
    /// Mean pixel luminance.
    pub mean_luma: f64,
    /// Full 256-bin luminance histogram (needed to evaluate clip levels
    /// for every quality level without re-reading the frame).
    pub histogram: Histogram,
}

annolight_support::impl_json!(struct FrameStats { index, max_luma, mean_luma, histogram });

impl FrameStats {
    /// Profiles a single frame.
    pub fn of_frame(index: u32, frame: &Frame) -> Self {
        let histogram = frame.luma_histogram();
        let max_luma = histogram.max_nonzero().unwrap_or(0);
        let mean_luma = histogram.mean();
        Self { index, max_luma, mean_luma, histogram }
    }
}

/// The complete luminance profile of a clip.
///
/// # Example
///
/// ```
/// use annolight_core::LuminanceProfile;
/// use annolight_video::ClipLibrary;
///
/// let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(3.0);
/// let profile = LuminanceProfile::of_clip(&clip).unwrap();
/// assert_eq!(profile.len() as u32, clip.frame_count());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LuminanceProfile {
    fps: f64,
    frames: Vec<FrameStats>,
}

annolight_support::impl_json!(struct LuminanceProfile { fps, frames });

impl LuminanceProfile {
    /// Profiles every frame of `clip`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] if the clip has no frames.
    pub fn of_clip(clip: &Clip) -> Result<Self, CoreError> {
        Self::of_frames(clip.fps(), clip.frames())
    }

    /// Profiles an arbitrary frame sequence at `fps`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] if the iterator yields nothing.
    pub fn of_frames<I>(fps: f64, frames: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = Frame>,
    {
        let frames: Vec<FrameStats> = frames
            .into_iter()
            .enumerate()
            .map(|(i, f)| FrameStats::of_frame(i as u32, &f))
            .collect();
        if frames.is_empty() {
            return Err(CoreError::EmptyClip);
        }
        Ok(Self { fps, frames })
    }

    /// Builds a profile from precomputed stats (used by streaming-side
    /// incremental profiling).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] for an empty vector.
    pub fn from_stats(fps: f64, frames: Vec<FrameStats>) -> Result<Self, CoreError> {
        if frames.is_empty() {
            return Err(CoreError::EmptyClip);
        }
        Ok(Self { fps, frames })
    }

    /// Frames per second of the profiled stream.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of profiled frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the profile is empty (never true for a constructed profile).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Per-frame statistics, in order.
    pub fn frames(&self) -> &[FrameStats] {
        &self.frames
    }

    /// The per-frame maximum-luminance series (the top curve of Fig. 6).
    pub fn max_luma_series(&self) -> Vec<u8> {
        self.frames.iter().map(|f| f.max_luma).collect()
    }

    /// Merges the histograms of frames `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn merged_histogram(&self, start: u32, end: u32) -> Histogram {
        assert!(start < end, "empty frame range {start}..{end}");
        assert!((end as usize) <= self.frames.len(), "range end {end} out of bounds");
        let mut h = Histogram::new();
        for f in &self.frames[start as usize..end as usize] {
            h.merge(&f.histogram);
        }
        h
    }

    /// Maximum of `max_luma` over frames `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn range_max_luma(&self, start: u32, end: u32) -> u8 {
        assert!(start < end, "empty frame range {start}..{end}");
        assert!((end as usize) <= self.frames.len(), "range end {end} out of bounds");
        self.frames[start as usize..end as usize]
            .iter()
            .map(|f| f.max_luma)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Rgb8;

    fn frame(luma: u8) -> Frame {
        Frame::filled(8, 8, Rgb8::gray(luma))
    }

    #[test]
    fn frame_stats_capture_extremes() {
        let mut f = frame(30);
        f.set_pixel(3, 3, Rgb8::gray(220));
        let s = FrameStats::of_frame(5, &f);
        assert_eq!(s.index, 5);
        assert_eq!(s.max_luma, 220);
        assert!(s.mean_luma > 30.0 && s.mean_luma < 40.0);
        assert_eq!(s.histogram.total(), 64);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(
            LuminanceProfile::of_frames(10.0, std::iter::empty()).unwrap_err(),
            CoreError::EmptyClip
        );
    }

    #[test]
    fn profile_indexes_frames_in_order() {
        let p = LuminanceProfile::of_frames(10.0, vec![frame(10), frame(20), frame(30)]).unwrap();
        assert_eq!(p.len(), 3);
        let idx: Vec<u32> = p.frames().iter().map(|f| f.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert_eq!(p.max_luma_series(), vec![10, 20, 30]);
    }

    #[test]
    fn merged_histogram_spans_range() {
        let p = LuminanceProfile::of_frames(10.0, vec![frame(10), frame(20), frame(30)]).unwrap();
        let h = p.merged_histogram(0, 2);
        assert_eq!(h.total(), 128);
        assert_eq!(h.max_nonzero(), Some(20));
        assert_eq!(p.range_max_luma(0, 3), 30);
    }

    #[test]
    #[should_panic(expected = "empty frame range")]
    fn merged_histogram_rejects_empty_range() {
        let p = LuminanceProfile::of_frames(10.0, vec![frame(10)]).unwrap();
        let _ = p.merged_histogram(1, 1);
    }

    #[test]
    fn of_clip_matches_manual_profiling() {
        use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
        let clip = Clip::new(ClipSpec {
            name: "t".into(),
            width: 16,
            height: 16,
            fps: 4.0,
            seed: 3,
            scenes: vec![SceneSpec::new(ContentKind::Bright { base: 180, spread: 10 }, 1.0)],
        })
        .unwrap();
        let p = LuminanceProfile::of_clip(&clip).unwrap();
        assert_eq!(p.len() as u32, clip.frame_count());
        assert_eq!(p.frames()[0].max_luma, clip.frame(0).max_luma());
        assert!((p.fps() - 4.0).abs() < 1e-12);
    }
}
