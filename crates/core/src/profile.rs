//! Offline luminance profiling of a video stream.
//!
//! §4: "The video clips available for streaming at the servers are first
//! profiled, processed and annotated with data characterizing the luminance
//! levels during various scenes." Profiling happens once, at the server or
//! proxy, so the handheld never has to analyse frames at runtime.

use crate::error::CoreError;
use annolight_imgproc::{Frame, Histogram};
use annolight_video::Clip;

/// Per-frame luminance statistics gathered during profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameStats {
    /// Frame index within the clip.
    pub index: u32,
    /// Maximum pixel luminance (the signal driving scene detection,
    /// Fig. 6).
    pub max_luma: u8,
    /// Mean pixel luminance.
    pub mean_luma: f64,
    /// Full 256-bin luminance histogram (needed to evaluate clip levels
    /// for every quality level without re-reading the frame).
    pub histogram: Histogram,
}

annolight_support::impl_json!(struct FrameStats { index, max_luma, mean_luma, histogram });

impl FrameStats {
    /// Profiles a single frame.
    pub fn of_frame(index: u32, frame: &Frame) -> Self {
        let histogram = frame.luma_histogram();
        let max_luma = histogram.max_nonzero().unwrap_or(0);
        let mean_luma = histogram.mean();
        Self { index, max_luma, mean_luma, histogram }
    }
}

/// The complete luminance profile of a clip.
///
/// # Example
///
/// ```
/// use annolight_core::LuminanceProfile;
/// use annolight_video::ClipLibrary;
///
/// let clip = ClipLibrary::paper_clip("officexp").unwrap().preview(3.0);
/// let profile = LuminanceProfile::of_clip(&clip).unwrap();
/// assert_eq!(profile.len() as u32, clip.frame_count());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LuminanceProfile {
    fps: f64,
    frames: Vec<FrameStats>,
}

annolight_support::impl_json!(struct LuminanceProfile { fps, frames });

impl LuminanceProfile {
    /// Profiles every frame of `clip`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] if the clip has no frames.
    pub fn of_clip(clip: &Clip) -> Result<Self, CoreError> {
        Self::of_frames(clip.fps(), clip.frames())
    }

    /// Profiles an arbitrary frame sequence at `fps`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] if the iterator yields nothing.
    pub fn of_frames<I>(fps: f64, frames: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = Frame>,
    {
        let frames: Vec<FrameStats> = frames
            .into_iter()
            .enumerate()
            .map(|(i, f)| FrameStats::of_frame(i as u32, &f))
            .collect();
        if frames.is_empty() {
            return Err(CoreError::EmptyClip);
        }
        Ok(Self { fps, frames })
    }

    /// Builds a profile from precomputed stats (used by streaming-side
    /// incremental profiling).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] for an empty vector.
    pub fn from_stats(fps: f64, frames: Vec<FrameStats>) -> Result<Self, CoreError> {
        if frames.is_empty() {
            return Err(CoreError::EmptyClip);
        }
        Ok(Self { fps, frames })
    }

    /// Frames per second of the profiled stream.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of profiled frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the profile is empty (never true for a constructed profile).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Per-frame statistics, in order.
    pub fn frames(&self) -> &[FrameStats] {
        &self.frames
    }

    /// The per-frame maximum-luminance series (the top curve of Fig. 6).
    pub fn max_luma_series(&self) -> Vec<u8> {
        self.frames.iter().map(|f| f.max_luma).collect()
    }

    /// Merges the histograms of frames `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn merged_histogram(&self, start: u32, end: u32) -> Histogram {
        assert!(start < end, "empty frame range {start}..{end}");
        assert!((end as usize) <= self.frames.len(), "range end {end} out of bounds");
        let mut h = Histogram::new();
        for f in &self.frames[start as usize..end as usize] {
            h.merge(&f.histogram);
        }
        h
    }

    /// Maximum of `max_luma` over frames `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn range_max_luma(&self, start: u32, end: u32) -> u8 {
        assert!(start < end, "empty frame range {start}..{end}");
        assert!((end as usize) <= self.frames.len(), "range end {end} out of bounds");
        self.frames[start as usize..end as usize]
            .iter()
            .map(|f| f.max_luma)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Rgb8;

    fn frame(luma: u8) -> Frame {
        Frame::filled(8, 8, Rgb8::gray(luma))
    }

    #[test]
    fn frame_stats_capture_extremes() {
        let mut f = frame(30);
        f.set_pixel(3, 3, Rgb8::gray(220));
        let s = FrameStats::of_frame(5, &f);
        assert_eq!(s.index, 5);
        assert_eq!(s.max_luma, 220);
        assert!(s.mean_luma > 30.0 && s.mean_luma < 40.0);
        assert_eq!(s.histogram.total(), 64);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(
            LuminanceProfile::of_frames(10.0, std::iter::empty()).unwrap_err(),
            CoreError::EmptyClip
        );
    }

    #[test]
    fn profile_indexes_frames_in_order() {
        let p = LuminanceProfile::of_frames(10.0, vec![frame(10), frame(20), frame(30)]).unwrap();
        assert_eq!(p.len(), 3);
        let idx: Vec<u32> = p.frames().iter().map(|f| f.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert_eq!(p.max_luma_series(), vec![10, 20, 30]);
    }

    #[test]
    fn merged_histogram_spans_range() {
        let p = LuminanceProfile::of_frames(10.0, vec![frame(10), frame(20), frame(30)]).unwrap();
        let h = p.merged_histogram(0, 2);
        assert_eq!(h.total(), 128);
        assert_eq!(h.max_nonzero(), Some(20));
        assert_eq!(p.range_max_luma(0, 3), 30);
    }

    #[test]
    #[should_panic(expected = "empty frame range")]
    fn merged_histogram_rejects_empty_range() {
        let p = LuminanceProfile::of_frames(10.0, vec![frame(10)]).unwrap();
        let _ = p.merged_histogram(1, 1);
    }

    #[test]
    fn of_clip_matches_manual_profiling() {
        use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
        let clip = Clip::new(ClipSpec {
            name: "t".into(),
            width: 16,
            height: 16,
            fps: 4.0,
            seed: 3,
            scenes: vec![SceneSpec::new(ContentKind::Bright { base: 180, spread: 10 }, 1.0)],
        })
        .unwrap();
        let p = LuminanceProfile::of_clip(&clip).unwrap();
        assert_eq!(p.len() as u32, clip.frame_count());
        assert_eq!(p.frames()[0].max_luma, clip.frame(0).max_luma());
        assert!((p.fps() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error_on_every_constructor() {
        assert!(matches!(
            LuminanceProfile::of_frames(10.0, std::iter::empty::<Frame>()),
            Err(CoreError::EmptyClip)
        ));
        assert!(matches!(
            LuminanceProfile::from_stats(10.0, Vec::new()),
            Err(CoreError::EmptyClip)
        ));
        // The parallel path reports the same error for the same input.
        assert!(matches!(
            crate::parallel::profile_frames(10.0, &[], &crate::parallel::ParallelConfig::serial()),
            Err(CoreError::EmptyClip)
        ));
    }

    #[test]
    fn single_frame_profile_supports_single_frame_scenes() {
        // A one-frame clip is the degenerate scene the planner must
        // still handle: range [0, 1) is valid and self-consistent.
        let p = LuminanceProfile::of_frames(24.0, std::iter::once(frame(123))).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.range_max_luma(0, 1), p.frames()[0].max_luma);
        assert_eq!(
            p.merged_histogram(0, 1).bins(),
            p.frames()[0].histogram.bins(),
            "one-frame merge is the frame's own histogram"
        );
    }

    #[test]
    fn merged_histogram_is_chunk_partition_independent() {
        // Scene boundaries that straddle parallel chunk edges: merging
        // [0, n) must equal merging [0, c) + [c, n) for every cut c —
        // the algebraic fact the chunked profiler relies on.
        let frames: Vec<Frame> = (0..10u8).map(|i| frame(20 + i * 13)).collect();
        let p = LuminanceProfile::of_frames(10.0, frames).unwrap();
        let whole = p.merged_histogram(0, 10);
        for cut in 1..10u32 {
            let mut parts = p.merged_histogram(0, cut);
            parts.merge(&p.merged_histogram(cut, 10));
            assert_eq!(whole.bins(), parts.bins(), "cut at {cut}");
            assert_eq!(
                p.range_max_luma(0, 10),
                p.range_max_luma(0, cut).max(p.range_max_luma(cut, 10)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn from_stats_preserves_order_and_indices() {
        let stats: Vec<FrameStats> = (0..5u32)
            .map(|i| FrameStats::of_frame(i, &frame(10 * (i as u8 + 1))))
            .collect();
        let p = LuminanceProfile::from_stats(30.0, stats.clone()).unwrap();
        assert_eq!(p.frames(), &stats[..]);
        assert_eq!(p.max_luma_series(), stats.iter().map(|s| s.max_luma).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_profile_of_single_frame_clip_matches_serial() {
        use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
        // One scene so short it yields a single frame — chunking must
        // degenerate gracefully (one chunk, any worker count).
        let clip = Clip::new(ClipSpec {
            name: "one".into(),
            width: 16,
            height: 16,
            fps: 1.0,
            seed: 9,
            scenes: vec![SceneSpec::new(ContentKind::Mid { base: 90, spread: 12, highlight_fraction: 0.02 }, 1.0)],
        })
        .unwrap();
        assert_eq!(clip.frame_count(), 1);
        let serial = LuminanceProfile::of_clip(&clip).unwrap();
        for workers in [0usize, 1, 4] {
            let par = crate::parallel::profile_clip(
                &clip,
                &crate::parallel::ParallelConfig::with_workers(workers),
            )
            .unwrap();
            assert_eq!(serial, par, "workers={workers}");
        }
    }
}
