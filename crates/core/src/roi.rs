//! User-supervised annotation: regions of interest (§3).
//!
//! "The process of annotating the data stream can be either automated …
//! or under user supervision (for example, the user may specify which
//! parts or objects of the video stream are more important in a
//! power-quality trade-off scenario)."
//!
//! A [`RegionOfInterest`] marks a rectangle (per scene span) whose pixels
//! must never clip: the clipping budget is spent exclusively on the
//! background. Planning then needs *regional* histograms, so this module
//! analyses frames directly instead of going through the pooled
//! [`LuminanceProfile`](crate::profile::LuminanceProfile) histograms.

use crate::plan::{plan_levels, ScenePlan};
use crate::quality::QualityLevel;
use crate::scenes::SceneSpan;
use annolight_display::DeviceProfile;
use annolight_imgproc::Histogram;
use annolight_video::Clip;

/// A protected rectangle, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

annolight_support::impl_json!(struct Rect { x, y, width, height });

impl Rect {
    /// Whether the rectangle contains pixel `(px, py)`.
    pub fn contains(&self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.x + self.width && py >= self.y && py < self.y + self.height
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }
}

/// A user-marked region of interest over a span of frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionOfInterest {
    /// Frames the region applies to.
    pub span: SceneSpan,
    /// The protected rectangle.
    pub rect: Rect,
}

annolight_support::impl_json!(struct RegionOfInterest { span, rect });

/// Plans one scene with an optional protected region: the clipping budget
/// is spent only on pixels *outside* the region, and the effective maximum
/// can never drop below the region's own maximum luminance.
///
/// Returns the scene plan (same shape as the automated planner's).
///
/// # Panics
///
/// Panics if the span is empty or outside the clip, or the rectangle does
/// not fit inside the frame.
pub fn plan_scene_with_roi(
    clip: &Clip,
    span: SceneSpan,
    roi: Option<Rect>,
    device: &DeviceProfile,
    quality: QualityLevel,
) -> ScenePlan {
    assert!(span.start < span.end, "empty span");
    assert!(span.end <= clip.frame_count(), "span outside clip");
    let (w, h) = clip.dimensions();
    if let Some(r) = roi {
        assert!(
            r.width > 0 && r.height > 0 && r.x + r.width <= w && r.y + r.height <= h,
            "ROI {r:?} outside {w}x{h} frame"
        );
    }
    let mut inside = Histogram::new();
    let mut outside = Histogram::new();
    for f in span.start..span.end {
        let frame = clip.frame(f);
        let luma = frame.to_luma();
        for y in 0..h {
            for x in 0..w {
                let v = luma.sample(x, y);
                match roi {
                    Some(r) if r.contains(x, y) => inside.add(v),
                    _ => outside.add(v),
                }
            }
        }
    }
    let raw_max = inside.max_nonzero().unwrap_or(0).max(outside.max_nonzero().unwrap_or(0));
    // Budget in *whole-frame* pixels, spent on the background only.
    let total = inside.total() + outside.total();
    let budget_pixels = (quality.clip_fraction() * total as f64).floor();
    let background_budget = if outside.total() == 0 {
        0.0
    } else {
        (budget_pixels / outside.total() as f64).min(1.0)
    };
    let background_level = outside.clip_level(background_budget);
    let effective = background_level.max(inside.max_nonzero().unwrap_or(0));
    let clipped = outside.count_above(effective) + inside.count_above(effective);
    let (k, backlight) = plan_levels(device, effective);
    ScenePlan {
        span,
        raw_max_luma: raw_max,
        effective_max_luma: effective,
        clipped_fraction: clipped as f64 / total as f64,
        compensation: k,
        backlight,
        power_savings: device.backlight_power().savings_vs_full(backlight),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_video::{ClipSpec, ContentKind, SceneSpec};

    /// A dark clip whose only bright content is a patch in the top-left
    /// 32x32 corner (via Credits-style sparse brights everywhere — no;
    /// use a gradient pan whose bright end sits left).
    fn clip() -> Clip {
        Clip::new(ClipSpec {
            name: "roi-test".into(),
            width: 64,
            height: 64,
            fps: 10.0,
            seed: 4,
            scenes: vec![SceneSpec::new(
                ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.02, highlight: 230 },
                2.0,
            )],
        })
        .unwrap()
    }

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    #[test]
    fn no_roi_matches_pooled_planner_within_quantisation() {
        let c = clip();
        let span = SceneSpan { start: 0, end: c.frame_count() };
        let roi_plan = plan_scene_with_roi(&c, span, None, &device(), QualityLevel::Q10);
        let profile = crate::profile::LuminanceProfile::of_clip(&c).unwrap();
        let pooled = crate::plan::BacklightPlan::compute(&profile, &[span], &device(), QualityLevel::Q10);
        assert_eq!(roi_plan.effective_max_luma, pooled.scenes()[0].effective_max_luma);
        assert_eq!(roi_plan.backlight, pooled.scenes()[0].backlight);
    }

    #[test]
    fn roi_pixels_never_clip() {
        let c = clip();
        let span = SceneSpan { start: 0, end: c.frame_count() };
        let rect = Rect { x: 0, y: 0, width: 32, height: 32 };
        let plan = plan_scene_with_roi(&c, span, Some(rect), &device(), QualityLevel::Q20);
        // Verify: no pixel inside the ROI exceeds the effective max.
        for f in span.start..span.end {
            let luma = c.frame(f).to_luma();
            for y in 0..32 {
                for x in 0..32 {
                    assert!(
                        luma.sample(x, y) <= plan.effective_max_luma,
                        "ROI pixel ({x},{y}) above effective max"
                    );
                }
            }
        }
    }

    #[test]
    fn protecting_bright_region_costs_savings() {
        // The clip's highlights are scattered; protecting a quadrant that
        // contains some of them forces a brighter effective max than the
        // unprotected plan.
        let c = clip();
        let span = SceneSpan { start: 0, end: c.frame_count() };
        let rect = Rect { x: 0, y: 0, width: 32, height: 32 };
        let protected = plan_scene_with_roi(&c, span, Some(rect), &device(), QualityLevel::Q20);
        let free = plan_scene_with_roi(&c, span, None, &device(), QualityLevel::Q20);
        assert!(protected.effective_max_luma > free.effective_max_luma);
        assert!(protected.power_savings < free.power_savings);
        // But the realised whole-frame clipping still respects the budget.
        assert!(protected.clipped_fraction <= 0.20 + 1e-9);
    }

    #[test]
    fn rect_geometry() {
        let r = Rect { x: 2, y: 3, width: 4, height: 5 };
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
        assert_eq!(r.area(), 20);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_roi_panics() {
        let c = clip();
        let span = SceneSpan { start: 0, end: 1 };
        let rect = Rect { x: 40, y: 0, width: 32, height: 32 };
        let _ = plan_scene_with_roi(&c, span, Some(rect), &device(), QualityLevel::Q10);
    }
}
