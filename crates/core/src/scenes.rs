//! Scene detection from the per-frame maximum-luminance series.
//!
//! §4.3 / Fig. 6: "we grouped frames into scenes based on their maximum
//! luminance levels: a change of 10 % or more in frame maximum luminance
//! level is considered a scene change, but only if it does not occur more
//! frequently than a threshold interval. … Both these thresholds were
//! experimentally set for minimizing visible spikes."

use crate::profile::LuminanceProfile;

/// Configuration of the scene-detection heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneDetectorConfig {
    /// Relative max-luminance change that signals a scene boundary
    /// (paper: 10 %).
    pub change_threshold: f64,
    /// Minimum scene length in seconds (the anti-flicker guard interval).
    pub min_interval_s: f64,
}

annolight_support::impl_json!(struct SceneDetectorConfig { change_threshold, min_interval_s });

impl Default for SceneDetectorConfig {
    fn default() -> Self {
        Self { change_threshold: 0.10, min_interval_s: 0.5 }
    }
}

/// A detected scene: the frame range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneSpan {
    /// First frame of the scene.
    pub start: u32,
    /// One past the last frame of the scene.
    pub end: u32,
}

annolight_support::impl_json!(struct SceneSpan { start, end });

impl SceneSpan {
    /// Number of frames in the scene.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty (never true for detector output).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The scene detector.
///
/// # Example
///
/// ```
/// use annolight_core::{LuminanceProfile, SceneDetector};
/// use annolight_video::ClipLibrary;
///
/// let clip = ClipLibrary::paper_clip("catwoman").unwrap().preview(10.0);
/// let profile = LuminanceProfile::of_clip(&clip).unwrap();
/// let scenes = SceneDetector::default().detect(&profile);
/// // Scenes tile the clip exactly.
/// assert_eq!(scenes.first().unwrap().start, 0);
/// assert_eq!(scenes.last().unwrap().end as usize, profile.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SceneDetector {
    config: SceneDetectorConfig,
}

impl SceneDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: SceneDetectorConfig) -> Self {
        Self { config }
    }

    /// The detector configuration.
    pub fn config(&self) -> SceneDetectorConfig {
        self.config
    }

    /// Splits the profile into scenes.
    ///
    /// The returned spans are non-empty, contiguous and cover
    /// `0..profile.len()`.
    pub fn detect(&self, profile: &LuminanceProfile) -> Vec<SceneSpan> {
        let series = profile.max_luma_series();
        let min_frames = (self.config.min_interval_s * profile.fps()).ceil().max(1.0) as u32;
        let mut spans = Vec::new();
        let mut start = 0u32;
        // Reference level for the running scene; a boundary is declared
        // when the current frame's max luminance deviates from it by the
        // relative threshold, provided the running scene is long enough.
        let mut reference = f64::from(series[0].max(1));
        for (i, &m) in series.iter().enumerate().skip(1) {
            let i = i as u32;
            let cur = f64::from(m);
            let rel_change = (cur - reference).abs() / reference.max(1.0);
            if rel_change >= self.config.change_threshold && i - start >= min_frames {
                spans.push(SceneSpan { start, end: i });
                start = i;
                reference = cur.max(1.0);
            } else {
                // Track slow drift within the scene so a gradual fade does
                // not accumulate into a spurious cut at its end: the
                // reference follows the running maximum envelope.
                if cur > reference {
                    reference = cur;
                }
            }
        }
        spans.push(SceneSpan { start, end: series.len() as u32 });
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::{Frame, Rgb8};

    fn profile_from_maxes(fps: f64, maxes: &[u8]) -> LuminanceProfile {
        let frames: Vec<Frame> = maxes.iter().map(|&m| Frame::filled(4, 4, Rgb8::gray(m))).collect();
        LuminanceProfile::of_frames(fps, frames).unwrap()
    }

    #[test]
    fn constant_series_is_one_scene() {
        let p = profile_from_maxes(10.0, &[100; 40]);
        let spans = SceneDetector::default().detect(&p);
        assert_eq!(spans, vec![SceneSpan { start: 0, end: 40 }]);
    }

    #[test]
    fn hard_cut_is_detected() {
        let mut maxes = vec![80u8; 20];
        maxes.extend(vec![200u8; 20]);
        let p = profile_from_maxes(10.0, &maxes);
        let spans = SceneDetector::default().detect(&p);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], SceneSpan { start: 0, end: 20 });
        assert_eq!(spans[1], SceneSpan { start: 20, end: 40 });
    }

    #[test]
    fn small_changes_do_not_split() {
        // 5% wobble stays below the 10% threshold.
        let maxes: Vec<u8> = (0..60).map(|i| if i % 2 == 0 { 100 } else { 104 }).collect();
        let p = profile_from_maxes(10.0, &maxes);
        let spans = SceneDetector::default().detect(&p);
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn guard_interval_suppresses_rapid_cuts() {
        // Alternating 80/200 every frame at 10 fps with a 0.5 s guard: a
        // cut is only allowed every 5 frames.
        let maxes: Vec<u8> = (0..30).map(|i| if i % 2 == 0 { 80 } else { 200 }).collect();
        let p = profile_from_maxes(10.0, &maxes);
        let spans = SceneDetector::default().detect(&p);
        for s in &spans[..spans.len() - 1] {
            assert!(s.len() >= 5, "scene shorter than guard: {s:?}");
        }
    }

    #[test]
    fn spans_tile_profile() {
        let maxes: Vec<u8> = (0..100).map(|i| ((i * 37) % 256) as u8).collect();
        let p = profile_from_maxes(12.0, &maxes);
        let spans = SceneDetector::default().detect(&p);
        assert_eq!(spans[0].start, 0);
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap between scenes");
        }
        assert_eq!(spans.last().unwrap().end, 100);
        assert!(spans.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn slow_fade_does_not_oversplit() {
        // A +1-per-frame ramp: each step is < 10% so the envelope tracker
        // follows it without declaring boundaries.
        let maxes: Vec<u8> = (0..100).map(|i| (100 + i) as u8).collect();
        let p = profile_from_maxes(10.0, &maxes);
        let spans = SceneDetector::default().detect(&p);
        assert_eq!(spans.len(), 1, "fade split into {spans:?}");
    }

    #[test]
    fn drop_after_fade_is_detected() {
        let mut maxes: Vec<u8> = (0..50).map(|i| (150 + i) as u8).collect();
        maxes.extend(vec![60u8; 30]);
        let p = profile_from_maxes(10.0, &maxes);
        let spans = SceneDetector::default().detect(&p);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].start, 50);
    }

    #[test]
    fn custom_threshold_respected() {
        let mut maxes = vec![100u8; 20];
        maxes.extend(vec![108u8; 20]); // 8% change
        let p = profile_from_maxes(10.0, &maxes);
        let strict = SceneDetector::new(SceneDetectorConfig {
            change_threshold: 0.05,
            min_interval_s: 0.5,
        });
        assert_eq!(strict.detect(&p).len(), 2);
        assert_eq!(SceneDetector::default().detect(&p).len(), 1);
    }
}
