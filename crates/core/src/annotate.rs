//! The end-to-end annotator (server/proxy side).
//!
//! Ties the pipeline together: profile → scene detection → plan →
//! annotation track. This is the step performed once per (clip, device
//! class, quality) at the server or proxy node, leaving the client only
//! the per-scene backlight writes.

use crate::error::CoreError;
use crate::extensions::CreditsGuard;
use crate::parallel::ParallelConfig;
use crate::plan::BacklightPlan;
use crate::policy::PolicyKind;
use crate::profile::LuminanceProfile;
use crate::quality::QualityLevel;
use crate::scenes::{SceneDetector, SceneSpan};
use crate::track::{AnnotationMode, AnnotationTrack};
use annolight_display::DeviceProfile;
use annolight_video::Clip;

/// Server-side annotator for one target device and quality level.
///
/// # Example
///
/// ```
/// use annolight_core::{Annotator, QualityLevel};
/// use annolight_display::DeviceProfile;
/// use annolight_video::ClipLibrary;
///
/// let clip = ClipLibrary::paper_clip("spiderman2").unwrap().preview(6.0);
/// let annotator = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q15);
/// let annotated = annotator.annotate_clip(&clip).unwrap();
/// assert_eq!(annotated.track().frame_count(), clip.frame_count());
/// ```
#[derive(Debug, Clone)]
pub struct Annotator {
    device: DeviceProfile,
    quality: QualityLevel,
    detector: SceneDetector,
    mode: AnnotationMode,
    credits_guard: Option<CreditsGuard>,
    parallelism: ParallelConfig,
    policy: PolicyKind,
}

impl Annotator {
    /// Creates an annotator with the paper's default scene detector and
    /// per-scene mode.
    pub fn new(device: DeviceProfile, quality: QualityLevel) -> Self {
        Self {
            device,
            quality,
            detector: SceneDetector::default(),
            mode: AnnotationMode::PerScene,
            credits_guard: None,
            parallelism: ParallelConfig::serial(),
            policy: PolicyKind::PeakClip,
        }
    }

    /// Selects the annotation-policy backend (default:
    /// [`PolicyKind::PeakClip`], the paper's planner). See
    /// [`crate::policy`] for the alternatives.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The selected annotation-policy backend.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Uses a custom scene detector.
    pub fn with_detector(mut self, detector: SceneDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Switches between per-scene and per-frame annotation.
    pub fn with_mode(mut self, mode: AnnotationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables the end-credits guard (the paper's noted failure mode:
    /// clipping text on a uniform background, §4.3). Scenes that look like
    /// credits get their clipping budget capped.
    pub fn with_credits_guard(mut self, guard: CreditsGuard) -> Self {
        self.credits_guard = Some(guard);
        self
    }

    /// Fans the profiling and planning stages out over an intra-clip
    /// worker pool ([`ParallelConfig`]). The default is the serial
    /// reference pipeline (`workers == 0`); any worker count produces
    /// byte-identical annotations — see `tests/parallel_identity.rs`.
    pub fn with_parallelism(mut self, parallelism: ParallelConfig) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The intra-clip parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallelism
    }

    /// The target device.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The quality level.
    pub fn quality(&self) -> QualityLevel {
        self.quality
    }

    /// Profiles and annotates a whole clip.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] for an empty clip.
    pub fn annotate_clip(&self, clip: &Clip) -> Result<AnnotatedClip, CoreError> {
        let profile = crate::parallel::profile_clip(clip, &self.parallelism)?;
        self.annotate_profile(&profile)
    }

    /// Annotates an already-computed profile (lets callers reuse one
    /// profile across devices and quality levels, as the server does for
    /// its five offered qualities).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyClip`] for an empty profile.
    pub fn annotate_profile(&self, profile: &LuminanceProfile) -> Result<AnnotatedClip, CoreError> {
        if profile.is_empty() {
            return Err(CoreError::EmptyClip);
        }
        let spans = match self.mode {
            AnnotationMode::PerScene => self.detector.detect(profile),
            AnnotationMode::PerFrame => (0..profile.len() as u32)
                .map(|i| SceneSpan { start: i, end: i + 1 })
                .collect(),
        };
        let plan = match &self.credits_guard {
            None => BacklightPlan::compute_policy(
                profile,
                &spans,
                &self.device,
                self.quality,
                self.policy,
                &self.parallelism,
            ),
            // The credits guard re-plans flagged scenes with data-dependent
            // quality caps; it stays on the serial reference path and the
            // peak-clip policy (its scene heuristics are defined against
            // the paper's planner).
            Some(guard) => guard.guarded_plan(profile, &spans, &self.device, self.quality),
        };
        let track = AnnotationTrack::from_plan(&plan, self.mode, profile.len() as u32);
        Ok(AnnotatedClip { plan, track })
    }
}

/// The result of annotating a clip: the full plan (for analysis) and the
/// compact track (what actually rides in the stream).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedClip {
    plan: BacklightPlan,
    track: AnnotationTrack,
}

impl AnnotatedClip {
    /// The per-scene plan.
    pub fn plan(&self) -> &BacklightPlan {
        &self.plan
    }

    /// The annotation track.
    pub fn track(&self) -> &AnnotationTrack {
        &self.track
    }

    /// Duration-weighted backlight power saving predicted for `device`
    /// (the Fig. 9 quantity). The annotation levels were computed for the
    /// annotator's device; evaluating them against another device's power
    /// model answers "what would this track save there".
    pub fn predicted_backlight_savings(&self, device: &DeviceProfile) -> f64 {
        let entries = self.track.entries();
        let frames = self.track.frame_count();
        if frames == 0 {
            return 0.0;
        }
        let mut weighted = 0.0;
        for (i, e) in entries.iter().enumerate() {
            let end = entries.get(i + 1).map_or(frames, |n| n.start_frame);
            let dur = f64::from(end - e.start_frame);
            weighted += device.backlight_power().savings_vs_full(e.backlight) * dur;
        }
        weighted / f64::from(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};

    fn two_scene_clip() -> Clip {
        Clip::new(ClipSpec {
            name: "t".into(),
            width: 32,
            height: 32,
            fps: 10.0,
            seed: 11,
            scenes: vec![
                SceneSpec::new(
                    ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.01, highlight: 200 },
                    2.0,
                ),
                SceneSpec::new(ContentKind::Bright { base: 215, spread: 25 }, 2.0),
            ],
        })
        .unwrap()
    }

    #[test]
    fn annotate_covers_whole_clip() {
        let clip = two_scene_clip();
        let a = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10);
        let out = a.annotate_clip(&clip).unwrap();
        assert_eq!(out.track().frame_count(), clip.frame_count());
        assert_eq!(out.track().entries()[0].start_frame, 0);
    }

    #[test]
    fn detects_the_cut() {
        let clip = two_scene_clip();
        let a = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10);
        let out = a.annotate_clip(&clip).unwrap();
        // The dark→bright cut at frame 20 must appear as an entry boundary.
        assert!(
            out.track().entries().iter().any(|e| e.start_frame == 20),
            "entries: {:?}",
            out.track().entries()
        );
    }

    #[test]
    fn dark_scene_gets_dimmer_backlight_than_bright() {
        let clip = two_scene_clip();
        let a = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10);
        let out = a.annotate_clip(&clip).unwrap();
        let t = out.track();
        let dark = t.entry_at(5).unwrap().backlight;
        let bright = t.entry_at(30).unwrap().backlight;
        assert!(dark < bright, "dark {dark} vs bright {bright}");
    }

    #[test]
    fn per_frame_mode_annotates_every_frame() {
        let clip = two_scene_clip();
        let a = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10)
            .with_mode(AnnotationMode::PerFrame);
        let out = a.annotate_clip(&clip).unwrap();
        assert_eq!(out.plan().scenes().len() as u32, clip.frame_count());
        // The wire form still collapses runs of identical levels.
        assert!(out.track().to_rle_bytes().len() < 40 * 6 + 64);
    }

    #[test]
    fn per_frame_wins_on_rapid_alternation() {
        // Dark/bright flashes every 0.3 s: below the scene detector's
        // 0.5 s guard interval, so per-scene mode must light the whole
        // stretch for its brightest frames, while per-frame mode tracks
        // the dark dips ("sometimes, better results are obtained if we
        // allow backlight changes for each frame").
        let mut scenes = Vec::new();
        for i in 0..10 {
            let content = if i % 2 == 0 {
                ContentKind::Dark { base: 35, spread: 8, highlight_fraction: 0.0, highlight: 0 }
            } else {
                ContentKind::Bright { base: 210, spread: 20 }
            };
            scenes.push(SceneSpec::new(content, 0.3));
        }
        let clip = Clip::new(ClipSpec {
            name: "flash".into(),
            width: 32,
            height: 32,
            fps: 10.0,
            seed: 5,
            scenes,
        })
        .unwrap();
        let dev = DeviceProfile::ipaq_5555();
        let scene = Annotator::new(dev.clone(), QualityLevel::Q5)
            .annotate_clip(&clip)
            .unwrap()
            .predicted_backlight_savings(&dev);
        let frame = Annotator::new(dev.clone(), QualityLevel::Q5)
            .with_mode(AnnotationMode::PerFrame)
            .annotate_clip(&clip)
            .unwrap()
            .predicted_backlight_savings(&dev);
        assert!(frame > scene + 0.05, "per-frame {frame} should beat per-scene {scene}");
    }

    #[test]
    fn savings_increase_with_quality_loss() {
        let clip = two_scene_clip();
        let dev = DeviceProfile::ipaq_5555();
        let mut last = -1.0;
        for q in QualityLevel::PAPER_LEVELS {
            let s = Annotator::new(dev.clone(), q)
                .annotate_clip(&clip)
                .unwrap()
                .predicted_backlight_savings(&dev);
            assert!(s + 1e-9 >= last, "{q:?}");
            last = s;
        }
    }

    #[test]
    fn different_devices_get_different_levels() {
        let clip = two_scene_clip();
        let led = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10)
            .annotate_clip(&clip)
            .unwrap();
        let ccfl = Annotator::new(DeviceProfile::ipaq_3650(), QualityLevel::Q10)
            .annotate_clip(&clip)
            .unwrap();
        // Same scene structure, device-specific levels ("device specific
        // are the actual backlight levels").
        assert_ne!(
            led.track().entries()[0].backlight,
            ccfl.track().entries()[0].backlight
        );
    }

    #[test]
    fn profile_reuse_matches_direct_annotation() {
        let clip = two_scene_clip();
        let a = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q5);
        let direct = a.annotate_clip(&clip).unwrap();
        let profile = LuminanceProfile::of_clip(&clip).unwrap();
        let via_profile = a.annotate_profile(&profile).unwrap();
        assert_eq!(direct, via_profile);
    }
}
