//! On-the-fly annotation for live sources (videoconferencing).
//!
//! Fig. 1 allows the proxy to be "a high-end machine with the ability to
//! process the video stream in real-time, on-the-fly (example in
//! videoconferencing)". A live source has no finished clip to profile, so
//! the [`OnlineAnnotator`] works incrementally: frames are pushed as they
//! arrive, scene boundaries are detected with the same max-luminance
//! heuristic, and an [`AnnotationEntry`] is emitted as soon as a scene
//! closes — or when the bounded lookahead fills, which caps the added
//! latency.
//!
//! Unlike offline profiling, the emitted entry describes a scene whose
//! *future* frames are unknown; the entry is computed from the frames seen
//! so far, which is exactly the information a real-time proxy has.

use crate::plan::plan_levels;
use crate::quality::QualityLevel;
use crate::scenes::SceneDetectorConfig;
use crate::track::AnnotationEntry;
use annolight_display::DeviceProfile;
use annolight_imgproc::{Frame, Histogram};

/// Incremental annotator for live streams.
///
/// # Example
///
/// ```
/// use annolight_core::online::OnlineAnnotator;
/// use annolight_core::QualityLevel;
/// use annolight_display::DeviceProfile;
/// use annolight_imgproc::{Frame, Rgb8};
///
/// let mut live = OnlineAnnotator::new(
///     DeviceProfile::ipaq_5555(),
///     QualityLevel::Q10,
///     12.0,  // fps
///     24,    // lookahead frames (2 s of latency budget)
/// );
/// let mut entries = Vec::new();
/// for i in 0..30 {
///     let v = if i < 15 { 60 } else { 220 };
///     entries.extend(live.push_frame(&Frame::filled(16, 16, Rgb8::gray(v))));
/// }
/// entries.extend(live.finish());
/// assert!(entries.len() >= 2, "the cut must produce a second entry");
/// ```
#[derive(Debug, Clone)]
pub struct OnlineAnnotator {
    device: DeviceProfile,
    quality: QualityLevel,
    detector: SceneDetectorConfig,
    fps: f64,
    lookahead: u32,
    /// Index of the next frame to be pushed.
    next_frame: u32,
    /// First frame of the running scene.
    scene_start: u32,
    /// Merged histogram of the running scene.
    scene_hist: Histogram,
    /// Max-luminance reference for the running scene (envelope-tracked).
    reference: f64,
}

impl OnlineAnnotator {
    /// Creates a live annotator.
    ///
    /// `lookahead` bounds how many frames a scene may grow before an entry
    /// is forced out (the latency budget); it must be at least one frame.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive and finite or `lookahead` is zero.
    pub fn new(device: DeviceProfile, quality: QualityLevel, fps: f64, lookahead: u32) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps {fps} must be positive");
        assert!(lookahead > 0, "lookahead must be at least one frame");
        Self {
            device,
            quality,
            detector: SceneDetectorConfig::default(),
            fps,
            lookahead,
            next_frame: 0,
            scene_start: 0,
            scene_hist: Histogram::new(),
            reference: 0.0,
        }
    }

    /// Overrides the scene-detection thresholds.
    pub fn with_detector(mut self, detector: SceneDetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Number of frames pushed so far.
    pub fn frames_seen(&self) -> u32 {
        self.next_frame
    }

    /// Worst-case latency this annotator adds, in seconds.
    pub fn max_latency_s(&self) -> f64 {
        f64::from(self.lookahead) / self.fps
    }

    /// Pushes the next live frame; returns an [`AnnotationEntry`] whenever
    /// a scene closes (at a detected cut or when the lookahead fills).
    pub fn push_frame(&mut self, frame: &Frame) -> Option<AnnotationEntry> {
        let idx = self.next_frame;
        self.next_frame += 1;
        let hist = frame.luma_histogram();
        let max = f64::from(hist.max_nonzero().unwrap_or(0));

        if idx == self.scene_start {
            // First frame of a new scene.
            self.scene_hist = hist;
            self.reference = max.max(1.0);
            return None;
        }

        let min_frames = (self.detector.min_interval_s * self.fps).ceil().max(1.0) as u32;
        let rel_change = (max - self.reference).abs() / self.reference.max(1.0);
        let scene_len = idx - self.scene_start;
        let cut = rel_change >= self.detector.change_threshold && scene_len >= min_frames;
        let forced = scene_len >= self.lookahead;

        if cut || forced {
            let entry = self.close_scene();
            // The current frame opens the next scene.
            self.scene_start = idx;
            self.scene_hist = hist;
            self.reference = max.max(1.0);
            Some(entry)
        } else {
            self.scene_hist.merge(&hist);
            if max > self.reference {
                self.reference = max;
            }
            None
        }
    }

    /// Flushes the running scene at end of stream.
    pub fn finish(&mut self) -> Option<AnnotationEntry> {
        if self.next_frame == self.scene_start {
            return None;
        }
        let entry = self.close_scene();
        self.scene_start = self.next_frame;
        Some(entry)
    }

    fn close_scene(&self) -> AnnotationEntry {
        let effective = self.scene_hist.clip_level(self.quality.clip_fraction());
        let (k, backlight) = plan_levels(&self.device, effective);
        AnnotationEntry {
            start_frame: self.scene_start,
            backlight,
            compensation: k,
            effective_max_luma: effective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Rgb8;

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    fn gray(v: u8) -> Frame {
        Frame::filled(16, 16, Rgb8::gray(v))
    }

    #[test]
    fn constant_stream_emits_on_lookahead() {
        let mut live = OnlineAnnotator::new(device(), QualityLevel::Q10, 10.0, 20);
        let mut entries = Vec::new();
        for _ in 0..45 {
            entries.extend(live.push_frame(&gray(90)));
        }
        entries.extend(live.finish());
        // 45 frames with a 20-frame lookahead → scenes of 20/20/5.
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].start_frame, 0);
        assert_eq!(entries[1].start_frame, 20);
        assert_eq!(entries[2].start_frame, 40);
        // All scenes carry the same level (same content).
        assert_eq!(entries[0].backlight, entries[1].backlight);
    }

    #[test]
    fn cut_closes_scene_immediately_after_guard() {
        let mut live = OnlineAnnotator::new(device(), QualityLevel::Q10, 10.0, 100);
        let mut entries = Vec::new();
        for _ in 0..15 {
            entries.extend(live.push_frame(&gray(60)));
        }
        for _ in 0..15 {
            entries.extend(live.push_frame(&gray(220)));
        }
        entries.extend(live.finish());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].start_frame, 15);
        assert!(entries[0].backlight < entries[1].backlight);
    }

    #[test]
    fn latency_is_bounded() {
        let live = OnlineAnnotator::new(device(), QualityLevel::Q10, 12.0, 24);
        assert!((live.max_latency_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entries_match_offline_for_clean_scenes() {
        // For well-separated scenes the online entries agree with offline
        // per-scene planning (same heuristic, same histograms).
        use crate::annotate::Annotator;
        use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
        let clip = Clip::new(ClipSpec {
            name: "t".into(),
            width: 32,
            height: 32,
            fps: 10.0,
            seed: 6,
            scenes: vec![
                SceneSpec::new(
                    ContentKind::Dark { base: 45, spread: 10, highlight_fraction: 0.0, highlight: 0 },
                    2.0,
                ),
                SceneSpec::new(ContentKind::Bright { base: 210, spread: 20 }, 2.0),
            ],
        })
        .unwrap();
        let offline = Annotator::new(device(), QualityLevel::Q10).annotate_clip(&clip).unwrap();

        let mut live = OnlineAnnotator::new(device(), QualityLevel::Q10, clip.fps(), 1000);
        let mut entries = Vec::new();
        for f in clip.frames() {
            entries.extend(live.push_frame(&f));
        }
        entries.extend(live.finish());

        assert_eq!(entries.len(), offline.track().entries().len());
        for (on, off) in entries.iter().zip(offline.track().entries()) {
            assert_eq!(on.start_frame, off.start_frame);
            assert_eq!(on.effective_max_luma, off.effective_max_luma);
            assert_eq!(on.backlight, off.backlight);
        }
    }

    #[test]
    fn finish_on_empty_stream_is_none() {
        let mut live = OnlineAnnotator::new(device(), QualityLevel::Q10, 10.0, 10);
        assert!(live.finish().is_none());
        assert_eq!(live.frames_seen(), 0);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        OnlineAnnotator::new(device(), QualityLevel::Q10, 10.0, 0);
    }
}
