//! Error type for the annotation pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced by profiling, planning and annotation (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The input contained no frames.
    EmptyClip,
    /// An annotation byte stream failed to parse.
    MalformedTrack {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// The annotation track targets a different device than requested.
    DeviceMismatch {
        /// Device name in the track.
        expected: String,
        /// Device name asked for.
        actual: String,
    },
    /// A frame index was outside the annotated range.
    FrameOutOfRange {
        /// Requested frame.
        frame: u32,
        /// Number of annotated frames.
        frames: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyClip => write!(f, "clip contains no frames"),
            CoreError::MalformedTrack { reason } => write!(f, "malformed annotation track: {reason}"),
            CoreError::DeviceMismatch { expected, actual } => {
                write!(f, "annotation track is for device {expected}, not {actual}")
            }
            CoreError::FrameOutOfRange { frame, frames } => {
                write!(f, "frame {frame} outside annotated range of {frames} frames")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            CoreError::EmptyClip,
            CoreError::MalformedTrack { reason: "bad magic".into() },
            CoreError::DeviceMismatch { expected: "a".into(), actual: "b".into() },
            CoreError::FrameOutOfRange { frame: 9, frames: 5 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
