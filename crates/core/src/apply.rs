//! Applying annotations: server-side compensation and client-side playback.
//!
//! §4.3/§5: the compensation of the frames is performed at the server or
//! proxy; "the only extra operation that the device has to perform during
//! playback is to adjust the backlight level periodically, according to the
//! annotations in the video stream."

use crate::error::CoreError;
use crate::track::AnnotationTrack;
use annolight_display::{BacklightController, BacklightLevel, ControllerConfig};
use annolight_imgproc::{contrast_enhance, ClipStats, Frame};

/// Compensates one frame for playback under the annotated backlight level
/// (server/proxy side): contrast enhancement by the entry's `k`.
///
/// Returns the clipping statistics — the realised quality degradation for
/// this frame.
///
/// # Errors
///
/// Returns [`CoreError::FrameOutOfRange`] if `frame_idx` is outside the
/// track.
pub fn compensate_frame(
    frame: &mut Frame,
    track: &AnnotationTrack,
    frame_idx: u32,
) -> Result<ClipStats, CoreError> {
    let entry = track.entry_at(frame_idx)?;
    Ok(contrast_enhance(frame, entry.compensation))
}

/// Simulates the client's backlight driver over a whole clip: for every
/// frame, the annotated level is requested from a [`BacklightController`]
/// (which applies the anti-flicker guards), and the level actually in
/// effect is recorded.
///
/// Returns one backlight level per frame plus the controller statistics.
///
/// # Errors
///
/// Returns [`CoreError::MalformedTrack`] if the track covers no frames.
pub fn apply_annotation(
    track: &AnnotationTrack,
    config: ControllerConfig,
) -> Result<(Vec<BacklightLevel>, annolight_display::SwitchStats), CoreError> {
    let frames = track.frame_count();
    if frames == 0 {
        return Err(CoreError::MalformedTrack { reason: "track covers zero frames".into() });
    }
    let fps = track.fps().max(f64::EPSILON);
    let mut controller = BacklightController::new(config);
    let mut levels = Vec::with_capacity(frames as usize);
    for f in 0..frames {
        let entry = track.entry_at(f).expect("frame index in range by construction");
        let now = f64::from(f) / fps;
        levels.push(controller.request(now, entry.backlight));
    }
    Ok((levels, controller.stats()))
}

/// The client-side alternative of §4.3: the server streams *generic*
/// annotations (effective maximum luminance per scene, same for every
/// client type) and the device computes its own backlight levels — "a
/// simple multiplication, followed by a table look-up".
///
/// Returns the device-specific backlight level for every entry of the
/// track, computed from the entry's `effective_max_luma` through the
/// device's inverse transfer LUT. For a track that was *already* computed
/// for this device, the result matches the embedded levels to within one
/// LUT quantisation step (and never under-drives the display).
pub fn client_side_levels(
    track: &AnnotationTrack,
    device: &annolight_display::DeviceProfile,
) -> Vec<BacklightLevel> {
    let gamma = device.panel().white_gamma();
    let lut = device.transfer().inverse_lut();
    track
        .entries()
        .iter()
        .map(|e| {
            if e.effective_max_luma == 0 {
                return BacklightLevel::MIN;
            }
            // The "simple multiplication": effective max → target
            // luminance through the panel response...
            let target = (f64::from(e.effective_max_luma) / 255.0).powf(gamma);
            // ...and the table look-up through the 256-entry inverse LUT.
            let idx = (target * 255.0).ceil().clamp(0.0, 255.0) as usize;
            lut[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityLevel;
    use crate::track::{AnnotationEntry, AnnotationMode};
    use annolight_imgproc::Rgb8;

    fn track(entries: Vec<AnnotationEntry>, frames: u32) -> AnnotationTrack {
        AnnotationTrack::new(
            "dev",
            QualityLevel::Q10,
            AnnotationMode::PerScene,
            10.0,
            frames,
            entries,
        )
        .unwrap()
    }

    fn entry(start: u32, backlight: u8, k: f32) -> AnnotationEntry {
        AnnotationEntry {
            start_frame: start,
            backlight: BacklightLevel(backlight),
            compensation: k,
            effective_max_luma: 128,
        }
    }

    #[test]
    fn compensate_scales_frame() {
        let t = track(vec![entry(0, 100, 2.0)], 10);
        let mut f = Frame::filled(4, 4, Rgb8::gray(50));
        let stats = compensate_frame(&mut f, &t, 3).unwrap();
        assert_eq!(f.pixel(0, 0), Rgb8::gray(100));
        assert_eq!(stats.clipped_pixels, 0);
    }

    #[test]
    fn compensate_out_of_range() {
        let t = track(vec![entry(0, 100, 2.0)], 10);
        let mut f = Frame::new(2, 2);
        assert!(compensate_frame(&mut f, &t, 10).is_err());
    }

    #[test]
    fn apply_produces_level_per_frame() {
        let t = track(vec![entry(0, 100, 1.5), entry(20, 200, 1.1)], 40);
        let (levels, stats) = apply_annotation(&t, ControllerConfig::default()).unwrap();
        assert_eq!(levels.len(), 40);
        assert_eq!(levels[0], BacklightLevel(100));
        assert_eq!(levels[39], BacklightLevel(200));
        assert!(stats.switches >= 2);
    }

    #[test]
    fn controller_guard_applies_during_playback() {
        // Scene changes every 2 frames at 10 fps (0.2 s) but the guard is
        // 0.5 s — many requests are suppressed.
        let entries: Vec<AnnotationEntry> = (0..20)
            .map(|i| entry(i * 2, if i % 2 == 0 { 80 } else { 200 }, 1.2))
            .collect();
        let t = track(entries, 40);
        let (levels, stats) = apply_annotation(&t, ControllerConfig::default()).unwrap();
        assert_eq!(levels.len(), 40);
        assert!(stats.suppressed > 0, "guard should suppress rapid toggling");
    }

    #[test]
    fn client_side_lookup_matches_server_levels() {
        use crate::annotate::Annotator;
        use annolight_display::DeviceProfile;
        use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
        let clip = Clip::new(ClipSpec {
            name: "t".into(),
            width: 32,
            height: 32,
            fps: 10.0,
            seed: 9,
            scenes: vec![
                SceneSpec::new(
                    ContentKind::Dark { base: 45, spread: 12, highlight_fraction: 0.01, highlight: 200 },
                    2.0,
                ),
                SceneSpec::new(ContentKind::Bright { base: 205, spread: 25 }, 2.0),
            ],
        })
        .unwrap();
        for device in DeviceProfile::paper_devices() {
            let annotated = Annotator::new(device.clone(), QualityLevel::Q10)
                .annotate_clip(&clip)
                .unwrap();
            let server_levels: Vec<BacklightLevel> =
                annotated.track().entries().iter().map(|e| e.backlight).collect();
            let client_levels = client_side_levels(annotated.track(), &device);
            assert_eq!(server_levels.len(), client_levels.len());
            for (s, c) in server_levels.iter().zip(&client_levels) {
                // Within one LUT quantisation step, and never dimmer than
                // the server's (never under-driven).
                assert!(c.0 >= s.0, "{}: client {c} below server {s}", device.name());
                assert!(
                    u16::from(c.0) <= u16::from(s.0) + 8,
                    "{}: client {c} far above server {s}",
                    device.name()
                );
            }
        }
    }

    #[test]
    fn client_side_black_scene_is_min() {
        let t = track(vec![entry(0, 100, 1.0)], 10);
        // entry() uses effective 128; craft one with 0 via the raw struct.
        let t0 = AnnotationTrack::new(
            "dev",
            QualityLevel::Q0,
            AnnotationMode::PerScene,
            10.0,
            5,
            vec![AnnotationEntry {
                start_frame: 0,
                backlight: BacklightLevel(10),
                compensation: 1.0,
                effective_max_luma: 0,
            }],
        )
        .unwrap();
        let dev = annolight_display::DeviceProfile::ipaq_5555();
        assert_eq!(client_side_levels(&t0, &dev), vec![BacklightLevel::MIN]);
        assert_eq!(client_side_levels(&t, &dev).len(), 1);
    }

    #[test]
    fn zero_guard_follows_track_exactly() {
        let t = track(vec![entry(0, 100, 1.5), entry(5, 200, 1.1), entry(9, 60, 1.9)], 15);
        let cfg = ControllerConfig { min_switch_interval_s: 0.0, min_step: 1 };
        let (levels, _) = apply_annotation(&t, cfg).unwrap();
        assert_eq!(levels[4], BacklightLevel(100));
        assert_eq!(levels[5], BacklightLevel(200));
        assert_eq!(levels[9], BacklightLevel(60));
    }
}
