//! Pluggable annotation policies.
//!
//! The planner originally hard-coded the source paper's
//! peak-luminance/clipping policy. This module turns the per-scene
//! planning kernel into a small trait ([`AnnotationPolicy`]) with three
//! deterministic backends selected by [`PolicyKind`]:
//!
//! * [`PolicyKind::PeakClip`] — the paper's policy, **extracted
//!   unchanged** from the pre-policy `BacklightPlan` so it is the
//!   byte-identity reference every conformance tier diffs against.
//! * [`PolicyKind::Hebs`] — histogram-equalization backlight scaling
//!   (Iranli/Fatemi/Pedram): the pixel transformation is a monotone
//!   per-scene remap built from the **full** luminance histogram
//!   ([`annolight_imgproc::HebsLut`]), which brightens dark-mass scenes
//!   beyond the pure contrast stretch and lets the backlight drop
//!   further at the *same* clipping budget ([`hebs_levels`]).
//! * [`PolicyKind::SpatialScale`] — resolution-aware annotation after
//!   "Power-Efficient Video Streaming Using Optimal Spatial Scaling"
//!   (Herglotz et al.): scene *planning* is peak-clip, but the backend
//!   answers [`select_resolution`](AnnotationPolicy::select_resolution)
//!   queries so the proxy can transcode to half resolution when the
//!   priced WNIC + decode energy at half resolution beats full
//!   resolution by more than [`SPATIAL_MARGIN`].
//!
//! Every backend is a stateless `'static` singleton: policy dispatch is
//! a `match` on a `Copy` enum, cheap enough for cache keys, wire
//! formats and per-scene hot loops alike. All three produce
//! byte-identical output across worker counts because they run inside
//! the same [`chunked_map`](crate::parallel::chunked_map) fan-out with
//! pure per-scene kernels.

use crate::plan::{peak_clip_scene, ScenePlan};
use crate::profile::LuminanceProfile;
use crate::quality::QualityLevel;
use crate::scenes::{SceneDetector, SceneSpan};
use crate::track::AnnotationMode;
use annolight_display::{BacklightLevel, DeviceProfile};
use annolight_imgproc::{ClipStats, Frame, HebsLut, Histogram};

/// Selects an [`AnnotationPolicy`] backend.
///
/// The discriminant is part of the public surface: it is written into
/// serve cache keys and the negotiation wire format, so cached tracks
/// and streams never cross policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// The source paper's peak-luminance/clipping policy (reference).
    #[default]
    PeakClip,
    /// Histogram-equalization backlight scaling.
    Hebs,
    /// Peak-clip planning plus proxy-side optimal spatial scaling.
    SpatialScale,
}

annolight_support::impl_json!(enum PolicyKind { PeakClip, Hebs, SpatialScale });

impl PolicyKind {
    /// Every backend, in id order — the conformance matrices iterate this.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::PeakClip, PolicyKind::Hebs, PolicyKind::SpatialScale];

    /// Stable one-byte id (cache keys, wire formats).
    pub fn id(self) -> u8 {
        match self {
            PolicyKind::PeakClip => 0,
            PolicyKind::Hebs => 1,
            PolicyKind::SpatialScale => 2,
        }
    }

    /// Inverse of [`id`](Self::id).
    pub fn from_id(id: u8) -> Option<PolicyKind> {
        match id {
            0 => Some(PolicyKind::PeakClip),
            1 => Some(PolicyKind::Hebs),
            2 => Some(PolicyKind::SpatialScale),
            _ => None,
        }
    }

    /// Human-readable policy name (figure tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::PeakClip => "peak-clip",
            PolicyKind::Hebs => "hebs",
            PolicyKind::SpatialScale => "spatial-scale",
        }
    }

    /// The backend singleton.
    pub fn policy(self) -> &'static dyn AnnotationPolicy {
        match self {
            PolicyKind::PeakClip => &PeakClip,
            PolicyKind::Hebs => &Hebs,
            PolicyKind::SpatialScale => &SpatialScale,
        }
    }
}

/// Relative energy margin half-resolution must win by before
/// [`SpatialScale`] switches away from full resolution — hysteresis
/// against flapping on near-ties.
pub const SPATIAL_MARGIN: f64 = 0.02;

/// The priced energy of serving one clip at each candidate resolution
/// (WNIC transfer + decode CPU; backlight excluded — it is identical
/// across resolutions and owned by the backlight plan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionCost {
    /// Session energy at full resolution, joules.
    pub full_energy_j: f64,
    /// Session energy at half resolution, joules.
    pub half_energy_j: f64,
    /// Whether the clip's dimensions admit the 2× downscale path
    /// (halved dimensions must stay codec-legal).
    pub half_supported: bool,
}

annolight_support::impl_json!(struct ResolutionCost { full_energy_j, half_energy_j, half_supported });

/// A policy's answer to a [`ResolutionCost`] query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionDecision {
    /// Serve the 2×-downscaled variant.
    pub use_half: bool,
    /// Echo of the priced full-resolution energy, joules.
    pub full_energy_j: f64,
    /// Echo of the priced half-resolution energy, joules.
    pub half_energy_j: f64,
}

annolight_support::impl_json!(struct ResolutionDecision { use_half, full_energy_j, half_energy_j });

/// A deterministic per-scene annotation backend.
///
/// Implementations must be pure functions of their arguments (no
/// interior state, no RNG, no floats whose order of evaluation depends
/// on chunking) so that [`BacklightPlan::compute_policy`]
/// (crate::plan::BacklightPlan::compute_policy) stays byte-identical
/// across worker counts.
pub trait AnnotationPolicy: Send + Sync + std::fmt::Debug {
    /// Which [`PolicyKind`] this backend implements.
    fn kind(&self) -> PolicyKind;

    /// Plans one scene: effective maximum, compensation, backlight
    /// level and power saving.
    fn plan_scene(
        &self,
        profile: &LuminanceProfile,
        span: SceneSpan,
        device: &DeviceProfile,
        quality: QualityLevel,
    ) -> ScenePlan;

    /// The per-scene pixel remap, when the policy uses one instead of
    /// the scalar contrast stretch (only HEBS does).
    fn scene_remap(&self, _hist: &Histogram, _quality: QualityLevel) -> Option<HebsLut> {
        None
    }

    /// Picks a serving resolution given priced per-resolution energy.
    /// Every backend except [`SpatialScale`] always serves full
    /// resolution.
    fn select_resolution(&self, cost: &ResolutionCost) -> ResolutionDecision {
        ResolutionDecision {
            use_half: false,
            full_energy_j: cost.full_energy_j,
            half_energy_j: cost.half_energy_j,
        }
    }
}

/// The paper's peak-luminance/clipping policy (reference backend).
#[derive(Debug, Clone, Copy)]
pub struct PeakClip;

impl AnnotationPolicy for PeakClip {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PeakClip
    }

    fn plan_scene(
        &self,
        profile: &LuminanceProfile,
        span: SceneSpan,
        device: &DeviceProfile,
        quality: QualityLevel,
    ) -> ScenePlan {
        peak_clip_scene(profile, span, device, quality)
    }
}

/// Histogram-equalization backlight scaling.
#[derive(Debug, Clone, Copy)]
pub struct Hebs;

impl AnnotationPolicy for Hebs {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Hebs
    }

    fn plan_scene(
        &self,
        profile: &LuminanceProfile,
        span: SceneSpan,
        device: &DeviceProfile,
        quality: QualityLevel,
    ) -> ScenePlan {
        let hist = profile.merged_histogram(span.start, span.end);
        let raw_max = hist.max_nonzero().unwrap_or(0);
        let effective = hist.clip_level(quality.clip_fraction());
        // The clipping budget is spent exactly like peak-clip: pixels
        // above the effective max saturate, so the realised quality
        // degradation is identical and the SLO can never be exceeded.
        let clipped_fraction = hist.fraction_above(effective);
        let (k, backlight) = hebs_levels(device, &hist, effective);
        let power_savings = device.backlight_power().savings_vs_full(backlight);
        ScenePlan {
            span,
            raw_max_luma: raw_max,
            effective_max_luma: effective,
            clipped_fraction,
            compensation: k,
            backlight,
            power_savings,
        }
    }

    fn scene_remap(&self, hist: &Histogram, quality: QualityLevel) -> Option<HebsLut> {
        let effective = hist.clip_level(quality.clip_fraction());
        Some(HebsLut::from_histogram(hist, effective))
    }
}

/// Peak-clip planning plus proxy-side optimal spatial scaling.
#[derive(Debug, Clone, Copy)]
pub struct SpatialScale;

impl AnnotationPolicy for SpatialScale {
    fn kind(&self) -> PolicyKind {
        PolicyKind::SpatialScale
    }

    fn plan_scene(
        &self,
        profile: &LuminanceProfile,
        span: SceneSpan,
        device: &DeviceProfile,
        quality: QualityLevel,
    ) -> ScenePlan {
        // Backlight planning is the reference policy; the resolution
        // knob is orthogonal and answered by `select_resolution`.
        peak_clip_scene(profile, span, device, quality)
    }

    fn select_resolution(&self, cost: &ResolutionCost) -> ResolutionDecision {
        ResolutionDecision {
            use_half: cost.half_supported
                && cost.half_energy_j < cost.full_energy_j * (1.0 - SPATIAL_MARGIN),
            full_energy_j: cost.full_energy_j,
            half_energy_j: cost.half_energy_j,
        }
    }
}

/// HEBS `(compensation factor, backlight level)` for a scene histogram.
///
/// The equalized remap brightens the scene's pixel mass beyond the
/// plain contrast stretch by the perceived-luminance **gain**
///
/// ```text
/// g = Σ h(v)·(remap(v)/255)^γ  /  Σ h(v)·(stretch(v)/255)^γ   (g ≥ 1)
/// ```
///
/// so the backlight can be dimmed by exactly that factor below the
/// peak-clip target while the histogram-weighted perceived intensity is
/// preserved: `target = (eff/255)^γ / g`. Because the remap dominates
/// the stretch pointwise, `g ≥ 1` always — **HEBS never selects a
/// brighter backlight than peak-clip for the same scene**, which is the
/// ordering the conformance tier asserts. The compensation factor is
/// derived from the achieved discrete level exactly like
/// [`plan_levels`].
pub fn hebs_levels(
    device: &DeviceProfile,
    hist: &Histogram,
    effective_max: u8,
) -> (f32, BacklightLevel) {
    if effective_max == 0 {
        return (1.0, BacklightLevel::MIN);
    }
    let gamma = device.panel().white_gamma();
    let lut = HebsLut::from_histogram(hist, effective_max);
    let mut remapped = 0.0f64;
    let mut stretched = 0.0f64;
    for v in 0..=255u8 {
        let mass = hist.bin(v) as f64;
        if mass == 0.0 {
            continue;
        }
        remapped += mass * (f64::from(lut.value(v)) / 255.0).powf(gamma);
        stretched += mass * (f64::from(lut.stretch_value(v)) / 255.0).powf(gamma);
    }
    let gain = if stretched > 0.0 { (remapped / stretched).max(1.0) } else { 1.0 };
    let y = f64::from(effective_max) / 255.0;
    let target_luminance = y.powf(gamma) / gain;
    let backlight = device.transfer().level_for_luminance(target_luminance);
    let achieved = device.transfer().luminance(backlight).max(f64::EPSILON);
    let k = (1.0 / achieved).powf(1.0 / gamma) as f32;
    (k.max(1.0), backlight)
}

/// The per-scene HEBS remap tables for one clip — the pixel-domain half
/// of the HEBS policy, shared by the server and proxy compensation
/// paths.
///
/// Scene spans are derived exactly like the annotator derives them
/// (detector spans for [`AnnotationMode::PerScene`], one span per frame
/// for [`AnnotationMode::PerFrame`]), so the remap applied to frame `i`
/// always matches the backlight level annotated for frame `i`.
#[derive(Debug, Clone)]
pub struct HebsRemapSet {
    spans: Vec<SceneSpan>,
    luts: Vec<HebsLut>,
}

impl HebsRemapSet {
    /// Builds the remap set for `profile`, deriving spans per `mode`.
    pub fn new(profile: &LuminanceProfile, mode: AnnotationMode, quality: QualityLevel) -> Self {
        let spans = match mode {
            AnnotationMode::PerScene => SceneDetector::default().detect(profile),
            AnnotationMode::PerFrame => (0..profile.len() as u32)
                .map(|i| SceneSpan { start: i, end: i + 1 })
                .collect(),
        };
        Self::for_spans(profile, spans, quality)
    }

    /// Builds the remap set for explicit `spans`.
    pub fn for_spans(
        profile: &LuminanceProfile,
        spans: Vec<SceneSpan>,
        quality: QualityLevel,
    ) -> Self {
        let luts = spans
            .iter()
            .map(|s| {
                let hist = profile.merged_histogram(s.start, s.end);
                let effective = hist.clip_level(quality.clip_fraction());
                HebsLut::from_histogram(&hist, effective)
            })
            .collect();
        Self { spans, luts }
    }

    /// The scene spans, in playback order.
    pub fn spans(&self) -> &[SceneSpan] {
        &self.spans
    }

    /// The per-scene remap tables, parallel to [`spans`](Self::spans).
    pub fn luts(&self) -> &[HebsLut] {
        &self.luts
    }

    /// The remap covering frame `frame` (panics if no span covers it).
    pub fn lut_for_frame(&self, frame: u32) -> &HebsLut {
        let idx = self
            .spans
            .iter()
            .position(|s| s.start <= frame && frame < s.end)
            .unwrap_or_else(|| panic!("frame {frame} outside every scene span"));
        &self.luts[idx]
    }

    /// Applies the frame's scene remap in place, returning clip stats.
    pub fn apply_frame(&self, frame_buf: &mut Frame, frame: u32) -> ClipStats {
        self.lut_for_frame(frame).apply(frame_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelConfig;
    use crate::plan::BacklightPlan;
    use annolight_imgproc::Rgb8;
    use annolight_support::json::to_string;

    fn dark_profile() -> LuminanceProfile {
        let frames: Vec<Frame> = (0..30)
            .map(|_| {
                let mut f = Frame::filled(10, 10, Rgb8::gray(40));
                f.set_pixel(0, 0, Rgb8::gray(250));
                f
            })
            .collect();
        LuminanceProfile::of_frames(10.0, frames).unwrap()
    }

    #[test]
    fn ids_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_id(p.id()), Some(p));
            assert_eq!(p.policy().kind(), p);
        }
        assert_eq!(PolicyKind::from_id(3), None);
        assert_eq!(PolicyKind::default(), PolicyKind::PeakClip);
    }

    #[test]
    fn json_round_trip() {
        for p in PolicyKind::ALL {
            let s = to_string(&p);
            let back: PolicyKind = annolight_support::json::from_str(&s).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn peak_clip_backend_is_byte_identical_to_legacy_planner() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let dev = DeviceProfile::ipaq_5555();
        let legacy = BacklightPlan::compute_parallel(&p, &spans, &dev, QualityLevel::Q10, &ParallelConfig::serial());
        let policy = BacklightPlan::compute_policy(
            &p, &spans, &dev, QualityLevel::Q10, PolicyKind::PeakClip, &ParallelConfig::serial(),
        );
        assert_eq!(to_string(&legacy), to_string(&policy));
    }

    #[test]
    fn hebs_backlight_never_brighter_than_peak_clip() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        for dev in DeviceProfile::paper_devices() {
            for q in QualityLevel::PAPER_LEVELS {
                let peak = BacklightPlan::compute_policy(
                    &p, &spans, &dev, q, PolicyKind::PeakClip, &ParallelConfig::serial(),
                );
                let hebs = BacklightPlan::compute_policy(
                    &p, &spans, &dev, q, PolicyKind::Hebs, &ParallelConfig::serial(),
                );
                for (a, b) in peak.scenes().iter().zip(hebs.scenes()) {
                    assert!(b.backlight <= a.backlight, "{} {q:?}", dev.name());
                    assert!(b.power_savings >= a.power_savings - 1e-12);
                    assert_eq!(a.clipped_fraction, b.clipped_fraction, "same clipping budget");
                    assert_eq!(a.effective_max_luma, b.effective_max_luma);
                }
                assert!(hebs.mean_backlight_savings() >= peak.mean_backlight_savings() - 1e-12);
            }
        }
    }

    #[test]
    fn hebs_beats_peak_clip_on_dark_mass() {
        // Dark-heavy content is where the equalization gain comes from.
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let dev = DeviceProfile::ipaq_5555();
        let peak = BacklightPlan::compute_policy(
            &p, &spans, &dev, QualityLevel::Q0, PolicyKind::PeakClip, &ParallelConfig::serial(),
        );
        let hebs = BacklightPlan::compute_policy(
            &p, &spans, &dev, QualityLevel::Q0, PolicyKind::Hebs, &ParallelConfig::serial(),
        );
        assert!(
            hebs.mean_backlight_savings() > peak.mean_backlight_savings() + 0.05,
            "hebs {} vs peak {}",
            hebs.mean_backlight_savings(),
            peak.mean_backlight_savings()
        );
    }

    #[test]
    fn hebs_black_scene_is_min_backlight() {
        let h = Histogram::new();
        let (k, b) = hebs_levels(&DeviceProfile::ipaq_5555(), &h, 0);
        assert_eq!(b, BacklightLevel::MIN);
        assert!((k - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spatial_scale_plans_like_peak_clip() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let dev = DeviceProfile::ipaq_5555();
        let peak = BacklightPlan::compute_policy(
            &p, &spans, &dev, QualityLevel::Q10, PolicyKind::PeakClip, &ParallelConfig::serial(),
        );
        let spatial = BacklightPlan::compute_policy(
            &p, &spans, &dev, QualityLevel::Q10, PolicyKind::SpatialScale, &ParallelConfig::serial(),
        );
        assert_eq!(to_string(&peak), to_string(&spatial));
    }

    #[test]
    fn spatial_scale_selects_energy_argmin_with_margin() {
        let s = SpatialScale;
        let pick = |full: f64, half: f64, supported: bool| {
            s.select_resolution(&ResolutionCost {
                full_energy_j: full,
                half_energy_j: half,
                half_supported: supported,
            })
            .use_half
        };
        assert!(pick(10.0, 5.0, true));
        assert!(!pick(10.0, 5.0, false), "unsupported dims never downscale");
        assert!(!pick(10.0, 9.9, true), "inside the margin stays full-res");
        assert!(!pick(10.0, 12.0, true));
        // Non-spatial policies always serve full resolution.
        for p in [PolicyKind::PeakClip, PolicyKind::Hebs] {
            let d = p.policy().select_resolution(&ResolutionCost {
                full_energy_j: 10.0,
                half_energy_j: 1.0,
                half_supported: true,
            });
            assert!(!d.use_half, "{p:?}");
        }
    }

    #[test]
    fn remap_set_covers_every_frame_in_both_modes() {
        let p = dark_profile();
        for mode in [AnnotationMode::PerScene, AnnotationMode::PerFrame] {
            let set = HebsRemapSet::new(&p, mode, QualityLevel::Q10);
            assert_eq!(set.spans().len(), set.luts().len());
            for i in 0..p.len() as u32 {
                let lut = set.lut_for_frame(i);
                assert!(lut.value(255) == 255);
            }
        }
        let per_frame = HebsRemapSet::new(&p, AnnotationMode::PerFrame, QualityLevel::Q10);
        assert_eq!(per_frame.spans().len(), p.len());
    }

    #[test]
    fn hebs_scene_remap_matches_remap_set() {
        let p = dark_profile();
        let spans = SceneDetector::default().detect(&p);
        let set = HebsRemapSet::for_spans(&p, spans.clone(), QualityLevel::Q10);
        for (i, s) in spans.iter().enumerate() {
            let hist = p.merged_histogram(s.start, s.end);
            let lut = Hebs.scene_remap(&hist, QualityLevel::Q10).unwrap();
            assert_eq!(&lut, &set.luts()[i]);
        }
        assert!(PeakClip.scene_remap(&Histogram::new(), QualityLevel::Q10).is_none());
    }
}
