//! Incremental annotation delivery: sequence-numbered track deltas.
//!
//! The full [`AnnotationTrack`](crate::track::AnnotationTrack) rides
//! ahead of the pictures when the whole stream is fetched at once, but a
//! live session over a lossy hop streams the track *incrementally*: one
//! [`AnnotationDelta`] per scene, sent just ahead of the frames it
//! governs. Deltas are hints — losing one must never stall playback —
//! so each carries a sequence number and the receiving client runs a
//! [`DeltaTracker`] that classifies every arrival:
//!
//! * **Applied** — next expected sequence, on time;
//! * **Duplicate** — already seen (the channel duplicated a packet or a
//!   retransmit raced the original);
//! * **Stale** — arrived after its `start_frame` had already played
//!   (useful for the remainder of the scene, but the client has been
//!   degrading);
//! * **Gap** — sequence jumped, so at least one delta is still missing
//!   (lost or in flight behind a reorder).

use crate::error::CoreError;
use crate::track::{AnnotationEntry, AnnotationTrack};
use annolight_display::BacklightLevel;

/// Wire magic for a delta packet (`ALD1`: AnnoLight Delta v1).
const DELTA_MAGIC: &[u8; 4] = b"ALD1";

/// One incremental annotation update: entry `seq` of the track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationDelta {
    /// Sequence number: the index of this entry in the canonical track.
    pub seq: u32,
    /// The annotation record itself.
    pub entry: AnnotationEntry,
}

annolight_support::impl_json!(struct AnnotationDelta { seq, entry });

impl AnnotationDelta {
    /// Splits a track into its per-entry deltas, in sequence order.
    /// Uses the canonical (RLE-merged) form so sequence numbers match
    /// what a client reconstructs from the embedded track bytes.
    #[must_use]
    pub fn from_track(track: &AnnotationTrack) -> Vec<AnnotationDelta> {
        track
            .canonicalized()
            .entries()
            .iter()
            .enumerate()
            .map(|(i, e)| AnnotationDelta { seq: i as u32, entry: *e })
            .collect()
    }

    /// Serialises to the compact wire form (13 bytes).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(DELTA_MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.entry.start_frame.to_le_bytes());
        out.push(self.entry.backlight.0);
        let k = (self.entry.compensation.clamp(0.0, 255.996) * 256.0).round() as u16;
        out.extend_from_slice(&k.to_le_bytes());
        out.push(self.entry.effective_max_luma);
        out
    }

    /// Parses the wire form produced by [`AnnotationDelta::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedTrack`] for truncated or mistagged
    /// input — a corrupted delta is dropped like a lost one, never
    /// trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() < 16 {
            return Err(CoreError::MalformedTrack { reason: "delta packet truncated".into() });
        }
        if &bytes[0..4] != DELTA_MAGIC {
            return Err(CoreError::MalformedTrack { reason: "bad delta magic".into() });
        }
        let seq = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let start_frame = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let backlight = bytes[12];
        let k = u16::from_le_bytes([bytes[13], bytes[14]]);
        let effective_max_luma = bytes[15];
        Ok(Self {
            seq,
            entry: AnnotationEntry {
                start_frame,
                backlight: BacklightLevel(backlight),
                compensation: f32::from(k) / 256.0,
                effective_max_luma,
            },
        })
    }

    /// Whether `bytes` starts with the delta magic.
    #[must_use]
    pub fn is_delta_payload(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[0..4] == DELTA_MAGIC
    }
}

/// Classification of one delta arrival, from [`DeltaTracker::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Next expected sequence, arrived before its scene started.
    Applied,
    /// Sequence already applied; ignore.
    Duplicate,
    /// Arrived after its `start_frame` had played: applied for the
    /// remainder of the scene, but the client degraded in the interim.
    Stale {
        /// How many frames late the delta was.
        late_frames: u32,
    },
    /// Sequence jumped past the expected one; at least one earlier
    /// delta is missing. The delta is applied, the gap recorded.
    Gap {
        /// The sequence number that was expected.
        expected: u32,
    },
}

/// Client-side sequence/staleness bookkeeping over a delta stream.
#[derive(Debug, Clone, Default)]
pub struct DeltaTracker {
    next_seq: u32,
    applied: u32,
    duplicates: u32,
    stale: u32,
    gaps: u32,
    max_late_frames: u32,
}

impl DeltaTracker {
    /// A fresh tracker expecting sequence 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers an arrived delta at playback position `now_frame`,
    /// returning its classification and updating the counters.
    pub fn offer(&mut self, delta: &AnnotationDelta, now_frame: u32) -> DeltaStatus {
        if delta.seq < self.next_seq {
            self.duplicates += 1;
            return DeltaStatus::Duplicate;
        }
        let status = if now_frame > delta.entry.start_frame {
            let late = now_frame - delta.entry.start_frame;
            self.stale += 1;
            self.max_late_frames = self.max_late_frames.max(late);
            DeltaStatus::Stale { late_frames: late }
        } else if delta.seq > self.next_seq {
            self.gaps += 1;
            DeltaStatus::Gap { expected: self.next_seq }
        } else {
            DeltaStatus::Applied
        };
        self.applied += 1;
        self.next_seq = delta.seq + 1;
        status
    }

    /// The next sequence number the tracker expects.
    #[must_use]
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Deltas applied (including stale and post-gap arrivals).
    #[must_use]
    pub fn applied(&self) -> u32 {
        self.applied
    }

    /// Duplicate arrivals ignored.
    #[must_use]
    pub fn duplicates(&self) -> u32 {
        self.duplicates
    }

    /// Deltas that arrived after their scene had started.
    #[must_use]
    pub fn stale(&self) -> u32 {
        self.stale
    }

    /// Sequence gaps observed (lost or badly reordered deltas).
    #[must_use]
    pub fn gaps(&self) -> u32 {
        self.gaps
    }

    /// The worst lateness seen, frames.
    #[must_use]
    pub fn max_late_frames(&self) -> u32 {
        self.max_late_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityLevel;
    use crate::track::AnnotationMode;

    fn entry(start: u32, backlight: u8) -> AnnotationEntry {
        AnnotationEntry {
            start_frame: start,
            backlight: BacklightLevel(backlight),
            compensation: 1.5,
            effective_max_luma: 170,
        }
    }

    fn track() -> AnnotationTrack {
        AnnotationTrack::new(
            "ipaq-5555",
            QualityLevel::Q10,
            AnnotationMode::PerScene,
            12.0,
            90,
            vec![entry(0, 120), entry(30, 200), entry(60, 90)],
        )
        .unwrap()
    }

    #[test]
    fn deltas_mirror_canonical_track() {
        let deltas = AnnotationDelta::from_track(&track());
        assert_eq!(deltas.len(), 3);
        for (i, d) in deltas.iter().enumerate() {
            assert_eq!(d.seq, i as u32);
        }
        assert_eq!(deltas[1].entry.start_frame, 30);
        assert_eq!(deltas[2].entry.backlight, BacklightLevel(90));
    }

    #[test]
    fn wire_roundtrip_exact() {
        for d in AnnotationDelta::from_track(&track()) {
            let bytes = d.to_bytes();
            assert!(AnnotationDelta::is_delta_payload(&bytes));
            let back = AnnotationDelta::from_bytes(&bytes).unwrap();
            assert_eq!(back.seq, d.seq);
            assert_eq!(back.entry.start_frame, d.entry.start_frame);
            assert_eq!(back.entry.backlight, d.entry.backlight);
            assert_eq!(back.entry.effective_max_luma, d.entry.effective_max_luma);
            assert!((back.entry.compensation - d.entry.compensation).abs() < 1.0 / 256.0);
        }
    }

    #[test]
    fn malformed_delta_rejected() {
        assert!(AnnotationDelta::from_bytes(b"").is_err());
        assert!(AnnotationDelta::from_bytes(b"ALD1").is_err());
        let mut ok = AnnotationDelta::from_track(&track())[0].to_bytes();
        ok[0] = b'X';
        assert!(AnnotationDelta::from_bytes(&ok).is_err());
        assert!(!AnnotationDelta::is_delta_payload(&ok));
    }

    #[test]
    fn tracker_in_order_is_all_applied() {
        let mut t = DeltaTracker::new();
        for d in AnnotationDelta::from_track(&track()) {
            assert_eq!(t.offer(&d, d.entry.start_frame.saturating_sub(1)), DeltaStatus::Applied);
        }
        assert_eq!(t.applied(), 3);
        assert_eq!((t.duplicates(), t.stale(), t.gaps()), (0, 0, 0));
    }

    #[test]
    fn tracker_flags_duplicates_stale_and_gaps() {
        let deltas = AnnotationDelta::from_track(&track());
        let mut t = DeltaTracker::new();
        assert_eq!(t.offer(&deltas[0], 0), DeltaStatus::Applied);
        // Duplicate of seq 0 (channel duplication or raced retransmit).
        assert_eq!(t.offer(&deltas[0], 5), DeltaStatus::Duplicate);
        // Seq 1 lost; seq 2 arrives first: a gap.
        assert_eq!(t.offer(&deltas[2], 40), DeltaStatus::Gap { expected: 1 });
        assert_eq!(t.gaps(), 1);
        // Late retransmit of seq 1 after the gap advanced next_seq: duplicate.
        assert_eq!(t.offer(&deltas[1], 45), DeltaStatus::Duplicate);
        assert_eq!(t.duplicates(), 2);
    }

    #[test]
    fn tracker_measures_lateness() {
        let deltas = AnnotationDelta::from_track(&track());
        let mut t = DeltaTracker::new();
        t.offer(&deltas[0], 0);
        // Scene 2 starts at frame 30; its delta lands at frame 42.
        assert_eq!(t.offer(&deltas[1], 42), DeltaStatus::Stale { late_frames: 12 });
        assert_eq!(t.stale(), 1);
        assert_eq!(t.max_late_frames(), 12);
    }

    #[test]
    fn delta_json_roundtrip() {
        let d = AnnotationDelta::from_track(&track())[1];
        let json = annolight_support::json::to_string(&d);
        let back: AnnotationDelta = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back.seq, d.seq);
        assert_eq!(back.entry.start_frame, d.entry.start_frame);
    }
}
