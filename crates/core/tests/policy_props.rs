//! Property tier for the annotation-policy backends, on the in-tree
//! seeded `check` harness.
//!
//! The differential conformance tier (`tests/policy_conformance.rs` at
//! the workspace root) pins a fixed matrix; this tier sweeps the same
//! invariants over *randomised* histograms, clips and priced costs:
//!
//! * the HEBS remap is monotone, bracketed by the contrast stretch and
//!   full scale, saturates the clipped lane, and is mass-preserving;
//! * HEBS never selects a brighter backlight than peak-clip for the
//!   same scene, at the identical clipping budget (`k ≥ 1` both ways);
//! * `SpatialScale::select_resolution` is exactly the margin-gated
//!   energy argmin, and every other backend always serves full
//!   resolution;
//! * planning is a pure function of its inputs: byte-identical across
//!   repeated runs and across worker counts for every backend.

use annolight_core::policy::{hebs_levels, PolicyKind, ResolutionCost, SPATIAL_MARGIN};
use annolight_core::{
    BacklightPlan, LuminanceProfile, ParallelConfig, QualityLevel, SceneDetector,
};
use annolight_display::DeviceProfile;
use annolight_imgproc::{HebsLut, Histogram};
use annolight_support::check::Gen;
use annolight_support::json::to_string;
use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};

/// A random luminance histogram: a handful of bands plus optional
/// sparse highlights, the shapes scene detection actually produces.
fn random_histogram(g: &mut Gen) -> Histogram {
    let mut h = Histogram::new();
    let bands = g.draw(1..5usize);
    for _ in 0..bands {
        let center: u8 = g.draw(0u8..=255);
        let spread = g.draw(0u8..40);
        let mass: u64 = g.draw(1u64..5_000);
        let lo = center.saturating_sub(spread);
        let hi = center.saturating_add(spread);
        let bins = u64::from(hi - lo) + 1;
        for v in lo..=hi {
            h.add_count(v, mass / bins + 1);
        }
    }
    h
}

/// A random quality level from the paper's sweep.
fn random_quality(g: &mut Gen) -> QualityLevel {
    QualityLevel::PAPER_LEVELS[g.draw(0..QualityLevel::PAPER_LEVELS.len())]
}

fn random_device(g: &mut Gen) -> DeviceProfile {
    let devices = DeviceProfile::paper_devices();
    devices[g.draw(0..devices.len())].clone()
}

/// A random short synthetic clip (16-multiple dimensions, 1–3 scenes
/// from the content palette), seeded from the generator so failures
/// shrink and replay deterministically.
fn random_clip(g: &mut Gen) -> Clip {
    let palette = |g: &mut Gen| match g.draw(0..5u32) {
        0 => ContentKind::Dark {
            base: g.draw(10u8..70),
            spread: g.draw(2u8..20),
            highlight_fraction: g.draw(0.0f64..0.05),
            highlight: g.draw(200u8..=255),
        },
        1 => ContentKind::Bright { base: g.draw(170u8..240), spread: g.draw(2u8..20) },
        2 => ContentKind::Mid {
            base: g.draw(80u8..160),
            spread: g.draw(5u8..40),
            highlight_fraction: g.draw(0.0f64..0.08),
        },
        3 => ContentKind::Fade { from: g.draw(0u8..100), to: g.draw(100u8..=255) },
        _ => ContentKind::Credits {
            text: g.draw(180u8..=255),
            background: g.draw(0u8..40),
            density: g.draw(0.005f64..0.1),
        },
    };
    let scene_count = g.draw(1..4usize);
    let scenes =
        (0..scene_count).map(|_| SceneSpec::new(palette(g), g.draw(0.5f64..1.5))).collect();
    Clip::new(ClipSpec {
        name: "prop".into(),
        width: 32,
        height: 32,
        fps: 8.0,
        seed: g.draw(0u64..u64::MAX),
        scenes,
    })
    .expect("generated spec is valid")
}

annolight_support::check! {
    /// The HEBS remap is monotone, sits between the contrast stretch
    /// and full scale, and saturates at and above the effective
    /// maximum — for any histogram and any quality level.
    fn hebs_remap_is_monotone_and_bracketed(g) {
        let hist = random_histogram(g);
        let quality = random_quality(g);
        let lut = PolicyKind::Hebs
            .policy()
            .scene_remap(&hist, quality)
            .expect("HEBS always remaps");
        let eff = lut.effective_max();
        let mut prev = lut.value(0);
        for v in 0..=255u8 {
            let cur = lut.value(v);
            assert!(cur >= prev, "not monotone at {v}: {cur} < {prev}");
            assert!(cur >= lut.stretch_value(v), "below the stretch envelope at {v}");
            if eff > 0 && v >= eff {
                assert_eq!(cur, 255, "clipped lane must saturate at {v} (eff {eff})");
            }
            prev = cur;
        }
    }

    /// The remap moves histogram mass without creating or destroying
    /// any: pushing every bin through the LUT preserves the total.
    fn hebs_remap_preserves_histogram_mass(g) {
        let hist = random_histogram(g);
        let eff = hist.clip_level(random_quality(g).clip_fraction());
        let lut = HebsLut::from_histogram(&hist, eff);
        let mut remapped = Histogram::new();
        for v in 0..=255u8 {
            let mass = hist.bin(v);
            if mass > 0 {
                remapped.add_count(lut.value(v), mass);
            }
        }
        assert_eq!(remapped.total(), hist.total(), "remap must preserve pixel mass");
        // The remapped support tops out exactly at full scale, reached
        // by the clipped lane whenever the histogram occupies it.
        if eff > 0 && hist.max_nonzero().unwrap_or(0) >= eff {
            assert_eq!(remapped.max_nonzero(), Some(255));
        }
    }

    /// `hebs_levels` never compensates below 1 and never picks a
    /// brighter backlight than the peak-clip planner for the same
    /// scene, on real (rendered-clip) histograms.
    fn hebs_never_brighter_than_peak_clip(g, cases = 48) {
        let clip = random_clip(g);
        let quality = random_quality(g);
        let device = random_device(g);
        let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
        let spans = SceneDetector::default().detect(&profile);
        let serial = ParallelConfig::serial();
        let peak = BacklightPlan::compute_policy(
            &profile, &spans, &device, quality, PolicyKind::PeakClip, &serial);
        let hebs = BacklightPlan::compute_policy(
            &profile, &spans, &device, quality, PolicyKind::Hebs, &serial);
        for (p, h) in peak.scenes().iter().zip(hebs.scenes().iter()) {
            assert_eq!(p.effective_max_luma, h.effective_max_luma,
                "both policies must spend the same clipping budget");
            assert!(h.backlight <= p.backlight,
                "HEBS picked a brighter backlight: {:?} > {:?}", h.backlight, p.backlight);
            assert!(h.compensation >= 1.0, "compensation {} < 1", h.compensation);
            assert!(h.power_savings + 1e-12 >= p.power_savings,
                "dimmer backlight must not save less power");
            let hist = profile.merged_histogram(h.span.start, h.span.end);
            let (k, level) = hebs_levels(&device, &hist, h.effective_max_luma);
            assert_eq!((k, level), (h.compensation, h.backlight),
                "plan must equal the scalar kernel");
        }
    }

    /// `SpatialScale::select_resolution` is the margin-gated energy
    /// argmin; every other backend always stays at full resolution.
    fn spatial_selection_is_margin_gated_argmin(g) {
        let cost = ResolutionCost {
            full_energy_j: g.draw(0.01f64..100.0),
            half_energy_j: g.draw(0.01f64..100.0),
            half_supported: g.any::<bool>(),
        };
        let d = PolicyKind::SpatialScale.policy().select_resolution(&cost);
        let wins = cost.half_energy_j < cost.full_energy_j * (1.0 - SPATIAL_MARGIN);
        assert_eq!(d.use_half, cost.half_supported && wins);
        assert_eq!((d.full_energy_j, d.half_energy_j), (cost.full_energy_j, cost.half_energy_j));
        for policy in [PolicyKind::PeakClip, PolicyKind::Hebs] {
            assert!(!policy.policy().select_resolution(&cost).use_half,
                "{} must never rescale", policy.name());
        }
    }

    /// Planning is a pure function: repeated runs and every worker
    /// count produce byte-identical plans, for every backend.
    fn planning_is_deterministic_per_seed(g, cases = 32) {
        let clip = random_clip(g);
        let quality = random_quality(g);
        let device = random_device(g);
        let policy = PolicyKind::ALL[g.draw(0..PolicyKind::ALL.len())];
        let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
        let spans = SceneDetector::default().detect(&profile);
        let plan = |cfg: &ParallelConfig| to_string(&BacklightPlan::compute_policy(
            &profile, &spans, &device, quality, policy, cfg));
        let serial = plan(&ParallelConfig::serial());
        assert_eq!(serial, plan(&ParallelConfig::serial()), "double run diverged");
        let workers = g.draw(1..8usize);
        assert_eq!(serial, plan(&ParallelConfig::with_workers(workers)),
            "{} diverged at {workers} workers", policy.name());
    }
}
