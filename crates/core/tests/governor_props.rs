//! Property tier for the governor control law, on the in-tree seeded
//! `check` harness. Pins the three contract invariants the budget
//! conformance tier leans on:
//!
//! * the knob search probes at most `⌈log₂ K⌉ + 1` projections and is
//!   an exact partition point;
//! * a governed session **never overshoots** a feasible budget, for any
//!   monotone energy model, any throttle pattern and any start knob;
//! * under constant inputs the governor **converges within
//!   `dwell + K` scenes** (one improvement step per scene past the
//!   dwell) and is **idempotent** from then on.

use annolight_core::governor::{fit_knob, GovernorAction, GovernorControl, QualityGovernor};
use annolight_core::QualityLevel;
use annolight_support::check::Gen;

/// A random quality ladder of `k` levels (the governor treats the
/// levels as labels; only projection monotonicity matters).
fn ladder_levels(g: &mut Gen, k: usize) -> Vec<QualityLevel> {
    (0..k)
        .map(|_| {
            let i = g.draw(0..QualityLevel::PAPER_LEVELS.len());
            QualityLevel::PAPER_LEVELS[i]
        })
        .collect()
}

/// Monotone non-increasing per-knob scale factors, `f[0] = 1`.
fn knob_factors(g: &mut Gen, k: usize) -> Vec<f64> {
    let mut f = Vec::with_capacity(k);
    let mut cur = 1.0f64;
    for _ in 0..k {
        f.push(cur);
        cur *= g.draw(0.5f64..=1.0);
    }
    f
}

fn probe_bound(k: usize) -> u32 {
    (usize::BITS - (k - 1).max(1).leading_zeros()) + 1
}

annolight_support::check! {
    /// `fit_knob` is an exact partition point and probes at most
    /// `⌈log₂ K⌉ + 1` entries, for any monotone ladder and any budget.
    fn knob_search_is_exact_and_logarithmic(g) {
        let k = g.draw(1..33usize);
        let base: f64 = g.draw(1.0f64..1000.0);
        let projections: Vec<f64> =
            knob_factors(g, k).into_iter().map(|f| base * f).collect();
        let budget: f64 = match g.draw(0..4u32) {
            0 => g.draw(-10.0f64..0.0),
            1 => g.draw(0.0f64..1000.0),
            2 => projections[g.draw(0..k)],
            _ => g.draw(1000.0f64..10_000.0),
        };
        let s = fit_knob(&projections, budget);
        assert!(s.probes <= probe_bound(k), "{} probes for k = {k}", s.probes);
        if s.fits {
            assert!(projections[s.knob] <= budget);
            if s.knob > 0 {
                assert!(
                    projections[s.knob - 1] > budget,
                    "not the least aggressive fitting knob"
                );
            }
        } else {
            assert_eq!(s.knob, k - 1, "best effort must pin the floor");
            assert!(projections.iter().all(|&p| p > budget));
        }
    }

    /// A governed session never overshoots a feasible budget: for any
    /// monotone energy model, any throttle pattern, any start knob and
    /// any budget at least the floor-knob total, the realised spend
    /// stays within budget.
    fn governor_never_overshoots_feasible_budget(g) {
        let k = g.draw(1..9usize);
        let scenes = g.draw(1..40usize);
        let factors = knob_factors(g, k);
        let base: Vec<f64> = (0..scenes).map(|_| g.draw(0.1f64..5.0)).collect();
        // energy[s][j] = base[s] · f[j]: monotone non-increasing in the
        // knob, so every suffix sum is too.
        let energy = |s: usize, j: usize| base[s] * factors[j];
        let totals: Vec<f64> =
            (0..k).map(|j| (0..scenes).map(|s| energy(s, j)).sum()).collect();
        // Feasible by construction: at least the most aggressive total,
        // plus an absolute margin that keeps the knife edge clear of
        // float summation-order noise (per-scene projections are fresh
        // suffix sums while `remaining` is decremented incrementally).
        let budget =
            totals[k - 1] + g.draw(0.0f64..=1.5) * (totals[0] - totals[k - 1]) + 1e-6;

        let control = GovernorControl {
            levels: ladder_levels(g, k),
            headroom: g.draw(0.0f64..0.3),
            dwell_scenes: g.draw(0..5u32),
        };
        let start = g.draw(0..k);
        let mut governor = QualityGovernor::new(control).with_knob(start);
        let mut spent = 0.0f64;
        for s in 0..scenes {
            let remaining = budget - spent;
            let projections: Vec<f64> =
                (0..k).map(|j| (s..scenes).map(|t| energy(t, j)).sum()).collect();
            let throttled = g.any::<bool>();
            let d = governor.decide(remaining, &projections, throttled);
            assert!(d.fits, "a feasible budget must stay feasible (scene {s})");
            assert!(
                projections[d.knob] <= remaining + 1e-9,
                "chosen knob overshoots at scene {s}: {} > {remaining}",
                projections[d.knob]
            );
            spent += energy(s, d.knob);
        }
        assert!(
            spent <= budget + 1e-9,
            "session overshot: spent {spent} of budget {budget}"
        );
    }

    /// Under constant inputs the governor converges within
    /// `(dwell + 1) · K` scenes — each improvement step resets the
    /// dwell counter, so a full-ladder climb costs `dwell + 1` scenes
    /// per knob — and is idempotent from then on: every later decision
    /// is a `Hold` at the same knob, and the search keeps its probe
    /// bound.
    fn governor_converges_then_holds(g, cases = 128) {
        let k = g.draw(1..9usize);
        let base: f64 = g.draw(10.0f64..100.0);
        let projections: Vec<f64> =
            knob_factors(g, k).into_iter().map(|f| base * f).collect();
        let budget: f64 = projections[k - 1] + g.draw(0.0f64..=2.0) * base;
        let dwell = g.draw(0..4u32);
        let control = GovernorControl {
            levels: ladder_levels(g, k),
            headroom: g.draw(0.0f64..0.2),
            dwell_scenes: dwell,
        };
        let mut governor = QualityGovernor::new(control).with_knob(g.draw(0..k));
        let window = (dwell as usize + 1) * k + 1;
        for _ in 0..window {
            let d = governor.decide(budget, &projections, false);
            assert!(d.probes <= probe_bound(k));
        }
        let knob = governor.knob();
        for i in 0..2 * window + 4 {
            let d = governor.decide(budget, &projections, false);
            assert_eq!(
                (d.knob, d.action),
                (knob, GovernorAction::Hold),
                "not idempotent at post-convergence step {i}"
            );
        }
    }
}
