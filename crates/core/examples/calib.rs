use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_video::ClipLibrary;

fn main() {
    let dev = DeviceProfile::ipaq_5555();
    println!("{:<22} {:>6} {:>6} {:>6} {:>6} {:>6}", "clip", "0%", "5%", "10%", "15%", "20%");
    for clip in ClipLibrary::paper_clips() {
        let profile = LuminanceProfile::of_clip(&clip).unwrap();
        print!("{:<22}", clip.name());
        for q in QualityLevel::PAPER_LEVELS {
            let a = Annotator::new(dev.clone(), q).annotate_profile(&profile).unwrap();
            print!(" {:>5.1}%", a.predicted_backlight_savings(&dev) * 100.0);
        }
        println!();
    }
}
