//! The camera body: exposure, response and sensor noise.

use crate::response::CameraResponse;
use annolight_display::{render_perceived, BacklightLevel, DeviceProfile};
use annolight_imgproc::{Frame, LumaFrame};
use annolight_support::rng::SmallRng;

/// A simple digital camera model.
///
/// The pipeline per pixel is
/// `value = response(exposure_gain · perceived) + noise`, quantised to
/// 8 bits. Noise is seeded, so snapshots are reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalCamera {
    response: CameraResponse,
    /// Linear gain applied before the response curve (shutter/ISO).
    exposure_gain: f64,
    /// Standard deviation of additive sensor noise, in 8-bit counts.
    noise_sigma: f64,
    /// Seed for the reproducible noise stream.
    seed: u64,
}

annolight_support::impl_json!(struct DigitalCamera { response, exposure_gain, noise_sigma, seed });

impl DigitalCamera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics unless `exposure_gain > 0` and `noise_sigma ≥ 0`.
    pub fn new(response: CameraResponse, exposure_gain: f64, noise_sigma: f64, seed: u64) -> Self {
        assert!(exposure_gain > 0.0, "exposure gain {exposure_gain} must be positive");
        assert!(noise_sigma >= 0.0, "noise sigma {noise_sigma} must be non-negative");
        Self { response, exposure_gain, noise_sigma, seed }
    }

    /// A consumer compact camera: gamma-2.2 JPEG pipeline, slight noise.
    pub fn consumer_compact(seed: u64) -> Self {
        Self::new(CameraResponse::Gamma { gamma: 2.2 }, 1.0, 1.2, seed)
    }

    /// An idealised noiseless linear camera (useful in tests).
    pub fn ideal() -> Self {
        Self::new(CameraResponse::Linear, 1.0, 0.0, 0)
    }

    /// The response curve.
    pub fn response(&self) -> CameraResponse {
        self.response
    }

    /// Photographs a perceived-luminance plane (what [`render_perceived`]
    /// produces), returning the snapshot as another luminance plane.
    pub fn snapshot(&self, perceived: &LumaFrame) -> LumaFrame {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut lut = [0.0f64; 256];
        for (v, slot) in lut.iter_mut().enumerate() {
            let e = (v as f64 / 255.0) * self.exposure_gain;
            *slot = self.response.apply(e) * 255.0;
        }
        let data = perceived
            .samples()
            .iter()
            .map(|&v| {
                let noise = if self.noise_sigma > 0.0 {
                    // Box–Muller transform for Gaussian noise.
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * self.noise_sigma
                } else {
                    0.0
                };
                (lut[v as usize] + noise).round().clamp(0.0, 255.0) as u8
            })
            .collect();
        LumaFrame::from_buffer(perceived.width(), perceived.height(), data)
            .expect("snapshot buffer matches source dimensions")
    }

    /// Photographs `frame` displayed on `device` at `backlight` in a dark
    /// room — one arrow of Fig. 2.
    pub fn photograph(
        &self,
        frame: &Frame,
        device: &DeviceProfile,
        backlight: BacklightLevel,
    ) -> LumaFrame {
        let perceived = render_perceived(frame, device, backlight, 0.0);
        self.snapshot(&perceived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_imgproc::Rgb8;

    #[test]
    fn ideal_camera_is_identity() {
        let plane = LumaFrame::from_buffer(4, 1, vec![0, 100, 200, 255]).unwrap();
        let snap = DigitalCamera::ideal().snapshot(&plane);
        assert_eq!(snap.samples(), plane.samples());
    }

    #[test]
    fn snapshots_are_reproducible() {
        let plane = LumaFrame::from_buffer(8, 8, (0..64).map(|i| (i * 4) as u8).collect()).unwrap();
        let cam = DigitalCamera::consumer_compact(99);
        assert_eq!(cam.snapshot(&plane), cam.snapshot(&plane));
    }

    #[test]
    fn different_seeds_differ_in_noise() {
        let plane = LumaFrame::from_buffer(16, 16, vec![128; 256]).unwrap();
        let a = DigitalCamera::consumer_compact(1).snapshot(&plane);
        let b = DigitalCamera::consumer_compact(2).snapshot(&plane);
        assert_ne!(a, b);
    }

    #[test]
    fn response_preserves_ordering_on_average() {
        let plane = LumaFrame::from_buffer(2, 1, vec![40, 200]).unwrap();
        let snap = DigitalCamera::consumer_compact(3).snapshot(&plane);
        assert!(snap.sample(0, 0) < snap.sample(1, 0));
    }

    #[test]
    fn gamma_pipeline_brightens_midtones() {
        let plane = LumaFrame::from_buffer(1, 1, vec![64]).unwrap();
        let snap = DigitalCamera::new(CameraResponse::Gamma { gamma: 2.2 }, 1.0, 0.0, 0)
            .snapshot(&plane);
        assert!(snap.sample(0, 0) > 64);
    }

    #[test]
    fn photograph_darker_at_dim_backlight() {
        let dev = DeviceProfile::ipaq_5555();
        let cam = DigitalCamera::consumer_compact(5);
        let frame = Frame::filled(16, 16, Rgb8::gray(180));
        let full = cam.photograph(&frame, &dev, BacklightLevel::MAX);
        let dim = cam.photograph(&frame, &dev, BacklightLevel(60));
        assert!(dim.mean() < full.mean());
    }

    #[test]
    #[should_panic(expected = "exposure gain")]
    fn rejects_zero_gain() {
        DigitalCamera::new(CameraResponse::Linear, 0.0, 0.0, 0);
    }
}
