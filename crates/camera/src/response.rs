//! Camera response curves.
//!
//! Film and CCD/CMOS pipelines apply a monotone non-linear mapping from
//! scene exposure to pixel value (the `g` function recovered by
//! Debevec–Malik, which the paper cites). We provide the usual parametric
//! families; all are strictly monotone on `[0, 1]` with fixed endpoints.


/// A monotone exposure→value response curve on `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CameraResponse {
    /// Idealised linear sensor (RAW output).
    Linear,
    /// Gamma encoding `v = E^(1/gamma)` — the classic sRGB-style curve.
    Gamma {
        /// Encoding gamma, `> 0` (2.2 for consumer cameras).
        gamma: f64,
    },
    /// Filmic S-curve `v = (1 + k) · E^a / (E^a + k)`: compresses shadows
    /// and highlights like a consumer JPEG pipeline.
    Sigmoid {
        /// Shoulder sharpness `a ≥ 1`.
        a: f64,
        /// Mid-tone pivot constant `k > 0`.
        k: f64,
    },
}

annolight_support::impl_json!(enum CameraResponse { Linear, Gamma { gamma }, Sigmoid { a, k } });

impl CameraResponse {
    /// Maps a relative exposure in `[0, 1]` to a relative pixel value in
    /// `[0, 1]`. Input outside the range is clamped.
    pub fn apply(self, exposure: f64) -> f64 {
        let e = exposure.clamp(0.0, 1.0);
        match self {
            CameraResponse::Linear => e,
            CameraResponse::Gamma { gamma } => {
                debug_assert!(gamma > 0.0);
                e.powf(1.0 / gamma)
            }
            CameraResponse::Sigmoid { a, k } => {
                debug_assert!(a >= 1.0 && k > 0.0);
                let ea = e.powf(a);
                (1.0 + k) * ea / (ea + k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURVES: [CameraResponse; 4] = [
        CameraResponse::Linear,
        CameraResponse::Gamma { gamma: 2.2 },
        CameraResponse::Sigmoid { a: 1.6, k: 0.18 },
        CameraResponse::Sigmoid { a: 2.0, k: 0.5 },
    ];

    #[test]
    fn endpoints_fixed() {
        for c in CURVES {
            assert!(c.apply(0.0).abs() < 1e-12, "{c:?}");
            assert!((c.apply(1.0) - 1.0).abs() < 1e-9, "{c:?}");
        }
    }

    #[test]
    fn strictly_monotone() {
        for c in CURVES {
            let mut last = -1.0;
            for i in 0..=1000 {
                let v = c.apply(f64::from(i) / 1000.0);
                assert!(v > last || (i == 0), "{c:?} at {i}");
                last = v;
            }
        }
    }

    #[test]
    fn gamma_brightens_midtones() {
        let g = CameraResponse::Gamma { gamma: 2.2 };
        assert!(g.apply(0.2) > 0.2);
    }

    #[test]
    fn nonlinear_curves_differ_from_linear() {
        for c in &CURVES[1..] {
            let mid = c.apply(0.35);
            assert!((mid - 0.35).abs() > 0.02, "{c:?} too close to linear");
        }
    }

    #[test]
    fn input_clamped() {
        for c in CURVES {
            assert_eq!(c.apply(-0.5), c.apply(0.0));
            assert_eq!(c.apply(1.5), c.apply(1.0));
        }
    }
}
