//! Camera response-curve recovery (the paper's Debevec–Malik citation).
//!
//! The paper's validation rests on the camera having "a monotonic
//! nonlinear transfer function" that can be recovered from photographs.
//! This module implements a practical recovery: photograph the same test
//! screen under a bracket of known exposure gains, then alternate between
//! estimating per-pixel irradiance and re-fitting the inverse response by
//! isotonic regression (a Mitsunaga–Nayar-flavoured simplification of
//! Debevec–Malik's least-squares solve that needs no matrix algebra).
//!
//! The recovered curve linearises snapshots, which is what Figs. 7–8 need
//! to read *display* characteristics through a non-linear camera.

use crate::sensor::DigitalCamera;
use annolight_imgproc::{Frame, LumaFrame};

/// A recovered inverse response: pixel value (0–255) → relative exposure
/// in `[0, 1]`, monotone non-decreasing.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredResponse {
    inverse: Vec<f64>, // length 256
}

annolight_support::impl_json!(struct RecoveredResponse { inverse });

impl RecoveredResponse {
    /// The inverse-response table.
    pub fn inverse(&self) -> &[f64] {
        &self.inverse
    }

    /// Maps one pixel value to its relative exposure.
    pub fn linearize_value(&self, v: u8) -> f64 {
        self.inverse[v as usize]
    }

    /// Linearises a snapshot into relative exposures.
    pub fn linearize(&self, snapshot: &LumaFrame) -> Vec<f64> {
        snapshot.samples().iter().map(|&v| self.inverse[v as usize]).collect()
    }

    /// Mean relative exposure of a snapshot after linearisation — the
    /// quantity Figs. 7–8 plot as "measured brightness" on a linear
    /// scale.
    pub fn linear_mean(&self, snapshot: &LumaFrame) -> f64 {
        let vals = self.linearize(snapshot);
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// The default exposure bracket (relative gains).
pub const DEFAULT_BRACKET: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Recovers the inverse response of `camera` from an exposure bracket over
/// a gray-staircase test screen.
///
/// `iterations` controls the alternating refinement (6–10 is plenty).
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn recover_response(camera: &DigitalCamera, iterations: u32) -> RecoveredResponse {
    assert!(iterations > 0, "need at least one refinement iteration");
    // A horizontal gray staircase: 64 columns spanning the full range.
    let screen = Frame::from_fn(64, 16, |x, _| {
        let v = (x * 4 + 2).min(255) as u8;
        [v, v, v]
    });
    // Photograph the staircase at each bracket gain. We bypass the display
    // (calibration is about the camera alone): feed the screen's luma
    // directly as the perceived plane, scaled by the gain inside the
    // camera model.
    let base = screen.to_luma();
    let shots: Vec<(f64, LumaFrame)> = DEFAULT_BRACKET
        .iter()
        .map(|&g| (g, camera_with_gain(camera, g).snapshot(&base)))
        .collect();

    let n_pixels = base.samples().len();
    // Work in log-exposure space: there the gauge freedom of the
    // alternating solve is a single additive constant (fixed by the final
    // anchoring) instead of an unrecoverable power-law drift.
    // g[v] = ln f⁻¹(v), initialised to the identity response.
    let mut g: Vec<f64> = (0..256).map(|v| ((v as f64 + 1.0) / 256.0).ln()).collect();
    let mut counts = vec![0.0f64; 256];
    for _ in 0..iterations {
        // E-step: per-pixel log-irradiance from the current curve.
        let mut log_e = vec![f64::NAN; n_pixels];
        for (i, e) in log_e.iter_mut().enumerate() {
            let mut acc = 0.0;
            let mut weight = 0.0;
            for (gain, shot) in &shots {
                let v = shot.samples()[i];
                let w = sample_weight(v);
                acc += w * (g[v as usize] - gain.ln());
                weight += w;
            }
            if weight > 0.0 {
                *e = acc / weight;
            }
        }
        // M-step: refit g from all (value → lnE + ln gain) samples.
        let mut sums = vec![0.0f64; 256];
        counts = vec![0.0f64; 256];
        for (gain, shot) in &shots {
            for (i, &v) in shot.samples().iter().enumerate() {
                let w = sample_weight(v);
                if w > 0.0 && log_e[i].is_finite() {
                    sums[v as usize] += w * (log_e[i] + gain.ln());
                    counts[v as usize] += w;
                }
            }
        }
        for v in 0..256 {
            if counts[v] > 0.0 {
                g[v] = sums[v] / counts[v];
            }
        }
        fill_unobserved(&mut g, &counts);
        isotonic_in_place(&mut g);
    }
    // Anchor the gauge constant: extrapolate g to full scale from a
    // wide-baseline pair of bright *observed* bins and shift so
    // f⁻¹(255) = 1. (A wide baseline keeps per-bin noise out of the
    // extrapolated slope.)
    let observed: Vec<usize> = (0..256).filter(|&v| counts[v] > 0.0).collect();
    let top = match observed.as_slice() {
        [] => 0.0,
        [only] => g[*only],
        obs => {
            let b = *obs.last().expect("non-empty");
            let a = obs
                .iter()
                .rev()
                .find(|&&v| v + 12 <= b)
                .copied()
                .unwrap_or(obs[obs.len() - 2]);
            g[b] + (g[b] - g[a]) / (b - a) as f64 * (255 - b) as f64
        }
    };
    let inverse: Vec<f64> = g.iter().map(|&lg| (lg - top).exp().clamp(0.0, 1.0)).collect();
    let mut inverse = inverse;
    isotonic_in_place(&mut inverse);
    RecoveredResponse { inverse }
}

/// Measures a device's backlight→luminance transfer with the camera, as
/// the paper does in §5: display a solid white screen, sweep the backlight
/// in `steps` increments, photograph each setting, and linearise the
/// readings through the camera's recovered response. The result feeds
/// [`annolight_display::fit_transfer`] to rebuild the device model from
/// measurements alone.
///
/// # Panics
///
/// Panics if `steps < 3`.
pub fn measure_display_transfer(
    camera: &DigitalCamera,
    response: &RecoveredResponse,
    device: &annolight_display::DeviceProfile,
    steps: u16,
) -> Vec<annolight_display::TransferSample> {
    assert!(steps >= 3, "need at least 3 sweep steps");
    use annolight_display::BacklightLevel;
    let white = Frame::filled(32, 32, annolight_imgproc::Rgb8::gray(255));
    let mut samples: Vec<annolight_display::TransferSample> = (0..steps)
        .map(|i| {
            let level = BacklightLevel(((u32::from(i) * 255) / u32::from(steps - 1)) as u8);
            let snap = camera.photograph(&white, device, level);
            (level, response.linear_mean(&snap))
        })
        .collect();
    // Normalise so full backlight reads 1.0 (the transfer families are
    // anchored there; absolute luminance is not recoverable anyway).
    let top = samples.last().map(|&(_, l)| l).unwrap_or(1.0).max(f64::EPSILON);
    for (_, l) in &mut samples {
        *l /= top;
    }
    samples
}

/// How close to the clipping ends a sample may sit before it is censored:
/// a saturated reading pulled below 255 by sensor noise would otherwise
/// poison its bin with an exposure up to the full bracket ratio too high.
const CLIP_GUARD: u8 = 6;

/// Hat weighting with a guard band at both clipping ends: samples there
/// carry no trustworthy exposure information.
fn sample_weight(v: u8) -> f64 {
    if !(CLIP_GUARD..=255 - CLIP_GUARD).contains(&v) {
        0.0
    } else {
        hat_weight(v)
    }
}

/// Linearly interpolates log-response bins that received no samples.
fn fill_unobserved(g: &mut [f64], counts: &[f64]) {
    let observed: Vec<usize> = (0..g.len()).filter(|&v| counts[v] > 0.0).collect();
    if observed.len() < 2 {
        return;
    }
    for w in observed.windows(2) {
        let (a, b) = (w[0], w[1]);
        for v in (a + 1)..b {
            let t = (v - a) as f64 / (b - a) as f64;
            g[v] = g[a] + (g[b] - g[a]) * t;
        }
    }
    // Extrapolate flat beyond the observed range.
    let (first, last) = (observed[0], *observed.last().expect("non-empty"));
    for v in 0..first {
        g[v] = g[first] - (first - v) as f64 * 0.02;
    }
    for v in (last + 1)..g.len() {
        g[v] = g[last] + (v - last) as f64 * 0.002;
    }
}

fn camera_with_gain(camera: &DigitalCamera, gain: f64) -> DigitalCamera {
    DigitalCamera::new(camera.response(), gain, 0.8, 17)
}

/// Classic Debevec–Malik hat weighting: trust mid-range samples, distrust
/// values near the clipping ends.
fn hat_weight(v: u8) -> f64 {
    let v = f64::from(v);
    if v <= 127.0 {
        (v + 1.0) / 128.0
    } else {
        (256.0 - v) / 128.0
    }
}

/// Pool-adjacent-violators: least-squares isotonic regression in place.
fn isotonic_in_place(values: &mut [f64]) {
    // Each block: (mean, count).
    let mut blocks: Vec<(f64, usize)> = Vec::with_capacity(values.len());
    for &v in values.iter() {
        blocks.push((v, 1));
        while blocks.len() >= 2 {
            let (m2, c2) = blocks[blocks.len() - 1];
            let (m1, c1) = blocks[blocks.len() - 2];
            if m1 <= m2 {
                break;
            }
            let merged = ((m1 * c1 as f64 + m2 * c2 as f64) / (c1 + c2) as f64, c1 + c2);
            blocks.pop();
            blocks.pop();
            blocks.push(merged);
        }
    }
    let mut i = 0;
    for (mean, count) in blocks {
        for _ in 0..count {
            values[i] = mean;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::CameraResponse;

    #[test]
    fn isotonic_fixes_violations() {
        let mut v = vec![1.0, 3.0, 2.0, 4.0];
        isotonic_in_place(&mut v);
        assert_eq!(v, vec![1.0, 2.5, 2.5, 4.0]);
        for w in v.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn isotonic_preserves_sorted_input() {
        let mut v = vec![0.0, 0.1, 0.5, 0.9];
        let orig = v.clone();
        isotonic_in_place(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn recovered_curve_is_monotone_and_anchored() {
        let camera = DigitalCamera::new(CameraResponse::Gamma { gamma: 2.2 }, 1.0, 0.0, 3);
        let r = recover_response(&camera, 8);
        let inv = r.inverse();
        assert_eq!(inv.len(), 256);
        for w in inv.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!(inv[255] > 0.93 && inv[255] <= 1.0, "top anchor {}", inv[255]);
        assert!(inv[0] < 0.05);
    }

    #[test]
    fn recovers_gamma_curve_shape() {
        // For a gamma-2.2 camera the true inverse is E = v^2.2; check the
        // recovered curve tracks it in the well-sampled mid-range.
        let camera = DigitalCamera::new(CameraResponse::Gamma { gamma: 2.2 }, 1.0, 0.0, 3);
        let r = recover_response(&camera, 10);
        for v in (64..224u16).step_by(16) {
            let truth = (f64::from(v) / 255.0).powf(2.2);
            let got = r.linearize_value(v as u8);
            assert!(
                (got - truth).abs() < 0.12,
                "v={v}: recovered {got:.3} vs truth {truth:.3}"
            );
        }
    }

    #[test]
    fn linearized_snapshot_undoes_the_camera() {
        // Photograph a linear ramp with a non-linear camera, linearise
        // with the recovered curve: the result is ~linear again.
        let camera = DigitalCamera::new(CameraResponse::Sigmoid { a: 1.6, k: 0.18 }, 1.0, 0.0, 5);
        let r = recover_response(&camera, 10);
        let ramp = LumaFrame::from_buffer(16, 1, (0..16).map(|i| (i * 17) as u8).collect()).unwrap();
        let snap = camera.snapshot(&ramp);
        let lin = r.linearize(&snap);
        // Compare mid-range points against the true relative exposures.
        for (i, (&raw, &linearised)) in ramp.samples().iter().zip(&lin).enumerate().take(13).skip(4) {
            let truth = f64::from(raw) / 255.0;
            assert!(
                (linearised - truth).abs() < 0.12,
                "i={i}: linearised {linearised:.3} vs truth {truth:.3}"
            );
        }
    }

    #[test]
    fn camera_in_the_loop_recovers_device_transfer() {
        // The full §5 characterisation loop: recover the camera response,
        // sweep the device's backlight, linearise, fit — the fitted curve
        // must match the device's true transfer family and parameter.
        use annolight_display::{fit_transfer, DeviceProfile, TransferFunction};
        let camera = DigitalCamera::consumer_compact(29);
        let response = recover_response(&camera, 8);
        let device = DeviceProfile::ipaq_3650(); // Gamma { 1.55 }
        let samples = measure_display_transfer(&camera, &response, &device, 17);
        let (fit, rmse) = fit_transfer(&samples);
        assert!(rmse < 0.06, "rmse {rmse}");
        match fit {
            TransferFunction::Gamma { gamma } => {
                assert!((gamma - 1.55).abs() < 0.35, "gamma {gamma}");
            }
            other => panic!("fit wrong family for a CCFL device: {other:?}"),
        }
    }

    #[test]
    fn hat_weight_peaks_mid_range() {
        assert!(hat_weight(128) > hat_weight(10));
        assert!(hat_weight(128) > hat_weight(250));
        assert!(hat_weight(0) > 0.0);
    }

    #[test]
    fn linear_mean_of_linear_camera_matches_plain_mean() {
        let camera = DigitalCamera::ideal();
        let r = recover_response(&camera, 4);
        let plane = LumaFrame::from_buffer(4, 1, vec![51, 102, 153, 204]).unwrap();
        let m = r.linear_mean(&plane) * 255.0;
        assert!((m - plane.mean()).abs() < 20.0, "{m} vs {}", plane.mean());
    }
}
