//! The Fig. 2 validation procedure.
//!
//! Phase 1: photograph the PDA showing the *original* frame at full
//! backlight (reference snapshot). Phase 2: photograph the *compensated*
//! frame at the annotated (dimmed) backlight. Compare the snapshots'
//! histograms: "the histogram was chosen as a metric because it represents
//! both the average luminance and dynamic range for an image" (Fig. 3).

use crate::sensor::DigitalCamera;
use annolight_display::{BacklightLevel, DeviceProfile};
use annolight_imgproc::{Frame, Histogram};

/// The outcome of comparing reference and compensated snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Mean luminance of the reference snapshot (Fig. 4's "Avg
    /// Brightness" of the original).
    pub reference_mean: f64,
    /// Mean luminance of the compensated snapshot.
    pub compensated_mean: f64,
    /// Dynamic range of the reference snapshot.
    pub reference_dynamic_range: u8,
    /// Dynamic range of the compensated snapshot.
    pub compensated_dynamic_range: u8,
    /// Histogram intersection similarity, `[0, 1]`, 1 = identical.
    pub histogram_intersection: f64,
    /// Earth mover's distance between the snapshot histograms, in
    /// luminance levels.
    pub histogram_emd: f64,
    /// Full reference histogram (for plotting, as in Fig. 4).
    pub reference_histogram: Histogram,
    /// Full compensated histogram.
    pub compensated_histogram: Histogram,
    /// Structural similarity of the two snapshots (1 = identical).
    pub ssim: f64,
}

annolight_support::impl_json!(struct ValidationReport { reference_mean, compensated_mean, reference_dynamic_range, compensated_dynamic_range, histogram_intersection, histogram_emd, reference_histogram, compensated_histogram, ssim });

impl ValidationReport {
    /// A single-number similarity verdict: `true` when the snapshots are
    /// close enough that a viewer would not notice ("hardly noticeable for
    /// a human, however the camera detects the slight changes").
    ///
    /// The thresholds mirror the paper's qualitative bar: small mean shift
    /// and high histogram overlap.
    pub fn acceptable(&self) -> bool {
        let mean_shift = (self.reference_mean - self.compensated_mean).abs();
        mean_shift <= 12.0 && self.histogram_emd <= 16.0
    }
}

/// Runs the full two-phase validation of Fig. 2.
///
/// `original` is displayed at `full` backlight for the reference snapshot;
/// `compensated` is displayed at `dimmed` backlight for the compensated
/// snapshot. Both are photographed with `camera` in a dark room and the
/// snapshots compared via their histograms.
///
/// # Panics
///
/// Panics if the two frames have different dimensions.
pub fn validate_compensation(
    original: &Frame,
    compensated: &Frame,
    device: &DeviceProfile,
    full: BacklightLevel,
    dimmed: BacklightLevel,
    camera: &DigitalCamera,
) -> ValidationReport {
    assert_eq!(
        (original.width(), original.height()),
        (compensated.width(), compensated.height()),
        "frames must share dimensions"
    );
    let reference = camera.photograph(original, device, full);
    let snapshot = camera.photograph(compensated, device, dimmed);
    let rh = reference.histogram();
    let ch = snapshot.histogram();
    let ssim = annolight_imgproc::ssim_luma(&reference, &snapshot);
    ValidationReport {
        reference_mean: rh.mean(),
        compensated_mean: ch.mean(),
        reference_dynamic_range: rh.dynamic_range(),
        compensated_dynamic_range: ch.dynamic_range(),
        histogram_intersection: rh.intersection(&ch),
        histogram_emd: rh.emd(&ch),
        reference_histogram: rh,
        compensated_histogram: ch,
        ssim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annolight_core::plan::plan_levels;
    use annolight_imgproc::{contrast_enhance, Rgb8};

    fn device() -> DeviceProfile {
        DeviceProfile::ipaq_5555()
    }

    fn dark_frame() -> Frame {
        Frame::from_fn(48, 48, |x, y| {
            if (x * 7 + y * 13) % 97 == 0 {
                [210, 210, 200]
            } else {
                let v = 40 + ((x + y) % 24) as u8;
                [v, v, v]
            }
        })
    }

    #[test]
    fn proper_compensation_validates() {
        let dev = device();
        let cam = DigitalCamera::consumer_compact(11);
        let original = dark_frame();
        // Plan exactly as the annotator would at the frame's effective max.
        let eff = original.luma_histogram().clip_level(0.05);
        let (k, level) = plan_levels(&dev, eff);
        let mut compensated = original.clone();
        contrast_enhance(&mut compensated, k);
        let report = validate_compensation(&original, &compensated, &dev, BacklightLevel::MAX, level, &cam);
        assert!(
            report.acceptable(),
            "mean {} vs {}, emd {}",
            report.reference_mean,
            report.compensated_mean,
            report.histogram_emd
        );
    }

    #[test]
    fn dimming_without_compensation_fails_validation() {
        let dev = device();
        let cam = DigitalCamera::consumer_compact(11);
        let original = Frame::filled(32, 32, Rgb8::gray(150));
        let report = validate_compensation(
            &original,
            &original,
            &dev,
            BacklightLevel::MAX,
            BacklightLevel(60),
            &cam,
        );
        assert!(!report.acceptable());
        assert!(report.compensated_mean < report.reference_mean - 15.0);
    }

    #[test]
    fn identical_conditions_are_near_perfect() {
        let dev = device();
        let cam = DigitalCamera::consumer_compact(4);
        let f = dark_frame();
        let report =
            validate_compensation(&f, &f, &dev, BacklightLevel::MAX, BacklightLevel::MAX, &cam);
        assert!(report.histogram_intersection > 0.9);
        assert!(report.histogram_emd < 2.0);
        assert!(report.acceptable());
    }

    #[test]
    fn report_captures_dynamic_range_change() {
        let dev = device();
        let cam = DigitalCamera::ideal();
        let original = Frame::from_fn(32, 32, |x, _| [(x * 8) as u8, (x * 8) as u8, (x * 8) as u8]);
        let mut crushed = original.clone();
        contrast_enhance(&mut crushed, 3.0); // heavy clipping
        let report = validate_compensation(
            &original, &crushed, &dev, BacklightLevel::MAX, BacklightLevel::MAX, &cam,
        );
        // Brightness compensation shifts the average up and clipping shows
        // in the histogram distance.
        assert!(report.compensated_mean > report.reference_mean);
        assert!(report.histogram_emd > 10.0);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_frames_panic() {
        let dev = device();
        let cam = DigitalCamera::ideal();
        let a = Frame::new(16, 16);
        let b = Frame::new(32, 16);
        let _ = validate_compensation(&a, &b, &dev, BacklightLevel::MAX, BacklightLevel::MAX, &cam);
    }
}
