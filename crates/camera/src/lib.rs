//! Digital-camera model for objective display-quality validation.
//!
//! §4.2 of the paper introduces "an alternative, novel way of validating
//! the results with a digital camera": photograph the PDA screen showing
//! the original frame at full backlight (reference snapshot) and the
//! compensated frame at the dimmed backlight (compensated snapshot), then
//! compare the two snapshots' luminance histograms. "A digital camera has
//! a monotonic nonlinear transfer function [Debevec & Malik] and allows us
//! to objectively estimate the similarity between two images."
//!
//! This crate models that workflow end to end:
//!
//! * [`CameraResponse`] — monotone non-linear sensor response curves;
//! * [`DigitalCamera`] — exposure, response and shot-noise model that
//!   turns a perceived screen luminance plane into a snapshot;
//! * [`validate_compensation`] — the two-phase Fig. 2 procedure, returning
//!   a histogram-based [`ValidationReport`].
//!
//! # Example
//!
//! ```
//! use annolight_camera::{DigitalCamera, validate_compensation};
//! use annolight_display::{BacklightLevel, DeviceProfile};
//! use annolight_imgproc::{contrast_enhance, Frame, Rgb8};
//!
//! let device = DeviceProfile::ipaq_5555();
//! let camera = DigitalCamera::consumer_compact(7);
//!
//! let original = Frame::filled(32, 32, Rgb8::gray(120));
//!
//! // Dim the backlight and compensate by k = (L/L')^(1/gamma) so the
//! // perceived intensity is preserved.
//! let dimmed = device.transfer().level_for_luminance(0.55);
//! let achieved = device.transfer().luminance(dimmed);
//! let k = (1.0 / achieved).powf(1.0 / device.panel().white_gamma()) as f32;
//! let mut compensated = original.clone();
//! contrast_enhance(&mut compensated, k);
//!
//! let report = validate_compensation(
//!     &original, &compensated, &device, BacklightLevel::MAX, dimmed, &camera,
//! );
//! // The compensated snapshot is close to the reference.
//! assert!((report.reference_mean - report.compensated_mean).abs() < 8.0);
//! assert!(report.acceptable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod response;
pub mod sensor;
pub mod validate;

pub use calibrate::{measure_display_transfer, recover_response, RecoveredResponse};
pub use response::CameraResponse;
pub use sensor::DigitalCamera;
pub use validate::{validate_compensation, ValidationReport};
