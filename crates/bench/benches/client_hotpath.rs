//! Wall-clock benches (annolight-support harness, criterion-shaped) for the client hot path — checking the paper's claim
//! that runtime work is "a simple multiplication, followed by a table
//! look-up" and therefore negligible next to decoding.

use annolight_core::{apply::apply_annotation, Annotator, LuminanceProfile, QualityLevel};
use annolight_core::AnnotationTrack;
use annolight_display::{BacklightController, ControllerConfig, DeviceProfile};
use annolight_video::ClipLibrary;
use annolight_support::bench::{Criterion, Throughput};
use annolight_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn track() -> AnnotationTrack {
    let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(30.0);
    let profile = LuminanceProfile::of_clip(&clip).unwrap();
    Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10)
        .annotate_profile(&profile)
        .unwrap()
        .track()
        .clone()
}

fn bench_client(c: &mut Criterion) {
    let t = track();
    let frames = t.frame_count();
    let device = DeviceProfile::ipaq_5555();

    let mut g = c.benchmark_group("client");
    g.throughput(Throughput::Elements(u64::from(frames)));
    g.bench_function("entry_lookup_per_frame", |b| {
        b.iter(|| {
            for f in 0..frames {
                black_box(t.entry_at(f).unwrap());
            }
        });
    });
    g.bench_function("controller_playback", |b| {
        b.iter(|| black_box(apply_annotation(&t, ControllerConfig::default()).unwrap()));
    });
    g.bench_function("controller_request", |b| {
        let mut ctl = BacklightController::default();
        let mut now = 0.0f64;
        b.iter(|| {
            now += 1.0 / 12.0;
            black_box(ctl.request(now, annolight_display::BacklightLevel(128)));
        });
    });
    g.finish();

    let mut g = c.benchmark_group("track_wire");
    let bytes = t.to_rle_bytes();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("parse_from_stream", |b| {
        b.iter(|| black_box(AnnotationTrack::from_rle_bytes(black_box(&bytes)).unwrap()));
    });
    g.finish();

    // The cost annotation *avoids*: a history-based client must histogram
    // and analyse every decoded frame on-device (§2's "heavier load on
    // the mobile device"). Compare this against entry_lookup_per_frame.
    let mut g = c.benchmark_group("online_alternative");
    let frame = ClipLibrary::paper_clip("themovie").unwrap().preview(1.0).frame(0);
    g.throughput(Throughput::Elements(1));
    g.bench_function("per_frame_histogram_analysis", |b| {
        b.iter(|| {
            let h = black_box(&frame).luma_histogram();
            black_box(h.clip_level(0.10))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("device_lut");
    g.bench_function("inverse_lut_build", |b| {
        b.iter(|| black_box(device.transfer().inverse_lut()));
    });
    g.bench_function("level_for_luminance", |b| {
        b.iter(|| black_box(device.transfer().level_for_luminance(black_box(0.42))));
    });
    g.finish();
}

criterion_group!(benches, bench_client);
criterion_main!(benches);
