//! Wall-clock benches (annolight-support harness, criterion-shaped) for
//! the annotation service: cold profile+annotate vs warm content-addressed
//! cache hit, plus the submission fast path.
//!
//! The headline contract (asserted in `figures::tab_serve` tests and
//! visible here in nanoseconds): a warm hit must be at least an order of
//! magnitude faster than a cold profile, because it skips luminance
//! profiling and backlight planning entirely.

use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_serve::{AnnotationRequest, AnnotationService, Service, ServiceConfig};
use annolight_support::bench::{BatchSize, Criterion, Throughput};
use annolight_support::{criterion_group, criterion_main};
use annolight_video::{Clip, ClipLibrary};
use std::hint::black_box;
use std::sync::Arc;

fn clip() -> Clip {
    ClipLibrary::paper_clip("themovie").unwrap().preview(4.0)
}

fn request() -> AnnotationRequest {
    AnnotationRequest {
        tenant: "bench".into(),
        clip: "themovie".into(),
        device: DeviceProfile::ipaq_5555(),
        quality: QualityLevel::Q10,
        mode: AnnotationMode::PerScene,
        policy: annolight_core::PolicyKind::PeakClip,
    }
}

fn fresh_service() -> Arc<AnnotationService> {
    let svc = AnnotationService::new(ServiceConfig { workers: 0, ..ServiceConfig::default() });
    svc.register_clip(clip());
    svc
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let frames = u64::from(clip().frame_count());
    let mut g = c.benchmark_group("serve");
    g.throughput(Throughput::Elements(frames));

    // Cold: a fresh service per iteration, so every call profiles and
    // plans from scratch (setup excluded from timing).
    g.bench_function("cold_profile", |b| {
        b.iter_batched(
            fresh_service,
            |svc| black_box(svc.call(request()).unwrap()),
            BatchSize::SmallInput,
        );
    });

    // Warm: one pre-warmed service; every call is a cache hit.
    let warm = fresh_service();
    assert!(!warm.call(request()).unwrap().cache_hit, "first call must be cold");
    g.bench_function("warm_hit", |b| {
        b.iter(|| {
            let resp = warm.call(request()).unwrap();
            debug_assert!(resp.cache_hit);
            black_box(resp)
        });
    });
    g.finish();
}

fn bench_submission_fast_path(c: &mut Criterion) {
    // Submission of an already-cached key answers at admission time
    // (Ticket::Ready) without touching the pool.
    let svc = fresh_service();
    svc.call(request()).unwrap();
    let mut g = c.benchmark_group("serve_submit");
    g.throughput(Throughput::Elements(1));
    g.bench_function("ready_ticket", |b| {
        b.iter(|| {
            let ticket = svc.submit(request()).unwrap();
            debug_assert!(ticket.is_ready());
            black_box(ticket.wait().unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_submission_fast_path);
criterion_main!(benches);
