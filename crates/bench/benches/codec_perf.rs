//! Wall-clock benches (annolight-support harness, criterion-shaped) for the codec substrate.

use annolight_codec::picture::{decode_intra, encode_inter, encode_intra};
use annolight_codec::quant::QScale;
use annolight_codec::{Decoder, Encoder, EncoderConfig};
use annolight_video::ClipLibrary;
use annolight_support::bench::{Criterion, Throughput};
use annolight_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_pictures(c: &mut Criterion) {
    let clip = ClipLibrary::paper_clip("spiderman2").unwrap().preview(2.0);
    let a = clip.frame(0).to_yuv420().unwrap();
    let b = clip.frame(1).to_yuv420().unwrap();
    let q = QScale::new(8);
    let pixels = u64::from(a.width()) * u64::from(a.height());

    let mut g = c.benchmark_group("picture");
    g.throughput(Throughput::Elements(pixels));
    g.bench_function("encode_intra", |bch| {
        bch.iter(|| black_box(encode_intra(black_box(&a), q)));
    });
    let ia = encode_intra(&a, q);
    g.bench_function("decode_intra", |bch| {
        bch.iter(|| black_box(decode_intra(black_box(&ia.bytes), a.width(), a.height()).unwrap()));
    });
    g.bench_function("encode_inter", |bch| {
        bch.iter(|| black_box(encode_inter(black_box(&b), &ia.reconstruction, q)));
    });
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    let clip = ClipLibrary::paper_clip("spiderman2").unwrap().preview(1.0);
    let frames: Vec<_> = clip.frames().collect();
    let (w, h) = clip.dimensions();
    let cfg = EncoderConfig { width: w, height: h, fps: clip.fps(), ..EncoderConfig::default() };

    let mut g = c.benchmark_group("stream");
    g.throughput(Throughput::Elements(frames.len() as u64));
    g.bench_function("encode_1s_clip", |bch| {
        bch.iter(|| {
            let mut enc = Encoder::new(cfg).unwrap();
            for f in &frames {
                enc.push_frame(f).unwrap();
            }
            black_box(enc.finish())
        });
    });
    let mut enc = Encoder::new(cfg).unwrap();
    for f in &frames {
        enc.push_frame(f).unwrap();
    }
    let stream = enc.finish();
    g.bench_function("decode_1s_clip", |bch| {
        bch.iter(|| {
            let mut dec = Decoder::new(&stream).unwrap();
            black_box(dec.decode_all().unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pictures, bench_stream);
criterion_main!(benches);
