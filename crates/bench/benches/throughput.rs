//! Wall-clock benches (annolight-support harness, criterion-shaped) for the analysis/annotation pipeline (server side).

use annolight_core::{Annotator, LuminanceProfile, QualityLevel, SceneDetector};
use annolight_display::DeviceProfile;
use annolight_imgproc::contrast_enhance;
use annolight_video::ClipLibrary;
use annolight_support::bench::{BatchSize, Criterion, Throughput};
use annolight_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_profiling(c: &mut Criterion) {
    let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
    let frame = clip.frame(0);
    let mut g = c.benchmark_group("profile");
    g.throughput(Throughput::Elements(u64::from(frame.width()) * u64::from(frame.height())));
    g.bench_function("frame_histogram", |b| {
        b.iter(|| black_box(frame.luma_histogram()));
    });
    g.finish();
}

fn bench_scene_detection(c: &mut Criterion) {
    let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(20.0);
    let profile = LuminanceProfile::of_clip(&clip).unwrap();
    let detector = SceneDetector::default();
    let mut g = c.benchmark_group("scenes");
    g.throughput(Throughput::Elements(profile.len() as u64));
    g.bench_function("detect_20s", |b| {
        b.iter(|| black_box(detector.detect(&profile)));
    });
    g.finish();
}

fn bench_annotation(c: &mut Criterion) {
    let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(20.0);
    let profile = LuminanceProfile::of_clip(&clip).unwrap();
    let annotator = Annotator::new(DeviceProfile::ipaq_5555(), QualityLevel::Q10);
    let mut g = c.benchmark_group("annotate");
    g.throughput(Throughput::Elements(profile.len() as u64));
    g.bench_function("plan_and_track_20s", |b| {
        b.iter(|| black_box(annotator.annotate_profile(&profile).unwrap()));
    });
    let annotated = annotator.annotate_profile(&profile).unwrap();
    let bytes = annotated.track().to_rle_bytes();
    g.bench_function("track_rle_encode", |b| {
        b.iter(|| black_box(annotated.track().to_rle_bytes()));
    });
    g.bench_function("track_rle_decode", |b| {
        b.iter(|| {
            black_box(annolight_core::AnnotationTrack::from_rle_bytes(black_box(&bytes)).unwrap())
        });
    });
    g.finish();
}

fn bench_compensation(c: &mut Criterion) {
    let clip = ClipLibrary::paper_clip("themovie").unwrap().preview(2.0);
    let frame = clip.frame(0);
    let mut g = c.benchmark_group("compensate");
    g.throughput(Throughput::Elements(frame.pixel_count() as u64));
    g.bench_function("contrast_enhance", |b| {
        b.iter_batched(
            || frame.clone(),
            |mut f| black_box(contrast_enhance(&mut f, 1.4)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_profiling,
    bench_scene_detection,
    bench_annotation,
    bench_compensation
);
criterion_main!(benches);
