//! Golden-figure conformance tier: exact JSON snapshots of Figs. 3–8
//! and 10 (extending `fig9_shape.rs`'s shape assertions to full
//! byte-level conformance for the deterministic figures).
//!
//! Every figure module's `run(...)` output is serialised with the
//! in-tree JSON encoder and compared **byte-for-byte** against a
//! committed snapshot in `tests/golden/`. Floats are rendered with
//! Rust's shortest-roundtrip `{:?}` formatting, so equality is exact
//! and platform-independent; any change to a kernel, a planner or the
//! JSON encoder shows up as a readable text diff.
//!
//! Regenerating after an *intentional* change:
//!
//! ```text
//! ANNOLIGHT_BLESS=1 cargo test -p annolight-bench --test figures_golden
//! ```
//!
//! then commit the updated snapshots (documented in DESIGN.md §9).
//!
//! Fig. 9 and the service/throughput tables are excluded: Fig. 9 keeps
//! its shape-level test (`fig9_shape.rs`), and the tables include
//! wall-clock measurements that are inherently non-reproducible.

use annolight_bench::figures::{
    fig03, fig04, fig05, fig06, fig07, fig08, fig10, pipeline_throughput, tab_policies,
};
use annolight_core::QualityLevel;
use annolight_support::json::{to_string_pretty, ToJson};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.json"))
}

/// Compares `value`'s JSON document against the committed golden file,
/// or rewrites the file when `ANNOLIGHT_BLESS=1` is set.
fn assert_golden<T: ToJson>(name: &str, value: &T) {
    let mut doc = to_string_pretty(value);
    doc.push('\n'); // POSIX text file: trailing newline
    let path = golden_path(name);
    if std::env::var_os("ANNOLIGHT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("golden dir is creatable");
        std::fs::write(&path, &doc).expect("golden file is writable");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             run `ANNOLIGHT_BLESS=1 cargo test -p annolight-bench --test figures_golden` \
             and commit the result",
            path.display()
        )
    });
    assert_eq!(
        want, doc,
        "figure `{name}` diverged from its golden snapshot ({}).\n\
         If the change is intentional, regenerate with \
         `ANNOLIGHT_BLESS=1 cargo test -p annolight-bench --test figures_golden` \
         and commit the diff.",
        path.display()
    );
}

#[test]
fn fig03_luminance_histogram_matches_golden() {
    assert_golden("fig03", &fig03::run());
}

#[test]
fn fig04_compensation_matches_golden() {
    assert_golden("fig04", &fig04::run(QualityLevel::Q10));
}

#[test]
fn fig05_clipping_matches_golden() {
    assert_golden("fig05", &fig05::run());
}

#[test]
fn fig06_scene_backlight_matches_golden() {
    // The quick-mode parameters of `all_figures --quick`, frozen.
    assert_golden("fig06", &fig06::run("themovie", 10.0));
}

#[test]
fn fig07_backlight_transfer_matches_golden() {
    assert_golden("fig07", &fig07::run());
}

#[test]
fn fig08_white_transfer_matches_golden() {
    assert_golden("fig08", &fig08::run());
}

#[test]
fn fig10_total_power_matches_golden() {
    // 6-second previews — the quick-mode parameter, frozen.
    assert_golden("fig10", &fig10::run(6.0));
}

#[test]
fn pipeline_conformance_matches_golden() {
    // The wall-clock throughput table itself cannot snapshot, but its
    // deterministic projection can: every kernel tier, worker count and
    // batched-scheduler configuration collapsed to the output digests
    // they all share. Any drift in a SIMD kernel, the fixed-point LUT,
    // the planner, or the batched dispatch order shows up as a diff
    // here — on any host, since unavailable tiers clamp to available
    // ones that are byte-identical by construction. 1-second preview,
    // frozen.
    assert_golden("pipeline", &pipeline_throughput::conformance(1.0));
}

#[test]
fn tab_policies_matches_golden() {
    // Unlike the throughput tables, the policy tournament contains no
    // wall-clock measurements — planner metrics and simulated-session
    // energy only — so it snapshots byte-exactly. This is the
    // differential lock on all three policy backends at once: any drift
    // in HEBS equalisation, spatial pricing, or the peak-clip reference
    // shows up as a diff here. 3-second previews, the `--test` parameter.
    assert_golden("tab_policies", &tab_policies::run(3.0));
}
