//! Golden shape-regression test for the headline Fig. 9 result.
//!
//! The figure's *shape* — not its exact numbers — is what the paper
//! stakes its claim on: dark clips (`themovie` class) benefit hugely
//! from annotation-driven backlight scaling, calibrated-bright clips
//! (`ice_age`, `hunter_subres`) barely at all, and savings grow with
//! the tolerated quality degradation. Any change that flips one of
//! those orderings has broken the reproduction, however plausible the
//! individual numbers look.

use annolight_bench::figures::fig09;

/// The dark, highlight-sparse clips Fig. 9 shows as the big winners.
const DARK_CLIPS: [&str; 4] = ["themovie", "returnoftheking", "i_robot", "theincredibles-tlr2"];

/// The calibrated-bright negative results (§4.2).
const BRIGHT_CLIPS: [&str; 2] = ["ice_age", "hunter_subres"];

fn savings_of(f: &fig09::Fig09, name: &str) -> [f64; 5] {
    f.rows.iter().find(|r| r.clip == name).unwrap_or_else(|| panic!("{name} missing")).savings
}

#[test]
fn fig9_shape_dark_dominates_bright_and_quality_is_monotone() {
    let f = fig09::run(Some(8.0));

    // 1. Savings are monotone non-decreasing in the quality sweep for
    //    *every* clip: tolerating more clipping can never cost power.
    for r in &f.rows {
        for (i, w) in r.savings.windows(2).enumerate() {
            assert!(
                w[1] + 1e-9 >= w[0],
                "{}: savings fell from {:.4} to {:.4} between levels {i} and {}",
                r.clip,
                w[0],
                w[1],
                i + 1
            );
        }
    }

    // 2. At every *lossy* quality level (5–20 %), every dark clip saves
    //    strictly more than every bright clip. (The lossless 0 % column
    //    is excluded by construction: there, savings depend only on each
    //    clip's peak luminance, which the content classes do not order.)
    for dark in DARK_CLIPS {
        let d = savings_of(&f, dark);
        for bright in BRIGHT_CLIPS {
            let b = savings_of(&f, bright);
            for q in 1..5 {
                assert!(
                    d[q] > b[q],
                    "level {q}: dark {dark} ({:.4}) must beat bright {bright} ({:.4})",
                    d[q],
                    b[q]
                );
            }
        }
    }

    // 3. The separation is material, not marginal: at the paper's 10 %
    //    operating point dark clips clear 45 % while bright clips stay
    //    under 40 % (Fig. 9 shows ≳60 % vs ≲30 %).
    for dark in DARK_CLIPS {
        assert!(savings_of(&f, dark)[2] > 0.45, "{dark}: {:?}", savings_of(&f, dark));
    }
    for bright in BRIGHT_CLIPS {
        assert!(savings_of(&f, bright)[2] < 0.40, "{bright}: {:?}", savings_of(&f, bright));
    }
}
