//! Benchmark harness and paper-figure regeneration.
//!
//! Every table and figure in the paper's evaluation has a regeneration
//! entry point here, exposed both as a library function (returning the raw
//! numbers, unit-tested for the paper's qualitative claims) and as a
//! binary under `src/bin/` that prints the series:
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Fig. 3 histogram properties | [`figures::fig03`] | `fig03_histogram` |
//! | Fig. 4 compensated snapshots | [`figures::fig04`] | `fig04_compensation` |
//! | Fig. 5 clipping trade-off | [`figures::fig05`] | `fig05_clipping` |
//! | Fig. 6 scene grouping | [`figures::fig06`] | `fig06_scenes` |
//! | Fig. 7 brightness vs backlight | [`figures::fig07`] | `fig07_backlight_transfer` |
//! | Fig. 8 brightness vs white | [`figures::fig08`] | `fig08_white_transfer` |
//! | Fig. 9 backlight savings (simulated) | [`figures::fig09`] | `fig09_backlight_savings` |
//! | Fig. 10 total savings (measured) | [`figures::fig10`] | `fig10_total_power` |
//! | Annotation overhead (§4.3 claim) | [`figures::tab_overhead`] | `tab_overhead` |
//! | Baseline comparison (§2 claims) | [`figures::tab_baselines`] | `tab_baselines` |
//! | Loss-sweep robustness (Fig. 1 hop under faults) | [`figures::tab_loss`] | `tab_loss` |
//!
//! Run everything with `cargo run --release -p annolight-bench --bin
//! all_figures`. Criterion performance benches live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod table;
