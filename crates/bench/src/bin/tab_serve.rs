//! Regenerates the serving-at-scale table (annotation service throughput
//! vs pool width, plus the cold-profile vs warm-hit latency gap).
fn main() {
    let t = annolight_bench::figures::tab_serve::run(&[1, 2, 4], 12, 3, 4.0);
    print!("{}", annolight_bench::figures::tab_serve::render(&t));
}
