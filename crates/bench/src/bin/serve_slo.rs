//! Fleet SLO benchmark driver.
//!
//! * `serve_slo` — full-size run (10k-clip corpus), table to stdout.
//! * `serve_slo --out PATH` — full-size run, also writes the
//!   `BENCH_serve.json` trajectory artefact.
//! * `serve_slo --test` — sub-second CI smoke: small presets,
//!   double-run determinism check (identical deterministic summaries),
//!   SLO pass assertions.

use annolight_bench::figures::serve_slo;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if smoke {
        let a = serve_slo::run_small(serve_slo::BASELINE_SEED);
        let b = serve_slo::run_small(serve_slo::BASELINE_SEED);
        assert_eq!(
            serve_slo::deterministic_log(&a),
            serve_slo::deterministic_log(&b),
            "same-seed double run must produce identical deterministic summaries"
        );
        print!("{}", serve_slo::render(&a));
        assert_eq!(a.scenarios.len(), 3, "smoke expects all three scenarios");
        for r in &a.scenarios {
            assert!(r.requests > 0, "{}: empty trace", r.scenario);
            assert!(r.slo_pass, "{}: SLO violated (see table above)", r.scenario);
        }
        println!("\nserve_slo --test: ok (3 scenarios, double-run deterministic)");
        return;
    }

    let bench = serve_slo::run(serve_slo::BASELINE_SEED);
    print!("{}", serve_slo::render(&bench));
    if let Some(path) = out {
        std::fs::write(&path, bench.to_json_string() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
