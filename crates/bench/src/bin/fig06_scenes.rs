//! Regenerates Fig. 6 (scene grouping during playback).
fn main() {
    let f = annolight_bench::figures::fig06::run("themovie", 40.0);
    print!("{}", annolight_bench::figures::fig06::render(&f));
}
