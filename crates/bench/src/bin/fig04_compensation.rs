//! Regenerates Fig. 4 (original vs compensated camera snapshots).
use annolight_core::QualityLevel;
fn main() {
    let f = annolight_bench::figures::fig04::run(QualityLevel::Q10);
    print!("{}", annolight_bench::figures::fig04::render(&f));
}
