//! Regenerates the ablation studies (scene threshold, guard interval,
//! annotation mode, compensation operator, codec rate-distortion).
fn main() {
    print!("{}", annolight_bench::figures::ablations::render_all(30.0));
}
