//! Times the profile→plan→compensate pipeline: legacy float serial
//! baseline vs. the LUT-kernel parallel pipeline at several worker
//! counts. Pass `--test` for a sub-second smoke run (used by CI).
use annolight_bench::figures::pipeline_throughput;

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let t = if smoke {
        pipeline_throughput::run(0.6, 1)
    } else {
        pipeline_throughput::run(8.0, 3)
    };
    print!("{}", pipeline_throughput::render(&t));
    if smoke {
        assert_eq!(
            t.rows.len(),
            1 + pipeline_throughput::WORKER_COUNTS.len(),
            "smoke mode expects every configured row"
        );
        println!("\npipeline_throughput --test: ok ({} rows)", t.rows.len());
    }
}
