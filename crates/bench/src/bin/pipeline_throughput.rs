//! Times the profile→plan→compensate pipeline: legacy float serial
//! baseline and scalar-LUT reference vs. the dispatched SIMD pipeline
//! at several worker counts plus the batched multi-clip scheduler.
//! Pass `--test` for a sub-second smoke run (used by CI); in smoke mode
//! the best SIMD row must clear a 2x speedup floor over the scalar LUT
//! pipeline. Pass `--out PATH` to persist the table as JSON (the
//! committed `BENCH_pipeline.json` trajectory).
use annolight_bench::figures::pipeline_throughput;
use annolight_support::json::to_string_pretty;

/// Issue-10 floor: the SIMD/batched pipeline must be at least this much
/// faster than the scalar fixed-point LUT pipeline on wide cores.
const SPEEDUP_FLOOR_VS_LUT: f64 = 2.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let t = if smoke {
        pipeline_throughput::run(0.6, 1)
    } else {
        pipeline_throughput::run(8.0, 3)
    };
    print!("{}", pipeline_throughput::render(&t));
    if let Some(path) = out_path {
        let mut doc = to_string_pretty(&t);
        doc.push('\n');
        std::fs::write(&path, doc).expect("bench output path is writable");
        println!("\nwrote {path}");
    }
    if smoke {
        assert_eq!(
            t.rows.len(),
            2 + pipeline_throughput::WORKER_COUNTS.len()
                + pipeline_throughput::BATCHED_WORKER_COUNTS.len(),
            "smoke mode expects every configured row"
        );
        let best = t
            .rows
            .iter()
            .filter(|r| r.label.contains("SIMD"))
            .max_by(|a, b| a.speedup_vs_lut.total_cmp(&b.speedup_vs_lut))
            .expect("SIMD rows present");
        assert!(
            best.speedup_vs_lut >= SPEEDUP_FLOOR_VS_LUT,
            "best SIMD pipeline row `{}` is {:.2}x vs the scalar LUT pipeline, \
             below the {SPEEDUP_FLOOR_VS_LUT}x floor",
            best.label,
            best.speedup_vs_lut
        );
        println!(
            "\npipeline_throughput --test: ok ({} rows, best `{}` {:.2}x vs LUT, floor {SPEEDUP_FLOOR_VS_LUT}x)",
            t.rows.len(),
            best.label,
            best.speedup_vs_lut
        );
    }
}
