//! Regenerates the DVFS-extension experiment.
fn main() {
    let e = annolight_bench::figures::ext_dvfs::run(20.0);
    print!("{}", annolight_bench::figures::ext_dvfs::render(&e));
}
