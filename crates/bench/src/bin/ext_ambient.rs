//! Regenerates the ambient-aware planning extension experiment.
fn main() {
    let e = annolight_bench::figures::ext_ambient::run(160);
    print!("{}", annolight_bench::figures::ext_ambient::render(&e));
}
