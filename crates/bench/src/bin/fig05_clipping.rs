//! Regenerates Fig. 5 (quality trade-off in the histogram).
fn main() {
    let f = annolight_bench::figures::fig05::run();
    print!("{}", annolight_bench::figures::fig05::render(&f));
}
