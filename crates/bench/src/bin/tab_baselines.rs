//! Regenerates the baseline-comparison table (§2 claims).
fn main() {
    let t = annolight_bench::figures::tab_baselines::run(20.0);
    print!("{}", annolight_bench::figures::tab_baselines::render(&t));
}
