//! Times codec encode, decode and proxy transcode: reference float
//! kernels vs. the fixed-point AAN fast path at several worker counts.
//! Pass `--test` for a sub-second smoke run (used by CI); in smoke mode
//! the inline fast-path encode row must clear a 3x speedup floor over
//! the reference-kernel baseline.
use annolight_bench::figures::codec_throughput;

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let t = if smoke {
        codec_throughput::run(1.0, 2)
    } else {
        codec_throughput::run(6.0, 3)
    };
    print!("{}", codec_throughput::render(&t));
    if smoke {
        assert_eq!(
            t.rows.len(),
            3 * (1 + codec_throughput::WORKER_COUNTS.len()),
            "smoke mode expects every configured row"
        );
        let inline_encode = t
            .rows
            .iter()
            .find(|r| r.stage == "encode" && r.workers == 0 && r.label.starts_with("fast path"))
            .expect("inline fast-path encode row present");
        assert!(
            inline_encode.speedup >= 3.0,
            "inline fast-path encode speedup {:.2}x below the 3x floor",
            inline_encode.speedup
        );
        println!(
            "\ncodec_throughput --test: ok ({} rows, inline encode {:.2}x)",
            t.rows.len(),
            inline_encode.speedup
        );
    }
}
