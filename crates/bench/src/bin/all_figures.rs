//! Regenerates every paper figure and table in one run (the source of
//! EXPERIMENTS.md). Pass `--quick` for truncated clips, `--json` for a
//! single machine-readable document instead of text tables.
use annolight_bench::figures::*;
use annolight_core::QualityLevel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let (f9, f10_s, tab_s) = if quick { (Some(10.0), 6.0, 6.0) } else { (None, 20.0, 20.0) };
    let fig6_s = if quick { 10.0 } else { 40.0 };
    let overhead_s = if quick { Some(6.0) } else { None };

    let r03 = fig03::run();
    let r04 = fig04::run(QualityLevel::Q10);
    let r05 = fig05::run();
    let r06 = fig06::run("themovie", fig6_s);
    let r07 = fig07::run();
    let r08 = fig08::run();
    let r09 = fig09::run(f9);
    let r10 = fig10::run(f10_s);
    let ro = tab_overhead::run(overhead_s);
    let rb = tab_baselines::run(tab_s);
    let rp = tab_policies::run(if quick { 4.0 } else { 12.0 });
    let rl = tab_loss::run(if quick { 4.0 } else { 8.0 }, 42);
    let rpt = pipeline_throughput::run(if quick { 1.0 } else { 8.0 }, if quick { 1 } else { 3 });
    let rct = codec_throughput::run(if quick { 1.0 } else { 6.0 }, if quick { 1 } else { 3 });
    let rg = ext_governor::run(if quick { 6.0 } else { 20.0 });

    if json {
        let doc = annolight_support::json_obj!({
            "fig03": r03, "fig04": r04, "fig05": r05, "fig06": r06,
            "fig07": r07, "fig08": r08, "fig09": r09, "fig10": r10,
            "tab_overhead": ro, "tab_baselines": rb, "tab_policies": rp,
            "tab_loss": rl,
            "pipeline_throughput": rpt,
            "codec_throughput": rct,
            "ext_governor": rg,
        });
        println!("{}", doc.pretty());
    } else {
        println!("{}", fig03::render(&r03));
        println!("{}", fig04::render(&r04));
        println!("{}", fig05::render(&r05));
        println!("{}", fig06::render(&r06));
        println!("{}", fig07::render(&r07));
        println!("{}", fig08::render(&r08));
        println!("{}", fig09::render(&r09));
        println!("{}", fig10::render(&r10));
        println!("{}", tab_overhead::render(&ro));
        println!("{}", tab_baselines::render(&rb));
        println!("{}", tab_policies::render(&rp));
        println!("{}", tab_loss::render(&rl));
        println!("{}", pipeline_throughput::render(&rpt));
        println!("{}", codec_throughput::render(&rct));
        println!("{}", ext_governor::render(&rg));
    }
}
