//! Regenerates Fig. 8 (brightness vs white level).
fn main() {
    let f = annolight_bench::figures::fig08::run();
    print!("{}", annolight_bench::figures::fig08::render(&f));
}
