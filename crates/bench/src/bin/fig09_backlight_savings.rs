//! Regenerates Fig. 9 (simulated LCD backlight power savings).
fn main() {
    let f = annolight_bench::figures::fig09::run(None);
    print!("{}", annolight_bench::figures::fig09::render(&f));
}
