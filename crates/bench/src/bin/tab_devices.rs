//! Regenerates the device-tailoring comparison table.
fn main() {
    let t = annolight_bench::figures::tab_devices::run(None);
    print!("{}", annolight_bench::figures::tab_devices::render(&t));
}
