//! Regenerates the annotation-overhead table (§4.3 claim).
fn main() {
    let t = annolight_bench::figures::tab_overhead::run(None);
    print!("{}", annolight_bench::figures::tab_overhead::render(&t));
}
