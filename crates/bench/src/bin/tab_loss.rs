//! Regenerates the loss-sweep robustness table (fault-injected sessions:
//! retransmission load, hint loss, graceful degradation, net savings).
fn main() {
    let t = annolight_bench::figures::tab_loss::run(8.0, 42);
    print!("{}", annolight_bench::figures::tab_loss::render(&t));
}
