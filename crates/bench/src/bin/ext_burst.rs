//! Regenerates the stacked-optimisations extension experiment.
fn main() {
    let e = annolight_bench::figures::ext_burst::run(20.0);
    print!("{}", annolight_bench::figures::ext_burst::render(&e));
}
