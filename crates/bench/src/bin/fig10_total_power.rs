//! Regenerates Fig. 10 (measured total device power savings).
//!
//! Each clip is truncated to 20 s: full codec+network+power sessions are
//! expensive and the per-scene statistics converge within tens of seconds.
fn main() {
    let f = annolight_bench::figures::fig10::run(20.0);
    print!("{}", annolight_bench::figures::fig10::render(&f));
}
