//! Policy tournament driver.
//!
//! * `tab_policies` — full-size run, table to stdout.
//! * `tab_policies --out PATH` — full-size run, also writes the
//!   `BENCH_policies.json` artefact.
//! * `tab_policies --test` — CI smoke: short previews, double-run
//!   determinism check, SLO assertions on every cell.

use annolight_bench::figures::tab_policies;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if smoke {
        let a = tab_policies::run(3.0);
        let b = tab_policies::run(3.0);
        assert_eq!(
            annolight_support::json::to_string(&a),
            annolight_support::json::to_string(&b),
            "double run must produce identical tournament tables"
        );
        print!("{}", tab_policies::render(&a));
        assert_eq!(a.rows.len(), 27, "3 clips × 3 devices × 3 policies");
        for r in &a.rows {
            assert!(r.slo_ok, "{}/{}/{}: quality SLO violated (see table)", r.clip, r.device, r.policy);
        }
        println!("\ntab_policies --test: ok (27 cells, double-run deterministic)");
        return;
    }

    let t = tab_policies::run(12.0);
    print!("{}", tab_policies::render(&t));
    if let Some(path) = out {
        std::fs::write(&path, annolight_support::json::to_string_pretty(&t) + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
