//! Reactor scalability benchmark driver.
//!
//! * `reactor_scale` — full 1k / 10k / 100k sweep, table to stdout.
//! * `reactor_scale --out PATH` — full sweep, also writes the
//!   `BENCH_reactor.json` artefact.
//! * `reactor_scale --test` — CI smoke: 1k warm-up + the full 100k
//!   fleet, double-run determinism check (identical deterministic
//!   logs), completion and memory-budget assertions.

use annolight_bench::figures::reactor_scale;

/// The smoke's peak-RSS ceiling for hosting 100k+ sessions in one
/// process. Generous against the ~few-hundred-bytes-per-session design
/// point, tight enough to catch a per-session buffer regression.
const SMOKE_RSS_BUDGET_BYTES: u64 = 2 << 30;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if smoke {
        let a = reactor_scale::run_small(reactor_scale::BASELINE_SEED);
        let b = reactor_scale::run_small(reactor_scale::BASELINE_SEED);
        assert_eq!(
            reactor_scale::deterministic_log(&a),
            reactor_scale::deterministic_log(&b),
            "same-seed double run must replay the identical schedule and fleet digests"
        );
        print!("{}", reactor_scale::render(&a));
        let big = a.points.last().expect("smoke runs at least one point");
        assert!(
            big.sessions >= 100_000,
            "smoke must host >=100k concurrent sessions, got {}",
            big.sessions
        );
        assert_eq!(big.undeliverable, 0, "reliable retries must deliver every picture packet");
        assert!(big.dropped > 0 && big.degraded_frames > 0, "fleet must exercise the fault paths");
        if big.peak_rss_bytes > 0 {
            assert!(
                big.peak_rss_bytes <= SMOKE_RSS_BUDGET_BYTES,
                "peak RSS {} bytes exceeds the {} byte budget",
                big.peak_rss_bytes,
                SMOKE_RSS_BUDGET_BYTES
            );
        }
        println!(
            "\nreactor_scale --test: ok ({} sessions, double-run deterministic)",
            big.sessions
        );
        return;
    }

    let bench = reactor_scale::run(reactor_scale::BASELINE_SEED);
    print!("{}", reactor_scale::render(&bench));
    if let Some(path) = out {
        std::fs::write(&path, bench.to_json_string() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
