//! Regenerates Fig. 7 (brightness vs backlight value per device).
fn main() {
    let f = annolight_bench::figures::fig07::run();
    print!("{}", annolight_bench::figures::fig07::render(&f));
}
