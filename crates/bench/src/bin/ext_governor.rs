//! Regenerates the energy-budget governor extension experiment.
//!
//! * `ext_governor` — full budget sweep, table to stdout.
//! * `ext_governor --test` — CI smoke: short sweep, double-run
//!   determinism check (identical trace digests) plus within-budget
//!   assertions on every cell.

use annolight_bench::figures::ext_governor;

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");

    if smoke {
        let a = ext_governor::run(6.0);
        let b = ext_governor::run(6.0);
        assert_eq!(
            ext_governor::deterministic_log(&a),
            ext_governor::deterministic_log(&b),
            "same-seed double run must replay identical governor traces"
        );
        print!("{}", ext_governor::render(&a));
        assert!(!a.rows.is_empty(), "smoke must run at least one cell");
        for r in &a.rows {
            assert!(
                r.within_budget && r.spent_j <= r.budget_j + 1e-9,
                "{} frac {}: spent {} of {} J",
                r.clip,
                r.budget_frac,
                r.spent_j,
                r.budget_j
            );
            assert!(r.quality_error <= 0.5, "{}: quality error {}", r.clip, r.quality_error);
        }
        assert!(
            a.rows.iter().any(|r| r.degrades > 0),
            "the tight cells must force at least one degrade"
        );
        println!("\next_governor --test: ok ({} cells, double-run deterministic)", a.rows.len());
        return;
    }

    let e = ext_governor::run(20.0);
    print!("{}", ext_governor::render(&e));
}
