//! Regenerates Fig. 3 (image histogram properties).
fn main() {
    let f = annolight_bench::figures::fig03::run();
    print!("{}", annolight_bench::figures::fig03::render(&f));
}
