//! Minimal fixed-width table formatting for figure output.

/// A simple text table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["clip", "0%", "5%"]);
        t.row(["themovie", "12.1", "54.1"]);
        t.row(["x", "1.0", "2.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("clip"));
        assert!(lines[2].contains("themovie"));
        // All rows render to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only"));
    }
}
