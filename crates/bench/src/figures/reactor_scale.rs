//! Reactor scalability benchmark: one process, 10⁵⁺ concurrent playback
//! sessions as [`ScaleSession`] state machines on the deterministic
//! reactor, at 1k / 10k / 100k fleet sizes.
//!
//! Each point reports throughput (sessions/sec, wall-clock — excluded
//! from the deterministic log) alongside the schedule's trace digest and
//! the fleet's aggregate fault/degradation totals (deterministic per
//! seed — the CI guard double-runs and `cmp`s them). Peak resident
//! memory is read from `/proc/self/status` `VmHWM` where available.

use crate::table::Table;
use annolight_core::QualityLevel;
use annolight_stream::machine::{ScaleOutcome, ScaleSession, ScaleSpec};
use annolight_stream::session::SessionConfig;
use annolight_stream::FaultConfig;
use annolight_support::channel;
use annolight_support::reactor::Reactor;
use annolight_video::ClipLibrary;
use std::sync::Arc;
use std::time::Instant;

/// Canonical seed of the exported benchmark.
pub const BASELINE_SEED: u64 = 0x5CA1E;

/// Schema version of the exported report (bump on field changes).
pub const SCHEMA_VERSION: u64 = 1;

/// One fleet size's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Concurrent sessions hosted by the reactor.
    pub sessions: u64,
    /// Wall-clock for the whole fleet, milliseconds (not deterministic).
    pub wall_ms: f64,
    /// Completed sessions per wall-clock second (not deterministic).
    pub sessions_per_sec: f64,
    /// Peak resident set size (`VmHWM`), bytes; `0` when unavailable
    /// (not deterministic).
    pub peak_rss_bytes: u64,
    /// Scheduler rounds the reactor ran.
    pub rounds: u64,
    /// Task steps executed.
    pub steps: u64,
    /// The reactor's schedule trace digest (hex).
    pub schedule_digest: String,
    /// FNV fold of every session's outcome digest, in session order (hex).
    pub fleet_digest: String,
    /// First transmissions lost across the fleet.
    pub dropped: u64,
    /// Link-layer retransmissions across the fleet.
    pub retransmits: u64,
    /// Frames played degraded across the fleet.
    pub degraded_frames: u64,
    /// Picture packets that exhausted the reliable retry budget.
    pub undeliverable: u64,
}

annolight_support::impl_json!(struct ScalePoint {
    sessions, wall_ms, sessions_per_sec, peak_rss_bytes, rounds, steps,
    schedule_digest, fleet_digest, dropped, retransmits, degraded_frames,
    undeliverable
});

/// The exported scalability benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReactor {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Master seed every fleet was scheduled from.
    pub seed: u64,
    /// One point per fleet size, ascending.
    pub points: Vec<ScalePoint>,
}

annolight_support::impl_json!(struct BenchReactor { schema_version, seed, points });

impl BenchReactor {
    /// Pretty JSON for `BENCH_reactor.json`.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        annolight_support::json::to_string_pretty(self)
    }

    /// Parses a baseline back (regression tooling).
    ///
    /// # Errors
    ///
    /// Returns the JSON error message for malformed input.
    pub fn from_json_string(json: &str) -> Result<Self, String> {
        annolight_support::json::from_str(json).map_err(|e| e.to_string())
    }
}

/// The mixed fleet's fault profile for session `i`: alternating lossy /
/// bursty links (every session exercises the degradation path; the
/// bursty half also exercises Gilbert–Elliott loss trains).
fn fleet_faults(seed: u64, i: usize) -> FaultConfig {
    let s = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if i % 2 == 0 {
        FaultConfig::lossy(s, 0.12)
    } else {
        FaultConfig::bursty(s)
    }
}

/// Builds the shared packet plan every session in the fleet drives: the
/// paper clip's 2 s preview, negotiated and served once.
///
/// # Errors
///
/// Propagates catalogue/pipeline errors as strings.
pub fn fleet_spec() -> Result<Arc<ScaleSpec>, String> {
    let clip = ClipLibrary::paper_clip("themovie")
        .ok_or_else(|| "paper clip \"themovie\" missing from the library".to_owned())?
        .preview(2.0);
    let config = SessionConfig::new(clip, QualityLevel::Q10);
    ScaleSpec::negotiate(config).map(Arc::new).map_err(|e| e.to_string())
}

fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// off Linux.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Runs one fleet of `sessions` mixed faulty/degraded sessions on one
/// reactor and measures it.
///
/// # Panics
///
/// Panics if any session fails to report (a reactor bug).
#[must_use]
pub fn run_point(spec: &Arc<ScaleSpec>, seed: u64, sessions: usize) -> ScalePoint {
    let (tx, rx) = channel::unbounded();
    let mut reactor = Reactor::new(seed);
    for i in 0..sessions {
        reactor.spawn(Box::new(ScaleSession::new(
            Arc::clone(spec),
            fleet_faults(seed, i),
            i,
            tx.clone(),
        )));
    }
    drop(tx);
    let started = Instant::now();
    let report = reactor.run();
    let wall = started.elapsed();

    let mut outcomes: Vec<Option<ScaleOutcome>> = vec![None; sessions];
    for (i, outcome) in rx.iter() {
        outcomes[i] = Some(outcome);
    }
    let mut fleet_digest = 0xcbf2_9ce4_8422_2325u64;
    let (mut dropped, mut retransmits, mut degraded, mut undeliverable) = (0u64, 0u64, 0u64, 0u64);
    for (i, slot) in outcomes.iter().enumerate() {
        let o = slot.as_ref().unwrap_or_else(|| panic!("session {i} never reported"));
        fleet_digest = fnv_fold(fleet_digest, o.digest);
        dropped += o.dropped;
        retransmits += o.retransmits;
        degraded += u64::from(o.degraded_frames);
        undeliverable += u64::from(o.undeliverable);
    }
    let wall_s = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    ScalePoint {
        sessions: sessions as u64,
        wall_ms: wall_s * 1e3,
        sessions_per_sec: sessions as f64 / wall_s,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        rounds: report.rounds,
        steps: report.steps,
        schedule_digest: report.digest.to_hex(),
        fleet_digest: format!("{fleet_digest:016x}"),
        dropped,
        retransmits,
        degraded_frames: degraded,
        undeliverable,
    }
}

fn run_points(seed: u64, sizes: &[usize]) -> BenchReactor {
    let spec = fleet_spec().expect("fleet spec builds from the paper clip");
    let points = sizes.iter().map(|&n| run_point(&spec, seed, n)).collect();
    BenchReactor { schema_version: SCHEMA_VERSION, seed, points }
}

/// The full 1k / 10k / 100k sweep.
#[must_use]
pub fn run(seed: u64) -> BenchReactor {
    run_points(seed, &[1_000, 10_000, 100_000])
}

/// The CI smoke sweep: small warm-up point plus the full 100k fleet
/// (the acceptance gate is "one process, ≥100k concurrent sessions").
#[must_use]
pub fn run_small(seed: u64) -> BenchReactor {
    run_points(seed, &[1_000, 100_000])
}

/// The deterministic projections — everything except wall-clock and
/// RSS — serialised for the CI double-run `cmp` guard.
#[must_use]
pub fn deterministic_log(bench: &BenchReactor) -> String {
    let mut s = format!("seed {:#x} schema {}\n", bench.seed, bench.schema_version);
    for p in &bench.points {
        s.push_str(&format!(
            "sessions {} rounds {} steps {} schedule {} fleet {} dropped {} \
             retransmits {} degraded {} undeliverable {}\n",
            p.sessions,
            p.rounds,
            p.steps,
            p.schedule_digest,
            p.fleet_digest,
            p.dropped,
            p.retransmits,
            p.degraded_frames,
            p.undeliverable,
        ));
    }
    s
}

/// The printable scalability table.
#[must_use]
pub fn render(bench: &BenchReactor) -> String {
    let mut t = Table::new([
        "sessions",
        "wall ms",
        "sessions/s",
        "peak RSS MiB",
        "rounds",
        "steps",
        "dropped",
        "retx",
        "degraded",
        "fleet digest",
    ]);
    for p in &bench.points {
        t.row([
            p.sessions.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.sessions_per_sec),
            if p.peak_rss_bytes == 0 {
                "n/a".into()
            } else {
                format!("{:.1}", p.peak_rss_bytes as f64 / (1024.0 * 1024.0))
            },
            p.rounds.to_string(),
            p.steps.to_string(),
            p.dropped.to_string(),
            p.retransmits.to_string(),
            p.degraded_frames.to_string(),
            p.fleet_digest.clone(),
        ]);
    }
    let mut out =
        String::from("Reactor scalability (mixed lossy/bursty sessions, one process)\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_is_deterministic_and_json_roundtrips() {
        let spec = fleet_spec().unwrap();
        let a = run_point(&spec, 9, 128);
        let b = run_point(&spec, 9, 128);
        assert_eq!(a.schedule_digest, b.schedule_digest);
        assert_eq!(a.fleet_digest, b.fleet_digest);
        assert_eq!((a.dropped, a.retransmits, a.degraded_frames), (
            b.dropped,
            b.retransmits,
            b.degraded_frames
        ));
        assert!(a.dropped > 0, "a lossy fleet must drop packets");
        let bench =
            BenchReactor { schema_version: SCHEMA_VERSION, seed: 9, points: vec![a] };
        let back = BenchReactor::from_json_string(&bench.to_json_string()).unwrap();
        assert_eq!(back, bench);
    }

    #[test]
    fn different_seeds_schedule_differently() {
        let spec = fleet_spec().unwrap();
        let a = run_point(&spec, 1, 64);
        let b = run_point(&spec, 2, 64);
        assert_ne!(a.schedule_digest, b.schedule_digest);
    }
}
