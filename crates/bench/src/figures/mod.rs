//! Regeneration of every figure and table in the paper's evaluation.
//!
//! Each submodule exposes `run(...)` returning the raw series (so tests
//! can assert the paper's qualitative claims) and `render(...)` producing
//! the printable table that the corresponding binary emits.

pub mod ablations;
pub mod codec_throughput;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod ext_ambient;
pub mod ext_burst;
pub mod ext_dvfs;
pub mod ext_governor;
pub mod fig10;
pub mod pipeline_throughput;
pub mod reactor_scale;
pub mod serve_slo;
pub mod tab_baselines;
pub mod tab_devices;
pub mod tab_loss;
pub mod tab_overhead;
pub mod tab_policies;
pub mod tab_serve;

/// The five quality levels of the paper's sweeps, as display labels.
pub const QUALITY_LABELS: [&str; 5] = ["0%", "5%", "10%", "15%", "20%"];

/// A dark news-anchor-style frame: dim studio background, a brighter
/// subject region, sparse highlights. Used by Figs. 3–5 (the paper uses a
/// news clip frame in Fig. 4).
pub(crate) fn news_frame() -> annolight_imgproc::Frame {
    annolight_imgproc::Frame::from_fn(128, 96, |x, y| {
        // Subject: a centered bright-ish oval.
        let dx = f64::from(x) - 64.0;
        let dy = f64::from(y) - 52.0;
        let inside = (dx * dx) / (28.0 * 28.0) + (dy * dy) / (36.0 * 36.0) < 1.0;
        if (x * 31 + y * 17) % 211 == 0 {
            [235, 232, 224] // studio lights
        } else if inside {
            let v = 120 + ((x + y) % 31) as u8;
            [v, v.saturating_sub(6), v.saturating_sub(14)]
        } else {
            let v = 36 + ((x * 3 + y * 5) % 23) as u8;
            [v, v, v.saturating_add(6)]
        }
    })
}
