//! Fig. 5 — the quality trade-off in the histogram: how much of the bright
//! tail each quality level clips and what that buys in backlight level.

use crate::table::Table;
use annolight_core::plan::plan_levels;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;

/// One row of the trade-off sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipPoint {
    /// Quality level, percent.
    pub quality_percent: f64,
    /// Effective maximum luminance after clipping.
    pub effective_max: u8,
    /// Pixels actually clipped (strictly above the effective max).
    pub clipped_pixels: u64,
    /// Fraction of pixels clipped.
    pub clipped_fraction: f64,
    /// Backlight level the scene can drop to.
    pub backlight: u8,
    /// Backlight power saved at that level.
    pub savings: f64,
}

annolight_support::impl_json!(struct ClipPoint { quality_percent, effective_max, clipped_pixels, clipped_fraction, backlight, savings });

/// The full Fig. 5 sweep on one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig05 {
    /// One point per paper quality level.
    pub points: Vec<ClipPoint>,
}

annolight_support::impl_json!(struct Fig05 { points });

/// Runs the sweep on the news frame for the iPAQ 5555.
pub fn run() -> Fig05 {
    let device = DeviceProfile::ipaq_5555();
    let hist = super::news_frame().luma_histogram();
    let points = QualityLevel::PAPER_LEVELS
        .iter()
        .map(|q| {
            let effective = hist.clip_level(q.clip_fraction());
            let (_, level) = plan_levels(&device, effective);
            ClipPoint {
                quality_percent: q.clip_fraction() * 100.0,
                effective_max: effective,
                clipped_pixels: hist.count_above(effective),
                clipped_fraction: hist.fraction_above(effective),
                backlight: level.0,
                savings: device.backlight_power().savings_vs_full(level),
            }
        })
        .collect();
    Fig05 { points }
}

/// Renders the figure as text.
pub fn render(f: &Fig05) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — quality trade-off: clipped high-luminance tail\n\n");
    let mut t = Table::new([
        "quality",
        "effective max",
        "clipped px",
        "clipped %",
        "backlight",
        "power saved",
    ]);
    for p in &f.points {
        t.row([
            format!("{}%", p.quality_percent),
            p.effective_max.to_string(),
            p.clipped_pixels.to_string(),
            format!("{:.2}%", p.clipped_fraction * 100.0),
            format!("{}/255", p.backlight),
            format!("{:.1}%", p.savings * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone() {
        let f = run();
        assert_eq!(f.points.len(), 5);
        for w in f.points.windows(2) {
            assert!(w[1].effective_max <= w[0].effective_max);
            assert!(w[1].backlight <= w[0].backlight);
            assert!(w[1].savings + 1e-12 >= w[0].savings);
        }
    }

    #[test]
    fn clipping_stays_within_budget() {
        for p in run().points {
            assert!(
                p.clipped_fraction * 100.0 <= p.quality_percent + 1e-9,
                "{p:?}"
            );
        }
    }

    #[test]
    fn already_5_percent_is_a_big_jump() {
        // "Even at the 5% quality loss we already start seeing a huge
        // improvement."
        let f = run();
        assert!(f.points[1].savings > f.points[0].savings + 0.10);
    }
}
