//! Fig. 3 — image histogram properties: the average point and dynamic
//! range the paper reads off a histogram.

use crate::table::Table;
use annolight_imgproc::Histogram;

/// The Fig. 3 quantities for one image.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03 {
    /// Mean pixel luminance ("average point").
    pub mean: f64,
    /// Smallest occupied luminance level.
    pub min: u8,
    /// Largest occupied luminance level.
    pub max: u8,
    /// Dynamic range (`max − min`).
    pub dynamic_range: u8,
    /// The histogram folded into 16 buckets for display.
    pub buckets: [u64; 16],
}

annolight_support::impl_json!(struct Fig03 { mean, min, max, dynamic_range, buckets });

/// Computes the figure for the news frame.
pub fn run() -> Fig03 {
    let hist = super::news_frame().luma_histogram();
    of_histogram(&hist)
}

/// Computes the Fig. 3 quantities of any histogram.
pub fn of_histogram(hist: &Histogram) -> Fig03 {
    let mut buckets = [0u64; 16];
    for (v, &c) in hist.bins().iter().enumerate() {
        buckets[v / 16] += c;
    }
    Fig03 {
        mean: hist.mean(),
        min: hist.min_nonzero().unwrap_or(0),
        max: hist.max_nonzero().unwrap_or(0),
        dynamic_range: hist.dynamic_range(),
        buckets,
    }
}

/// Renders the figure as text.
pub fn render(f: &Fig03) -> String {
    let mut out = String::new();
    out.push_str("Fig. 3 — image histogram properties\n\n");
    out.push_str(&format!(
        "average point = {:.1}   dynamic range = {} (levels {}..{})\n\n",
        f.mean, f.dynamic_range, f.min, f.max
    ));
    let peak = f.buckets.iter().copied().max().unwrap_or(1).max(1);
    let mut t = Table::new(["pixel value", "count", "histogram"]);
    for (i, &c) in f.buckets.iter().enumerate() {
        let bar = "#".repeat(((c * 40) / peak) as usize);
        t.row([format!("{:>3}-{:>3}", i * 16, i * 16 + 15), c.to_string(), bar]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn news_frame_is_dark_with_wide_range() {
        let f = run();
        assert!(f.mean < 100.0, "mean {}", f.mean);
        assert!(f.dynamic_range > 150, "range {}", f.dynamic_range);
        assert_eq!(f.buckets.iter().sum::<u64>(), 128 * 96);
    }

    #[test]
    fn render_contains_key_quantities() {
        let s = render(&run());
        assert!(s.contains("average point"));
        assert!(s.contains("dynamic range"));
    }
}
