//! Fig. 10 — total device power savings, "measured": full streaming
//! sessions (server → wireless hop → decoding client) with DAQ-style
//! energy integration. The paper reports "up to 15-20% power reduction
//! for the entire device … with the exception of ice age, which shows
//! almost no improvement".

use crate::figures::QUALITY_LABELS;
use crate::table::Table;
use annolight_core::QualityLevel;
use annolight_stream::{run_session, SessionConfig};
use annolight_video::ClipLibrary;

/// One clip's measured total-device savings across the quality sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipTotals {
    /// Clip name.
    pub clip: String,
    /// Fractional total-device power savings at 0/5/10/15/20 % quality.
    pub savings: [f64; 5],
    /// Average device power at the 10 % level, watts.
    pub avg_power_w: f64,
}

annolight_support::impl_json!(struct ClipTotals { clip, savings, avg_power_w });

/// The Fig. 10 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Per-clip rows in figure order.
    pub rows: Vec<ClipTotals>,
}

annolight_support::impl_json!(struct Fig10 { rows });

/// Runs the measured sweep. Each clip is truncated to `preview_s` seconds
/// (full sessions through codec + network + power model are expensive;
/// the per-scene statistics converge within a few tens of seconds).
pub fn run(preview_s: f64) -> Fig10 {
    let rows = ClipLibrary::paper_clips()
        .into_iter()
        .map(|clip| {
            let clip = clip.preview(preview_s);
            let mut savings = [0.0f64; 5];
            let mut avg_power = 0.0;
            for (i, q) in QualityLevel::PAPER_LEVELS.iter().enumerate() {
                let report = run_session(SessionConfig::new(clip.clone(), *q))
                    .expect("session on library clip succeeds");
                savings[i] = report.playback.total_savings();
                if i == 2 {
                    avg_power = report.playback.avg_power_w;
                }
            }
            ClipTotals { clip: clip.name().to_owned(), savings, avg_power_w: avg_power }
        })
        .collect();
    Fig10 { rows }
}

/// Renders the figure as text.
pub fn render(f: &Fig10) -> String {
    let mut out = String::new();
    out.push_str("Fig. 10 — total device power savings, measured (iPAQ 5555 sessions)\n\n");
    let mut header = vec!["clip".to_owned()];
    header.extend(QUALITY_LABELS.iter().map(|s| (*s).to_owned()));
    header.push("avg W @10%".to_owned());
    let mut t = Table::new(header);
    for r in &f.rows {
        let mut row = vec![r.clip.clone()];
        row.extend(r.savings.iter().map(|s| format!("{:.1}%", s * 100.0)));
        row.push(format!("{:.2}", r.avg_power_w));
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared (small) run — sessions are expensive, so both tests
    // reuse a single lazily-computed result.
    fn quick() -> &'static Fig10 {
        use std::sync::OnceLock;
        static QUICK: OnceLock<Fig10> = OnceLock::new();
        QUICK.get_or_init(|| run(4.0))
    }

    #[test]
    fn totals_land_in_paper_band() {
        let f = quick();
        let best = f
            .rows
            .iter()
            .map(|r| r.savings[4])
            .fold(0.0f64, f64::max);
        // "Up to 15-20% power reduction for the entire device."
        assert!((0.10..=0.25).contains(&best), "best total saving {best}");

        let ice = f.rows.iter().find(|r| r.clip == "ice_age").unwrap();
        assert!(ice.savings[4] < 0.10, "ice_age should show almost no improvement");

        // Every clip draws a plausible handheld power.
        for r in &f.rows {
            assert!(r.avg_power_w > 1.5 && r.avg_power_w < 4.0, "{}: {} W", r.clip, r.avg_power_w);
        }
    }

    #[test]
    fn total_savings_track_backlight_share() {
        // Total savings ≈ backlight savings × backlight share (≈26%), so
        // they must always be well below the Fig. 9 numbers.
        let f = quick();
        for r in &f.rows {
            for s in r.savings {
                assert!(s < 0.30, "{}: {s}", r.clip);
            }
        }
    }
}
