//! Annotation overhead table — the §4.3 claim: "the annotations are RLE
//! compressed, so the overhead is minimal, in the order of hundreds of
//! bytes for our video clips which are on the order of a few megabytes."

use crate::table::Table;
use annolight_codec::EncoderConfig;
use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_stream::{MediaServer, ServeRequest};
use annolight_video::ClipLibrary;

/// One clip's overhead accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Clip name.
    pub clip: String,
    /// Encoded stream size, bytes.
    pub stream_bytes: usize,
    /// Embedded annotation track size (per-scene mode), bytes.
    pub scene_track_bytes: usize,
    /// Annotation track size in per-frame mode, bytes.
    pub frame_track_bytes: usize,
    /// Number of per-scene entries.
    pub scene_entries: usize,
    /// Overhead as a fraction of the stream.
    pub overhead_fraction: f64,
}

annolight_support::impl_json!(struct OverheadRow { clip, stream_bytes, scene_track_bytes, frame_track_bytes, scene_entries, overhead_fraction });

/// The overhead table.
#[derive(Debug, Clone, PartialEq)]
pub struct TabOverhead {
    /// Per-clip rows.
    pub rows: Vec<OverheadRow>,
}

annolight_support::impl_json!(struct TabOverhead { rows });

/// Computes the overhead for each library clip (truncated to `preview_s`
/// seconds if given).
pub fn run(preview_s: Option<f64>) -> TabOverhead {
    let device = DeviceProfile::ipaq_5555();
    let rows = ClipLibrary::paper_clips()
        .into_iter()
        .map(|clip| {
            let clip = match preview_s {
                Some(s) => clip.preview(s),
                None => clip,
            };
            let name = clip.name().to_owned();
            let mut server = MediaServer::new(EncoderConfig::default());
            server.add_clip(clip);
            let scene = server
                .serve(&ServeRequest {
                    clip_name: name.clone(),
                    device: device.clone(),
                    quality: QualityLevel::Q10,
                    mode: AnnotationMode::PerScene,
                    dvfs: false,
                    policy: annolight_core::PolicyKind::PeakClip,
                })
                .expect("serving library clips succeeds");
            let frame = server
                .serve(&ServeRequest {
                    clip_name: name.clone(),
                    device: device.clone(),
                    quality: QualityLevel::Q10,
                    mode: AnnotationMode::PerFrame,
                    dvfs: false,
                    policy: annolight_core::PolicyKind::PeakClip,
                })
                .expect("serving library clips succeeds");
            OverheadRow {
                clip: name,
                stream_bytes: scene.stream.len(),
                scene_track_bytes: scene.annotation_bytes,
                frame_track_bytes: frame.annotation_bytes,
                scene_entries: scene.track.entries().len(),
                overhead_fraction: scene.annotation_bytes as f64 / scene.stream.len() as f64,
            }
        })
        .collect();
    TabOverhead { rows }
}

/// Renders the table as text.
pub fn render(t: &TabOverhead) -> String {
    let mut out = String::new();
    out.push_str("Annotation overhead (10% quality)\n\n");
    let mut tbl = Table::new([
        "clip",
        "stream (bytes)",
        "track/scene (B)",
        "track/frame (B)",
        "scenes",
        "overhead",
    ]);
    for r in &t.rows {
        tbl.row([
            r.clip.clone(),
            r.stream_bytes.to_string(),
            r.scene_track_bytes.to_string(),
            r.frame_track_bytes.to_string(),
            r.scene_entries.to_string(),
            format!("{:.4}%", r.overhead_fraction * 100.0),
        ]);
    }
    out.push_str(&tbl.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TabOverhead {
        run(Some(6.0))
    }

    #[test]
    fn overhead_is_minimal() {
        for r in quick().rows {
            assert!(
                r.overhead_fraction < 0.01,
                "{}: overhead {}",
                r.clip,
                r.overhead_fraction
            );
            assert!(r.scene_track_bytes < 1000, "{}: {} bytes", r.clip, r.scene_track_bytes);
        }
    }

    #[test]
    fn per_frame_tracks_are_larger_but_rle_bounded() {
        for r in quick().rows {
            assert!(r.frame_track_bytes >= r.scene_track_bytes);
            // RLE keeps even per-frame tracks far below one entry/frame.
            assert!(r.frame_track_bytes < 6 * 6 * 12 * 7, "{}: {}", r.clip, r.frame_track_bytes);
        }
    }
}
