//! Codec fast-path throughput: reference float kernels vs. the
//! fixed-point AAN fast path, at several worker counts (this PR's
//! tentpole).
//!
//! Three stages are timed independently on a *themovie* preview:
//!
//! * **encode** — [`annolight_codec::Encoder::push_yuv_frames`]: AAN
//!   fDCT, fused quant, early-exit seeded motion search, word-level bit
//!   output, per-band and per-GOP fan-out;
//! * **decode** — [`annolight_codec::Decoder::decode_all_yuv`]:
//!   word-level bit input, fused dequant, AAN iDCT, per-band and
//!   per-GOP fan-out;
//! * **transcode** — the full [`annolight_stream::Proxy`] decode →
//!   profile → annotate → compensate → re-encode loop.
//!
//! Encode and decode are timed in the codec's native planar 4:2:0
//! domain: the float RGB↔YUV conversion is identical work on both
//! paths (it happens before any codec kernel runs) and would otherwise
//! dilute the kernel comparison, so it is hoisted out of the timed
//! region — standard codec benchmarking practice.
//!
//! The baseline row of each stage runs the **whole retained reference
//! path** — float matrix DCT/quant kernels, bit-at-a-time entropy I/O,
//! per-pixel clamped motion compensation and unpruned exhaustive SAD —
//! on the inline serial path: the exact pre-fast-path pipeline.
//! Measured rows run the fast path at worker counts {0, 1, 2, 4}.
//! Throughput is reported in macroblocks per second (16×16 luma
//! blocks; the natural unit of codec work).
//!
//! Two invariants make the table honest (both proven elsewhere):
//!
//! * every *encode* row — reference or fast, any worker count — emits a
//!   **byte-identical bitstream** for a given kernel choice; early-exit
//!   SAD and the band/GOP fan-out never change output bytes
//!   (`crates/codec/tests/fastpath_identity.rs`);
//! * every *decode* row reconstructs **byte-identical frames** for a
//!   given kernel choice.

use crate::table::Table;
use annolight_codec::motion::SearchMode;
use annolight_codec::{Decoder, EncodedStream, Encoder, EncoderConfig};
use annolight_core::parallel::ParallelConfig;
use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_imgproc::Yuv420Frame;
use annolight_stream::Proxy;
use annolight_video::ClipLibrary;
use std::time::Instant;

/// Worker counts exercised by the fast-path rows (0 = inline serial).
pub const WORKER_COUNTS: [usize; 4] = [0, 1, 2, 4];

/// One timed codec configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecRow {
    /// Stage: `encode`, `decode` or `transcode`.
    pub stage: String,
    /// Human-readable configuration label.
    pub label: String,
    /// Worker threads (0 = inline).
    pub workers: usize,
    /// Best-of-`reps` wall-clock, milliseconds.
    pub elapsed_ms: f64,
    /// Throughput in 16×16 macroblocks per second.
    pub mb_per_sec: f64,
    /// Speedup vs. the stage's reference-kernel serial baseline.
    pub speedup: f64,
}

annolight_support::impl_json!(struct CodecRow { stage, label, workers, elapsed_ms, mb_per_sec, speedup });

/// The codec throughput table for one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecThroughput {
    /// Clip the codec ran on.
    pub clip: String,
    /// Frames per timed pass.
    pub frames: u32,
    /// Macroblocks per timed pass (frames × mb columns × mb rows).
    pub macroblocks: u64,
    /// Timed repetitions per row (best-of).
    pub reps: u32,
    /// Baseline + measured rows for every stage, in run order.
    pub rows: Vec<CodecRow>,
}

annolight_support::impl_json!(struct CodecThroughput { clip, frames, macroblocks, reps, rows });

fn encoder(cfg: EncoderConfig, reference: bool, workers: usize) -> Encoder {
    let enc = Encoder::new(cfg).expect("valid bench encoder config");
    if reference {
        enc.with_reference_kernels(true).with_search_mode(SearchMode::Exhaustive)
    } else {
        enc.with_parallelism(ParallelConfig::with_workers(workers))
    }
}

fn encode_pass(frames: &[Yuv420Frame], cfg: EncoderConfig, reference: bool, workers: usize) -> f64 {
    let mut enc = encoder(cfg, reference, workers);
    let start = Instant::now();
    enc.push_yuv_frames(frames).expect("bench frames match config");
    let stream = enc.finish();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(stream.len() > 0);
    ms
}

fn decode_pass(stream: &EncodedStream, reference: bool, workers: usize) -> f64 {
    let mut dec = Decoder::new(stream).expect("bench stream parses");
    dec = if reference {
        dec.with_reference_kernels(true)
    } else {
        dec.with_parallelism(ParallelConfig::with_workers(workers))
    };
    let start = Instant::now();
    let frames = dec.decode_all_yuv().expect("bench stream decodes");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!frames.is_empty());
    ms
}

fn transcode_pass(input: &EncodedStream, cfg: EncoderConfig, workers: usize) -> f64 {
    let proxy =
        Proxy::new(cfg).with_parallelism(ParallelConfig::with_workers(workers));
    let start = Instant::now();
    let out = proxy
        .transcode(input, &DeviceProfile::ipaq_5555(), QualityLevel::Q10, AnnotationMode::PerScene)
        .expect("bench transcode succeeds");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.frame_count(), input.frame_count());
    ms
}

/// Times encode, decode and proxy transcode on a `preview_s`-second
/// prefix of the *themovie* profile clip, best-of-`reps` per row.
pub fn run(preview_s: f64, reps: u32) -> CodecThroughput {
    let reps = reps.max(1);
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("themovie is a library clip")
        .preview(preview_s);
    let (w, h) = clip.dimensions();
    let frames: Vec<Yuv420Frame> = clip
        .frames()
        .map(|f| f.to_yuv420().expect("library clips have even dimensions"))
        .collect();
    let n = frames.len() as u32;
    let macroblocks = u64::from(n) * u64::from(w / 16) * u64::from(h / 16);
    let cfg = EncoderConfig { width: w, height: h, fps: clip.fps(), ..EncoderConfig::default() };

    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min);
    let mut rows = Vec::new();
    let mut stage = |stage: &str, baseline_label: &str, baseline: &dyn Fn() -> f64, fast: &dyn Fn(usize) -> f64| {
        let base_ms = best(baseline);
        rows.push(CodecRow {
            stage: stage.to_owned(),
            label: baseline_label.to_owned(),
            workers: 0,
            elapsed_ms: base_ms,
            mb_per_sec: macroblocks as f64 / (base_ms / 1e3),
            speedup: 1.0,
        });
        for workers in WORKER_COUNTS {
            let ms = best(&|| fast(workers));
            rows.push(CodecRow {
                stage: stage.to_owned(),
                label: if workers == 0 {
                    "fast path, inline".to_owned()
                } else {
                    format!("fast path, {workers} workers")
                },
                workers,
                elapsed_ms: ms,
                mb_per_sec: macroblocks as f64 / (ms / 1e3),
                speedup: base_ms / ms,
            });
        }
    };

    stage(
        "encode",
        "reference path (float kernels, bitwise I/O, exhaustive SAD), serial",
        &|| encode_pass(&frames, cfg, true, 0),
        &|workers| encode_pass(&frames, cfg, false, workers),
    );

    // All encode configurations emit the same bytes; one stream feeds
    // every decode and transcode row.
    let mut enc = Encoder::new(cfg).expect("valid bench encoder config");
    enc.push_yuv_frames(&frames).expect("bench frames match config");
    let stream = enc.finish();

    stage(
        "decode",
        "reference path (float kernels, bitwise I/O), serial",
        &|| decode_pass(&stream, true, 0),
        &|workers| decode_pass(&stream, false, workers),
    );
    stage(
        "transcode",
        "proxy, serial pipeline",
        &|| transcode_pass(&stream, cfg, 0),
        &|workers| transcode_pass(&stream, cfg, workers),
    );

    CodecThroughput { clip: clip.name().to_owned(), frames: n, macroblocks, reps, rows }
}

/// Renders the codec throughput table as text.
pub fn render(t: &CodecThroughput) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Codec throughput — {} ({} frames, {} macroblocks, best of {} reps)\n\n",
        t.clip, t.frames, t.macroblocks, t.reps
    ));
    let mut tbl = Table::new(["stage", "configuration", "elapsed (ms)", "MB/s", "speedup"]);
    for r in &t.rows {
        tbl.row([
            r.stage.clone(),
            r.label.clone(),
            format!("{:.2}", r.elapsed_ms),
            format!("{:.0}", r.mb_per_sec),
            format!("{:.2}x", r.speedup),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(
        "\nEvery encode row emits a byte-identical bitstream per kernel \
         choice, every decode row byte-identical frames \
         (crates/codec/tests/fastpath_identity.rs); rows differ only in \
         wall-clock.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_every_stage_and_worker_row() {
        let t = run(0.6, 1);
        assert_eq!(t.rows.len(), 3 * (1 + WORKER_COUNTS.len()));
        assert!(t.macroblocks > 0);
        for stage in ["encode", "decode", "transcode"] {
            let stage_rows: Vec<&CodecRow> = t.rows.iter().filter(|r| r.stage == stage).collect();
            assert_eq!(stage_rows.len(), 1 + WORKER_COUNTS.len(), "{stage}");
            assert_eq!(stage_rows[0].speedup, 1.0, "{stage} baseline");
            for r in &stage_rows {
                assert!(r.elapsed_ms > 0.0, "{}: non-positive elapsed", r.label);
                assert!(r.mb_per_sec > 0.0, "{}: non-positive MB/s", r.label);
            }
        }
        let rendered = render(&t);
        assert!(rendered.contains("reference path"));
        assert!(rendered.contains("fast path"));
    }
}
