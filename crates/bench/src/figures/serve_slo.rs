//! Fleet-level SLO benchmark: the three canonical workload scenarios
//! (steady / diurnal / flash-crowd) replayed against the annotation
//! service, exported as the `BENCH_serve.json` trajectory that later
//! scaling PRs must not regress.
//!
//! Counters (hit rate, reject rate, tenants, requests, trace digest)
//! are deterministic per seed — the `--test` smoke double-runs every
//! scenario and asserts the [`DeterministicSummary`] projections are
//! identical. Latency quantiles are measured wall-clock and are exact
//! (reservoir mode), not bucket-resolution.

use crate::table::Table;
use annolight_serve::workload::{
    generate_trace, replay_trace, DeterministicSummary, ReplayConfig, ScenarioKind,
    ScenarioReport, SloThresholds, WorkloadConfig,
};

/// Canonical seed of the checked-in `BENCH_serve.json` baseline.
pub const BASELINE_SEED: u64 = 0xF1EE7;

/// Schema version of the exported report (bump on field changes).
pub const SCHEMA_VERSION: u64 = 1;

/// The exported fleet benchmark: one [`ScenarioReport`] per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchServe {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Master seed all scenarios were generated from.
    pub seed: u64,
    /// One report per [`ScenarioKind`], canonical order.
    pub scenarios: Vec<ScenarioReport>,
}

annolight_support::impl_json!(struct BenchServe { schema_version, seed, scenarios });

impl BenchServe {
    /// Pretty JSON for `BENCH_serve.json`.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        annolight_support::json::to_string_pretty(self)
    }

    /// Parses a baseline back (regression tooling).
    ///
    /// # Errors
    ///
    /// Returns the JSON error message for malformed input.
    pub fn from_json_string(json: &str) -> Result<Self, String> {
        annolight_support::json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs every scenario at full size (10k-clip corpus, 48-tick day)
/// under `seed`.
#[must_use]
pub fn run(seed: u64) -> BenchServe {
    run_with(seed, WorkloadConfig::scenario)
}

/// Runs every scenario at test-tier size (sub-second smoke).
#[must_use]
pub fn run_small(seed: u64) -> BenchServe {
    run_with(seed, WorkloadConfig::scenario_small)
}

fn run_with(seed: u64, preset: fn(ScenarioKind, u64) -> WorkloadConfig) -> BenchServe {
    let replay = ReplayConfig::default();
    let scenarios = ScenarioKind::ALL
        .iter()
        .map(|&kind| {
            let cfg = preset(kind, seed);
            replay_trace(&cfg, &replay, &generate_trace(&cfg))
        })
        .collect();
    BenchServe { schema_version: SCHEMA_VERSION, seed, scenarios }
}

/// The deterministic projections of every scenario, serialised — the
/// artefact the CI double-run guard `cmp`s byte-for-byte.
#[must_use]
pub fn deterministic_log(bench: &BenchServe) -> String {
    let summaries: Vec<DeterministicSummary> =
        bench.scenarios.iter().map(ScenarioReport::deterministic_summary).collect();
    let mut s = annolight_support::json::to_string_pretty(&summaries);
    s.push('\n');
    s
}

/// The printable scenario table.
#[must_use]
pub fn render(bench: &BenchServe) -> String {
    let mut t = Table::new([
        "scenario",
        "requests",
        "tenants",
        "clips",
        "hit%",
        "reject%",
        "cold p50us",
        "cold p99us",
        "cold p999us",
        "warm p99us",
        "slo",
    ]);
    for r in &bench.scenarios {
        t.row([
            r.scenario.clone(),
            r.requests.to_string(),
            r.tenants.to_string(),
            r.distinct_clips.to_string(),
            format!("{:.1}", r.hit_rate * 100.0),
            format!("{:.1}", r.reject_rate * 100.0),
            r.cold_p50_us.to_string(),
            r.cold_p99_us.to_string(),
            r.cold_p999_us.to_string(),
            r.warm_p99_us.to_string(),
            if r.slo_pass { "pass".into() } else { "FAIL".into() },
        ]);
    }
    let mut out = String::from("Fleet SLO benchmark (Zipf popularity, diurnal load, churn)\n");
    out.push_str(&t.render());
    for r in &bench.scenarios {
        let kind = match r.scenario.as_str() {
            "steady" => ScenarioKind::Steady,
            "diurnal" => ScenarioKind::Diurnal,
            _ => ScenarioKind::FlashCrowd,
        };
        for v in SloThresholds::for_scenario(kind).violations(r) {
            out.push_str(&format!("  SLO VIOLATION [{}]: {v}\n", r.scenario));
        }
    }
    out
}
