//! End-to-end pipeline throughput: serial reference vs. the parallel
//! profiling/compensation pipeline (PR 4's tentpole).
//!
//! The **baseline row** re-creates the pre-LUT pipeline exactly as the
//! proxy ran it: a frame-cloning [`LuminanceProfile::of_frames`] scan
//! followed by per-frame float contrast enhancement
//! ([`annolight_imgproc::contrast_enhance_float`], the retained legacy
//! kernel). The **measured rows** run the production pipeline — chunked
//! [`annolight_core::parallel::profile_frames`], parallel planning, and
//! the 16.16 fixed-point LUT compensation kernel — at several intra-clip
//! worker counts. The speedup column is relative to the baseline.
//!
//! Two things matter when reading the table:
//!
//! * every measured row produces **byte-identical** output to every other
//!   row (`tests/parallel_identity.rs` proves it); only wall-clock
//!   differs, and
//! * on a single-core host the gain comes from the fixed-point LUT
//!   kernels; the worker rows add on top of that on multicore hosts.

use crate::table::Table;
use annolight_core::parallel::{self, ParallelConfig};
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_imgproc::{contrast_enhance_float, Frame};
use annolight_video::ClipLibrary;
use std::time::Instant;

/// Worker counts exercised by the measured rows (0 = inline serial
/// reference, the same counts as the differential identity suite).
pub const WORKER_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

/// One timed pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Intra-clip worker threads (0 = inline).
    pub workers: usize,
    /// Best-of-`reps` wall-clock for the full profile→plan→compensate
    /// pipeline, milliseconds.
    pub elapsed_ms: f64,
    /// Throughput in frames per second (frame count / elapsed).
    pub frames_per_sec: f64,
    /// Speedup vs. the legacy float serial baseline.
    pub speedup: f64,
}

annolight_support::impl_json!(struct ThroughputRow { label, workers, elapsed_ms, frames_per_sec, speedup });

/// The throughput table for one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineThroughput {
    /// Clip the pipeline ran on.
    pub clip: String,
    /// Frames processed per timed pass.
    pub frames: u32,
    /// Timed repetitions per row (best-of).
    pub reps: u32,
    /// Baseline + measured rows, in run order.
    pub rows: Vec<ThroughputRow>,
}

annolight_support::impl_json!(struct PipelineThroughput { clip, frames, reps, rows });

/// The legacy pipeline, stage for stage as the proxy ran it before the
/// parallel pipeline landed: clone-per-frame profiling scan, serial
/// planning, float compensation kernel.
fn legacy_pass(frames: &[Frame], fps: f64, device: &DeviceProfile, quality: QualityLevel) -> f64 {
    let mut work = frames.to_vec();
    let start = Instant::now();
    let profile = LuminanceProfile::of_frames(fps, work.iter().cloned())
        .expect("non-empty clip profiles");
    let annotated = Annotator::new(device.clone(), quality)
        .annotate_profile(&profile)
        .expect("non-empty profile annotates");
    let track = annotated.track();
    for (i, frame) in work.iter_mut().enumerate() {
        let entry = track.entry_at(i as u32).expect("track covers clip");
        contrast_enhance_float(frame, entry.compensation);
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// The production pipeline at one worker count: chunked profiling scan,
/// parallel planning, LUT compensation.
fn pipeline_pass(frames: &[Frame], fps: f64, device: &DeviceProfile, quality: QualityLevel, workers: usize) -> f64 {
    let cfg = ParallelConfig::with_workers(workers);
    let mut work = frames.to_vec();
    let start = Instant::now();
    let profile = parallel::profile_frames(fps, &work, &cfg).expect("non-empty clip profiles");
    let annotated = Annotator::new(device.clone(), quality)
        .with_parallelism(cfg)
        .annotate_profile(&profile)
        .expect("non-empty profile annotates");
    parallel::compensate_frames(&mut work, annotated.track(), &cfg)
        .expect("track covers clip");
    start.elapsed().as_secs_f64() * 1e3
}

/// Times the pipeline on a `preview_s`-second prefix of the *themovie*
/// profile clip (the paper's largest), best-of-`reps` per row.
pub fn run(preview_s: f64, reps: u32) -> PipelineThroughput {
    let reps = reps.max(1);
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("themovie is a library clip")
        .preview(preview_s);
    let device = DeviceProfile::ipaq_5555();
    let quality = QualityLevel::Q10;
    let frames: Vec<Frame> = clip.frames().collect();
    let n = frames.len() as u32;
    let fps = clip.fps();

    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min);

    let legacy_ms = best(&|| legacy_pass(&frames, fps, &device, quality));
    let mut rows = vec![ThroughputRow {
        label: "serial (legacy float kernel)".to_owned(),
        workers: 0,
        elapsed_ms: legacy_ms,
        frames_per_sec: f64::from(n) / (legacy_ms / 1e3),
        speedup: 1.0,
    }];
    for workers in WORKER_COUNTS {
        let ms = best(&|| pipeline_pass(&frames, fps, &device, quality, workers));
        rows.push(ThroughputRow {
            label: if workers == 0 {
                "parallel pipeline, inline (LUT kernels)".to_owned()
            } else {
                format!("parallel pipeline, {workers} workers (LUT kernels)")
            },
            workers,
            elapsed_ms: ms,
            frames_per_sec: f64::from(n) / (ms / 1e3),
            speedup: legacy_ms / ms,
        });
    }
    PipelineThroughput { clip: clip.name().to_owned(), frames: n, reps, rows }
}

/// Renders the throughput table as text.
pub fn render(t: &PipelineThroughput) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline throughput — {} ({} frames, best of {} reps)\n\n",
        t.clip, t.frames, t.reps
    ));
    let mut tbl = Table::new(["configuration", "elapsed (ms)", "frames/s", "speedup"]);
    for r in &t.rows {
        tbl.row([
            r.label.clone(),
            format!("{:.2}", r.elapsed_ms),
            format!("{:.0}", r.frames_per_sec),
            format!("{:.2}x", r.speedup),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(
        "\nEvery 'parallel pipeline' row produces byte-identical output \
         (tests/parallel_identity.rs); rows differ only in wall-clock.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_baseline_plus_all_worker_rows() {
        let t = run(0.6, 1);
        assert_eq!(t.rows.len(), 1 + WORKER_COUNTS.len());
        assert_eq!(t.rows[0].speedup, 1.0);
        assert!(t.frames > 0);
        for r in &t.rows {
            assert!(r.elapsed_ms > 0.0, "{}: non-positive elapsed", r.label);
            assert!(r.frames_per_sec > 0.0, "{}: non-positive fps", r.label);
        }
        let rendered = render(&t);
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("legacy float kernel"));
    }
}
