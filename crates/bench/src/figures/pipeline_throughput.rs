//! End-to-end pipeline throughput: serial reference vs. the parallel
//! profiling/compensation pipeline (PR 4's tentpole), extended with the
//! SIMD kernel tiers and batched multi-clip scheduling (issue 10).
//!
//! Three reference rows anchor the table:
//!
//! * the **legacy float baseline** re-creates the pre-LUT pipeline
//!   exactly as the proxy ran it: a frame-cloning
//!   [`LuminanceProfile::of_frames`] scan followed by per-frame float
//!   contrast enhancement ([`annolight_imgproc::contrast_enhance_float`],
//!   the retained legacy kernel);
//! * the **scalar LUT row** is the pipeline as PR 4 shipped it — the
//!   16.16 fixed-point LUT kernels pinned to
//!   [`KernelTier::Scalar`] — and is the denominator of the
//!   `vs. LUT` column (the issue-10 ≥2× floor is measured against it);
//! * the **SIMD rows** run the production dispatched pipeline (runtime
//!   tier detection, chunked [`annolight_core::parallel::profile_frames`],
//!   parallel planning, SIMD LUT compensation) at several intra-clip
//!   worker counts, and the **batched rows** split the clip into
//!   several jobs and schedule them all onto one pool
//!   ([`parallel::profile_frames_batched`] /
//!   [`parallel::compensate_frames_batched`]).
//!
//! Two things matter when reading the table:
//!
//! * every measured row produces **byte-identical** output to every
//!   other row (`tests/parallel_identity.rs` and
//!   `tests/pipeline_identity.rs` prove it; [`conformance`] is the
//!   golden-snapshotted projection) — only wall-clock differs, and
//! * the `speedup` column is relative to the legacy float baseline
//!   while `vs. LUT` is relative to the scalar LUT pipeline, so the
//!   SIMD win is visible separately from the fixed-point win.

use crate::table::Table;
use annolight_core::digest::Digester;
use annolight_core::parallel::{self, ParallelConfig};
use annolight_core::profile::FrameStats;
use annolight_core::track::AnnotationTrack;
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_imgproc::simd;
use annolight_imgproc::{contrast_enhance_float, CompensationLut, Frame, KernelTier};
use annolight_support::json::to_string;
use annolight_video::ClipLibrary;
use std::time::Instant;

/// Worker counts exercised by the dispatched SIMD rows (0 = inline
/// serial reference, the same counts as the differential identity
/// suite).
pub const WORKER_COUNTS: [usize; 5] = [0, 1, 2, 4, 7];

/// Worker counts exercised by the batched multi-clip rows (batching
/// with an inline pool is the serial reference by construction, so the
/// rows start at 2 workers).
pub const BATCHED_WORKER_COUNTS: [usize; 3] = [2, 4, 7];

/// Sub-clips the batched rows split the frame set into.
pub const BATCHED_JOBS: usize = 3;

/// One timed pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Intra-clip worker threads (0 = inline).
    pub workers: usize,
    /// Best-of-`reps` wall-clock for the full profile→plan→compensate
    /// pipeline, milliseconds.
    pub elapsed_ms: f64,
    /// Throughput in frames per second (frame count / elapsed).
    pub frames_per_sec: f64,
    /// Speedup vs. the legacy float serial baseline.
    pub speedup: f64,
    /// Speedup vs. the scalar fixed-point LUT pipeline (the issue-10
    /// floor's denominator).
    pub speedup_vs_lut: f64,
}

annolight_support::impl_json!(struct ThroughputRow { label, workers, elapsed_ms, frames_per_sec, speedup, speedup_vs_lut });

/// The throughput table for one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineThroughput {
    /// Clip the pipeline ran on.
    pub clip: String,
    /// Frames processed per timed pass.
    pub frames: u32,
    /// Timed repetitions per row (best-of).
    pub reps: u32,
    /// The kernel tier runtime dispatch selected on this host.
    pub tier: String,
    /// Baseline + measured rows, in run order.
    pub rows: Vec<ThroughputRow>,
}

annolight_support::impl_json!(struct PipelineThroughput { clip, frames, reps, tier, rows });

/// The deterministic projection of the pipeline table: every
/// configuration's output digest collapsed into one value (they are all
/// byte-identical by construction). Unlike the wall-clock rows this is
/// exactly reproducible, so it snapshots byte-for-byte in
/// `figures_golden.rs` — any kernel-tier or scheduling change that
/// perturbs output bytes shows up as a golden diff.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConformance {
    /// Clip the pipeline ran on.
    pub clip: String,
    /// Frames per configuration pass.
    pub frames: u32,
    /// Every whole-clip configuration that was digested, in run order.
    pub configurations: Vec<String>,
    /// The single output digest shared by every whole-clip
    /// configuration (profile JSON + track RLE + compensated frame
    /// bytes + clip stats), as fixed-width hex.
    pub output_digest: String,
    /// Every batched multi-clip configuration that was digested
    /// (`workers=0` is the per-job serial reference the rest must
    /// match).
    pub batched_configurations: Vec<String>,
    /// The single output digest shared by every batched configuration,
    /// as fixed-width hex (per-job outputs concatenated in job order).
    pub batched_digest: String,
}

annolight_support::impl_json!(struct PipelineConformance { clip, frames, configurations, output_digest, batched_configurations, batched_digest });

/// [`FrameStats::of_frame`] with the histogram kernel pinned to `tier`.
fn frame_stats_at(index: u32, frame: &Frame, tier: KernelTier) -> FrameStats {
    let histogram = simd::luma_histogram(frame, tier);
    let max_luma = histogram.max_nonzero().unwrap_or(0);
    let mean_luma = histogram.mean();
    FrameStats { index, max_luma, mean_luma, histogram }
}

/// The legacy pipeline, stage for stage as the proxy ran it before the
/// parallel pipeline landed: clone-per-frame profiling scan, serial
/// planning, float compensation kernel.
fn legacy_pass(frames: &[Frame], fps: f64, device: &DeviceProfile, quality: QualityLevel) -> f64 {
    let mut work = frames.to_vec();
    let start = Instant::now();
    let profile = LuminanceProfile::of_frames(fps, work.iter().cloned())
        .expect("non-empty clip profiles");
    let annotated = Annotator::new(device.clone(), quality)
        .annotate_profile(&profile)
        .expect("non-empty profile annotates");
    let track = annotated.track();
    for (i, frame) in work.iter_mut().enumerate() {
        let entry = track.entry_at(i as u32).expect("track covers clip");
        contrast_enhance_float(frame, entry.compensation);
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// The serial fixed-point pipeline with every per-pixel kernel pinned
/// to `tier` — `KernelTier::Scalar` reproduces the pre-SIMD LUT
/// pipeline exactly.
fn tiered_pass(
    frames: &[Frame],
    fps: f64,
    device: &DeviceProfile,
    quality: QualityLevel,
    tier: KernelTier,
) -> f64 {
    let mut work = frames.to_vec();
    let start = Instant::now();
    let stats: Vec<FrameStats> = work
        .iter()
        .enumerate()
        .map(|(i, f)| frame_stats_at(i as u32, f, tier))
        .collect();
    let profile = LuminanceProfile::from_stats(fps, stats).expect("non-empty clip profiles");
    let annotated = Annotator::new(device.clone(), quality)
        .annotate_profile(&profile)
        .expect("non-empty profile annotates");
    let track = annotated.track();
    for (i, frame) in work.iter_mut().enumerate() {
        let entry = track.entry_at(i as u32).expect("track covers clip");
        simd::compensation_apply(&CompensationLut::new(entry.compensation), frame, tier);
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// The production pipeline at one worker count: chunked profiling scan,
/// parallel planning, dispatched (SIMD) LUT compensation.
fn pipeline_pass(frames: &[Frame], fps: f64, device: &DeviceProfile, quality: QualityLevel, workers: usize) -> f64 {
    let cfg = ParallelConfig::with_workers(workers);
    let mut work = frames.to_vec();
    let start = Instant::now();
    let profile = parallel::profile_frames(fps, &work, &cfg).expect("non-empty clip profiles");
    let annotated = Annotator::new(device.clone(), quality)
        .with_parallelism(cfg)
        .annotate_profile(&profile)
        .expect("non-empty profile annotates");
    parallel::compensate_frames(&mut work, annotated.track(), &cfg)
        .expect("track covers clip");
    start.elapsed().as_secs_f64() * 1e3
}

/// Splits `frames` into [`BATCHED_JOBS`] contiguous sub-clips.
fn split_jobs(frames: &[Frame]) -> Vec<Vec<Frame>> {
    let per = frames.len().div_ceil(BATCHED_JOBS).max(1);
    frames.chunks(per).map(<[Frame]>::to_vec).collect()
}

/// The batched multi-clip pipeline: the frame set split into
/// [`BATCHED_JOBS`] jobs, all profiled in one
/// [`parallel::profile_frames_batched`] dispatch, planned per job, and
/// compensated in one [`parallel::compensate_frames_batched`] dispatch.
fn batched_pass(frames: &[Frame], fps: f64, device: &DeviceProfile, quality: QualityLevel, workers: usize) -> f64 {
    let cfg = ParallelConfig::with_workers(workers);
    let mut clips = split_jobs(frames);
    let start = Instant::now();
    let profile_jobs: Vec<(f64, &[Frame])> =
        clips.iter().map(|c| (fps, c.as_slice())).collect();
    let profiles =
        parallel::profile_frames_batched(&profile_jobs, &cfg).expect("non-empty jobs profile");
    let annotated: Vec<_> = profiles
        .iter()
        .map(|p| {
            Annotator::new(device.clone(), quality)
                .with_parallelism(cfg)
                .annotate_profile(p)
                .expect("non-empty profile annotates")
        })
        .collect();
    let mut jobs: Vec<(&mut [Frame], &AnnotationTrack)> = clips
        .iter_mut()
        .zip(&annotated)
        .map(|(c, a)| (c.as_mut_slice(), a.track()))
        .collect();
    parallel::compensate_frames_batched(&mut jobs, &cfg).expect("tracks cover jobs");
    start.elapsed().as_secs_f64() * 1e3
}

/// Times the pipeline on a `preview_s`-second prefix of the *themovie*
/// profile clip (the paper's largest), best-of-`reps` per row.
pub fn run(preview_s: f64, reps: u32) -> PipelineThroughput {
    let reps = reps.max(1);
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("themovie is a library clip")
        .preview(preview_s);
    let device = DeviceProfile::ipaq_5555();
    let quality = QualityLevel::Q10;
    let frames: Vec<Frame> = clip.frames().collect();
    let n = frames.len() as u32;
    let fps = clip.fps();

    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min);

    let legacy_ms = best(&|| legacy_pass(&frames, fps, &device, quality));
    let lut_ms = best(&|| tiered_pass(&frames, fps, &device, quality, KernelTier::Scalar));
    let mut rows = Vec::new();
    let mut push = |label: String, workers: usize, ms: f64| {
        rows.push(ThroughputRow {
            label,
            workers,
            elapsed_ms: ms,
            frames_per_sec: f64::from(n) / (ms / 1e3),
            speedup: legacy_ms / ms,
            speedup_vs_lut: lut_ms / ms,
        });
    };
    push("serial (legacy float kernel)".to_owned(), 0, legacy_ms);
    push("serial LUT pipeline (scalar kernels)".to_owned(), 0, lut_ms);
    let tier = simd::kernel_tier();
    for workers in WORKER_COUNTS {
        let ms = best(&|| pipeline_pass(&frames, fps, &device, quality, workers));
        let label = if workers == 0 {
            format!("SIMD pipeline, inline ({} kernels)", tier.name())
        } else {
            format!("SIMD pipeline, {workers} workers ({} kernels)", tier.name())
        };
        push(label, workers, ms);
    }
    for workers in BATCHED_WORKER_COUNTS {
        let ms = best(&|| batched_pass(&frames, fps, &device, quality, workers));
        push(
            format!("batched SIMD pipeline, {workers} workers x {BATCHED_JOBS} clips"),
            workers,
            ms,
        );
    }
    PipelineThroughput {
        clip: clip.name().to_owned(),
        frames: n,
        reps,
        tier: tier.name().to_owned(),
        rows,
    }
}

/// Output digest of one pipeline pass: profile JSON + track RLE +
/// compensated frame bytes + per-frame clip stats, in frame order.
fn digest_output(
    profile: &LuminanceProfile,
    track: &AnnotationTrack,
    frames: &[Frame],
    stats: &[annolight_imgproc::ClipStats],
) -> u64 {
    let mut d = Digester::new();
    d.write(to_string(profile).as_bytes()).write(&track.to_rle_bytes());
    for f in frames {
        d.write(f.as_bytes());
    }
    for s in stats {
        d.write_u64(s.clipped_pixels)
            .write_u64(s.total_pixels)
            .write_f64(f64::from(s.max_overshoot));
    }
    d.finish()
}

/// Runs every pipeline configuration on a `preview_s`-second prefix of
/// *themovie* and collapses them into the golden-snapshotted
/// [`PipelineConformance`] projection. Panics if any configuration's
/// output bytes diverge from the first — the same byte-identity the
/// differential suites assert, enforced again at snapshot time.
pub fn conformance(preview_s: f64) -> PipelineConformance {
    let clip = ClipLibrary::paper_clip("themovie")
        .expect("themovie is a library clip")
        .preview(preview_s);
    let device = DeviceProfile::ipaq_5555();
    let quality = QualityLevel::Q10;
    let frames: Vec<Frame> = clip.frames().collect();
    let fps = clip.fps();

    let mut configurations = Vec::new();
    let mut digests: Vec<u64> = Vec::new();

    // Tier-pinned serial passes. Unavailable tiers clamp to the best
    // available one inside the kernels, so the digests stay identical
    // on narrower hosts and the golden remains host-independent.
    for tier in [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2] {
        let mut work = frames.clone();
        let stats_vec: Vec<FrameStats> = work
            .iter()
            .enumerate()
            .map(|(i, f)| frame_stats_at(i as u32, f, tier))
            .collect();
        let profile =
            LuminanceProfile::from_stats(fps, stats_vec).expect("non-empty clip profiles");
        let annotated = Annotator::new(device.clone(), quality)
            .annotate_profile(&profile)
            .expect("non-empty profile annotates");
        let track = annotated.track();
        let stats: Vec<_> = work
            .iter_mut()
            .enumerate()
            .map(|(i, frame)| {
                let entry = track.entry_at(i as u32).expect("track covers clip");
                simd::compensation_apply(&CompensationLut::new(entry.compensation), frame, tier)
            })
            .collect();
        configurations.push(format!("serial, {} kernels", tier.name()));
        digests.push(digest_output(&profile, track, &work, &stats));
    }

    // The dispatched production pipeline at every worker count.
    for workers in WORKER_COUNTS {
        let cfg = ParallelConfig::with_workers(workers);
        let mut work = frames.clone();
        let profile =
            parallel::profile_frames(fps, &work, &cfg).expect("non-empty clip profiles");
        let annotated = Annotator::new(device.clone(), quality)
            .with_parallelism(cfg)
            .annotate_profile(&profile)
            .expect("non-empty profile annotates");
        let stats = parallel::compensate_frames(&mut work, annotated.track(), &cfg)
            .expect("track covers clip");
        configurations.push(format!("dispatched, workers={workers}"));
        digests.push(digest_output(&profile, annotated.track(), &work, &stats));
    }

    // The batched multi-clip scheduler: the frame set split into
    // independent sub-clip jobs, each profiled/planned/compensated as
    // its own clip, all scheduled onto one pool. `workers=0` runs the
    // batched entry points' per-job serial fallback and is the
    // reference the parallel pool shapes must match.
    let mut batched_configurations = Vec::new();
    let mut batched_digests: Vec<u64> = Vec::new();
    for workers in std::iter::once(0).chain(BATCHED_WORKER_COUNTS) {
        let cfg = ParallelConfig::with_workers(workers);
        let mut clips = split_jobs(&frames);
        let profile_jobs: Vec<(f64, &[Frame])> =
            clips.iter().map(|c| (fps, c.as_slice())).collect();
        let profiles = parallel::profile_frames_batched(&profile_jobs, &cfg)
            .expect("non-empty jobs profile");
        let annotated: Vec<_> = profiles
            .iter()
            .map(|p| {
                Annotator::new(device.clone(), quality)
                    .with_parallelism(cfg)
                    .annotate_profile(p)
                    .expect("non-empty profile annotates")
            })
            .collect();
        let mut jobs: Vec<(&mut [Frame], &AnnotationTrack)> = clips
            .iter_mut()
            .zip(&annotated)
            .map(|(c, a)| (c.as_mut_slice(), a.track()))
            .collect();
        let stats = parallel::compensate_frames_batched(&mut jobs, &cfg)
            .expect("tracks cover jobs");
        let mut d = Digester::new();
        for ((profile, a), (clip_frames, clip_stats)) in
            profiles.iter().zip(&annotated).zip(clips.iter().zip(&stats))
        {
            d.write_u64(digest_output(profile, a.track(), clip_frames, clip_stats));
        }
        batched_configurations.push(format!("batched, workers={workers} jobs={BATCHED_JOBS}"));
        batched_digests.push(d.finish());
    }

    let first = digests[0];
    for (cfg_label, d) in configurations.iter().zip(&digests) {
        assert_eq!(
            *d, first,
            "pipeline configuration `{cfg_label}` diverged from the serial scalar reference"
        );
    }
    let batched_first = batched_digests[0];
    for (cfg_label, d) in batched_configurations.iter().zip(&batched_digests) {
        assert_eq!(
            *d, batched_first,
            "pipeline configuration `{cfg_label}` diverged from the per-job serial reference"
        );
    }
    PipelineConformance {
        clip: clip.name().to_owned(),
        frames: frames.len() as u32,
        configurations,
        output_digest: format!("{first:#018x}"),
        batched_configurations,
        batched_digest: format!("{batched_first:#018x}"),
    }
}

/// Renders the throughput table as text.
pub fn render(t: &PipelineThroughput) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline throughput — {} ({} frames, best of {} reps, {} dispatch)\n\n",
        t.clip, t.frames, t.reps, t.tier
    ));
    let mut tbl = Table::new(["configuration", "elapsed (ms)", "frames/s", "speedup", "vs. LUT"]);
    for r in &t.rows {
        tbl.row([
            r.label.clone(),
            format!("{:.2}", r.elapsed_ms),
            format!("{:.0}", r.frames_per_sec),
            format!("{:.2}x", r.speedup),
            format!("{:.2}x", r.speedup_vs_lut),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(
        "\nEvery LUT/SIMD/batched row produces byte-identical output \
         (tests/parallel_identity.rs, tests/pipeline_identity.rs); rows \
         differ only in wall-clock.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_baselines_plus_all_measured_rows() {
        let t = run(0.6, 1);
        assert_eq!(
            t.rows.len(),
            2 + WORKER_COUNTS.len() + BATCHED_WORKER_COUNTS.len()
        );
        assert_eq!(t.rows[0].speedup, 1.0);
        assert_eq!(t.rows[1].speedup_vs_lut, 1.0);
        assert!(t.frames > 0);
        for r in &t.rows {
            assert!(r.elapsed_ms > 0.0, "{}: non-positive elapsed", r.label);
            assert!(r.frames_per_sec > 0.0, "{}: non-positive fps", r.label);
        }
        let rendered = render(&t);
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("legacy float kernel"));
        assert!(rendered.contains("batched SIMD pipeline"));
    }

    #[test]
    fn conformance_covers_every_configuration_with_one_digest() {
        let c = conformance(0.6);
        assert_eq!(c.configurations.len(), 3 + WORKER_COUNTS.len());
        assert_eq!(c.batched_configurations.len(), 1 + BATCHED_WORKER_COUNTS.len());
        assert!(c.output_digest.starts_with("0x"));
        assert_eq!(c.output_digest.len(), 18, "fixed-width hex");
        assert_eq!(c.batched_digest.len(), 18, "fixed-width hex");
    }
}
