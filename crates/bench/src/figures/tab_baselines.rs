//! Baseline comparison table — quantifying §2's qualitative claims about
//! history-based prediction, hardware per-frame scaling and smoothing.

use crate::table::Table;
use annolight_baselines::{
    evaluate, AnnotationPolicy, BacklightPolicy, DynamicToneMapping, FullBacklight,
    HistoryPrediction, OracleDls, PolicyEvaluation, QabsSmoothed, StaticDim,
};
use annolight_core::{LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_video::ClipLibrary;

/// The comparison table: policy × aggregated metrics over a clip set.
#[derive(Debug, Clone, PartialEq)]
pub struct TabBaselines {
    /// Clips included in the aggregate.
    pub clips: Vec<String>,
    /// One aggregated evaluation per policy.
    pub rows: Vec<PolicyEvaluation>,
}

annolight_support::impl_json!(struct TabBaselines { clips, rows });

/// Evaluates all policies at 10 % quality on a mixed clip set (dark
/// trailer, bright cartoon, mixed content).
pub fn run(preview_s: f64) -> TabBaselines {
    let device = DeviceProfile::ipaq_5555();
    let quality = QualityLevel::Q10;
    let clip_names = ["themovie", "ice_age", "shrek2"];
    let profiles: Vec<(String, LuminanceProfile)> = clip_names
        .iter()
        .map(|n| {
            let clip = ClipLibrary::paper_clip(n).expect("library clip").preview(preview_s);
            (clip.name().to_owned(), LuminanceProfile::of_clip(&clip).expect("non-empty"))
        })
        .collect();

    let policies: Vec<Box<dyn BacklightPolicy>> = vec![
        Box::new(FullBacklight),
        Box::new(StaticDim { effective_max: 200 }),
        Box::new(HistoryPrediction::default()),
        Box::new(OracleDls { quality }),
        Box::new(QabsSmoothed { quality, alpha: 0.25 }),
        Box::new(DynamicToneMapping { percentile: 0.95 }),
        Box::new(AnnotationPolicy { quality }),
    ];

    let rows = policies
        .iter()
        .map(|p| {
            let evals: Vec<PolicyEvaluation> = profiles
                .iter()
                .map(|(_, prof)| evaluate(p.as_ref(), prof, &device, quality.clip_fraction()))
                .collect();
            aggregate(p.name(), &evals)
        })
        .collect();

    TabBaselines { clips: profiles.into_iter().map(|(n, _)| n).collect(), rows }
}

fn aggregate(name: &str, evals: &[PolicyEvaluation]) -> PolicyEvaluation {
    let frames: u32 = evals.iter().map(|e| e.frames).sum();
    let wf = |f: &dyn Fn(&PolicyEvaluation) -> f64| {
        evals.iter().map(|e| f(e) * f64::from(e.frames)).sum::<f64>() / f64::from(frames)
    };
    PolicyEvaluation {
        policy: name.to_owned(),
        power_savings: wf(&|e| e.power_savings),
        mean_clipped: wf(&|e| e.mean_clipped),
        worst_clipped: evals.iter().map(|e| e.worst_clipped).fold(0.0, f64::max),
        violations: evals.iter().map(|e| e.violations).sum(),
        frames,
        mean_level_travel: wf(&|e| e.mean_level_travel),
    }
}

/// Renders the table as text.
pub fn render(t: &TabBaselines) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Baseline comparison at 10% quality over {:?}\n\n",
        t.clips
    ));
    let mut tbl = Table::new([
        "policy",
        "power saved",
        "mean clipped",
        "worst clipped",
        "violations",
        "level travel",
    ]);
    for r in &t.rows {
        tbl.row([
            r.policy.clone(),
            format!("{:.1}%", r.power_savings * 100.0),
            format!("{:.2}%", r.mean_clipped * 100.0),
            format!("{:.1}%", r.worst_clipped * 100.0),
            format!("{}/{}", r.violations, r.frames),
            format!("{:.1}", r.mean_level_travel),
        ]);
    }
    out.push_str(&tbl.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TabBaselines {
        run(5.0)
    }

    #[test]
    fn all_policies_evaluated() {
        let t = quick();
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.clips.len(), 3);
    }

    #[test]
    fn annotation_close_to_oracle_without_online_cost() {
        let t = quick();
        let get = |n: &str| t.rows.iter().find(|r| r.policy == n).unwrap();
        let oracle = get("oracle-dls");
        let anno = get("annotation");
        // Per-scene budget amortisation can let the annotation clip a
        // hair more per frame than the per-frame oracle; allow the sliver.
        assert!(oracle.power_savings + 5e-3 >= anno.power_savings);
        assert!(
            anno.power_savings > 0.6 * oracle.power_savings,
            "annotation {} vs oracle {}",
            anno.power_savings,
            oracle.power_savings
        );
        // And it switches far less (per-scene vs per-frame).
        assert!(anno.mean_level_travel <= oracle.mean_level_travel);
    }

    #[test]
    fn online_and_static_policies_pay_their_costs() {
        // (Deterministic per-cut violation behaviour is covered in
        // annolight-baselines; here we check the aggregate ordering.)
        let t = quick();
        let get = |n: &str| t.rows.iter().find(|r| r.policy == n).unwrap();
        assert_eq!(get("full-backlight").violations, 0);
        assert_eq!(get("oracle-dls").violations, 0);
        // The content-blind static policy violates the most by far.
        assert!(get("static-dim").violations > get("annotation").violations);
        // History prediction trails the oracle in savings: it must hedge.
        assert!(get("history-prediction").power_savings < get("oracle-dls").power_savings);
    }

    #[test]
    fn full_backlight_saves_nothing() {
        let t = quick();
        let full = t.rows.iter().find(|r| r.policy == "full-backlight").unwrap();
        assert!(full.power_savings.abs() < 1e-12);
    }
}
