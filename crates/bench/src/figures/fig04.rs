//! Fig. 4 — original (full backlight) vs compensated (dimmed backlight)
//! frame, validated through camera snapshots and their histograms.

use crate::table::Table;
use annolight_camera::{validate_compensation, DigitalCamera, ValidationReport};
use annolight_core::plan::plan_levels;
use annolight_core::QualityLevel;
use annolight_display::{BacklightLevel, DeviceProfile};
use annolight_imgproc::contrast_enhance;

/// The Fig. 4 experiment outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig04 {
    /// Quality level used.
    pub quality_percent: f64,
    /// Backlight level chosen for the compensated frame (0–255).
    pub backlight: u8,
    /// Fractional backlight power saved at that level.
    pub backlight_savings: f64,
    /// The camera-based comparison of the two snapshots.
    pub report: ValidationReport,
}

annolight_support::impl_json!(struct Fig04 { quality_percent, backlight, backlight_savings, report });

/// Runs the experiment on the news frame at the given quality.
pub fn run(quality: QualityLevel) -> Fig04 {
    let device = DeviceProfile::ipaq_5555();
    let camera = DigitalCamera::consumer_compact(42);
    let original = super::news_frame();

    let effective = original.luma_histogram().clip_level(quality.clip_fraction());
    let (k, level) = plan_levels(&device, effective);
    let mut compensated = original.clone();
    contrast_enhance(&mut compensated, k);

    let report =
        validate_compensation(&original, &compensated, &device, BacklightLevel::MAX, level, &camera);
    Fig04 {
        quality_percent: quality.clip_fraction() * 100.0,
        backlight: level.0,
        backlight_savings: device.backlight_power().savings_vs_full(level),
        report,
    }
}

/// Renders the figure as text.
pub fn render(f: &Fig04) -> String {
    let mut out = String::new();
    out.push_str("Fig. 4 — original vs compensated frame (camera snapshots)\n\n");
    out.push_str(&format!(
        "quality {}%  →  backlight {}/255 ({:.0}% backlight power saved)\n\n",
        f.quality_percent,
        f.backlight,
        f.backlight_savings * 100.0
    ));
    let mut t = Table::new(["snapshot", "avg brightness", "dynamic range"]);
    t.row([
        "original (full backlight)".to_owned(),
        format!("{:.1}", f.report.reference_mean),
        f.report.reference_dynamic_range.to_string(),
    ]);
    t.row([
        "compensated (dimmed)".to_owned(),
        format!("{:.1}", f.report.compensated_mean),
        f.report.compensated_dynamic_range.to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nhistogram intersection = {:.3}   EMD = {:.2} levels   acceptable = {}\n",
        f.report.histogram_intersection,
        f.report.histogram_emd,
        f.report.acceptable()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensated_snapshot_close_to_reference() {
        let f = run(QualityLevel::Q10);
        assert!(f.backlight < 255);
        assert!(f.backlight_savings > 0.1);
        // "The differences … are hardly noticeable for a human, however
        // the camera detects the slight changes."
        assert!(f.report.acceptable(), "EMD {}", f.report.histogram_emd);
        assert!(f.report.histogram_emd > 0.0, "the camera sees *some* change");
    }

    #[test]
    fn lossless_mode_saves_less_than_q10() {
        let q0 = run(QualityLevel::Q0);
        let q10 = run(QualityLevel::Q10);
        assert!(q10.backlight_savings >= q0.backlight_savings);
    }

    #[test]
    fn render_mentions_both_snapshots() {
        let s = render(&run(QualityLevel::Q10));
        assert!(s.contains("original"));
        assert!(s.contains("compensated"));
    }
}
