//! Fig. 9 — the headline result: simulated LCD backlight power savings,
//! ten clips × five quality levels. "Up to 65 % of the backlight power
//! consumption can be saved using our approach (depending on the video
//! clip)"; `hunter_subres` and `ice_age` are the limited bright clips.

use crate::figures::QUALITY_LABELS;
use crate::table::Table;
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_video::ClipLibrary;

/// One clip's savings across the quality sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipSavings {
    /// Clip name.
    pub clip: String,
    /// Fractional backlight power savings at 0/5/10/15/20 % quality.
    pub savings: [f64; 5],
}

annolight_support::impl_json!(struct ClipSavings { clip, savings });

/// The Fig. 9 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09 {
    /// Device the sweep was computed for.
    pub device: String,
    /// Per-clip rows in figure order.
    pub rows: Vec<ClipSavings>,
}

annolight_support::impl_json!(struct Fig09 { device, rows });

/// Runs the sweep. `preview_s` truncates each clip (use `None` for the
/// full library, as the binary does; tests pass a few seconds).
pub fn run(preview_s: Option<f64>) -> Fig09 {
    let device = DeviceProfile::ipaq_5555();
    let rows = ClipLibrary::paper_clips()
        .into_iter()
        .map(|clip| {
            let clip = match preview_s {
                Some(s) => clip.preview(s),
                None => clip,
            };
            let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
            let mut savings = [0.0f64; 5];
            for (i, q) in QualityLevel::PAPER_LEVELS.iter().enumerate() {
                let annotated = Annotator::new(device.clone(), *q)
                    .annotate_profile(&profile)
                    .expect("non-empty profile");
                savings[i] = annotated.predicted_backlight_savings(&device);
            }
            ClipSavings { clip: clip.name().to_owned(), savings }
        })
        .collect();
    Fig09 { device: device.name().to_owned(), rows }
}

/// Renders the figure as text.
pub fn render(f: &Fig09) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 9 — LCD backlight power savings, simulated ({})\n\n",
        f.device
    ));
    let mut header = vec!["clip".to_owned()];
    header.extend(QUALITY_LABELS.iter().map(|s| (*s).to_owned()));
    let mut t = Table::new(header);
    for r in &f.rows {
        let mut row = vec![r.clip.clone()];
        row.extend(r.savings.iter().map(|s| format!("{:.1}%", s * 100.0)));
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig09 {
        run(Some(10.0))
    }

    #[test]
    fn all_ten_clips_present() {
        let f = quick();
        assert_eq!(f.rows.len(), 10);
        assert_eq!(f.rows[0].clip, "themovie");
    }

    #[test]
    fn savings_monotone_in_quality() {
        for r in quick().rows {
            for w in r.savings.windows(2) {
                assert!(w[1] + 1e-9 >= w[0], "{}: {:?}", r.clip, r.savings);
            }
        }
    }

    #[test]
    fn bright_clips_are_the_negative_results() {
        let f = quick();
        let get = |name: &str| {
            f.rows.iter().find(|r| r.clip == name).map(|r| r.savings[4]).unwrap()
        };
        let bright = get("ice_age").max(get("hunter_subres"));
        for dark in ["themovie", "returnoftheking", "i_robot"] {
            assert!(
                get(dark) > bright + 0.15,
                "{dark} ({}) should beat bright clips ({bright})",
                get(dark)
            );
        }
    }

    #[test]
    fn peak_savings_near_paper_ceiling() {
        // "Up to 65%": the best clip should land in the 55–75% band at
        // the 20% quality level.
        let f = quick();
        let best = f.rows.iter().map(|r| r.savings[4]).fold(0.0f64, f64::max);
        assert!((0.50..=0.78).contains(&best), "best {best}");
    }

    #[test]
    fn lossless_savings_are_modest() {
        // "A loss-less scheme allows for minimal power savings."
        let f = quick();
        for r in &f.rows {
            assert!(r.savings[0] < 0.35, "{}: lossless {}", r.clip, r.savings[0]);
        }
    }
}
