//! Fig. 6 — scene grouping during playback: per-frame max luminance, the
//! scene max-luminance staircase, and the instantaneous backlight power
//! saved.

use crate::table::Table;
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_video::ClipLibrary;

/// One sampled playback instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimePoint {
    /// Playback time, seconds.
    pub time_s: f64,
    /// This frame's maximum luminance (normalised 0–1).
    pub frame_max: f64,
    /// The scene's raw maximum luminance (the staircase the paper plots).
    pub scene_raw_max: f64,
    /// The annotated scene's effective max luminance after clipping
    /// (normalised).
    pub scene_max: f64,
    /// Instantaneous backlight power saved, `[0, 1)`.
    pub power_saved: f64,
}

annolight_support::impl_json!(struct TimePoint { time_s, frame_max, scene_raw_max, scene_max, power_saved });

/// The Fig. 6 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06 {
    /// Clip the series was computed on.
    pub clip: String,
    /// Number of scenes the detector found.
    pub scenes: usize,
    /// The sampled series.
    pub series: Vec<TimePoint>,
}

annolight_support::impl_json!(struct Fig06 { clip, scenes, series });

/// Runs the experiment on the first `seconds` of `clip_name` at 10 %
/// quality (the paper's example setting).
///
/// # Panics
///
/// Panics if `clip_name` is not in the library.
pub fn run(clip_name: &str, seconds: f64) -> Fig06 {
    let clip = ClipLibrary::paper_clip(clip_name)
        .expect("clip name must be in the library")
        .preview(seconds);
    let device = DeviceProfile::ipaq_5555();
    let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
    let annotated = Annotator::new(device.clone(), QualityLevel::Q10)
        .annotate_profile(&profile)
        .expect("non-empty profile");

    let track = annotated.track();
    let plan = annotated.plan();
    let series = profile
        .frames()
        .iter()
        .map(|fs| {
            let entry = track.entry_at(fs.index).expect("frame in range");
            let scene = plan
                .scenes()
                .iter()
                .find(|s| s.span.start <= fs.index && fs.index < s.span.end)
                .expect("plan covers every frame");
            TimePoint {
                time_s: f64::from(fs.index) / clip.fps(),
                frame_max: f64::from(fs.max_luma) / 255.0,
                scene_raw_max: f64::from(scene.raw_max_luma) / 255.0,
                scene_max: f64::from(entry.effective_max_luma) / 255.0,
                power_saved: device.backlight_power().savings_vs_full(entry.backlight),
            }
        })
        .collect();
    Fig06 { clip: clip.name().to_owned(), scenes: annotated.plan().scenes().len(), series }
}

/// Renders the figure as text (sampled every ~0.5 s to keep it readable).
pub fn render(f: &Fig06) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 6 — scene grouping during playback ({}, 10% quality, {} scenes)\n\n",
        f.clip, f.scenes
    ));
    let mut t = Table::new([
        "time (s)",
        "frame max lum",
        "scene max lum",
        "effective (clipped)",
        "power saved",
    ]);
    let step = (f.series.len() / 40).max(1);
    for p in f.series.iter().step_by(step) {
        t.row([
            format!("{:.2}", p.time_s),
            format!("{:.3}", p.frame_max),
            format!("{:.3}", p.scene_raw_max),
            format!("{:.3}", p.scene_max),
            format!("{:.1}%", p.power_saved * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_covers_whole_preview() {
        let f = run("themovie", 8.0);
        assert!(!f.series.is_empty());
        assert!(f.scenes >= 2, "8 s of a trailer should span scenes, got {}", f.scenes);
        let last = f.series.last().unwrap();
        assert!(last.time_s > 7.0);
    }

    #[test]
    fn raw_scene_max_envelopes_frame_max() {
        let f = run("themovie", 8.0);
        for p in &f.series {
            assert!(p.scene_raw_max + 1e-12 >= p.frame_max, "{p:?}");
            assert!(p.scene_raw_max + 1e-12 >= p.scene_max, "clipping lowers the level");
        }
    }

    #[test]
    fn scene_max_is_a_staircase() {
        // Within a scene the annotated level is constant; changes are
        // scene boundaries. Count distinct runs — must equal scene count.
        let f = run("themovie", 8.0);
        let mut runs = 1;
        for w in f.series.windows(2) {
            if (w[0].scene_max - w[1].scene_max).abs() > 1e-12 {
                runs += 1;
            }
        }
        assert!(runs <= f.scenes + 1, "{runs} runs vs {} scenes", f.scenes);
    }

    #[test]
    fn darker_scenes_save_more_power() {
        let f = run("themovie", 10.0);
        // Correlation check: the minimum-scene-max sample must save at
        // least as much as the maximum-scene-max sample.
        let darkest = f
            .series
            .iter()
            .min_by(|a, b| a.scene_max.total_cmp(&b.scene_max))
            .unwrap();
        let brightest = f
            .series
            .iter()
            .max_by(|a, b| a.scene_max.total_cmp(&b.scene_max))
            .unwrap();
        assert!(darkest.power_saved >= brightest.power_saved);
    }
}
