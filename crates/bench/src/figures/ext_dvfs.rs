//! Extension experiment — DVFS annotations (§3).
//!
//! "Optimizations like frequency/voltage scaling can be applied before
//! decoding is finished, because the annotated information is available
//! early from the data stream." The paper does not evaluate this; we do:
//! total-device savings with backlight annotations alone vs backlight +
//! per-scene DVFS hints riding in the same user-data channel.

use crate::table::Table;
use annolight_core::QualityLevel;
use annolight_stream::{run_session, SessionConfig};
use annolight_video::ClipLibrary;

/// One clip's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsRow {
    /// Clip name.
    pub clip: String,
    /// Total savings with backlight annotations only.
    pub backlight_only: f64,
    /// Total savings with backlight + DVFS annotations.
    pub with_dvfs: f64,
}

annolight_support::impl_json!(struct DvfsRow { clip, backlight_only, with_dvfs });

/// The extension experiment data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtDvfs {
    /// Per-clip rows.
    pub rows: Vec<DvfsRow>,
}

annolight_support::impl_json!(struct ExtDvfs { rows });

/// Runs the comparison at 10 % quality over a mixed clip subset.
pub fn run(preview_s: f64) -> ExtDvfs {
    let rows = ["themovie", "ice_age", "shrek2", "returnoftheking"]
        .into_iter()
        .map(|name| {
            let clip = ClipLibrary::paper_clip(name).expect("library clip").preview(preview_s);
            let plain = run_session(SessionConfig::new(clip.clone(), QualityLevel::Q10))
                .expect("session succeeds");
            let mut cfg = SessionConfig::new(clip, QualityLevel::Q10);
            cfg.dvfs = true;
            let dvfs = run_session(cfg).expect("session succeeds");
            DvfsRow {
                clip: name.to_owned(),
                backlight_only: plain.playback.total_savings(),
                with_dvfs: dvfs.playback.total_savings(),
            }
        })
        .collect();
    ExtDvfs { rows }
}

/// Renders the experiment as text.
pub fn render(e: &ExtDvfs) -> String {
    let mut out = String::new();
    out.push_str("Extension — DVFS annotations on top of backlight scaling (10% quality)\n\n");
    let mut t = Table::new(["clip", "backlight only", "+ DVFS hints", "extra"]);
    for r in &e.rows {
        t.row([
            r.clip.clone(),
            format!("{:.1}%", r.backlight_only * 100.0),
            format!("{:.1}%", r.with_dvfs * 100.0),
            format!("{:+.1}pp", (r.with_dvfs - r.backlight_only) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_always_adds_savings() {
        let e = run(4.0);
        assert_eq!(e.rows.len(), 4);
        for r in &e.rows {
            assert!(
                r.with_dvfs > r.backlight_only,
                "{}: {} vs {}",
                r.clip,
                r.with_dvfs,
                r.backlight_only
            );
        }
    }

    #[test]
    fn dvfs_gain_is_meaningful_but_secondary() {
        // The backlight dominates (25-30% of device power); DVFS trims the
        // CPU share — a few percentage points, not a 2x.
        let e = run(4.0);
        for r in &e.rows {
            let extra = r.with_dvfs - r.backlight_only;
            assert!((0.0..0.30).contains(&extra), "{}: extra {extra}", r.clip);
        }
    }
}
