//! Device-tailoring table — §2: "Our scheme allows us to tailor the
//! technique to each PDA for better power savings, by including the
//! display properties in the loop."
//!
//! The same annotation pipeline is run for each of the three paper
//! devices; because their backlight→luminance transfer functions and
//! power models differ, so do the computed levels and the savings.

use crate::table::Table;
use annolight_core::{Annotator, LuminanceProfile, QualityLevel};
use annolight_display::DeviceProfile;
use annolight_video::ClipLibrary;

/// One clip's savings per device at the 10 % quality level.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRow {
    /// Clip name.
    pub clip: String,
    /// Savings per device, same order as [`TabDevices::devices`].
    pub savings: Vec<f64>,
}

annolight_support::impl_json!(struct DeviceRow { clip, savings });

/// The device-tailoring table.
#[derive(Debug, Clone, PartialEq)]
pub struct TabDevices {
    /// Device names, column order.
    pub devices: Vec<String>,
    /// Per-clip rows.
    pub rows: Vec<DeviceRow>,
}

annolight_support::impl_json!(struct TabDevices { devices, rows });

/// Runs the comparison over the clip library (truncated to `preview_s`
/// seconds if given).
pub fn run(preview_s: Option<f64>) -> TabDevices {
    let devices = DeviceProfile::paper_devices();
    let rows = ClipLibrary::paper_clips()
        .into_iter()
        .map(|clip| {
            let clip = match preview_s {
                Some(s) => clip.preview(s),
                None => clip,
            };
            let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
            let savings = devices
                .iter()
                .map(|dev| {
                    Annotator::new(dev.clone(), QualityLevel::Q10)
                        .annotate_profile(&profile)
                        .expect("non-empty profile")
                        .predicted_backlight_savings(dev)
                })
                .collect();
            DeviceRow { clip: clip.name().to_owned(), savings }
        })
        .collect();
    TabDevices { devices: devices.iter().map(|d| d.name().to_owned()).collect(), rows }
}

/// Renders the table as text.
pub fn render(t: &TabDevices) -> String {
    let mut out = String::new();
    out.push_str("Device tailoring — backlight savings at 10% quality, per device\n\n");
    let mut header = vec!["clip".to_owned()];
    header.extend(t.devices.iter().cloned());
    let mut tbl = Table::new(header);
    for r in &t.rows {
        let mut row = vec![r.clip.clone()];
        row.extend(r.savings.iter().map(|s| format!("{:.1}%", s * 100.0)));
        tbl.row(row);
    }
    out.push_str(&tbl.render());
    out.push_str("\n(same scenes, device-specific levels: the transfer curve and power\n model of each display decide how much a given scene max is worth)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TabDevices {
        run(Some(8.0))
    }

    #[test]
    fn all_clips_and_devices_present() {
        let t = quick();
        assert_eq!(t.devices.len(), 3);
        assert_eq!(t.rows.len(), 10);
    }

    #[test]
    fn devices_actually_differ() {
        // Tailoring matters: for most clips the three devices' savings
        // differ by whole percentage points.
        let t = quick();
        let mut differing = 0;
        for r in &t.rows {
            let min = r.savings.iter().copied().fold(f64::MAX, f64::min);
            let max = r.savings.iter().copied().fold(0.0f64, f64::max);
            if max - min > 0.02 {
                differing += 1;
            }
        }
        assert!(differing >= 7, "only {differing} clips show device spread");
    }

    #[test]
    fn led_device_leads_on_dark_content() {
        // The concave LED transfer turns a given scene max into a lower
        // drive level than the convex CCFL curves.
        let t = quick();
        let i5555 = t.devices.iter().position(|d| d == "ipaq-5555").unwrap();
        let i3650 = t.devices.iter().position(|d| d == "ipaq-3650").unwrap();
        let dark = t.rows.iter().find(|r| r.clip == "themovie").unwrap();
        assert!(
            dark.savings[i5555] > dark.savings[i3650],
            "LED {} vs CCFL {}",
            dark.savings[i5555],
            dark.savings[i3650]
        );
    }
}
