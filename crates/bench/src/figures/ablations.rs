//! Ablation studies over the design choices the paper fixes by hand:
//! the scene-change threshold ("a change of 10% or more"), the
//! anti-flicker guard interval ("experimentally set"), per-scene vs
//! per-frame annotation, the compensation operator, and the codec's
//! quantiser operating point.

use crate::table::Table;
use annolight_codec::picture::{decode_intra, encode_intra};
use annolight_codec::psnr_luma;
use annolight_codec::quant::QScale;
use annolight_core::apply::apply_annotation;
use annolight_core::plan::operator_distortion;
use annolight_core::track::AnnotationMode;
use annolight_core::{Annotator, LuminanceProfile, QualityLevel, SceneDetector, SceneDetectorConfig};
use annolight_display::{ControllerConfig, DeviceProfile};
use annolight_imgproc::CompensationKind;
use annolight_video::ClipLibrary;

/// One row of the scene-threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// Relative max-luminance change treated as a scene cut.
    pub threshold: f64,
    /// Scenes detected.
    pub scenes: usize,
    /// Mean backlight savings at 10 % quality.
    pub savings: f64,
    /// Backlight switches during playback.
    pub switches: u64,
}

annolight_support::impl_json!(struct ThresholdPoint { threshold, scenes, savings, switches });

/// Sweeps the scene-change threshold on `clip_name`.
///
/// # Panics
///
/// Panics for a clip name not in the library.
pub fn scene_threshold(clip_name: &str, seconds: f64) -> Vec<ThresholdPoint> {
    let clip = ClipLibrary::paper_clip(clip_name).expect("library clip").preview(seconds);
    let device = DeviceProfile::ipaq_5555();
    let profile = LuminanceProfile::of_clip(&clip).expect("non-empty");
    [0.02, 0.05, 0.10, 0.20, 0.30]
        .into_iter()
        .map(|threshold| {
            let detector = SceneDetector::new(SceneDetectorConfig {
                change_threshold: threshold,
                min_interval_s: 0.5,
            });
            let annotated = Annotator::new(device.clone(), QualityLevel::Q10)
                .with_detector(detector)
                .annotate_profile(&profile)
                .expect("non-empty");
            let (_, stats) = apply_annotation(annotated.track(), ControllerConfig::default())
                .expect("track covers frames");
            ThresholdPoint {
                threshold,
                scenes: annotated.plan().scenes().len(),
                savings: annotated.predicted_backlight_savings(&device),
                switches: stats.switches,
            }
        })
        .collect()
}

/// One row of the guard-interval sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardPoint {
    /// Minimum seconds between applied backlight changes.
    pub guard_s: f64,
    /// Backlight switches applied.
    pub switches: u64,
    /// Requests suppressed by the guard.
    pub suppressed: u64,
    /// Flicker score (mean level travel per switch).
    pub flicker: f64,
}

annolight_support::impl_json!(struct GuardPoint { guard_s, switches, suppressed, flicker });

/// Sweeps the client controller's guard interval (per-frame annotations,
/// the flicker-prone mode).
///
/// # Panics
///
/// Panics for a clip name not in the library.
pub fn guard_interval(clip_name: &str, seconds: f64) -> Vec<GuardPoint> {
    let clip = ClipLibrary::paper_clip(clip_name).expect("library clip").preview(seconds);
    let device = DeviceProfile::ipaq_5555();
    let profile = LuminanceProfile::of_clip(&clip).expect("non-empty");
    let annotated = Annotator::new(device, QualityLevel::Q10)
        .with_mode(AnnotationMode::PerFrame)
        .annotate_profile(&profile)
        .expect("non-empty");
    [0.0, 0.25, 0.5, 1.0, 2.0]
        .into_iter()
        .map(|guard_s| {
            let cfg = ControllerConfig { min_switch_interval_s: guard_s, min_step: 4 };
            let (_, stats) = apply_annotation(annotated.track(), cfg).expect("track covers frames");
            GuardPoint {
                guard_s,
                switches: stats.switches,
                suppressed: stats.suppressed,
                flicker: stats.flicker_score(),
            }
        })
        .collect()
}

/// One row of the per-scene vs per-frame comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ModePoint {
    /// Clip name.
    pub clip: String,
    /// Per-scene savings.
    pub scene_savings: f64,
    /// Per-frame savings.
    pub frame_savings: f64,
    /// Per-scene track bytes.
    pub scene_bytes: usize,
    /// Per-frame track bytes (after RLE).
    pub frame_bytes: usize,
}

annolight_support::impl_json!(struct ModePoint { clip, scene_savings, frame_savings, scene_bytes, frame_bytes });

/// Compares annotation modes across a clip subset.
pub fn mode_comparison(seconds: f64) -> Vec<ModePoint> {
    let device = DeviceProfile::ipaq_5555();
    ["themovie", "ice_age", "shrek2"]
        .into_iter()
        .map(|name| {
            let clip = ClipLibrary::paper_clip(name).expect("library clip").preview(seconds);
            let profile = LuminanceProfile::of_clip(&clip).expect("non-empty");
            let scene = Annotator::new(device.clone(), QualityLevel::Q10)
                .annotate_profile(&profile)
                .expect("non-empty");
            let frame = Annotator::new(device.clone(), QualityLevel::Q10)
                .with_mode(AnnotationMode::PerFrame)
                .annotate_profile(&profile)
                .expect("non-empty");
            ModePoint {
                clip: name.to_owned(),
                scene_savings: scene.predicted_backlight_savings(&device),
                frame_savings: frame.predicted_backlight_savings(&device),
                scene_bytes: scene.track().overhead_bytes(),
                frame_bytes: frame.track().overhead_bytes(),
            }
        })
        .collect()
}

/// One row of the operator comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorPoint {
    /// Effective maximum luminance the scene was planned at.
    pub effective_max: u8,
    /// Mean relative perceived-intensity error of contrast enhancement.
    pub contrast_error: f64,
    /// Mean relative perceived-intensity error of brightness compensation.
    pub brightness_error: f64,
}

annolight_support::impl_json!(struct OperatorPoint { effective_max, contrast_error, brightness_error });

/// Contrast enhancement vs brightness compensation (§4.1's two operators).
pub fn operator_comparison() -> Vec<OperatorPoint> {
    let device = DeviceProfile::ipaq_5555();
    [64u8, 96, 128, 160, 192, 224]
        .into_iter()
        .map(|effective_max| OperatorPoint {
            effective_max,
            contrast_error: operator_distortion(
                &device,
                effective_max,
                CompensationKind::ContrastEnhancement,
            ),
            brightness_error: operator_distortion(
                &device,
                effective_max,
                CompensationKind::BrightnessCompensation,
            ),
        })
        .collect()
}

/// One row of the codec rate-distortion sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RdPoint {
    /// Quantiser scale.
    pub qscale: u8,
    /// Intra-coded bytes per frame.
    pub bytes_per_frame: usize,
    /// Luma PSNR, dB.
    pub psnr_db: f64,
}

annolight_support::impl_json!(struct RdPoint { qscale, bytes_per_frame, psnr_db });

/// Rate-distortion sweep of the codec substrate on a library frame.
pub fn codec_rd() -> Vec<RdPoint> {
    let clip = ClipLibrary::paper_clip("spiderman2").expect("library clip").preview(1.0);
    let yuv = clip.frame(0).to_yuv420().expect("even dimensions");
    [2u8, 4, 8, 16, 31]
        .into_iter()
        .map(|q| {
            let coded = encode_intra(&yuv, QScale::new(q));
            let decoded =
                decode_intra(&coded.bytes, yuv.width(), yuv.height()).expect("valid payload");
            RdPoint {
                qscale: q,
                bytes_per_frame: coded.bytes.len(),
                psnr_db: psnr_luma(&yuv, &decoded),
            }
        })
        .collect()
}

/// Renders all ablations as one text report.
pub fn render_all(seconds: f64) -> String {
    let mut out = String::new();

    out.push_str("Ablation A — scene-change threshold (themovie, 10% quality)\n\n");
    let mut t = Table::new(["threshold", "scenes", "savings", "switches"]);
    for p in scene_threshold("themovie", seconds) {
        t.row([
            format!("{:.0}%", p.threshold * 100.0),
            p.scenes.to_string(),
            format!("{:.1}%", p.savings * 100.0),
            p.switches.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation B — anti-flicker guard interval (per-frame mode)\n\n");
    let mut t = Table::new(["guard (s)", "switches", "suppressed", "flicker"]);
    for p in guard_interval("themovie", seconds) {
        t.row([
            format!("{:.2}", p.guard_s),
            p.switches.to_string(),
            p.suppressed.to_string(),
            format!("{:.1}", p.flicker),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation C — per-scene vs per-frame annotation\n\n");
    let mut t = Table::new(["clip", "scene savings", "frame savings", "scene B", "frame B"]);
    for p in mode_comparison(seconds) {
        t.row([
            p.clip.clone(),
            format!("{:.1}%", p.scene_savings * 100.0),
            format!("{:.1}%", p.frame_savings * 100.0),
            p.scene_bytes.to_string(),
            p.frame_bytes.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation D — compensation operator fidelity\n\n");
    let mut t = Table::new(["effective max", "contrast err", "brightness err"]);
    for p in operator_comparison() {
        t.row([
            p.effective_max.to_string(),
            format!("{:.4}", p.contrast_error),
            format!("{:.4}", p.brightness_error),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation E — codec rate-distortion (intra, 128x96)\n\n");
    let mut t = Table::new(["qscale", "bytes/frame", "PSNR (dB)"]);
    for p in codec_rd() {
        t.row([p.qscale.to_string(), p.bytes_per_frame.to_string(), format!("{:.1}", p.psnr_db)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_threshold_means_more_scenes() {
        let sweep = scene_threshold("themovie", 8.0);
        assert_eq!(sweep.len(), 5);
        for w in sweep.windows(2) {
            assert!(w[0].scenes >= w[1].scenes, "{w:?}");
        }
        // And more scenes means savings at least as good.
        assert!(sweep[0].savings + 1e-9 >= sweep[4].savings);
    }

    #[test]
    fn longer_guard_means_fewer_switches() {
        let sweep = guard_interval("themovie", 8.0);
        for w in sweep.windows(2) {
            assert!(w[1].switches <= w[0].switches, "{w:?}");
            assert!(w[1].suppressed >= w[0].suppressed, "{w:?}");
        }
    }

    #[test]
    fn per_frame_tracks_are_bigger() {
        for p in mode_comparison(6.0) {
            assert!(p.frame_bytes >= p.scene_bytes, "{p:?}");
        }
    }

    #[test]
    fn contrast_always_more_faithful() {
        for p in operator_comparison() {
            assert!(p.contrast_error < p.brightness_error, "{p:?}");
        }
    }

    #[test]
    fn rd_curve_is_monotone() {
        let rd = codec_rd();
        for w in rd.windows(2) {
            assert!(w[1].bytes_per_frame <= w[0].bytes_per_frame, "{w:?}");
            assert!(w[1].psnr_db <= w[0].psnr_db + 0.3, "{w:?}");
        }
        assert!(rd[0].psnr_db > 35.0, "qscale 2 should be near-transparent: {rd:?}");
    }

    #[test]
    fn report_renders_all_sections() {
        let s = render_all(4.0);
        for section in ["Ablation A", "Ablation B", "Ablation C", "Ablation D", "Ablation E"] {
            assert!(s.contains(section));
        }
    }
}
