//! Extension experiment — closed-loop energy-budgeted playback.
//!
//! The paper's annotations are open-loop: the quality level is fixed at
//! negotiation and the session costs whatever it costs. This experiment
//! closes the loop: "fit this playback into N joules". For dark and
//! bright clip classes, sweep the joule budget from loose to tight and
//! let the per-scene governor (`annolight_stream::governor`) search the
//! quality knob against the remaining budget, battery charge and the
//! thermal model — then report where each session actually landed.

use crate::table::Table;
use annolight_core::governor::GovernorAction;
use annolight_core::QualityLevel;
use annolight_stream::{
    governed_projections, run_session_governed, GovernorSessionConfig, SessionConfig,
};
use annolight_video::ClipLibrary;

/// Seed for the ambient light sensor stream.
pub const BASELINE_SEED: u64 = 0xA110;

/// Budget pressure points, as the fraction of the floor→full projection
/// span granted above the floor.
pub const BUDGET_FRACS: [f64; 3] = [0.9, 0.5, 0.08];

/// One (clip, budget) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorRow {
    /// Clip name.
    pub clip: String,
    /// Budget pressure (fraction of the floor→full span).
    pub budget_frac: f64,
    /// The joule budget handed to the governor.
    pub budget_j: f64,
    /// What the governed playback actually spent, joules.
    pub spent_j: f64,
    /// What the open-loop session at the requested quality would have
    /// spent, joules.
    pub open_loop_j: f64,
    /// Whether the session landed within the budget.
    pub within_budget: bool,
    /// Mean perceived-quality shortfall vs. the requested plan.
    pub quality_error: f64,
    /// Scenes that stepped the knob down (more aggressive).
    pub degrades: u32,
    /// Scenes that stepped the knob back up.
    pub improves: u32,
    /// FNV digest of the governor trace, hex.
    pub trace_hex: String,
}

annolight_support::impl_json!(struct GovernorRow { clip, budget_frac, budget_j, spent_j, open_loop_j, within_budget, quality_error, degrades, improves, trace_hex });

/// The extension experiment data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtGovernor {
    /// Per-cell rows.
    pub rows: Vec<GovernorRow>,
}

annolight_support::impl_json!(struct ExtGovernor { rows });

fn governed(clip_name: &str, preview_s: f64, budget_j: f64) -> GovernorSessionConfig {
    let clip = ClipLibrary::paper_clip(clip_name).expect("library clip").preview(preview_s);
    GovernorSessionConfig::new(SessionConfig::new(clip, QualityLevel::Q10), budget_j)
        .with_ambient_seed(BASELINE_SEED)
}

/// Runs the budget sweep over a dark and a bright clip.
pub fn run(preview_s: f64) -> ExtGovernor {
    let mut rows = Vec::new();
    for clip_name in ["themovie", "shrek2"] {
        let ladder = governed_projections(&governed(clip_name, preview_s, 0.0))
            .expect("projection ladder");
        let floor = *ladder.last().expect("non-empty ladder");
        for frac in BUDGET_FRACS {
            let budget = floor + frac * (ladder[0] - floor);
            let r = run_session_governed(governed(clip_name, preview_s, budget))
                .expect("governed session succeeds");
            rows.push(GovernorRow {
                clip: clip_name.to_owned(),
                budget_frac: frac,
                budget_j: budget,
                spent_j: r.total_j,
                open_loop_j: r.requested_energy_j,
                within_budget: r.within_budget,
                quality_error: r.quality_error,
                degrades: r
                    .events
                    .iter()
                    .filter(|e| e.action == GovernorAction::Degrade)
                    .count() as u32,
                improves: r
                    .events
                    .iter()
                    .filter(|e| e.action == GovernorAction::Improve)
                    .count() as u32,
                trace_hex: r.trace_hex,
            });
        }
    }
    ExtGovernor { rows }
}

/// The deterministic double-run artefact: every cell's trace digest and
/// landing point.
#[must_use]
pub fn deterministic_log(e: &ExtGovernor) -> String {
    let mut out = String::new();
    for r in &e.rows {
        out.push_str(&format!(
            "{} frac={} budget={:.6} spent={:.6} trace={}\n",
            r.clip, r.budget_frac, r.budget_j, r.spent_j, r.trace_hex
        ));
    }
    out
}

/// Renders the experiment as text.
pub fn render(e: &ExtGovernor) -> String {
    let mut out = String::new();
    out.push_str("Extension — closed-loop energy-budgeted playback (10% request, governed)\n\n");
    let mut t = Table::new([
        "clip", "budget", "budget J", "spent J", "open-loop J", "within", "q-error", "deg/imp",
    ]);
    for r in &e.rows {
        t.row([
            r.clip.clone(),
            format!("{:.0}%", r.budget_frac * 100.0),
            format!("{:.1}", r.budget_j),
            format!("{:.1}", r.spent_j),
            format!("{:.1}", r.open_loop_j),
            if r.within_budget { "yes".into() } else { "NO".into() },
            format!("{:.3}", r.quality_error),
            format!("{}/{}", r.degrades, r.improves),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_lands_within_its_budget() {
        let e = run(8.0);
        assert_eq!(e.rows.len(), 6);
        for r in &e.rows {
            assert!(r.within_budget, "{} frac {}: over budget", r.clip, r.budget_frac);
            assert!(r.spent_j <= r.budget_j + 1e-9);
            assert!(r.quality_error <= 0.5);
        }
    }

    #[test]
    fn tighter_budgets_spend_no_more_than_looser_ones() {
        let e = run(8.0);
        for pair in e.rows.chunks(BUDGET_FRACS.len()) {
            for w in pair.windows(2) {
                assert!(
                    w[1].spent_j <= w[0].spent_j + 1e-9,
                    "{}: frac {} spent more than frac {}",
                    w[0].clip,
                    w[1].budget_frac,
                    w[0].budget_frac
                );
            }
        }
    }

    #[test]
    fn double_run_is_deterministic() {
        let a = run(4.0);
        let b = run(4.0);
        assert_eq!(deterministic_log(&a), deterministic_log(&b));
    }
}
