//! Fig. 7 — measured brightness vs backlight value (white screen), per
//! device: the display-characterisation step, performed exactly as in the
//! paper by photographing solid screens with the digital camera.

use crate::table::Table;
use annolight_camera::{recover_response, DigitalCamera};
use annolight_display::{BacklightLevel, DeviceProfile};
use annolight_imgproc::{Frame, Rgb8};

/// One sweep row: camera-measured brightness per device at one backlight
/// value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The software backlight value.
    pub backlight: u8,
    /// Camera-measured mean brightness per device, same order as
    /// [`Fig07::devices`].
    pub brightness: Vec<f64>,
}

annolight_support::impl_json!(struct SweepPoint { backlight, brightness });

/// The Fig. 7 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07 {
    /// Device names, column order.
    pub devices: Vec<String>,
    /// The sweep, ascending backlight.
    pub points: Vec<SweepPoint>,
}

annolight_support::impl_json!(struct Fig07 { devices, points });

/// Sweeps the backlight at a full-white screen on all three paper devices.
///
/// The snapshots come from the consumer camera model and are linearised
/// through its *recovered* response curve — the full Debevec–Malik
/// workflow the paper cites: recover `g`, then compare brightness on a
/// linear scale.
pub fn run() -> Fig07 {
    let devices = DeviceProfile::paper_devices();
    let camera = DigitalCamera::consumer_compact(7);
    let response = recover_response(&camera, 8);
    let white = Frame::filled(32, 32, Rgb8::gray(255));
    let points = (0..=16u16)
        .map(|i| {
            let b = (i * 16).min(255) as u8;
            let brightness = devices
                .iter()
                .map(|d| {
                    response.linear_mean(&camera.photograph(&white, d, BacklightLevel(b))) * 255.0
                })
                .collect();
            SweepPoint { backlight: b, brightness }
        })
        .collect();
    Fig07 { devices: devices.iter().map(|d| d.name().to_owned()).collect(), points }
}

/// Renders the figure as text.
pub fn render(f: &Fig07) -> String {
    let mut out = String::new();
    out.push_str("Fig. 7 — measured brightness vs backlight value (white = 255)\n\n");
    let mut header = vec!["backlight".to_owned()];
    header.extend(f.devices.iter().cloned());
    let mut t = Table::new(header);
    for p in &f.points {
        let mut row = vec![p.backlight.to_string()];
        row.extend(p.brightness.iter().map(|b| format!("{b:.1}")));
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str("\n(non-linear in backlight; curvature differs per display technology)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brightness_monotone_in_backlight() {
        let f = run();
        for d in 0..f.devices.len() {
            for w in f.points.windows(2) {
                assert!(
                    w[1].brightness[d] + 3.0 >= w[0].brightness[d],
                    "device {} not monotone",
                    f.devices[d]
                );
            }
        }
    }

    #[test]
    fn response_is_nonlinear() {
        // The paper: "measured luminance response to backlight level … is
        // not always linear". Check the mid-point deviates from the line
        // between the endpoints for each device.
        let f = run();
        let mid = f.points.len() / 2;
        for d in 0..f.devices.len() {
            let lo = f.points.first().unwrap().brightness[d];
            let hi = f.points.last().unwrap().brightness[d];
            let linear_mid = (lo + hi) / 2.0;
            let actual_mid = f.points[mid].brightness[d];
            assert!(
                (actual_mid - linear_mid).abs() > 5.0,
                "device {} looks linear: {actual_mid} vs {linear_mid}",
                f.devices[d]
            );
        }
    }

    #[test]
    fn technologies_have_distinct_curvature() {
        // LED (concave) must sit above the straight line, CCFL (convex)
        // below it — "each display technology showed a different transfer
        // characteristic".
        let f = run();
        let mid = f.points.len() / 2;
        let led = 0; // ipaq-5555 first
        let ccfl = 1; // ipaq-3650
        let line = |d: usize| {
            (f.points.first().unwrap().brightness[d] + f.points.last().unwrap().brightness[d]) / 2.0
        };
        assert!(f.points[mid].brightness[led] > line(led));
        assert!(f.points[mid].brightness[ccfl] < line(ccfl));
    }
}
