//! Loss-sweep robustness table — what the wireless hop's packet loss
//! costs the annotation system, end to end.
//!
//! The paper's streaming model (Fig. 1) sends annotations "with no
//! changes for the client" over a real wireless hop; this table
//! quantifies how gracefully the implementation holds up when that hop
//! drops, duplicates and reorders packets. For each loss rate we run a
//! full fault-injected session ([`run_session_faulty`]) and report:
//!
//! * the retransmission load (picture packets are reliable) and its
//!   WNIC energy cost;
//! * how many annotation hints were lost or late (hints are lossy — a
//!   hint is only worth retrying until its scene starts);
//! * how many frames played degraded (hold-then-ramp toward full
//!   backlight) and the mean perceived-intensity error that caused;
//! * the net total-device saving *including* the retransmit energy, so
//!   the row answers "is the optimization still worth it at this loss
//!   rate?".
//!
//! Everything is seeded: the same `seed` reproduces every row bit for
//! bit.

use crate::table::Table;
use annolight_core::QualityLevel;
use annolight_stream::{run_session_faulty, FaultConfig, SessionConfig};
use annolight_video::ClipLibrary;

/// One loss-rate measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRow {
    /// Independent per-packet drop probability, percent.
    pub loss_pct: f64,
    /// Packets dropped on first transmission.
    pub dropped: u64,
    /// Retransmission attempts the reliable picture path needed.
    pub retransmits: u64,
    /// Annotation hints that never arrived.
    pub deltas_lost: u64,
    /// Annotation hints that arrived after their scene started.
    pub deltas_late: u64,
    /// Frames played without their annotation available.
    pub degraded_frames: u32,
    /// Mean perceived-intensity error vs. the annotated schedule.
    pub perceived_error: f64,
    /// WNIC energy spent on retransmissions, joules.
    pub retransmit_energy_j: f64,
    /// Total-device saving with retransmit energy charged against it.
    pub net_savings: f64,
}

annolight_support::impl_json!(struct LossRow { loss_pct, dropped, retransmits, deltas_lost, deltas_late, degraded_frames, perceived_error, retransmit_energy_j, net_savings });

/// The loss-sweep table.
#[derive(Debug, Clone, PartialEq)]
pub struct TabLoss {
    /// Clip the sweep ran on.
    pub clip: String,
    /// Fault seed (rows replay exactly from it).
    pub seed: u64,
    /// One row per loss rate, ascending.
    pub rows: Vec<LossRow>,
}

annolight_support::impl_json!(struct TabLoss { clip, seed, rows });

/// The loss rates of the sweep, percent.
pub const LOSS_RATES_PCT: [f64; 4] = [0.0, 5.0, 10.0, 20.0];

/// Runs the sweep on the first library clip truncated to `preview_s`
/// seconds, at the 10 % quality level, fault seed `seed`.
pub fn run(preview_s: f64, seed: u64) -> TabLoss {
    let clip = ClipLibrary::paper_clips()
        .into_iter()
        .next()
        .expect("paper clip library is non-empty")
        .preview(preview_s);
    let name = clip.name().to_owned();

    let rows = LOSS_RATES_PCT
        .iter()
        .map(|&loss_pct| {
            let mut config = SessionConfig::new(clip.clone(), QualityLevel::Q10);
            config.faults = if loss_pct == 0.0 {
                FaultConfig::lossless(seed)
            } else {
                FaultConfig::lossy(seed, loss_pct / 100.0)
            };
            let report = run_session_faulty(config).expect("faulty session never stalls");
            let playback = &report.session.playback;
            // Charge the retransmission energy against the saving: the
            // playback energy integrates the power model, the retransmit
            // energy rides on top (see `run_session_faulty`).
            let net_savings = if playback.baseline_energy_j > 0.0 {
                1.0 - (playback.energy_j + report.faults.retransmit_energy_j)
                    / playback.baseline_energy_j
            } else {
                0.0
            };
            LossRow {
                loss_pct,
                dropped: report.faults.channel.dropped,
                retransmits: report.faults.channel.retransmits,
                deltas_lost: report.faults.deltas_lost,
                deltas_late: report.faults.deltas_late,
                degraded_frames: report.degraded_frames,
                perceived_error: report.perceived_error,
                retransmit_energy_j: report.faults.retransmit_energy_j,
                net_savings,
            }
        })
        .collect();
    TabLoss { clip: name, seed, rows }
}

/// Renders the table as text.
pub fn render(t: &TabLoss) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Robustness under packet loss — clip {:?}, seed {} (iPAQ 5555, 802.11b)\n\n",
        t.clip, t.seed
    ));
    let mut tbl = Table::new([
        "loss",
        "dropped",
        "rexmit",
        "hints lost",
        "hints late",
        "degraded frames",
        "perceived err",
        "rexmit J",
        "net saving",
    ]);
    for r in &t.rows {
        tbl.row([
            format!("{:.0}%", r.loss_pct),
            r.dropped.to_string(),
            r.retransmits.to_string(),
            r.deltas_lost.to_string(),
            r.deltas_late.to_string(),
            r.degraded_frames.to_string(),
            format!("{:.3}", r.perceived_error),
            format!("{:.4}", r.retransmit_energy_j),
            format!("{:.1}%", r.net_savings * 100.0),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(
        "\nhints are lossy (retried only until their scene starts); pictures are reliable.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> &'static TabLoss {
        static T: std::sync::OnceLock<TabLoss> = std::sync::OnceLock::new();
        T.get_or_init(|| run(4.0, 42))
    }

    #[test]
    fn zero_loss_row_is_clean() {
        let t = quick();
        let r = &t.rows[0];
        assert_eq!(r.loss_pct, 0.0);
        assert_eq!(
            (r.dropped, r.retransmits, r.deltas_lost, r.deltas_late, r.degraded_frames),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(r.perceived_error, 0.0);
        assert_eq!(r.retransmit_energy_j, 0.0);
    }

    #[test]
    fn loss_costs_grow_but_savings_survive() {
        let t = quick();
        // Retransmissions (reliable pictures) grow with the loss rate…
        assert!(t.rows[3].retransmits > t.rows[1].retransmits);
        // …and their energy is charged, shrinking the net saving.
        for w in t.rows.windows(2) {
            assert!(
                w[1].retransmit_energy_j >= w[0].retransmit_energy_j,
                "retransmit energy is monotone in loss"
            );
        }
        // Even at 20% loss the optimization still pays: positive net
        // savings, bounded perceived error.
        let worst = &t.rows[3];
        assert!(worst.net_savings > 0.0, "net saving at 20% loss: {}", worst.net_savings);
        assert!(worst.perceived_error <= 0.25, "perceived error: {}", worst.perceived_error);
    }

    #[test]
    fn sweep_replays_exactly_from_its_seed() {
        let a = run(2.0, 7);
        let b = run(2.0, 7);
        assert_eq!(a, b);
        assert_eq!(
            annolight_support::json::to_string_pretty(&a),
            annolight_support::json::to_string_pretty(&b)
        );
    }

    #[test]
    fn json_roundtrip() {
        let t = run(2.0, 1);
        let json = annolight_support::json::to_string_pretty(&t);
        let back: TabLoss = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
