//! Serving-at-scale table — throughput of the sharded annotation service
//! as the work-stealing pool widens, plus the cold-profile vs warm-hit
//! latency gap that makes the content-addressed cache worth its memory.
//!
//! The paper's server "stores profiled clips"; `annolight-serve` turns
//! that into a multi-tenant service. This table quantifies two claims:
//!
//! 1. cold annotation (profile + plan) is orders of magnitude slower than
//!    a warm cache hit, so amortising tracks across tenants matters;
//! 2. cold work scales with pool workers (distinct clips profile in
//!    parallel on the work-stealing deques).

use crate::table::Table;
use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_serve::{AnnotationRequest, AnnotationService, ServiceConfig, Ticket};
use annolight_video::{Clip, ClipSpec, ContentKind, SceneSpec};
use std::time::Instant;

/// One pool-width measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRow {
    /// Worker threads in the profiling pool.
    pub workers: usize,
    /// Requests submitted (all rounds).
    pub requests: usize,
    /// Cache hits observed.
    pub hits: u64,
    /// Cold computes observed.
    pub misses: u64,
    /// Wall-clock for the whole run, microseconds.
    pub elapsed_us: f64,
    /// Requests completed per second.
    pub throughput_rps: f64,
}

annolight_support::impl_json!(struct ServeRow { workers, requests, hits, misses, elapsed_us, throughput_rps });

/// The serving-at-scale table.
#[derive(Debug, Clone, PartialEq)]
pub struct TabServe {
    /// One row per pool width.
    pub rows: Vec<ServeRow>,
    /// Mean cold (profile + annotate) latency, microseconds.
    pub cold_mean_us: f64,
    /// Mean warm (cache hit) latency, microseconds.
    pub warm_mean_us: f64,
    /// `cold_mean_us / warm_mean_us`.
    pub speedup: f64,
}

annolight_support::impl_json!(struct TabServe { rows, cold_mean_us, warm_mean_us, speedup });

/// Synthetic catalogue clip `i`: distinct seed and scene mix so every
/// clip profiles differently and no two content digests collide.
fn catalogue_clip(i: usize, seconds: f64) -> Clip {
    Clip::new(ClipSpec {
        name: format!("serve-clip-{i}"),
        width: 128,
        height: 96,
        fps: 12.0,
        seed: 0x5EED_0000 + i as u64,
        scenes: vec![
            SceneSpec::new(
                ContentKind::Dark {
                    base: 30 + (i % 5) as u8 * 8,
                    spread: 12,
                    highlight_fraction: 0.01,
                    highlight: 240,
                },
                seconds / 2.0,
            ),
            SceneSpec::new(
                ContentKind::Bright { base: 180 + (i % 4) as u8 * 10, spread: 20 },
                seconds / 2.0,
            ),
        ],
    })
    .expect("synthetic catalogue clip is well-formed")
}

fn request(clip: usize, device: &DeviceProfile) -> AnnotationRequest {
    AnnotationRequest {
        tenant: format!("tenant-{clip}"),
        clip: format!("serve-clip-{clip}"),
        device: device.clone(),
        quality: QualityLevel::Q10,
        mode: AnnotationMode::PerScene,
        policy: annolight_core::PolicyKind::PeakClip,
    }
}

/// Measures throughput for each pool width in `worker_counts` over a
/// catalogue of `n_clips` clips × the three paper devices, submitted for
/// `rounds` rounds (round 1 is all-cold, later rounds all-warm), plus the
/// cold/warm latency gap on a deterministic single-thread service.
pub fn run(worker_counts: &[usize], n_clips: usize, rounds: usize, clip_seconds: f64) -> TabServe {
    let devices = DeviceProfile::paper_devices();
    let per_round = n_clips * devices.len();

    let rows = worker_counts
        .iter()
        .map(|&workers| {
            let service = AnnotationService::new(ServiceConfig {
                workers,
                cache_shards: 8,
                cache_bytes: 32 << 20,
                tenant_queue_depth: per_round * rounds,
                ..ServiceConfig::default()
            });
            for i in 0..n_clips {
                service.register_clip(catalogue_clip(i, clip_seconds));
            }
            let start = Instant::now();
            for _ in 0..rounds {
                // Submit a full round, then drain it: within a round every
                // key is distinct, so threaded miss counts stay exact.
                let tickets: Vec<Ticket> = (0..n_clips)
                    .flat_map(|c| devices.iter().map(move |d| (c, d)))
                    .map(|(c, d)| {
                        service.submit(request(c, d)).expect("queues sized for the round")
                    })
                    .collect();
                if service.is_deterministic() {
                    service.run_until_idle();
                }
                for t in tickets {
                    t.wait().expect("annotation succeeds");
                }
            }
            let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
            let report = service.report();
            ServeRow {
                workers,
                requests: per_round * rounds,
                hits: report.hits,
                misses: report.misses,
                elapsed_us,
                throughput_rps: (per_round * rounds) as f64 / (elapsed_us * 1e-6),
            }
        })
        .collect();

    // Cold vs warm on a deterministic service: first call per key is a
    // cold profile+annotate, the immediate repeat is a cache hit.
    let service = AnnotationService::new(ServiceConfig { workers: 0, ..ServiceConfig::default() });
    for i in 0..n_clips {
        service.register_clip(catalogue_clip(i, clip_seconds));
    }
    let (mut cold_us, mut warm_us) = (0.0, 0.0);
    let mut samples = 0u32;
    for c in 0..n_clips {
        for d in &devices {
            let t = Instant::now();
            let cold = annolight_serve::Service::call(&service, request(c, d))
                .expect("cold annotation succeeds");
            cold_us += t.elapsed().as_secs_f64() * 1e6;
            assert!(!cold.cache_hit, "first call per key must be cold");
            let t = Instant::now();
            let warm = annolight_serve::Service::call(&service, request(c, d))
                .expect("warm annotation succeeds");
            warm_us += t.elapsed().as_secs_f64() * 1e6;
            assert!(warm.cache_hit, "repeat call per key must hit");
            samples += 1;
        }
    }
    let cold_mean_us = cold_us / f64::from(samples);
    let warm_mean_us = warm_us / f64::from(samples);
    TabServe { rows, cold_mean_us, warm_mean_us, speedup: cold_mean_us / warm_mean_us.max(1e-3) }
}

/// Renders the table as text.
pub fn render(t: &TabServe) -> String {
    let mut out = String::new();
    out.push_str("Annotation service throughput vs pool width\n\n");
    let mut tbl = Table::new(["workers", "requests", "hits", "misses", "elapsed (ms)", "req/s"]);
    for r in &t.rows {
        tbl.row([
            r.workers.to_string(),
            r.requests.to_string(),
            r.hits.to_string(),
            r.misses.to_string(),
            format!("{:.2}", r.elapsed_us / 1e3),
            format!("{:.0}", r.throughput_rps),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(&format!(
        "\ncold profile+annotate: {:.1} us mean   warm cache hit: {:.2} us mean   speedup: {:.0}x\n",
        t.cold_mean_us, t.warm_mean_us, t.speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> &'static TabServe {
        static T: std::sync::OnceLock<TabServe> = std::sync::OnceLock::new();
        T.get_or_init(|| run(&[1, 2, 4], 6, 2, 2.0))
    }

    #[test]
    fn warm_hits_are_at_least_10x_faster_than_cold_profiles() {
        let t = quick();
        assert!(
            t.speedup >= 10.0,
            "warm hit should be >=10x faster: cold {:.1} us, warm {:.2} us",
            t.cold_mean_us,
            t.warm_mean_us
        );
    }

    #[test]
    fn every_row_completes_all_requests_with_exact_counts() {
        let t = quick();
        for r in &t.rows {
            assert_eq!(r.requests, 6 * 3 * 2);
            // Round 1: every (clip, device) key is cold. Round 2: all warm.
            assert_eq!(r.misses, 6 * 3, "workers={}", r.workers);
            assert_eq!(r.hits, 6 * 3, "workers={}", r.workers);
            assert!(r.throughput_rps > 0.0);
        }
    }

    #[test]
    fn wider_pools_do_not_lose_throughput() {
        // A single-round, all-cold run isolates the parallelisable work.
        // On a single-core machine wall-clock speedup is impossible, so
        // only bound the threading overhead there; on multicore demand
        // parity or better. Either way take the best of three attempts —
        // the test harness runs other tests concurrently.
        let cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let floor = if cores >= 2 { 0.9 } else { 0.5 };
        let mut best = 0.0f64;
        let mut seen = Vec::new();
        for _ in 0..3 {
            let t = run(&[1, 4], 8, 1, 3.0);
            let ratio = t.rows[1].throughput_rps / t.rows[0].throughput_rps;
            seen.push(ratio);
            best = best.max(ratio);
            if best >= 1.0 {
                break;
            }
        }
        assert!(
            best >= floor,
            "4 workers persistently slower than 1 (cores={cores}): throughput ratios {seen:?}"
        );
    }

    #[test]
    fn json_roundtrip() {
        let t = run(&[1], 2, 1, 1.0);
        let json = annolight_support::json::to_string_pretty(&t);
        let back: TabServe = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
