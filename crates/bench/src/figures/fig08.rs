//! Fig. 8 — measured brightness vs displayed white level, at full and
//! half backlight: the near-linear panel response.

use crate::table::Table;
use annolight_camera::{recover_response, DigitalCamera};
use annolight_display::{BacklightLevel, DeviceProfile};
use annolight_imgproc::{Frame, Rgb8};

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct WhitePoint {
    /// Displayed gray level.
    pub white: u8,
    /// Camera-measured brightness at backlight 255.
    pub at_full: f64,
    /// Camera-measured brightness at backlight 128.
    pub at_half: f64,
}

annolight_support::impl_json!(struct WhitePoint { white, at_full, at_half });

/// The Fig. 8 series (iPAQ 5555, the paper's measurement device).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08 {
    /// The sweep, ascending white level.
    pub points: Vec<WhitePoint>,
}

annolight_support::impl_json!(struct Fig08 { points });

/// Sweeps the displayed gray level at two backlight settings, photographed
/// with the consumer camera and linearised through its recovered response
/// (as in Fig. 7).
pub fn run() -> Fig08 {
    let device = DeviceProfile::ipaq_5555();
    let camera = DigitalCamera::consumer_compact(8);
    let response = recover_response(&camera, 8);
    let points = (0..=16u16)
        .map(|i| {
            let w = (i * 16).min(255) as u8;
            let screen = Frame::filled(32, 32, Rgb8::gray(w));
            WhitePoint {
                white: w,
                at_full: response
                    .linear_mean(&camera.photograph(&screen, &device, BacklightLevel::MAX))
                    * 255.0,
                at_half: response
                    .linear_mean(&camera.photograph(&screen, &device, BacklightLevel(128)))
                    * 255.0,
            }
        })
        .collect();
    Fig08 { points }
}

/// Renders the figure as text.
pub fn render(f: &Fig08) -> String {
    let mut out = String::new();
    out.push_str("Fig. 8 — measured brightness vs white level (iPAQ 5555)\n\n");
    let mut t = Table::new(["white", "backlight=255", "backlight=128"]);
    for p in &f.points {
        t.row([p.white.to_string(), format!("{:.1}", p.at_full), format!("{:.1}", p.at_half)]);
    }
    out.push_str(&t.render());
    out.push_str("\n(near-linear in white level; scaling the backlight scales the whole curve)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_white_level() {
        let f = run();
        for w in f.points.windows(2) {
            assert!(w[1].at_full >= w[0].at_full);
            assert!(w[1].at_half >= w[0].at_half);
        }
    }

    #[test]
    fn nearly_linear_in_white() {
        // Deviation from the endpoint line stays small (mild gamma only).
        let f = run();
        let lo = f.points.first().unwrap().at_full;
        let hi = f.points.last().unwrap().at_full;
        for (i, p) in f.points.iter().enumerate() {
            let expected = lo + (hi - lo) * i as f64 / (f.points.len() - 1) as f64;
            assert!(
                (p.at_full - expected).abs() < 0.08 * 255.0,
                "white {}: {} vs linear {}",
                p.white,
                p.at_full,
                expected
            );
        }
    }

    #[test]
    fn half_backlight_scales_curve_down() {
        let f = run();
        for p in &f.points[1..] {
            assert!(p.at_half < p.at_full, "white {}", p.white);
        }
        // The ratio is roughly constant across white levels (pure L·Y
        // product): compare at two distant points.
        let r_mid = f.points[8].at_half / f.points[8].at_full.max(1e-9);
        let r_hi = f.points[16].at_half / f.points[16].at_full.max(1e-9);
        assert!((r_mid - r_hi).abs() < 0.05, "ratios {r_mid} vs {r_hi}");
    }
}
