//! Extension experiment — stacking the annotation-enabled optimisations.
//!
//! §3 argues annotations enable more than backlight scaling: "because the
//! information is available even before decoding the data, more
//! optimizations are possible … (for example network packet
//! optimizations)". This experiment stacks them: backlight scaling alone,
//! plus DVFS hints, plus burst prefetching (radio idles between bursts),
//! and all three together.

use crate::table::Table;
use annolight_core::QualityLevel;
use annolight_stream::{run_session, SessionConfig};
use annolight_video::ClipLibrary;

/// One clip's savings across the optimisation stack.
#[derive(Debug, Clone, PartialEq)]
pub struct StackRow {
    /// Clip name.
    pub clip: String,
    /// Backlight annotations only.
    pub backlight: f64,
    /// Backlight + DVFS hints.
    pub with_dvfs: f64,
    /// Backlight + burst prefetching.
    pub with_burst: f64,
    /// All three.
    pub all: f64,
}

annolight_support::impl_json!(struct StackRow { clip, backlight, with_dvfs, with_burst, all });

/// The experiment data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtBurst {
    /// Per-clip rows.
    pub rows: Vec<StackRow>,
}

annolight_support::impl_json!(struct ExtBurst { rows });

/// Runs the stack at 10 % quality over a mixed clip subset.
pub fn run(preview_s: f64) -> ExtBurst {
    let rows = ["themovie", "ice_age", "returnoftheking"]
        .into_iter()
        .map(|name| {
            let clip = ClipLibrary::paper_clip(name).expect("library clip").preview(preview_s);
            let savings = |dvfs: bool, burst: bool| {
                let mut cfg = SessionConfig::new(clip.clone(), QualityLevel::Q10);
                cfg.dvfs = dvfs;
                cfg.burst_prefetch = burst;
                run_session(cfg).expect("session succeeds").playback.total_savings()
            };
            StackRow {
                clip: name.to_owned(),
                backlight: savings(false, false),
                with_dvfs: savings(true, false),
                with_burst: savings(false, true),
                all: savings(true, true),
            }
        })
        .collect();
    ExtBurst { rows }
}

/// Renders the experiment as text.
pub fn render(e: &ExtBurst) -> String {
    let mut out = String::new();
    out.push_str("Extension — stacking annotation-enabled optimisations (10% quality)\n\n");
    let mut t = Table::new(["clip", "backlight", "+DVFS", "+burst rx", "all three"]);
    for r in &e.rows {
        t.row([
            r.clip.clone(),
            format!("{:.1}%", r.backlight * 100.0),
            format!("{:.1}%", r.with_dvfs * 100.0),
            format!("{:.1}%", r.with_burst * 100.0),
            format!("{:.1}%", r.all * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_optimisation_adds_savings() {
        let e = run(4.0);
        assert_eq!(e.rows.len(), 3);
        for r in &e.rows {
            assert!(r.with_dvfs > r.backlight, "{r:?}");
            assert!(r.with_burst > r.backlight, "{r:?}");
            assert!(r.all > r.with_dvfs, "{r:?}");
            assert!(r.all > r.with_burst, "{r:?}");
        }
    }

    #[test]
    fn stack_stays_physical() {
        // Even fully stacked, savings must stay below the share of power
        // the three optimisable components hold (~60 % of the device).
        let e = run(4.0);
        for r in &e.rows {
            assert!(r.all < 0.6, "{r:?}");
        }
    }
}
