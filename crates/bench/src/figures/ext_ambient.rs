//! Extension experiment — ambient-aware backlight planning.
//!
//! §4.1: "Most recent handhelds use transflective displays, which perform
//! best both indoors (low light) and outdoors (in sunlight)." The
//! transflective panel reflects ambient light, and that reflected
//! component does not dim with the backlight — so the preserved-intensity
//! equation admits a lower backlight level outdoors. This experiment
//! quantifies the extra savings per device across ambient conditions.

use crate::table::Table;
use annolight_core::plan::plan_levels_ambient;
use annolight_display::DeviceProfile;

/// Savings for one device across ambient levels, at a fixed scene
/// effective max.
#[derive(Debug, Clone, PartialEq)]
pub struct AmbientRow {
    /// Device name.
    pub device: String,
    /// Backlight power savings per ambient level, same order as
    /// [`AMBIENT_LEVELS`].
    pub savings: Vec<f64>,
}

annolight_support::impl_json!(struct AmbientRow { device, savings });

/// The ambient illumination sweep (relative, 0 = dark room, 1 = direct
/// sunlight on the panel).
pub const AMBIENT_LEVELS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// The experiment data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtAmbient {
    /// Scene effective maximum luminance used.
    pub effective_max: u8,
    /// One row per paper device.
    pub rows: Vec<AmbientRow>,
}

annolight_support::impl_json!(struct ExtAmbient { effective_max, rows });

/// Sweeps ambient light for a mid-bright scene on all paper devices.
pub fn run(effective_max: u8) -> ExtAmbient {
    let rows = DeviceProfile::paper_devices()
        .into_iter()
        .map(|dev| {
            let savings = AMBIENT_LEVELS
                .iter()
                .map(|&a| {
                    let (_, level) = plan_levels_ambient(&dev, effective_max, a);
                    dev.backlight_power().savings_vs_full(level)
                })
                .collect();
            AmbientRow { device: dev.name().to_owned(), savings }
        })
        .collect();
    ExtAmbient { effective_max, rows }
}

/// Renders the experiment as text.
pub fn render(e: &ExtAmbient) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension — ambient-aware planning (scene effective max = {})\n\n",
        e.effective_max
    ));
    let mut header = vec!["device".to_owned()];
    header.extend(AMBIENT_LEVELS.iter().map(|a| format!("ambient {a}")));
    let mut t = Table::new(header);
    for r in &e.rows {
        let mut row = vec![r.device.clone()];
        row.extend(r.savings.iter().map(|s| format!("{:.1}%", s * 100.0)));
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str("\n(reflected ambient light carries part of the perceived intensity,\n so the same scene needs less backlight outdoors)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_ambient_on_every_device() {
        let e = run(160);
        assert_eq!(e.rows.len(), 3);
        for r in &e.rows {
            for w in r.savings.windows(2) {
                assert!(w[1] + 1e-12 >= w[0], "{}: {:?}", r.device, r.savings);
            }
            assert!(
                r.savings[3] > r.savings[0] + 0.01,
                "{}: sunlight should add real savings: {:?}",
                r.device,
                r.savings
            );
        }
    }

    #[test]
    fn reflective_panels_benefit_most() {
        // The reflective CCFL panels have higher ambient reflectance than
        // the transflective LED panel, so their ambient gain is larger.
        let e = run(160);
        let gain = |name: &str| {
            let r = e.rows.iter().find(|r| r.device == name).unwrap();
            r.savings[3] - r.savings[0]
        };
        assert!(gain("ipaq-3650") > gain("ipaq-5555"));
    }
}
