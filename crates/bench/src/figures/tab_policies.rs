//! Policy tournament table — the three annotation backends
//! (peak-clip, HEBS, spatial scaling) priced head-to-head per clip class
//! and device.
//!
//! Each cell runs the *same* clip/device/quality point through one
//! policy, reporting planner-level metrics (backlight savings, clipped
//! fraction against the quality budget) and a full burst-prefetch
//! session's total-device savings — so backlight wins (HEBS on dark
//! content) and network/decode wins (spatial scaling) land in one
//! comparable column. Exported as `BENCH_policies.json` and snapshotted
//! by the golden tier.

use crate::table::Table;
use annolight_core::{
    BacklightPlan, LuminanceProfile, ParallelConfig, PolicyKind, QualityLevel, SceneDetector,
    ScenePlan,
};
use annolight_display::DeviceProfile;
use annolight_stream::{run_session, SessionConfig};
use annolight_video::ClipLibrary;

/// Quality-violation SLO: how far the mean clipped fraction may exceed
/// the negotiated budget. The slack is the channel-vs-luminance epsilon
/// (a colored pixel's maximum channel sits slightly above its luminance),
/// the same tolerance the serve-tier tests allow.
pub const VIOLATION_SLO: f64 = 0.02;

/// One (clip, device, policy) cell of the tournament.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// Clip name.
    pub clip: String,
    /// Device name.
    pub device: String,
    /// Policy display name ([`PolicyKind::name`]).
    pub policy: String,
    /// Frames-weighted mean fractional backlight power saving vs. full.
    pub backlight_savings: f64,
    /// Frames-weighted mean clipped pixel fraction (planner-level).
    pub mean_clipped: f64,
    /// How far `mean_clipped` exceeds the quality budget (0 when within).
    pub violation: f64,
    /// Total-device energy saving of a burst-prefetch session vs. the
    /// full-backlight baseline.
    pub total_savings: f64,
    /// Delivered stream size, bytes (spatial scaling shrinks this).
    pub stream_bytes: u64,
    /// Whether the cell honours the quality-violation SLO.
    pub slo_ok: bool,
}

annolight_support::impl_json!(struct PolicyCell { clip, device, policy, backlight_savings, mean_clipped, violation, total_savings, stream_bytes, slo_ok });

/// The full tournament: every policy on every clip × device cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TabPolicies {
    /// Clips included (dark trailer, bright cartoon, mixed content).
    pub clips: Vec<String>,
    /// One row per (clip, device, policy), in nested iteration order.
    pub rows: Vec<PolicyCell>,
}

annolight_support::impl_json!(struct TabPolicies { clips, rows });

/// Runs the tournament at 10 % quality over the baseline-table clip set
/// and the paper's three devices.
pub fn run(preview_s: f64) -> TabPolicies {
    let quality = QualityLevel::Q10;
    let budget = quality.clip_fraction();
    let clip_names = ["themovie", "ice_age", "shrek2"];
    let mut rows = Vec::new();
    for name in clip_names {
        let clip = ClipLibrary::paper_clip(name).expect("library clip").preview(preview_s);
        let profile = LuminanceProfile::of_clip(&clip).expect("non-empty clip");
        let spans = SceneDetector::default().detect(&profile);
        for device in DeviceProfile::paper_devices() {
            for policy in PolicyKind::ALL {
                let plan = BacklightPlan::compute_policy(
                    &profile,
                    &spans,
                    &device,
                    quality,
                    policy,
                    &ParallelConfig::serial(),
                );
                let frames: f64 =
                    plan.scenes().iter().map(|s| f64::from(s.span.end - s.span.start)).sum();
                let weighted = |f: &dyn Fn(&ScenePlan) -> f64| {
                    plan.scenes()
                        .iter()
                        .map(|s| f(s) * f64::from(s.span.end - s.span.start))
                        .sum::<f64>()
                        / frames
                };
                let mean_clipped = weighted(&|s| s.clipped_fraction);
                let violation = (mean_clipped - budget).max(0.0);

                // A full session prices what the planner cannot: the WNIC
                // energy of delivering the (possibly rescaled) stream.
                let mut cfg = SessionConfig::new(clip.clone(), quality).with_policy(policy);
                cfg.device = device.clone();
                cfg.burst_prefetch = true;
                let report = run_session(cfg).expect("library sessions succeed");

                rows.push(PolicyCell {
                    clip: clip.name().to_owned(),
                    device: device.name().to_owned(),
                    policy: policy.name().to_owned(),
                    backlight_savings: weighted(&|s| s.power_savings),
                    mean_clipped,
                    violation,
                    total_savings: report.playback.total_savings(),
                    stream_bytes: report.stream_bytes as u64,
                    slo_ok: violation <= VIOLATION_SLO,
                });
            }
        }
    }
    TabPolicies { clips: clip_names.iter().map(|n| (*n).to_owned()).collect(), rows }
}

/// Renders the tournament as text.
pub fn render(t: &TabPolicies) -> String {
    let mut out = String::new();
    out.push_str(&format!("Annotation-policy tournament at 10% quality over {:?}\n\n", t.clips));
    let mut tbl = Table::new([
        "clip",
        "device",
        "policy",
        "backlight saved",
        "mean clipped",
        "violation",
        "total saved",
        "stream bytes",
        "slo",
    ]);
    for r in &t.rows {
        tbl.row([
            r.clip.clone(),
            r.device.clone(),
            r.policy.clone(),
            format!("{:.1}%", r.backlight_savings * 100.0),
            format!("{:.2}%", r.mean_clipped * 100.0),
            format!("{:.2}%", r.violation * 100.0),
            format!("{:.1}%", r.total_savings * 100.0),
            format!("{}", r.stream_bytes),
            if r.slo_ok { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    out.push_str(&tbl.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TabPolicies {
        run(4.0)
    }

    fn cell<'a>(t: &'a TabPolicies, clip: &str, device: &str, policy: &str) -> &'a PolicyCell {
        t.rows
            .iter()
            .find(|r| r.clip == clip && r.device == device && r.policy == policy)
            .unwrap_or_else(|| panic!("missing cell {clip}/{device}/{policy}"))
    }

    #[test]
    fn every_cell_present_and_within_slo() {
        let t = quick();
        assert_eq!(t.rows.len(), 3 * 3 * 3, "clips × devices × policies");
        for r in &t.rows {
            assert!(r.slo_ok, "{}/{}/{} violates the SLO: {}", r.clip, r.device, r.policy, r.violation);
            assert!(r.backlight_savings >= 0.0 && r.backlight_savings < 1.0);
            assert!(r.stream_bytes > 0);
        }
    }

    #[test]
    fn hebs_beats_peak_clip_somewhere_on_backlight() {
        // The acceptance cell: on the dark trailer, histogram
        // equalisation reshapes the dominant dark mass and dims further
        // than clipping alone — on at least one device.
        let t = quick();
        let beats = t.rows.iter().any(|r| {
            r.policy == "hebs"
                && r.backlight_savings
                    > cell(&t, &r.clip, &r.device, "peak-clip").backlight_savings + 0.01
        });
        assert!(beats, "HEBS never beat peak-clip on backlight savings");
    }

    #[test]
    fn hebs_never_dims_less_than_peak_clip() {
        let t = quick();
        for r in t.rows.iter().filter(|r| r.policy == "hebs") {
            let peak = cell(&t, &r.clip, &r.device, "peak-clip");
            assert!(
                r.backlight_savings + 1e-9 >= peak.backlight_savings,
                "{}/{}: hebs {} vs peak {}",
                r.clip,
                r.device,
                r.backlight_savings,
                peak.backlight_savings
            );
        }
    }

    #[test]
    fn spatial_scale_beats_peak_clip_somewhere_on_total_energy() {
        // The other acceptance cell: quarter-area streams slash WNIC
        // receive time under burst prefetch.
        let t = quick();
        let beats = t.rows.iter().any(|r| {
            r.policy == "spatial-scale"
                && r.total_savings > cell(&t, &r.clip, &r.device, "peak-clip").total_savings + 0.01
        });
        assert!(beats, "spatial scaling never beat peak-clip on total savings");
    }

    #[test]
    fn spatial_scale_shrinks_every_stream() {
        let t = quick();
        for r in t.rows.iter().filter(|r| r.policy == "spatial-scale") {
            let peak = cell(&t, &r.clip, &r.device, "peak-clip");
            assert!(
                r.stream_bytes * 2 < peak.stream_bytes,
                "{}/{}: spatial {} vs full {}",
                r.clip,
                r.device,
                r.stream_bytes,
                peak.stream_bytes
            );
        }
    }

    #[test]
    fn table_serialises_and_round_trips() {
        let t = quick();
        let json = annolight_support::json::to_string(&t);
        let back: TabPolicies = annolight_support::json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert!(!render(&t).is_empty());
    }
}
