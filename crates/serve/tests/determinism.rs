//! Determinism acceptance tests: with a deterministic (inline) pool,
//! identical request traces must produce identical hit/miss sequences,
//! and the counters report must match the observed sequence exactly.

use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_serve::{
    AnnotationRequest, AnnotationService, ServeError, Service, ServiceConfig,
};
use annolight_video::clip::{Clip, ClipSpec, SceneSpec};
use annolight_video::content::ContentKind;
use std::sync::Arc;

fn test_clip(name: &str, seed: u64) -> Clip {
    Clip::new(ClipSpec {
        name: name.to_owned(),
        width: 48,
        height: 32,
        fps: 12.0,
        seed,
        scenes: vec![
            SceneSpec::new(
                ContentKind::Dark { base: 40, spread: 10, highlight_fraction: 0.01, highlight: 240 },
                1.0,
            ),
            SceneSpec::new(ContentKind::Bright { base: 200, spread: 20 }, 1.0),
        ],
    })
    .unwrap()
}

fn service() -> Arc<AnnotationService> {
    let svc = AnnotationService::new(ServiceConfig {
        workers: 0, // deterministic inline mode
        cache_shards: 4,
        cache_bytes: 1 << 20,
        tenant_queue_depth: 8,
        ..ServiceConfig::default()
    });
    for (name, seed) in [("alpha", 11), ("beta", 22), ("gamma", 33)] {
        svc.register_clip(test_clip(name, seed));
    }
    svc
}

/// A tiny deterministic LCG for building the request trace.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

fn trace(seed: u64, len: usize) -> Vec<AnnotationRequest> {
    let clips = ["alpha", "beta", "gamma"];
    let devices =
        [DeviceProfile::ipaq_5555(), DeviceProfile::ipaq_3650(), DeviceProfile::zaurus_sl5600()];
    let qualities = [QualityLevel::Q5, QualityLevel::Q10, QualityLevel::Q20];
    let mut rng = Lcg(seed);
    (0..len)
        .map(|_| AnnotationRequest {
            tenant: format!("tenant-{}", rng.next(4)),
            clip: clips[rng.next(3) as usize].to_owned(),
            device: devices[rng.next(3) as usize].clone(),
            quality: qualities[rng.next(3) as usize],
            mode: if rng.next(2) == 0 { AnnotationMode::PerScene } else { AnnotationMode::PerFrame },
            policy: annolight_core::PolicyKind::PeakClip,
        })
        .collect()
}

/// Runs `reqs` through `svc`, returning the observed hit/miss sequence
/// (`true` = cache hit).
fn run_trace(svc: &Arc<AnnotationService>, reqs: &[AnnotationRequest]) -> Vec<bool> {
    reqs.iter().map(|r| svc.call(r.clone()).expect("trace requests succeed").cache_hit).collect()
}

#[test]
fn identical_traces_produce_identical_hit_miss_sequences() {
    let reqs = trace(0xDEAD_BEEF, 60);
    let a = run_trace(&service(), &reqs);
    let b = run_trace(&service(), &reqs);
    assert_eq!(a, b, "two fresh deterministic services must agree on every hit/miss");
    assert!(a.iter().any(|&h| h), "a 60-request trace over 54 keys must repeat some key");
    assert!(!a[0], "the very first request cannot be a hit");
}

#[test]
fn counters_report_matches_observed_sequence_exactly() {
    let svc = service();
    let reqs = trace(0x5EED, 40);
    let observed = run_trace(&svc, &reqs);
    let hits = observed.iter().filter(|&&h| h).count() as u64;
    let misses = observed.len() as u64 - hits;
    let report = svc.report();
    assert_eq!(report.hits, hits, "reported hits == observed hits, bit-for-bit");
    assert_eq!(report.misses, misses);
    assert_eq!(report.completed, hits + misses);
    assert_eq!(report.overloaded, 0);
    assert_eq!(report.queue_depth, 0);
    assert_eq!(report.profile_count, misses, "every miss cost exactly one profile");
    // And the report survives its own JSON round-trip.
    let json = report.to_json_string();
    assert_eq!(
        annolight_serve::CountersReport::from_json_string(&json).unwrap(),
        report
    );
}

#[test]
fn unknown_clip_is_a_typed_rejection_not_a_panic() {
    let svc = service();
    match svc.call(AnnotationRequest {
        tenant: "t".into(),
        clip: "missing".into(),
        device: DeviceProfile::ipaq_5555(),
        quality: QualityLevel::Q10,
        mode: AnnotationMode::PerScene,
        policy: annolight_core::PolicyKind::PeakClip,
    }) {
        Err(ServeError::UnknownClip(name)) => assert_eq!(name, "missing"),
        other => panic!("expected UnknownClip, got {other:?}"),
    }
}
