//! Property tests for the workload model: the Zipf sampler's empirical
//! rank-frequency law converges to the configured exponent across
//! seeds, the diurnal/flash-crowd curve conserves mass and respects
//! its bounds, and tenant churn keeps the population inside its
//! configured envelope.

use annolight_serve::workload::{
    generate_trace, ChurnConfig, DiurnalCurve, FlashCrowd, ScenarioKind, WorkloadConfig,
    ZipfSampler,
};
use annolight_support::rng::SmallRng;

annolight_support::check! {
    /// The log–log regression slope of empirical rank frequencies
    /// converges to -s: draw many samples, fit log(freq) against
    /// log(rank+1) over the well-populated head, and compare the
    /// fitted slope with the configured exponent.
    fn zipf_rank_frequency_slope_converges(g, cases = 12) {
        let s: f64 = 0.8 + f64::from(g.draw(0u32..700)) / 1000.0; // 0.8..1.5
        let seed = g.any::<u64>();
        let n = 2_000usize;
        let zipf = ZipfSampler::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 60_000usize;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Head ranks only: deep tail ranks have single-digit counts and
        // drown the fit in Poisson noise.
        let head = 30usize;
        let points: Vec<(f64, f64)> = (0..head)
            .filter(|&k| counts[k] > 0)
            .map(|k| (((k + 1) as f64).ln(), (counts[k] as f64 / draws as f64).ln()))
            .collect();
        assert!(points.len() >= head - 2, "head ranks must all be populated");
        let m = points.len() as f64;
        let (sx, sy): (f64, f64) =
            points.iter().fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
        let (sxx, sxy): (f64, f64) = points
            .iter()
            .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
        let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
        assert!(
            (slope + s).abs() < 0.12,
            "fitted slope {slope:.3} vs -s {:.3} (seed {seed:#x})",
            -s
        );
    }

    /// Sampling is bounded and rank 0's empirical frequency matches its
    /// analytic probability for arbitrary (n, s) across seeds.
    fn zipf_top_rank_frequency_matches_probability(g, cases = 16) {
        let n: usize = g.draw(50usize..5000);
        let s: f64 = f64::from(g.draw(0u32..1500)) / 1000.0; // 0..1.5
        let seed = g.any::<u64>();
        let zipf = ZipfSampler::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 30_000u64;
        let mut top = 0u64;
        for _ in 0..draws {
            let r = zipf.sample(&mut rng);
            assert!(r < n, "rank {r} escaped 0..{n}");
            if r == 0 {
                top += 1;
            }
        }
        let p = zipf.probability(0);
        let observed = top as f64 / draws as f64;
        let sigma = (p * (1.0 - p) / draws as f64).sqrt();
        let tol = (5.0 * sigma).max(0.004);
        assert!(
            (observed - p).abs() <= tol,
            "rank-0 freq {observed:.4} vs p {p:.4} (tol {tol:.4}, n {n}, s {s:.3}, seed {seed:#x})"
        );
    }

    /// Mass conservation: the curve's numeric mean over the day equals
    /// the analytic `1 + Σ spike masses` for arbitrary amplitude, phase
    /// and spike sets — the diurnal swing reshapes traffic in time but
    /// never creates or destroys it.
    fn diurnal_curve_conserves_mass(g, cases = 32) {
        let amplitude: f64 = f64::from(g.draw(0u32..950)) / 1000.0; // 0..0.95
        let peak: f64 = f64::from(g.draw(0u32..1000)) / 1000.0;
        let spikes: Vec<FlashCrowd> = (0..g.draw(0usize..4))
            .map(|_| FlashCrowd {
                start_frac: f64::from(g.draw(0u32..900)) / 1000.0,
                duration_frac: 0.01 + f64::from(g.draw(0u32..150)) / 1000.0,
                magnitude: f64::from(g.draw(0u32..6000)) / 1000.0,
            })
            .collect();
        let curve = DiurnalCurve::new(amplitude, peak, spikes);
        let n = 20_000;
        let mean = (0..n)
            .map(|i| curve.intensity_at((f64::from(i) + 0.5) / f64::from(n)))
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean - curve.mean_intensity()).abs() < 5e-3,
            "numeric mean {mean:.5} vs analytic {:.5}",
            curve.mean_intensity()
        );
    }

    /// Spike bounds: intensity is non-negative everywhere and never
    /// exceeds the analytic bound `1 + amplitude + Σ magnitudes`;
    /// outside every spike's support the curve equals the bare base.
    fn diurnal_curve_respects_bounds(g, cases = 32) {
        let amplitude: f64 = f64::from(g.draw(0u32..950)) / 1000.0;
        let peak: f64 = f64::from(g.draw(0u32..1000)) / 1000.0;
        let spike = FlashCrowd {
            start_frac: 0.2 + f64::from(g.draw(0u32..400)) / 1000.0,
            duration_frac: 0.01 + f64::from(g.draw(0u32..100)) / 1000.0,
            magnitude: f64::from(g.draw(0u32..8000)) / 1000.0,
        };
        let curve = DiurnalCurve::new(amplitude, peak, vec![spike]);
        let bound = curve.max_intensity_bound();
        let bare = DiurnalCurve::new(amplitude, peak, Vec::new());
        for i in 0..4000 {
            let frac = (f64::from(i) + 0.5) / 4000.0;
            let v = curve.intensity_at(frac);
            assert!(v >= 0.0, "negative intensity {v} at {frac}");
            assert!(v <= bound + 1e-9, "intensity {v} above bound {bound} at {frac}");
            let in_spike = frac >= spike.start_frac
                && frac <= spike.start_frac + spike.duration_frac;
            if !in_spike {
                assert!(
                    (v - bare.intensity_at(frac)).abs() < 1e-12,
                    "spike leaked outside its support at {frac}"
                );
            }
        }
    }

    /// Churn keeps the trace's tenant population inside the configured
    /// envelope and every generated request inside the corpus, for
    /// arbitrary seeds and scenario kinds.
    fn churned_traces_stay_inside_their_envelope(g, cases = 8) {
        let seed = g.any::<u64>();
        let kind = match g.draw(0u32..3) {
            0 => ScenarioKind::Steady,
            1 => ScenarioKind::Diurnal,
            _ => ScenarioKind::FlashCrowd,
        };
        let mut cfg = WorkloadConfig::scenario_small(kind, seed);
        cfg.corpus_clips = 256;
        cfg.base_rate = 15.0;
        let trace = generate_trace(&cfg);
        let max_pop = cfg.churn.max_active.max(cfg.churn.initial) as u64;
        // Ids are arrival-ordered, so the highest id bounds how many
        // tenants ever existed; the distinct count bounds concurrency.
        assert!(trace.tenants <= trace.requests.len() as u64);
        for req in &trace.requests {
            assert!(req.clip_rank < cfg.corpus_clips, "clip rank escaped the corpus");
            assert!(req.device < 3, "device index escaped the paper set");
            assert!(req.tick < cfg.ticks, "tick escaped the day");
        }
        // A fixed population never grows: ids stay below the initial count.
        if let ScenarioKind::Steady = kind {
            assert_eq!(cfg.churn, ChurnConfig::fixed(64));
            assert!(trace.requests.iter().all(|r| r.tenant < 64));
            assert!(trace.tenants <= 64);
        } else {
            assert!(trace.tenants <= max_pop + trace.requests.len() as u64);
        }
    }
}
