//! Bounded soak test: 64 simulated tenants hammer a threaded service
//! with a fixed-seed request trace. Run by `scripts/ci.sh` via
//! `cargo test -q -p annolight-serve --release -- soak`.
//!
//! The assertions are conservation laws, valid under any thread
//! interleaving: every accepted request completes, every rejection is
//! counted, and `hits + misses == completed`.

use annolight_core::track::AnnotationMode;
use annolight_core::QualityLevel;
use annolight_display::DeviceProfile;
use annolight_serve::{
    AnnotationRequest, AnnotationService, ServeError, ServiceConfig, Ticket,
};
use annolight_video::clip::{Clip, ClipSpec, SceneSpec};
use annolight_video::content::ContentKind;

const TENANTS: u64 = 64;
const REQUESTS: usize = 600;
const SEED: u64 = 0xA550_11FE_DCBA_0042;

fn soak_clip(name: &str, seed: u64) -> Clip {
    Clip::new(ClipSpec {
        name: name.to_owned(),
        width: 48,
        height: 32,
        fps: 12.0,
        seed,
        scenes: vec![
            SceneSpec::new(
                ContentKind::Dark { base: 40, spread: 12, highlight_fraction: 0.01, highlight: 240 },
                1.0,
            ),
            SceneSpec::new(ContentKind::Bright { base: 190, spread: 25 }, 1.0),
        ],
    })
    .unwrap()
}

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

#[test]
fn soak_64_tenants_fixed_seed() {
    let svc = AnnotationService::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
        cache_bytes: 1 << 22,
        tenant_queue_depth: 4,
        ..ServiceConfig::default()
    });
    let clips = ["soak-a", "soak-b", "soak-c", "soak-d"];
    for (i, name) in clips.iter().enumerate() {
        svc.register_clip(soak_clip(name, 100 + i as u64));
    }
    let devices =
        [DeviceProfile::ipaq_5555(), DeviceProfile::ipaq_3650(), DeviceProfile::zaurus_sl5600()];
    let qualities = [QualityLevel::Q5, QualityLevel::Q10, QualityLevel::Q15, QualityLevel::Q20];

    let mut rng = Lcg(SEED);
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..REQUESTS {
        let req = AnnotationRequest {
            tenant: format!("tenant-{:02}", rng.next(TENANTS)),
            clip: clips[rng.next(4) as usize].to_owned(),
            device: devices[rng.next(3) as usize].clone(),
            quality: qualities[rng.next(4) as usize],
            mode: if rng.next(4) == 0 { AnnotationMode::PerFrame } else { AnnotationMode::PerScene },
        };
        match svc.submit(req) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("soak trace must only see Overloaded, got {other}"),
        }
    }
    svc.run_until_idle();
    let accepted = tickets.len() as u64;
    for t in tickets {
        let resp = t.wait().expect("every accepted request completes");
        assert!(resp.track.frame_count() > 0);
    }
    let report = svc.report();
    assert_eq!(accepted + rejected, REQUESTS as u64, "every request accounted for");
    assert_eq!(report.completed, accepted, "every accepted request completed");
    assert_eq!(report.hits + report.misses, report.completed, "hit/miss conservation");
    assert_eq!(report.overloaded, rejected);
    assert_eq!(report.queue_depth, 0, "nothing left queued after drain");
    // 96 distinct keys exist (4 clips x 3 devices x 4 qualities x 2
    // modes); concurrent dispatches of the same cold key may each miss,
    // so allow modest overshoot but not unbounded recomputation.
    assert!(report.misses >= 1, "a fresh cache must miss");
    assert!(report.misses <= 96 * 4, "misses explode past the keyspace: {}", report.misses);
    assert_eq!(report.profile_count, report.misses, "every miss times exactly one profile");
    assert!(
        report.clip_profiles <= clips.len() as u64,
        "single-flight memo must profile each clip at most once, got {}",
        report.clip_profiles
    );
    assert!(report.resident_entries > 0);
    // The report must serialise and round-trip even at soak scale.
    let back =
        annolight_serve::CountersReport::from_json_string(&report.to_json_string()).unwrap();
    assert_eq!(back, report);
}
